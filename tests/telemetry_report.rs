//! End-to-end telemetry: run a miniature Fig. 4 failure scenario and
//! assert that the produced JSON overhead report is complete — the
//! schema tag, the OHF1/OHF2/OHF3 decomposition, redo time, the epoch
//! timeline, scan statistics, and all three counter families.

use ft_bench::scenario::{run_scenario, Kills, Scenario, Workload};
use ft_telemetry::Json;

#[test]
fn fig4_scenario_produces_schema_complete_json_report() {
    let w = Workload {
        workers: 4,
        spares: 2,
        lx: 8,
        ly: 4,
        iters: 60,
        checkpoint_every: 20,
        ..Workload::default()
    };
    let sc = Scenario {
        name: "1 fail",
        health_check: true,
        checkpointing: true,
        kills: Kills::AtIterations(vec![(1, 45)]),
        fd_threads: 1,
    };
    let result = run_scenario(&w, &sc);
    assert!(result.consistent, "the scenario must complete consistently");
    assert_eq!(result.recoveries, 1);

    let text = result.telemetry.to_json_string();
    let json = Json::parse(&text).expect("report must be valid JSON");

    // Schema tag.
    assert_eq!(json.get("schema").and_then(Json::as_str), Some(ft_telemetry::report::SCHEMA));

    // The decomposition: all four components present, identity holds.
    let num = |k: &str| {
        json.get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("report must carry a numeric `{k}`"))
    };
    let total = num("total_s");
    let compute = num("compute_s");
    let ohf1 = num("ohf1_detect_s");
    let ohf2 = num("ohf2_rebuild_s");
    let ohf3 = num("ohf3_restore_s");
    let reinit = num("reinit_s");
    let redo = num("redo_s");
    assert!(total > 0.0);
    assert!(ohf1 > 0.0, "a killed rank must cost detection time");
    assert!(redo > 0.0, "redo-work must be visible");
    assert!((ohf2 + ohf3 - reinit).abs() < 1e-9, "OHF2 + OHF3 must equal re-init");
    assert!(
        (compute + ohf1 + reinit + redo - total).abs() < 1e-9,
        "decomposition must sum to the total"
    );

    // One recovery epoch with its full timeline.
    let epochs = json.get("epochs").and_then(Json::as_arr).expect("epochs array");
    assert_eq!(epochs.len(), 1);
    for key in ["epoch", "t_kill_s", "t_signal_s", "t_restored_s", "ohf1_s", "redo_s"] {
        assert!(epochs[0].get(key).is_some(), "epoch timeline must carry `{key}`");
    }

    // Scan statistics (the health check was on).
    let scan = json.get("scan").expect("scan stats");
    assert!(scan.get("scans").and_then(Json::as_u64).unwrap() > 0);
    assert!(scan.get("mean_s").and_then(Json::as_f64).unwrap() > 0.0);

    // Counter registry: all three families, with activity where the
    // scenario guarantees it.
    let counters = json.get("counters").expect("counter registry");
    let fam = |f: &str, k: &str| {
        counters
            .get(f)
            .and_then(|v| v.get(k))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("counters must carry `{f}.{k}`"))
    };
    assert!(fam("transport", "msg_posted") > 0);
    assert!(fam("transport", "pings") > 0, "the FD must have pinged");
    assert!(fam("gaspi", "notifications_posted") > 0, "halo exchange posts notifications");
    assert!(fam("gaspi", "group_commits") > 0, "recovery rebuilds the group");
    assert!(fam("checkpoint", "local_writes") > 0, "checkpoints were written");
    assert!(fam("checkpoint", "restore_bytes") > 0, "the recovery restored state");

    // Degraded-mode flags present and quiet in this scenario.
    assert_eq!(json.get("fd_promoted").and_then(Json::as_bool), Some(false));
    assert_eq!(json.get("capacity_exhausted").and_then(Json::as_bool), Some(false));
}
