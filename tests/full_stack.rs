//! Cross-crate integration tests through the `gaspi_ft` facade: the full
//! stack (cluster → gaspi → checkpoint → core → sparse → solver) driven
//! the way a downstream user would.

use std::sync::Arc;
use std::time::Duration;

use gaspi_ft::checkpoint::{Pfs, PfsConfig};
use gaspi_ft::cluster::{FaultAction, FaultSchedule, NodeId};
use gaspi_ft::core::{run_ft_job, FtConfig, Role, WorldLayout};
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld, ReduceOp, Timeout};
use gaspi_ft::matgen::graphene::Graphene;
use gaspi_ft::solver::ft_lanczos::{FtLanczos, FtLanczosConfig};
use gaspi_ft::solver::heat::{FtHeat, HeatConfig};

#[test]
fn facade_quickstart_flow() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            p.segment_create(1, 64)?;
            let g = p.group_create_with_id(1 << 32)?;
            for r in 0..p.num_ranks() {
                p.group_add(g, r)?;
            }
            p.group_commit(g, Timeout::Ms(5000))?;
            let s = p.allreduce_f64(g, &[1.0], ReduceOp::Sum, Timeout::Ms(5000))?;
            Ok(s[0])
        })
        .join();
    for o in outs {
        assert_eq!(o.completed().unwrap(), 3.0);
    }
}

#[test]
fn lanczos_survives_node_failure_with_colocated_ranks() {
    // Two ranks per node; node 1 (ranks 2,3) dies by wall clock. The
    // neighbor-level checkpoints on node 2 carry the recovery.
    let layout = WorldLayout::new(6, 4);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()).with_ranks_per_node(2));
    let cfg = FtConfig::builder(layout)
        .max_iters(400)
        .checkpoint_every(50)
        .detector(ft_core::DetectorConfig { threads: 4, ..Default::default() })
        .abandon(Duration::from_secs(30))
        .build()
        .unwrap();
    let gen = Graphene::new(10, 6).with_nnn(-0.1);
    let app_cfg = Arc::new(FtLanczosConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        ..FtLanczosConfig::fixed_iters(Arc::new(gen))
    });
    let schedule =
        FaultSchedule::none().timed(Duration::from_millis(60), FaultAction::KillNode(NodeId(1)));
    let report =
        run_ft_job(&world, cfg, schedule, move |ctx| FtLanczos::new(ctx, Arc::clone(&app_cfg)));
    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![2, 3]);
    let s = report.worker_summaries();
    assert_eq!(s.len(), 6);
    for (_, x) in &s {
        assert_eq!(x.alphas, s[0].1.alphas, "all workers must agree bitwise");
        assert_eq!(x.iters, 400);
    }
    // Two rescues were activated for the two dead ranks.
    let rescues = report.completed().into_iter().filter(|r| r.role == Role::Rescue).count();
    assert_eq!(rescues, 2);
}

#[test]
fn heat_app_converges_through_failure() {
    let layout = WorldLayout::new(4, 2);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .max_iters(6000)
        .checkpoint_every(300)
        .abandon(Duration::from_secs(30))
        .build()
        .unwrap();
    let app_cfg = Arc::new(HeatConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        tol: 1e-5,
        ..HeatConfig::new(24, 24)
    });
    let schedule = FaultSchedule::none().timed(Duration::from_millis(80), FaultAction::KillRank(1));
    let report =
        run_ft_job(&world, cfg, schedule, move |ctx| FtHeat::new(ctx, Arc::clone(&app_cfg)));
    assert_eq!(report.killed(), vec![1]);
    let s = report.worker_summaries();
    assert_eq!(s.len(), 4);
    assert!(s[0].1.residual < 1e-5, "must converge, got {}", s[0].1.residual);
    for (_, x) in &s {
        assert_eq!(x.solution_norm, s[0].1.solution_norm);
    }
}

#[test]
fn failure_free_and_failed_heat_agree_on_the_physics() {
    // The solution norm is a whole-field fingerprint: a run with a failure
    // must land on the same converged field as a failure-free run.
    let run = |schedule: FaultSchedule| {
        let layout = WorldLayout::new(3, 2);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let cfg = FtConfig::builder(layout)
            .max_iters(6000)
            .checkpoint_every(400)
            .abandon(Duration::from_secs(30))
            .build()
            .unwrap();
        let app_cfg = Arc::new(HeatConfig {
            pfs: Some(Pfs::new(PfsConfig::instant())),
            tol: 1e-6,
            ..HeatConfig::new(16, 16)
        });
        let report =
            run_ft_job(&world, cfg, schedule, move |ctx| FtHeat::new(ctx, Arc::clone(&app_cfg)));
        let s = report.worker_summaries();
        assert_eq!(s.len(), 3);
        (s[0].1.iters, s[0].1.solution_norm)
    };
    let (clean_iters, clean_norm) = run(FaultSchedule::none());
    let (faulty_iters, faulty_norm) =
        run(FaultSchedule::none().timed(Duration::from_millis(50), FaultAction::KillRank(2)));
    assert_eq!(clean_norm, faulty_norm, "recovered run must land on the same field");
    assert_eq!(clean_iters, faulty_iters, "same convergence trajectory");
}
