//! # gaspi-ft — building fault-tolerant applications on a GASPI layer
//!
//! A production-quality Rust reproduction of *"Building a Fault Tolerant
//! Application Using the GASPI Communication Layer"* (Shahzad et al.,
//! CLUSTER 2015): self-healing parallel applications built from
//!
//! * a **simulated cluster** ([`cluster`]) — ranks as threads, an
//!   in-memory latency-modeled interconnect, and a fault plane for
//!   fail-stop and network failures;
//! * a **GASPI/GPI-2-style PGAS runtime** ([`gaspi`]) — segments,
//!   one-sided communication with notifications, groups and collectives,
//!   timeouts, the error state vector, and the paper's `proc_ping` /
//!   `proc_kill` extensions;
//! * a **fault-aware neighbor node-level checkpoint library**
//!   ([`checkpoint`]);
//! * the paper's **fault-tolerance machinery** ([`core`]) — the dedicated
//!   fault detector, one-sided failure acknowledgment, non-shrinking
//!   recovery with pre-allocated spare processes, and the application
//!   driver;
//! * a **distributed spMVM library** ([`sparse`]), **matrix generators**
//!   ([`matgen`]), and the **Lanczos eigensolver application**
//!   ([`solver`]).
//!
//! ## Quick start
//!
//! ```
//! use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld, Timeout};
//!
//! // Two ranks; rank 0 pings rank 1 (the paper's FD primitive).
//! let world = GaspiWorld::new(GaspiConfig::deterministic(2));
//! let outs = world
//!     .launch(|p| {
//!         if p.rank() == 0 {
//!             p.proc_ping(1, Timeout::Ms(1000))?;
//!         }
//!         Ok(p.rank())
//!     })
//!     .join();
//! assert_eq!(outs.len(), 2);
//! ```
//!
//! For the full fault-tolerant application flow (worker group + fault
//! detector + idle rescues + checkpoint/restart), see
//! [`core::run_ft_job`] and the `ft_lanczos` example.

pub use ft_checkpoint as checkpoint;
pub use ft_cluster as cluster;
pub use ft_core as core;
pub use ft_gaspi as gaspi;
pub use ft_matgen as matgen;
pub use ft_solver as solver;
pub use ft_sparse as sparse;

#[cfg(test)]
mod facade_tests {
    #[test]
    fn reexports_are_wired() {
        let topo = crate::cluster::Topology::one_per_node(4);
        assert_eq!(topo.num_nodes(), 4);
        let layout = crate::core::WorldLayout::new(3, 1);
        assert_eq!(layout.fd_rank(), 3);
    }
}
