//! The paper's demonstration application, end to end: a fault-tolerant
//! Lanczos eigensolver on a graphene tight-binding matrix, healing itself
//! through injected process failures — once per recovery strategy.
//!
//! For each [`StrategyKind`] two runs are performed — failure-free, then
//! with kills injected at fixed iterations — and the α/β histories are
//! compared: they match **bit for bit**, the strongest possible evidence
//! that detection, recovery, restore, and redo are correct. Selecting
//! the strategy is *pure configuration*: the application code is
//! identical in all six runs.
//!
//! Run: `cargo run --release --example ft_lanczos`

use std::sync::Arc;
use std::time::Instant;

use gaspi_ft::checkpoint::{Pfs, PfsConfig};
use gaspi_ft::cluster::FaultSchedule;
use gaspi_ft::core::{run_ft_job, EventKind, FtConfig, JobReport, StrategyKind, WorldLayout};
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld};
use gaspi_ft::matgen::graphene::Graphene;
use gaspi_ft::solver::ft_lanczos::{FtLanczos, FtLanczosConfig, LanczosSummary};

fn run(schedule: FaultSchedule, strategy: StrategyKind, label: &str) -> JobReport<LanczosSummary> {
    let workers = 8;
    let spares = 4; // 3 rescues + the fault detector
    let layout = WorldLayout::new(workers, spares);
    let world = GaspiWorld::new(GaspiConfig::new(layout.total()).with_seed(7));
    let cfg = FtConfig::builder(layout)
        .max_iters(300)
        .checkpoint_every(50)
        .abandon(std::time::Duration::from_secs(30))
        .strategy(strategy)
        .build()
        .expect("example config must validate");

    let gen = Graphene::new(48, 32).with_nnn(-0.1); // 3072 sites
    let app_cfg = Arc::new(FtLanczosConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        ..FtLanczosConfig::fixed_iters(Arc::new(gen))
    });

    println!("== [{}] {label} ==", strategy.name());
    let t0 = Instant::now();
    let report =
        run_ft_job(&world, cfg, schedule, move |ctx| FtLanczos::new(ctx, Arc::clone(&app_cfg)));
    println!("  wall time: {:?}", t0.elapsed());
    report
}

fn demo(strategy: StrategyKind) {
    // ---- failure-free baseline -------------------------------------
    let clean = run(FaultSchedule::none(), strategy, "failure-free run");
    let clean_s = clean.worker_summaries();
    let eigs = &clean_s[0].1.eigenvalues;
    println!(
        "  {} workers finished {} iterations; lowest eigenvalues: {:.6} {:.6} {:.6}",
        clean_s.len(),
        clean_s[0].1.iters,
        eigs[0],
        eigs[1],
        eigs[2]
    );

    // ---- run with two injected failures -----------------------------
    let schedule = FaultSchedule::none()
        .kill_rank_at_iteration(2, 130) // exit(-1) at iteration 130
        .kill_rank_at_iteration(5, 220);
    let faulty =
        run(schedule, strategy, "run with kills at iterations 130 (rank 2) and 220 (rank 5)");

    println!("  killed ranks: {:?}", faulty.killed());
    println!("  recovery timeline:");
    for e in faulty.events.snapshot() {
        match &e.kind {
            EventKind::KillFired { iter } => {
                println!("    {:>9.3?}  rank {} exits at iteration {iter}", e.t, e.rank)
            }
            EventKind::FdDetect { epoch, failed } => {
                println!("    {:>9.3?}  FD detects {failed:?} (epoch {epoch})", e.t)
            }
            EventKind::FdAck { epoch } => {
                println!("    {:>9.3?}  FD acknowledges epoch {epoch} to all healthy ranks", e.t)
            }
            EventKind::Activated { app_rank } => {
                println!(
                    "    {:>9.3?}  rank {} activated as rescue for app rank {app_rank}",
                    e.t, e.rank
                )
            }
            EventKind::GroupRebuilt { epoch } if e.rank == 0 => {
                println!("    {:>9.3?}  worker group rebuilt (epoch {epoch})", e.t)
            }
            EventKind::Restored { epoch, iter } if e.rank == 0 => {
                println!("    {:>9.3?}  state restored to iteration {iter} (epoch {epoch})", e.t)
            }
            EventKind::RedoComplete { iter, .. } if e.rank == 0 => {
                println!("    {:>9.3?}  redo complete, back at iteration {iter}", e.t)
            }
            _ => {}
        }
    }

    // ---- the punchline ----------------------------------------------
    let faulty_s = faulty.worker_summaries();
    assert_eq!(clean_s.len(), faulty_s.len(), "all app ranks must finish in both runs");
    let identical =
        clean_s[0].1.alphas == faulty_s[0].1.alphas && clean_s[0].1.betas == faulty_s[0].1.betas;
    println!(
        "\n[{}] α/β histories of failure-free vs recovered run: {}",
        strategy.name(),
        if identical { "IDENTICAL (bit for bit)" } else { "DIFFERENT (bug!)" }
    );
    assert!(identical);
    println!("lowest eigenvalue (both runs): {:.12}\n", faulty_s[0].1.eigenvalues[0]);
}

fn main() {
    for strategy in [StrategyKind::CheckpointRestart, StrategyKind::Abft, StrategyKind::Replicated]
    {
        demo(strategy);
    }
}
