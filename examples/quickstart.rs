//! Quickstart: the GASPI communication layer in five minutes.
//!
//! Launches a small simulated GASPI job and walks through the API pieces
//! the paper's fault-tolerance machinery is made of: segments, one-sided
//! `write_notify`, queues, groups/collectives, the timeout mechanism, the
//! error state vector, and the `proc_ping` extension.
//!
//! Run: `cargo run --example quickstart`

use gaspi_ft::gaspi::{
    bytes, GaspiConfig, GaspiError, GaspiResult, GaspiWorld, ProcState, ReduceOp, Timeout,
};

const SEG: u16 = 1;
const Q: u16 = 0;

fn main() -> GaspiResult<()> {
    let n = 4;
    let world = GaspiWorld::new(GaspiConfig::new(n));
    let fault = world.fault();

    let job = world.launch(move |p| {
        let me = p.rank();
        // 1. Segments: remotely accessible memory.
        p.segment_create(SEG, 256)?;

        // 2. A group over all ranks, committed collectively.
        let g = p.group_create_with_id(1 << 32)?;
        for r in 0..p.num_ranks() {
            p.group_add(g, r)?;
        }
        p.group_commit(g, Timeout::Ms(5000))?;
        p.barrier(g, Timeout::Ms(5000))?;

        // 3. One-sided write_notify into the right neighbor's segment.
        let next = (me + 1) % p.num_ranks();
        p.with_segment_mut(SEG, |b| bytes::put_u64(b, 0, u64::from(me) * 100))?;
        p.write_notify(SEG, 0, next, SEG, 64, 8, 5, 1, Q)?;
        p.wait(Q, Timeout::Ms(5000))?;

        // 4. Remote completion: wait for our own notification.
        let nid = p.notify_waitsome(SEG, 0, 16, Timeout::Ms(5000))?;
        p.notify_reset(SEG, nid)?;
        let got = p.with_segment(SEG, |b| bytes::get_u64(b, 64))?;
        let prev = (me + p.num_ranks() - 1) % p.num_ranks();
        assert_eq!(got, u64::from(prev) * 100);

        // 5. Collectives: a deterministic allreduce.
        let sum = p.allreduce_f64(g, &[f64::from(me) + 1.0], ReduceOp::Sum, Timeout::Ms(5000))?;
        assert_eq!(sum[0], 10.0); // 1+2+3+4

        // 6. The FT primitives: ping a healthy neighbor...
        p.proc_ping(next, Timeout::Ms(1000))?;
        assert_eq!(p.state_vec_get()[next as usize], ProcState::Healthy);
        Ok(me)
    });
    let outs = job.join();
    for (r, o) in outs.iter().enumerate() {
        println!("rank {r}: {o:?}");
    }

    // 7. ...and see what a *failed* process looks like from outside: kill
    // rank 3 and ping it from a fresh handle of rank 0.
    fault.kill_rank(3);
    let p0 = world.proc_handle(0);
    match p0.proc_ping(3, Timeout::Ms(1000)) {
        Err(GaspiError::RemoteBroken { rank }) => {
            println!("ping(3) after kill: GASPI_ERROR (rank {rank} broken) — as in paper §III");
        }
        other => println!("unexpected: {other:?}"),
    }
    assert_eq!(p0.state_vec_get()[3], ProcState::Corrupt);
    println!("state vector marks rank 3 CORRUPT");
    Ok(())
}
