//! The paper's `kill -9` experiment on the **process backend**: the same
//! fault-tolerant Lanczos eigensolver as the `ft_lanczos` example, but
//! every rank is a real OS process speaking GASPI over TCP, and the
//! failure is a genuine `SIGKILL` delivered by the supervisor while the
//! solve is in flight.
//!
//! Three runs, one punchline:
//!
//! 1. **in-memory baseline** — the simulator backend, failure-free;
//! 2. **process, failure-free** — same job across real rank processes;
//! 3. **process, SIGKILL** — a worker process is killed mid-solve; the
//!    detector notices, a spare is activated, the group rebuilds, state
//!    restores from neighbor checkpoints, and the job completes.
//!
//! All three α/β histories must match **bit for bit** — the transport
//! seam changes how bytes move and how processes die, never the numbers.
//!
//! Run: `cargo run --release --example process_lanczos`
//! (it re-executes itself as the rank children).
//!
//! Environment: `FT_PROC_KILL_MS` overrides the SIGKILL time (default:
//! half the measured failure-free process wall time).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gaspi_ft::cluster::{FaultAction, FaultSchedule};
use gaspi_ft::core::process::{run_supervisor, SupervisorConfig};
use gaspi_ft::core::{child_env, run_child, run_ft_job, FtConfig, ProcOutcome, WorldLayout};
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld, Timeout};
use gaspi_ft::matgen::graphene::Graphene;
use gaspi_ft::solver::ft_lanczos::{FtLanczos, FtLanczosConfig, LanczosSummary};

const WORKERS: u32 = 4;
const SPARES: u32 = 2; // one rescue + the fault detector
const VICTIM: u32 = 2;
const MAX_ITERS: u64 = 3000;
const CHECKPOINT_EVERY: u64 = 150;

/// The world every participant builds from scratch: supervisor
/// bookkeeping, the in-memory baseline, and each rank child must agree
/// bit for bit.
fn world_cfg() -> (FtConfig, GaspiConfig) {
    let layout = WorldLayout::new(WORKERS, SPARES);
    let ft = FtConfig::builder(layout)
        .max_iters(MAX_ITERS)
        .checkpoint_every(CHECKPOINT_EVERY)
        .abandon(Duration::from_secs(30))
        .detector(ft_core::DetectorConfig {
            scan_interval: Duration::from_millis(5),
            ping_timeout: Timeout::Ms(60),
            ack_timeout: Timeout::Ms(500),
            ..Default::default()
        })
        .build()
        .expect("example config must validate");
    let gaspi = GaspiConfig::deterministic(layout.total()).with_seed(7);
    (ft, gaspi)
}

fn app_cfg() -> Arc<FtLanczosConfig> {
    let gen = Graphene::new(32, 24).with_nnn(-0.1); // 1536 sites
    Arc::new(FtLanczosConfig::fixed_iters(Arc::new(gen)))
}

/// Wire format for a child's final summary: iters, then the α and β
/// histories as little-endian f64 — exactly the bits the parity check
/// compares.
fn encode_summary(s: &LanczosSummary) -> Vec<u8> {
    let mut v = Vec::with_capacity(24 + 8 * (s.alphas.len() + s.betas.len()));
    v.extend_from_slice(&s.iters.to_le_bytes());
    for arr in [&s.alphas, &s.betas] {
        v.extend_from_slice(&(arr.len() as u64).to_le_bytes());
        for x in arr {
            v.extend_from_slice(&x.to_le_bytes());
        }
    }
    v
}

fn decode_summary(b: &[u8]) -> Option<Summary> {
    fn u64_at(b: &[u8], at: &mut usize) -> Option<u64> {
        let bytes: [u8; 8] = b.get(*at..*at + 8)?.try_into().ok()?;
        *at += 8;
        Some(u64::from_le_bytes(bytes))
    }
    fn f64_vec(b: &[u8], at: &mut usize) -> Option<Vec<f64>> {
        let n = u64_at(b, at)? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f64::from_bits(u64_at(b, at)?));
        }
        Some(v)
    }
    let mut at = 0;
    let iters = u64_at(b, &mut at)?;
    let alphas = f64_vec(b, &mut at)?;
    let betas = f64_vec(b, &mut at)?;
    (at == b.len()).then_some((iters, alphas, betas))
}

/// Decoded child summary: iteration count plus the α and β histories.
type Summary = (u64, Vec<f64>, Vec<f64>);

/// Run one job over the process backend and return per-app-rank decoded
/// summaries plus the report.
fn run_process(
    schedule: FaultSchedule,
    label: &str,
) -> (Vec<(u32, Summary)>, gaspi_ft::core::process::ProcJobReport, Duration) {
    let (ft, _) = world_cfg();
    println!("== {label} ==");
    let t0 = Instant::now();
    let sup =
        SupervisorConfig::new(ft.layout.total(), schedule).with_deadline(Duration::from_secs(120));
    let report = run_supervisor(sup).expect("process job supervisor");
    let elapsed = t0.elapsed();
    println!("  wall time: {elapsed:?}");
    let summaries = report
        .worker_summaries()
        .into_iter()
        .map(|(app, bytes)| {
            let s = decode_summary(bytes)
                .unwrap_or_else(|| panic!("app rank {app}: malformed summary"));
            (app, s)
        })
        .collect();
    (summaries, report, elapsed)
}

fn main() {
    // ---- child hook: a supervised rank process diverts here ----------
    if let Some(env) = child_env() {
        let (ft, gaspi) = world_cfg();
        let cfg = app_cfg();
        std::process::exit(run_child(
            env,
            ft,
            gaspi,
            move |ctx| FtLanczos::new(ctx, Arc::clone(&cfg)),
            encode_summary,
        ));
    }

    // ---- 1. in-memory baseline --------------------------------------
    let (ft, gaspi) = world_cfg();
    println!("== in-memory baseline ({WORKERS} workers, simulator backend) ==");
    let t0 = Instant::now();
    let world = GaspiWorld::new(gaspi);
    let cfg = app_cfg();
    let baseline = run_ft_job(&world, ft, FaultSchedule::none(), move |ctx| {
        FtLanczos::new(ctx, Arc::clone(&cfg))
    });
    println!("  wall time: {:?}", t0.elapsed());
    let base_s = baseline.worker_summaries();
    assert_eq!(base_s.len(), WORKERS as usize, "baseline must complete every app rank");
    let (ref_alphas, ref_betas) = (&base_s[0].1.alphas, &base_s[0].1.betas);
    println!(
        "  {} workers x {} iterations; lowest eigenvalue {:.12}",
        base_s.len(),
        base_s[0].1.iters,
        base_s[0].1.eigenvalues[0]
    );

    // ---- 2. process backend, failure-free ---------------------------
    let (clean, _, clean_wall) = run_process(
        FaultSchedule::none(),
        "process backend, failure-free (real rank processes over TCP)",
    );
    assert_eq!(clean.len(), WORKERS as usize, "clean process run must complete every app rank");
    for (app, (_, alphas, betas)) in &clean {
        assert_eq!((alphas, betas), (ref_alphas, ref_betas), "app rank {app}: α/β mismatch");
    }
    println!("  α/β identical to in-memory baseline: yes (bit for bit)");

    // ---- 3. process backend, SIGKILL mid-solve ----------------------
    let kill_at = std::env::var("FT_PROC_KILL_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or_else(|| clean_wall / 2, Duration::from_millis);
    let schedule = FaultSchedule::none().timed(kill_at, FaultAction::KillRank(VICTIM));
    let (healed, report, _) =
        run_process(schedule, &format!("process backend, SIGKILL rank {VICTIM} at {kill_at:?}"));
    assert!(
        matches!(report.outcomes[VICTIM as usize], ProcOutcome::Killed { by_signal: true }),
        "victim must die by SIGKILL, got {:?}",
        report.outcomes[VICTIM as usize]
    );
    println!(
        "  victim SIGKILLed; {} FdDetect / {} GroupRebuilt / {} Restored events",
        report.events_matching("FdDetect").len(),
        report.events_matching("GroupRebuilt").len(),
        report.events_matching("Restored").len(),
    );
    assert_eq!(healed.len(), WORKERS as usize, "healed run must complete every app rank");
    for (app, (_, alphas, betas)) in &healed {
        assert_eq!((alphas, betas), (ref_alphas, ref_betas), "app rank {app}: α/β mismatch");
    }

    // ---- the punchline ----------------------------------------------
    println!(
        "\nα/β histories — in-memory vs process vs process+SIGKILL: \
         IDENTICAL (bit for bit) across {} real rank processes",
        world_cfg().0.layout.total()
    );
    println!("lowest eigenvalue (all runs): {:.12}", base_s[0].1.eigenvalues[0]);
}
