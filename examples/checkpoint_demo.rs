//! The neighbor node-level checkpoint library by itself (paper §IV-C and
//! Fig. 2): local write, asynchronous neighbor copy, node failure, and
//! the three-tier restore resolution (local → neighbor → PFS).
//!
//! Run: `cargo run --example checkpoint_demo`

use std::sync::Arc;
use std::time::Duration;

use gaspi_ft::checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Pfs, PfsConfig};
use gaspi_ft::cluster::NodeId;
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld};

fn main() {
    let world = GaspiWorld::new(GaspiConfig::new(4)); // 4 ranks, 1 per node
    let fault = world.fault();
    let pfs = Pfs::new(PfsConfig::default());

    // Rank 1 checkpoints every "iteration"; every 2nd version also goes to
    // the (slow) PFS tier.
    let p1 = world.proc_handle(1);
    let cfg = CheckpointerConfig::builder(7)
        .pfs_every(2)
        .keep_versions(4) // keep all four so the async copies can't race pruning
        .build()
        .expect("valid config");
    let ck1 = Checkpointer::new(&p1, cfg, Some(Arc::clone(&pfs)));
    println!("rank 1 writes checkpoints; its neighbor ring partner is {:?}", ck1.neighbor_node());

    for version in 1..=4u64 {
        // 64 KiB of state, of which only the last KiB changes per version:
        // the incremental pipeline rewrites (and replicates) only the
        // dirty chunks plus a manifest.
        let mut payload = vec![0xABu8; 1 << 16];
        payload[(1 << 16) - 1024..].fill(version as u8);
        let t0 = std::time::Instant::now();
        ck1.commit(version, payload, CopyPolicy::Replicate);
        println!(
            "  v{version}: local commit returned in {:?} (replication continues in background)",
            t0.elapsed()
        );
    }
    assert!(ck1.drain(Duration::from_secs(10)), "replication must settle");
    println!(
        "  background copies done: {} ok, {} failed; PFS holds {} blobs",
        ck1.copies_done.load(std::sync::atomic::Ordering::Relaxed),
        ck1.copy_failures.load(std::sync::atomic::Ordering::Relaxed),
        pfs.blobs()
    );
    let st = ck1.stats();
    println!(
        "  incremental pipeline: {} full + {} incremental commits, {} chunk bytes \
for {} logical bytes (dedup ratio {:.3})",
        st.full_commits,
        st.incremental_commits,
        st.chunk_bytes,
        st.bytes_local,
        st.dedup_ratio()
    );

    // Node 1 dies — its local checkpoints are gone.
    fault.kill_node(NodeId(1));
    println!("\nnode 1 killed: local checkpoints wiped");

    // A rescue on rank 3 adopts rank 1's state.
    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, CheckpointerConfig::for_tag(7), Some(Arc::clone(&pfs)));
    ck3.refresh_failed(&[1]);
    let r = ck3.restore_latest(1, Duration::from_secs(5)).hit().expect("restore");
    println!(
        "rescue on rank 3 restored v{} ({} bytes) from {:?}",
        r.version,
        r.data.len(),
        r.provenance
    );
    assert_eq!(r.version, 4);

    // Now kill the replica holder too: only the PFS can serve — and only
    // the versions that were copied there (every 2nd).
    fault.kill_node(NodeId(2));
    ck3.refresh_failed(&[1, 2]);
    let r = ck3.restore_latest(1, Duration::from_secs(5)).hit().expect("PFS restore");
    println!(
        "after the replica node died as well: restored v{} from {:?} (every-2nd-version tier)",
        r.version, r.provenance
    );
    assert_eq!(r.version, 4); // v4 was a PFS version (4 % 2 == 0)
    println!("\nthree-tier resolution works: local → neighbor → PFS, exactly as in paper §IV-C");
}
