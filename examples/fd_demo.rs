//! Fault-detection mechanics, in isolation.
//!
//! Shows the three detector designs the paper discusses (§IV-A):
//! the dedicated FD process with one-sided pings (chosen), the
//! ping-based all-to-all, and the neighbor-level ring (both rejected),
//! plus the false-positive case where a *network* failure makes a healthy
//! process look dead.
//!
//! Run: `cargo run --example fd_demo`

use std::time::{Duration, Instant};

use gaspi_ft::cluster::Rank;
use gaspi_ft::core::baselines::{AllToAllDetector, InlineDetector, NeighborRingDetector};
use gaspi_ft::core::detector::glo_health_chk;
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld, Timeout};

fn main() {
    let n: u32 = 16;
    let world = GaspiWorld::new(GaspiConfig::new(n));
    let fault = world.fault();
    let fd = world.proc_handle(n - 1);
    let targets: Vec<Rank> = (0..n - 1).collect();

    // ---- dedicated FD: one ping scan over healthy ranks --------------
    let t0 = Instant::now();
    let failed = glo_health_chk(&fd, &targets, Timeout::Ms(500), 1);
    println!(
        "scan over {} healthy ranks: {:?} ({:?}; paper: ~1 ms/process on 256 nodes)",
        targets.len(),
        failed,
        t0.elapsed()
    );

    // ---- kill two ranks; sequential vs threaded scan ------------------
    fault.kill_rank(3);
    fault.kill_rank(11);
    let t0 = Instant::now();
    let seq = glo_health_chk(&fd, &targets, Timeout::Ms(500), 1);
    let seq_t = t0.elapsed();
    let t0 = Instant::now();
    let par = glo_health_chk(&fd, &targets, Timeout::Ms(500), 8);
    let par_t = t0.elapsed();
    assert_eq!(seq, par);
    println!("after kill(3), kill(11):");
    println!("  sequential scan: {seq:?} in {seq_t:?}");
    println!("  threaded scan (8 ping threads): {par:?} in {par_t:?}");

    // ---- false positive: break the link, process stays alive ----------
    fault.break_link_directed(n - 1, 5);
    let suspected = glo_health_chk(&fd, &targets, Timeout::Ms(500), 1);
    println!(
        "after breaking FD→5 link only: suspected {suspected:?} (rank 5 is alive! paper §IV-A-a)"
    );
    assert!(suspected.contains(&5));
    // The recovery protocol resolves this with proc_kill. Note *who*
    // kills: the FD's own link to 5 is broken, so per Listing 2 every
    // healthy process in the rebuilt group enforces the kill — any one of
    // them with an intact link suffices.
    let w0 = world.proc_handle(0);
    w0.proc_kill(5, Timeout::Ms(1000)).unwrap();
    assert!(!fault.is_alive(5));
    println!(
        "proc_kill(5) from a worker enforced death — the false positive cannot corrupt the program"
    );

    // ---- the rejected alternatives ------------------------------------
    let peers: Vec<Rank> = (1..n - 1).collect();
    let mut a2a = AllToAllDetector::new(peers.clone(), Duration::ZERO, Timeout::Ms(300));
    let mut found = a2a.tick(&w0);
    found.sort_unstable();
    println!(
        "\nall-to-all from a *worker*: {found:?} in {:?} — this time is stolen from computation",
        a2a.time_spent()
    );
    let mut ring = NeighborRingDetector::new(0, peers, Duration::ZERO, Timeout::Ms(300));
    let mut found = ring.tick(&w0);
    found.sort_unstable();
    println!(
        "neighbor-ring from rank 0: {found:?} (escalations: {}) in {:?}",
        ring.escalations,
        ring.time_spent()
    );
    println!("\nthe dedicated FD costs the workers nothing — that is the paper's design point");
}
