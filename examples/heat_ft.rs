//! A second fault-tolerant application: a 2D heat/Poisson solve that
//! survives a whole-node failure.
//!
//! "The concept can be applied to other applications … as well" (paper
//! §I): same driver, same fault detector, same checkpoint library —
//! different physics.
//!
//! Run: `cargo run --release --example heat_ft`

use std::sync::Arc;
use std::time::Duration;

use gaspi_ft::checkpoint::{Pfs, PfsConfig};
use gaspi_ft::cluster::{FaultAction, FaultSchedule, NodeId};
use gaspi_ft::core::{run_ft_job, FtConfig, WorldLayout};
use gaspi_ft::gaspi::{GaspiConfig, GaspiWorld};
use gaspi_ft::solver::heat::{FtHeat, HeatConfig};

fn main() {
    let layout = WorldLayout::new(6, 3);
    // Two ranks per node: killing node 1 takes out ranks 2 and 3 at once.
    let world = GaspiWorld::new(GaspiConfig::new(layout.total()).with_ranks_per_node(2));
    // Jacobi contracts slowly (rate ≈ 1 − O(1/n²)); a 32×32 grid reaches
    // 1e-6 within a few thousand sweeps.
    let cfg = FtConfig::builder(layout)
        .max_iters(8000)
        .checkpoint_every(250)
        .abandon(Duration::from_secs(30))
        .build()
        .unwrap();

    let app_cfg = Arc::new(HeatConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        tol: 1e-6,
        ..HeatConfig::new(32, 32)
    });

    let schedule =
        FaultSchedule::none().timed(Duration::from_millis(150), FaultAction::KillNode(NodeId(1)));

    let report =
        run_ft_job(&world, cfg, schedule, move |ctx| FtHeat::new(ctx, Arc::clone(&app_cfg)));

    println!("killed ranks: {:?} (node 1 = ranks 2 and 3)", report.killed());
    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), 6, "all six app ranks must finish");
    let s = summaries[0].1;
    assert!(s.residual < 1e-6, "must converge, residual {}", s.residual);
    println!(
        "converged after {} iterations; residual {:.3e}; solution norm {:.9}",
        s.iters, s.residual, s.solution_norm
    );
    for (app, x) in &summaries {
        assert_eq!(x.solution_norm, s.solution_norm, "app rank {app} disagrees on the solution");
    }
    println!("all workers agree on the solution — recovery preserved the field exactly");
}
