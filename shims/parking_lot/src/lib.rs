//! Vendored stand-in for the subset of `parking_lot` used by this
//! workspace: `Mutex`, `RwLock`, and `Condvar` without lock poisoning.
//!
//! The simulation kills ranks by unwinding their threads (see
//! `ft_cluster::RankKilled`), which with `std::sync` primitives would
//! poison every lock the victim held. Like the real `parking_lot`, these
//! wrappers ignore poisoning entirely, so survivors keep working — that
//! behavior is load-bearing, not a convenience.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive; `lock` never fails and never observes
/// poison.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the underlying std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

/// Reader-writer lock; like [`Mutex`], never observes poison.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified (spurious wakeups possible, as usual).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1; // must not panic on poison
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
