//! Vendored stand-in for the subset of `crossbeam` used by this
//! workspace: `channel::{unbounded, Sender, Receiver}`, backed by
//! `std::sync::mpsc`.

/// Multi-producer channels (the only crossbeam module this workspace
/// uses).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel. Clonable and `Send`.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Queue `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block for the next value; fails when every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap()).join().unwrap();
            tx.send(9).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![7, 9]);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
