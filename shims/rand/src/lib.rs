//! Vendored stand-in for the subset of `rand` used by this workspace:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, which the simulated transport relies on for
//! reproducible runs.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform `f64` in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + self.gen::<f64>() * (high - low)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        // The stream actually spreads over the interval.
        assert!(lo < 0.05 && hi > 0.95);
    }
}
