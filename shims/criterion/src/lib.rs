//! Vendored stand-in for the subset of `criterion` used by this
//! workspace's micro-benchmarks. It keeps the real crate's API shape
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) but replaces the
//! statistical machinery with a simple timed loop and plain-text output:
//! a fixed warm-up iteration, then `sample_size` timed iterations whose
//! mean is printed per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: u64,
    /// Mean wall time of one iteration, filled in by `iter`/`iter_custom`.
    mean: Duration,
}

impl Bencher {
    fn new(sample_size: u64) -> Self {
        Self { sample_size, mean: Duration::ZERO }
    }

    /// Time `routine` over `sample_size` iterations (after one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let n = self.sample_size.max(1);
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.mean = t0.elapsed() / n as u32;
    }

    /// Like `iter`, but `routine` measures itself: it receives an
    /// iteration count and returns the total elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let n = self.sample_size.max(1);
        let total = routine(n);
        self.mean = total / n as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver (plain-text reporting only).
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this shim times a fixed number of
    /// iterations rather than a wall-clock budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark closure and print its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b);
        println!("{:<50} {}", name, fmt_duration(b.mean));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b);
        println!("{:<50} {}", format!("{}/{}", self.name, id.label), fmt_duration(b.mean));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b, input);
        println!("{:<50} {}", format!("{}/{}", self.name, id.label), fmt_duration(b.mean));
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures() {
        let mut b = Bencher::new(3);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 samples
    }

    #[test]
    fn bencher_iter_custom_divides() {
        let mut b = Bencher::new(4);
        b.iter_custom(|iters| Duration::from_millis(iters * 2));
        assert_eq!(b.mean, Duration::from_millis(2));
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(1).measurement_time(Duration::from_secs(1));
        g.bench_with_input(BenchmarkId::new("f", 8), &8u32, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        g.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| ()));
        g.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }
}
