//! Vendored stand-in for the subset of `proptest` used by this
//! workspace: the `proptest!` macro, integer/float range strategies,
//! `any::<T>()`, `proptest::collection::vec`, tuple strategies, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike the real proptest there is no shrinking and no persisted
//! regression corpus: each test draws `cases` inputs from a generator
//! seeded deterministically from the test's name, so failures reproduce
//! run to run. The strategy combinators keep the real crate's paths and
//! shapes so the test sources compile unchanged.

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategies this shim
    //! provides.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy for `any::<T>()` — the full value domain of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self { _marker: std::marker::PhantomData }
        }
    }

    /// Types with a whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly finite "interesting" doubles: mix raw-bit specials
            // with uniform magnitudes so round-trip tests see NaN-free
            // but wide-ranging inputs.
            let raw = f64::from_bits(rng.next_u64());
            if raw.is_finite() {
                raw
            } else {
                (rng.unit_f64() - 0.5) * 2e12
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let raw = f32::from_bits((rng.next_u64() >> 32) as u32);
            if raw.is_finite() {
                raw
            } else {
                ((rng.unit_f64() - 0.5) * 2e6) as f32
            }
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Acceptable length specifications for [`vec`]: a fixed `usize` or
    /// a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Convert to `(min, max_exclusive)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for i32 {
        fn bounds(&self) -> (usize, usize) {
            (*self as usize, *self as usize + 1)
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` strategy with lengths drawn from `size` (fixed or range).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec length range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic runner state: RNG, config, and case errors.

    /// Per-test configuration (subset of the real crate's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Build a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// Deterministic xoshiro256++ generator seeded from the test name.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed the stream from `name` (FNV-1a, then SplitMix64 expanded)
        /// so every run of the same test replays the same cases.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`…).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Reject the current case unless `cond` holds (real proptest's
/// `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}: {}", l, format!($($fmt)+));
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` drawing `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let max_rejects = cfg.cases.saturating_mul(16).max(256);
            while passed < cfg.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections (last: {})",
                                stringify!($name), why
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), passed, msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -2i64..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2..9).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec lengths respect fixed and ranged sizes; assume rejects.
        #[test]
        fn vec_and_assume(
            fixed in crate::collection::vec(any::<u8>(), 5),
            ranged in crate::collection::vec(0usize..10, 1..4),
            flag in any::<bool>(),
        ) {
            prop_assume!(ranged[0] < 10); // always true: exercises the path
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((1..4).contains(&ranged.len()));
            prop_assert_ne!(ranged.len(), 0, "length {} flag {}", ranged.len(), flag);
        }

        /// Tuple strategies thread through.
        #[test]
        fn tuples(pair in (0u32..4, crate::collection::vec(any::<u16>(), 0..3))) {
            let (x, v) = pair;
            prop_assert!(x < 4 && v.len() < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
