//! The unified counter registry: one snapshot over all the counter
//! families the stack maintains.
//!
//! Counters live where they are incremented — transport counters in
//! [`ft_cluster::Metrics`], GASPI-layer counters in
//! [`ft_gaspi::GaspiMetrics`], checkpoint-tier counters in each
//! [`ft_checkpoint::Checkpointer`], halo-overlap counters in each
//! [`ft_sparse::SpmvComm`] — and a [`TelemetrySnapshot`] is the
//! point-in-time readout across all of them. Harnesses take one snapshot
//! before and one after a run and diff with [`TelemetrySnapshot::since`].

use ft_checkpoint::CkptStats;
use ft_cluster::MetricsSnapshot;
use ft_gaspi::{GaspiSnapshot, GaspiWorld};
use ft_sparse::{HaloStats, KernelStats};

use crate::json::Json;

/// One point-in-time view over every counter family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Transport-level counters (messages, bytes, pings).
    pub transport: MetricsSnapshot,
    /// GASPI-layer counters (notifications, queue flushes, resumes).
    pub gaspi: GaspiSnapshot,
    /// Checkpoint-tier counters (writes, copies, spills, restores).
    /// Zero unless filled in with [`TelemetrySnapshot::with_ckpt`]:
    /// checkpointers are per-rank objects, so their stats arrive merged
    /// through application summaries, not through the world.
    pub ckpt: CkptStats,
    /// spMVM comm/compute-overlap counters (posts, exchanges, overlap
    /// and stall time). Zero unless filled in with
    /// [`TelemetrySnapshot::with_spmv_overlap`]: like the checkpoint
    /// tier, [`ft_sparse::SpmvComm`] is a per-rank object whose stats
    /// arrive merged through application summaries.
    pub spmv_overlap: HaloStats,
    /// Raw spMVM kernel counters (products, kernel time, flops). Zero
    /// unless filled in with [`TelemetrySnapshot::with_spmv_kernel`]:
    /// harnesses time their own kernel sections.
    pub spmv_kernel: KernelStats,
}

impl TelemetrySnapshot {
    /// Snapshot the world-held counter families (transport + GASPI).
    pub fn of_world(world: &GaspiWorld) -> Self {
        Self {
            transport: world.transport().metrics().snapshot(),
            gaspi: world.gaspi_metrics().snapshot(),
            ckpt: CkptStats::default(),
            spmv_overlap: HaloStats::default(),
            spmv_kernel: KernelStats::default(),
        }
    }

    /// Attach the checkpoint-tier counters (merged across ranks).
    pub fn with_ckpt(mut self, ckpt: CkptStats) -> Self {
        self.ckpt = ckpt;
        self
    }

    /// Attach the spMVM overlap counters (merged across ranks).
    pub fn with_spmv_overlap(mut self, halo: HaloStats) -> Self {
        self.spmv_overlap = halo;
        self
    }

    /// Attach the raw spMVM kernel counters (merged across ranks).
    pub fn with_spmv_kernel(mut self, kernel: KernelStats) -> Self {
        self.spmv_kernel = kernel;
        self
    }

    /// Family-wise counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            transport: self.transport.since(&earlier.transport),
            gaspi: self.gaspi.since(&earlier.gaspi),
            ckpt: self.ckpt.since(&earlier.ckpt),
            spmv_overlap: self.spmv_overlap.since(&earlier.spmv_overlap),
            spmv_kernel: self.spmv_kernel.since(&earlier.spmv_kernel),
        }
    }

    /// The snapshot as a JSON object with one sub-object per family.
    pub fn to_json(&self) -> Json {
        let t = &self.transport;
        let g = &self.gaspi;
        let c = &self.ckpt;
        let s = &self.spmv_overlap;
        let k = &self.spmv_kernel;
        Json::obj([
            (
                "transport",
                Json::obj([
                    ("msg_posted", Json::num_u64(t.msg_posted)),
                    ("bytes_posted", Json::num_u64(t.bytes_posted)),
                    ("msg_delivered", Json::num_u64(t.msg_delivered)),
                    ("msg_broken", Json::num_u64(t.msg_broken)),
                    ("msg_dropped_dead_src", Json::num_u64(t.msg_dropped_dead_src)),
                    ("pings", Json::num_u64(t.pings)),
                    ("ping_errors", Json::num_u64(t.ping_errors)),
                ]),
            ),
            (
                "gaspi",
                Json::obj([
                    ("notifications_posted", Json::num_u64(g.notifications_posted)),
                    ("queue_flush_waits", Json::num_u64(g.queue_flush_waits)),
                    ("queue_flush_wait_ns", Json::num_u64(g.queue_flush_wait_ns)),
                    ("barrier_resumes", Json::num_u64(g.barrier_resumes)),
                    ("allreduce_resumes", Json::num_u64(g.allreduce_resumes)),
                    ("group_commits", Json::num_u64(g.group_commits)),
                ]),
            ),
            (
                "checkpoint",
                Json::obj([
                    ("local_writes", Json::num_u64(c.local_writes)),
                    ("bytes_local", Json::num_u64(c.bytes_local)),
                    ("full_commits", Json::num_u64(c.full_commits)),
                    ("incremental_commits", Json::num_u64(c.incremental_commits)),
                    ("chunks_written", Json::num_u64(c.chunks_written)),
                    ("chunk_bytes", Json::num_u64(c.chunk_bytes)),
                    ("dedup_bytes", Json::num_u64(c.dedup_bytes)),
                    ("manifest_bytes", Json::num_u64(c.manifest_bytes)),
                    ("dedup_ratio", Json::Num(c.dedup_ratio())),
                    ("neighbor_copies", Json::num_u64(c.neighbor_copies)),
                    ("copy_failures", Json::num_u64(c.copy_failures)),
                    ("copy_bytes", Json::num_u64(c.copy_bytes)),
                    ("pfs_spills", Json::num_u64(c.pfs_spills)),
                    ("restores_local", Json::num_u64(c.restores_local)),
                    ("restores_neighbor", Json::num_u64(c.restores_neighbor)),
                    ("restores_pfs", Json::num_u64(c.restores_pfs)),
                    ("restore_bytes", Json::num_u64(c.restore_bytes)),
                    ("restore_gaps", Json::num_u64(c.restore_gaps)),
                    ("checksum_failures", Json::num_u64(c.checksum_failures)),
                ]),
            ),
            (
                "spmv_overlap",
                Json::obj([
                    ("exchanges", Json::num_u64(s.exchanges)),
                    ("posts", Json::num_u64(s.posts)),
                    ("stale_drops", Json::num_u64(s.stale_drops)),
                    ("overlap_ns", Json::num_u64(s.overlap_ns)),
                    ("wait_stall_ns", Json::num_u64(s.wait_stall_ns)),
                    ("overlap_efficiency", Json::Num(s.overlap_efficiency())),
                ]),
            ),
            (
                "spmv_kernel",
                Json::obj([
                    ("spmvs", Json::num_u64(k.spmvs)),
                    ("kernel_ns", Json::num_u64(k.kernel_ns)),
                    ("flops", Json::num_u64(k.flops)),
                    ("gflops", Json::Num(k.gflops())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_every_family() {
        let a = TelemetrySnapshot {
            transport: MetricsSnapshot { msg_posted: 10, ..Default::default() },
            gaspi: GaspiSnapshot { notifications_posted: 4, ..Default::default() },
            ckpt: CkptStats { local_writes: 3, ..Default::default() },
            spmv_overlap: HaloStats { exchanges: 9, overlap_ns: 500, ..Default::default() },
            spmv_kernel: KernelStats { spmvs: 20, kernel_ns: 900, flops: 4000 },
        };
        let b = TelemetrySnapshot {
            transport: MetricsSnapshot { msg_posted: 7, ..Default::default() },
            gaspi: GaspiSnapshot { notifications_posted: 1, ..Default::default() },
            ckpt: CkptStats { local_writes: 1, ..Default::default() },
            spmv_overlap: HaloStats { exchanges: 4, overlap_ns: 100, ..Default::default() },
            spmv_kernel: KernelStats { spmvs: 5, kernel_ns: 400, flops: 1000 },
        };
        let d = a.since(&b);
        assert_eq!(d.transport.msg_posted, 3);
        assert_eq!(d.gaspi.notifications_posted, 3);
        assert_eq!(d.ckpt.local_writes, 2);
        assert_eq!(d.spmv_overlap.exchanges, 5);
        assert_eq!(d.spmv_overlap.overlap_ns, 400);
        assert_eq!(d.spmv_kernel.spmvs, 15);
        assert_eq!(d.spmv_kernel.kernel_ns, 500);
        assert_eq!(d.spmv_kernel.flops, 3000);
        assert_eq!(d.spmv_kernel.gflops(), 6.0);
    }

    #[test]
    fn json_has_all_five_families() {
        let j = TelemetrySnapshot::default().to_json();
        for family in ["transport", "gaspi", "checkpoint", "spmv_overlap", "spmv_kernel"] {
            assert!(j.get(family).is_some(), "missing {family}");
        }
        for key in ["spmvs", "kernel_ns", "flops"] {
            assert_eq!(
                j.get("spmv_kernel").and_then(|k| k.get(key)).and_then(Json::as_u64),
                Some(0),
                "missing spmv_kernel.{key}"
            );
        }
        let g = j.get("spmv_kernel").and_then(|k| k.get("gflops"));
        assert!(matches!(g, Some(Json::Num(v)) if *v == 0.0));
        assert_eq!(
            j.get("gaspi").and_then(|g| g.get("group_commits")).and_then(Json::as_u64),
            Some(0)
        );
        // The incremental-pipeline counters are reported.
        for key in ["chunks_written", "chunk_bytes", "dedup_bytes", "manifest_bytes", "copy_bytes"]
        {
            assert_eq!(
                j.get("checkpoint").and_then(|c| c.get(key)).and_then(Json::as_u64),
                Some(0),
                "missing checkpoint.{key}"
            );
        }
        let ratio = j.get("checkpoint").and_then(|c| c.get("dedup_ratio"));
        assert!(matches!(ratio, Some(Json::Num(v)) if *v == 1.0));
        // An idle snapshot reports perfect (vacuous) overlap.
        let eff = j.get("spmv_overlap").and_then(|s| s.get("overlap_efficiency"));
        assert!(matches!(eff, Some(Json::Num(v)) if *v == 1.0));
    }
}
