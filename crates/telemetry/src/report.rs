//! The overhead-decomposition reporter: from an [`EventLog`] to the
//! paper's Fig. 4 / Table I quantities.
//!
//! The paper names three overhead factors per failure (§VI): **OHF1**,
//! failure detection and acknowledgment; **OHF2**, re-building the worker
//! group; **OHF3**, re-initializing the application from the last
//! consistent checkpoint. On top of those comes the **redo time** — the
//! recomputation of work lost since that checkpoint. Everything else is
//! computation (including checkpoint writes, which the paper measures as
//! negligible).
//!
//! [`OverheadReport::from_log`] reconstructs these per recovery epoch
//! from the event stream the driver, detector and recovery path record:
//!
//! ```text
//! KillFired .. FdDetect/FdAck .. FailureSignal .. GroupRebuilt .. Restored .. RedoComplete
//! |<-------------- OHF1 -------------->|<-- OHF2 -->|<-- OHF3 -->|<-- redo -->|
//! ```
//!
//! with the kill instant taken as the latest `KillFired` at or before the
//! epoch's acknowledgment (timed kills fire between events; the FD scan
//! that caught them upper-bounds the moment).

use std::time::Duration;

use ft_core::{Event, EventKind, EventLog};

use crate::counters::TelemetrySnapshot;
use crate::json::Json;

/// Schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "gaspi-ft/overhead-report/v1";

/// The reconstructed timeline of one recovery epoch. All instants are on
/// the job clock (time since the event log was created).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochTimeline {
    /// Recovery epoch (1 = first failure).
    pub epoch: u64,
    /// Failures the FD detected in this epoch.
    pub failures: usize,
    /// The (upper-bounded) kill instant.
    pub t_kill: Duration,
    /// When the FD finished acknowledging the failure.
    pub t_ack: Duration,
    /// When the last worker observed the failure signal.
    pub t_signal: Duration,
    /// When the worker group was rebuilt (clamped into
    /// `[t_signal, t_restored]`; equals `t_signal` if no `GroupRebuilt`
    /// event was recorded).
    pub t_rebuilt: Duration,
    /// When the last worker finished restoring.
    pub t_restored: Duration,
    /// When the redo work was recomputed.
    pub t_redo: Duration,
}

impl EpochTimeline {
    /// OHF1: failure detection and acknowledgment.
    pub fn detect(&self) -> Duration {
        self.t_signal.saturating_sub(self.t_kill)
    }

    /// OHF2: re-building the worker group.
    pub fn rebuild(&self) -> Duration {
        self.t_rebuilt.saturating_sub(self.t_signal)
    }

    /// OHF3: re-initializing from the last consistent checkpoint.
    pub fn restore(&self) -> Duration {
        self.t_restored.saturating_sub(self.t_rebuilt)
    }

    /// OHF2 + OHF3 — Fig. 4's "re-initialize" bar segment.
    pub fn reinit(&self) -> Duration {
        self.t_restored.saturating_sub(self.t_signal)
    }

    /// Redo-work time.
    pub fn redo(&self) -> Duration {
        self.t_redo.saturating_sub(self.t_restored)
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("epoch", Json::num_u64(self.epoch)),
            ("failures", Json::num_u64(self.failures as u64)),
            ("t_kill_s", Json::Num(self.t_kill.as_secs_f64())),
            ("t_ack_s", Json::Num(self.t_ack.as_secs_f64())),
            ("t_signal_s", Json::Num(self.t_signal.as_secs_f64())),
            ("t_rebuilt_s", Json::Num(self.t_rebuilt.as_secs_f64())),
            ("t_restored_s", Json::Num(self.t_restored.as_secs_f64())),
            ("t_redo_s", Json::Num(self.t_redo.as_secs_f64())),
            ("ohf1_s", Json::Num(self.detect().as_secs_f64())),
            ("ohf2_s", Json::Num(self.rebuild().as_secs_f64())),
            ("ohf3_s", Json::Num(self.restore().as_secs_f64())),
            ("redo_s", Json::Num(self.redo().as_secs_f64())),
        ])
    }
}

/// FD ping-scan statistics over the run (the paper's "Avg. ping scan
/// time", Table I). Mean/min/max are over *failure-free* scans only, as
/// in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Total scans performed (including those that found failures).
    pub scans: u64,
    /// Failure-free scans among them.
    pub failure_free: u64,
    /// Mean failure-free scan duration.
    pub mean: Duration,
    /// Shortest failure-free scan.
    pub min: Duration,
    /// Longest failure-free scan.
    pub max: Duration,
}

impl ScanStats {
    fn to_json(self) -> Json {
        Json::obj([
            ("scans", Json::num_u64(self.scans)),
            ("failure_free", Json::num_u64(self.failure_free)),
            ("mean_s", Json::Num(self.mean.as_secs_f64())),
            ("min_s", Json::Num(self.min.as_secs_f64())),
            ("max_s", Json::Num(self.max.as_secs_f64())),
        ])
    }
}

/// The paper's overhead decomposition for one job run.
#[derive(Debug, Clone, Default)]
pub struct OverheadReport {
    /// Total wall time (job start → last worker finished).
    pub total: Duration,
    /// Σ OHF1 over epochs.
    pub detect: Duration,
    /// Σ (OHF2 + OHF3) over epochs.
    pub reinit: Duration,
    /// Σ redo time over epochs.
    pub redo: Duration,
    /// Remainder: pure computation (incl. checkpoint writes).
    pub compute: Duration,
    /// Failures detected in total.
    pub failures: usize,
    /// Per-epoch recovery timelines, ascending by epoch.
    pub epochs: Vec<EpochTimeline>,
    /// FD scan statistics, if any scan was recorded.
    pub scan: Option<ScanStats>,
    /// The FD itself joined the workers (paper restriction 2).
    pub fd_promoted: bool,
    /// Shadow-detector takeovers observed (paper §VIII redundancy).
    pub fd_takeovers: usize,
    /// Failures exceeded the spare pool (paper restriction 1).
    pub capacity_exhausted: bool,
    /// Counter registry deltas for the run, if the harness attached them.
    pub counters: Option<TelemetrySnapshot>,
}

impl OverheadReport {
    /// Decompose a job's event log.
    pub fn from_log(log: &EventLog) -> Self {
        Self::from_events(&log.snapshot())
    }

    /// Decompose an already-snapshotted event stream.
    pub fn from_events(ev: &[Event]) -> Self {
        let total = ev
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finished { .. }))
            .map(|e| e.t)
            .max()
            .unwrap_or_default();

        let mut epoch_ids: Vec<u64> = ev
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FdDetect { epoch, .. } => Some(epoch),
                _ => None,
            })
            .collect();
        epoch_ids.sort_unstable();
        epoch_ids.dedup();

        let max_t = |pred: &dyn Fn(&EventKind) -> bool| {
            ev.iter().filter(|x| pred(&x.kind)).map(|x| x.t).max()
        };

        let mut epochs = Vec::with_capacity(epoch_ids.len());
        let mut failures = 0usize;
        for &e in &epoch_ids {
            let t_ack = max_t(&|k| matches!(*k, EventKind::FdAck { epoch } if epoch == e))
                .unwrap_or_default();
            let t_kill = ev
                .iter()
                .filter(|x| matches!(x.kind, EventKind::KillFired { .. }) && x.t <= t_ack)
                .map(|x| x.t)
                .max()
                .unwrap_or(t_ack);
            let t_signal =
                max_t(&|k| matches!(*k, EventKind::FailureSignal { epoch } if epoch == e))
                    .unwrap_or(t_ack);
            let t_restored =
                max_t(&|k| matches!(*k, EventKind::Restored { epoch, .. } if epoch == e))
                    .unwrap_or(t_signal);
            let t_rebuilt =
                max_t(&|k| matches!(*k, EventKind::GroupRebuilt { epoch } if epoch == e))
                    .unwrap_or(t_signal)
                    .clamp(t_signal, t_restored);
            let t_redo =
                max_t(&|k| matches!(*k, EventKind::RedoComplete { epoch, .. } if epoch == e))
                    .unwrap_or(t_restored);
            let n: usize = ev
                .iter()
                .filter_map(|x| match &x.kind {
                    EventKind::FdDetect { epoch, failed } if *epoch == e => Some(failed.len()),
                    _ => None,
                })
                .sum();
            failures += n;
            epochs.push(EpochTimeline {
                epoch: e,
                failures: n,
                t_kill,
                t_ack,
                t_signal,
                t_rebuilt,
                t_restored,
                t_redo,
            });
        }

        let detect: Duration = epochs.iter().map(EpochTimeline::detect).sum();
        let reinit: Duration = epochs.iter().map(EpochTimeline::reinit).sum();
        let redo: Duration = epochs.iter().map(EpochTimeline::redo).sum();
        let compute = total.saturating_sub(detect + reinit + redo);

        let mut scans = 0u64;
        let mut free = Vec::new();
        for x in ev {
            if let EventKind::FdScan { dur, found_failures, .. } = x.kind {
                scans += 1;
                if !found_failures {
                    free.push(dur);
                }
            }
        }
        let scan = (scans > 0).then(|| {
            let sum: Duration = free.iter().sum();
            ScanStats {
                scans,
                failure_free: free.len() as u64,
                mean: sum.checked_div(free.len() as u32).unwrap_or_default(),
                min: free.iter().min().copied().unwrap_or_default(),
                max: free.iter().max().copied().unwrap_or_default(),
            }
        });

        OverheadReport {
            total,
            detect,
            reinit,
            redo,
            compute,
            failures,
            epochs,
            scan,
            fd_promoted: ev.iter().any(|x| matches!(x.kind, EventKind::FdPromoted)),
            fd_takeovers: ev
                .iter()
                .filter(|x| matches!(x.kind, EventKind::FdTakeover { .. }))
                .count(),
            capacity_exhausted: ev.iter().any(|x| matches!(x.kind, EventKind::CapacityExhausted)),
            counters: None,
        }
    }

    /// Attach the run's counter deltas (see [`TelemetrySnapshot`]).
    pub fn with_counters(mut self, counters: TelemetrySnapshot) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Recovery rounds observed.
    pub fn recoveries(&self) -> usize {
        self.epochs.len()
    }

    /// Σ OHF2 (group rebuild) over epochs.
    pub fn rebuild(&self) -> Duration {
        self.epochs.iter().map(EpochTimeline::rebuild).sum()
    }

    /// Σ OHF3 (restore) over epochs.
    pub fn restore(&self) -> Duration {
        self.epochs.iter().map(EpochTimeline::restore).sum()
    }

    /// Epochs that spent time redoing lost work. Rollback recovery
    /// (checkpoint/restart) redoes an interval after every mid-interval
    /// failure; reconstruction (ABFT) and replication takeover resume at
    /// the failure frontier, so this stays 0 for them.
    pub fn redo_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.redo() > Duration::ZERO).count()
    }

    /// Total overhead (everything that is not computation).
    pub fn overhead(&self) -> Duration {
        self.detect + self.reinit + self.redo
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("total_s", Json::Num(self.total.as_secs_f64())),
            ("compute_s", Json::Num(self.compute.as_secs_f64())),
            ("ohf1_detect_s", Json::Num(self.detect.as_secs_f64())),
            ("ohf2_rebuild_s", Json::Num(self.rebuild().as_secs_f64())),
            ("ohf3_restore_s", Json::Num(self.restore().as_secs_f64())),
            ("reinit_s", Json::Num(self.reinit.as_secs_f64())),
            ("redo_s", Json::Num(self.redo.as_secs_f64())),
            ("redo_epochs", Json::num_u64(self.redo_epochs() as u64)),
            ("recoveries", Json::num_u64(self.recoveries() as u64)),
            ("failures", Json::num_u64(self.failures as u64)),
            ("fd_promoted", Json::Bool(self.fd_promoted)),
            ("fd_takeovers", Json::num_u64(self.fd_takeovers as u64)),
            ("capacity_exhausted", Json::Bool(self.capacity_exhausted)),
            ("epochs", Json::Arr(self.epochs.iter().map(|e| e.to_json()).collect())),
            ("scan", self.scan.map_or(Json::Null, ScanStats::to_json)),
            ("counters", self.counters.as_ref().map_or(Json::Null, TelemetrySnapshot::to_json)),
        ])
    }

    /// The report rendered as one compact JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_cluster::Rank;

    fn at(ms: u64, rank: Rank, kind: EventKind) -> Event {
        Event { t: Duration::from_millis(ms), rank, kind }
    }

    /// Two failure epochs with hand-placed instants; every decomposition
    /// component is checked against the hand-computed value.
    #[test]
    fn two_epochs_hand_computed() {
        let ev = vec![
            at(0, 0, EventKind::SetupDone),
            at(
                5,
                4,
                EventKind::FdScan {
                    dur: Duration::from_millis(2),
                    targets: 5,
                    found_failures: false,
                },
            ),
            // Epoch 1: kill at 100, detected at 110, signal at 115,
            // rebuilt at 118, restored at 130, redo done at 150.
            at(100, 2, EventKind::KillFired { iter: 40 }),
            at(
                108,
                4,
                EventKind::FdScan {
                    dur: Duration::from_millis(3),
                    targets: 5,
                    found_failures: true,
                },
            ),
            at(108, 4, EventKind::FdDetect { epoch: 1, failed: vec![2] }),
            at(110, 4, EventKind::FdAck { epoch: 1 }),
            at(115, 0, EventKind::FailureSignal { epoch: 1 }),
            at(118, 0, EventKind::GroupRebuilt { epoch: 1 }),
            at(130, 0, EventKind::Restored { epoch: 1, iter: 20 }),
            at(150, 0, EventKind::RedoComplete { epoch: 1, iter: 40 }),
            // Epoch 2: kill at 200, acked at 220, signal 224, rebuilt
            // 230, restored 240, redo done 270. Two ranks died.
            at(200, 1, EventKind::KillFired { iter: 60 }),
            at(218, 4, EventKind::FdDetect { epoch: 2, failed: vec![1, 3] }),
            at(220, 4, EventKind::FdAck { epoch: 2 }),
            at(224, 0, EventKind::FailureSignal { epoch: 2 }),
            at(230, 0, EventKind::GroupRebuilt { epoch: 2 }),
            at(240, 0, EventKind::Restored { epoch: 2, iter: 40 }),
            at(270, 0, EventKind::RedoComplete { epoch: 2, iter: 60 }),
            at(
                290,
                7,
                EventKind::FdScan {
                    dur: Duration::from_millis(4),
                    targets: 5,
                    found_failures: false,
                },
            ),
            at(300, 0, EventKind::Finished { iter: 100 }),
            at(299, 1, EventKind::Finished { iter: 100 }),
        ];
        let r = OverheadReport::from_events(&ev);

        assert_eq!(r.total, Duration::from_millis(300));
        assert_eq!(r.recoveries(), 2);
        assert_eq!(r.failures, 3);

        let e1 = &r.epochs[0];
        assert_eq!(e1.detect(), Duration::from_millis(15)); // 115 - 100
        assert_eq!(e1.rebuild(), Duration::from_millis(3)); // 118 - 115
        assert_eq!(e1.restore(), Duration::from_millis(12)); // 130 - 118
        assert_eq!(e1.redo(), Duration::from_millis(20)); // 150 - 130

        let e2 = &r.epochs[1];
        assert_eq!(e2.failures, 2);
        assert_eq!(e2.detect(), Duration::from_millis(24)); // 224 - 200
        assert_eq!(e2.reinit(), Duration::from_millis(16)); // 240 - 224
        assert_eq!(e2.rebuild() + e2.restore(), e2.reinit());
        assert_eq!(e2.redo(), Duration::from_millis(30)); // 270 - 240

        assert_eq!(r.detect, Duration::from_millis(15 + 24));
        assert_eq!(r.reinit, Duration::from_millis(15 + 16));
        assert_eq!(r.redo, Duration::from_millis(20 + 30));
        assert_eq!(r.compute, r.total - r.overhead());

        let scan = r.scan.expect("scans recorded");
        assert_eq!(scan.scans, 3);
        assert_eq!(scan.failure_free, 2);
        assert_eq!(scan.mean, Duration::from_millis(3)); // (2 + 4) / 2
        assert_eq!(scan.min, Duration::from_millis(2));
        assert_eq!(scan.max, Duration::from_millis(4));

        assert!(!r.fd_promoted);
        assert!(!r.capacity_exhausted);
        assert_eq!(r.fd_takeovers, 0);
    }

    /// A timed kill (no `KillFired` event) falls back to the ack instant:
    /// OHF1 then measures only signal propagation past the ack.
    #[test]
    fn timed_kill_uses_ack_as_kill_instant() {
        let ev = vec![
            at(50, 4, EventKind::FdDetect { epoch: 1, failed: vec![0] }),
            at(52, 4, EventKind::FdAck { epoch: 1 }),
            at(55, 1, EventKind::FailureSignal { epoch: 1 }),
            at(60, 1, EventKind::Restored { epoch: 1, iter: 0 }),
            at(90, 1, EventKind::Finished { iter: 10 }),
        ];
        let r = OverheadReport::from_events(&ev);
        let e = &r.epochs[0];
        assert_eq!(e.t_kill, Duration::from_millis(52));
        assert_eq!(e.detect(), Duration::from_millis(3)); // 55 - 52
                                                          // No GroupRebuilt event: the whole reinit is attributed to OHF3.
        assert_eq!(e.rebuild(), Duration::ZERO);
        assert_eq!(e.restore(), Duration::from_millis(5));
        assert_eq!(e.redo(), Duration::ZERO);
    }

    /// FD promotion (restriction 2): the flag surfaces and the promoted
    /// epoch still decomposes.
    #[test]
    fn fd_promoted_flag_and_epoch() {
        let ev = vec![
            at(10, 0, EventKind::KillFired { iter: 5 }),
            at(20, 4, EventKind::FdDetect { epoch: 1, failed: vec![0] }),
            at(22, 4, EventKind::FdAck { epoch: 1 }),
            at(22, 4, EventKind::FdPromoted),
            at(25, 4, EventKind::Activated { app_rank: 0 }),
            at(30, 4, EventKind::Restored { epoch: 1, iter: 0 }),
            at(60, 4, EventKind::Finished { iter: 10 }),
        ];
        let r = OverheadReport::from_events(&ev);
        assert!(r.fd_promoted);
        assert_eq!(r.recoveries(), 1);
        // No FailureSignal (the promoted FD is the lone worker): the
        // signal instant falls back to the ack.
        assert_eq!(r.epochs[0].detect(), Duration::from_millis(12)); // 22 - 10
        assert_eq!(r.epochs[0].reinit(), Duration::from_millis(8)); // 30 - 22
    }

    /// Capacity exhaustion (restriction 1): flagged, and an epoch with no
    /// recovery contributes detection time only.
    #[test]
    fn capacity_exhausted_flag() {
        let ev = vec![
            at(10, 0, EventKind::KillFired { iter: 5 }),
            at(20, 4, EventKind::FdDetect { epoch: 1, failed: vec![0] }),
            at(21, 4, EventKind::FdAck { epoch: 1 }),
            at(21, 4, EventKind::CapacityExhausted),
            at(23, 1, EventKind::FailureSignal { epoch: 1 }),
        ];
        let r = OverheadReport::from_events(&ev);
        assert!(r.capacity_exhausted);
        assert_eq!(r.total, Duration::ZERO); // nobody finished
        assert_eq!(r.epochs[0].detect(), Duration::from_millis(13));
        assert_eq!(r.epochs[0].reinit(), Duration::ZERO);
        assert_eq!(r.epochs[0].redo(), Duration::ZERO);
    }

    /// Empty log → all-zero report, no panics.
    #[test]
    fn empty_log() {
        let r = OverheadReport::from_events(&[]);
        assert_eq!(r.total, Duration::ZERO);
        assert_eq!(r.recoveries(), 0);
        assert!(r.scan.is_none());
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
    }

    /// The JSON document round-trips through the bundled parser and keeps
    /// the decomposition identity total = compute + overheads.
    #[test]
    fn json_roundtrip_and_identity() {
        let ev = vec![
            at(10, 0, EventKind::KillFired { iter: 5 }),
            at(20, 4, EventKind::FdDetect { epoch: 1, failed: vec![0] }),
            at(21, 4, EventKind::FdAck { epoch: 1 }),
            at(24, 1, EventKind::FailureSignal { epoch: 1 }),
            at(26, 1, EventKind::GroupRebuilt { epoch: 1 }),
            at(30, 1, EventKind::Restored { epoch: 1, iter: 0 }),
            at(45, 1, EventKind::RedoComplete { epoch: 1, iter: 5 }),
            at(100, 1, EventKind::Finished { iter: 20 }),
        ];
        let r = OverheadReport::from_events(&ev).with_counters(TelemetrySnapshot::default());
        let j = Json::parse(&r.to_json_string()).expect("valid JSON");
        let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap();
        let total = f("total_s");
        let parts = f("compute_s") + f("ohf1_detect_s") + f("reinit_s") + f("redo_s");
        assert!((total - parts).abs() < 1e-9, "identity broken: {total} vs {parts}");
        assert!((f("ohf2_rebuild_s") + f("ohf3_restore_s") - f("reinit_s")).abs() < 1e-9);
        assert!(j.get("counters").and_then(|c| c.get("transport")).is_some());
        assert_eq!(j.get("epochs").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
    }
}
