//! # ft-telemetry — overhead decomposition and unified counters
//!
//! The paper evaluates its fault-tolerance machinery with two exhibits:
//! Fig. 4 decomposes each run's wall time into *computation*, *redo-work*,
//! *re-initialization* (group rebuild + restore) and *fault detection*;
//! Table I reports FD ping-scan and detection/acknowledgment times per
//! node count. Every harness used to reconstruct those numbers by hand
//! from the job's [`ft_core::EventLog`]; this crate centralizes that
//! spelunking once:
//!
//! * [`OverheadReport`] — consumes an event log and produces the paper's
//!   decomposition: per-epoch recovery timelines ([`EpochTimeline`]) with
//!   the three overhead factors (OHF1 = detection + acknowledgment,
//!   OHF2 = group rebuild, OHF3 = restore/re-initialization) plus the
//!   redo time, job totals, FD scan-time statistics ([`ScanStats`]), and
//!   the degraded-mode flags (FD promotion/takeover, capacity exhausted).
//! * [`TelemetrySnapshot`] — one registry over the three counter
//!   families: transport ([`ft_cluster::MetricsSnapshot`]), GASPI layer
//!   ([`ft_gaspi::GaspiSnapshot`]) and checkpoint tier
//!   ([`ft_checkpoint::CkptStats`]), with uniform delta taking.
//! * [`Json`] — a dependency-free JSON value with an emitter and a small
//!   parser, so every run can leave one machine-readable report behind
//!   ([`OverheadReport::to_json_string`]) and tests can assert its
//!   schema.
//!
//! See `ARCHITECTURE.md` at the workspace root for where each reported
//! quantity comes from in the paper.
//!
//! ```
//! use std::time::Duration;
//! use ft_core::{Event, EventKind};
//! use ft_telemetry::OverheadReport;
//!
//! // One failure epoch: killed at 10 ms, detected and acknowledged by
//! // 14 ms, signalled at 15 ms, restored at 22 ms, redone by 30 ms.
//! let ms = Duration::from_millis;
//! let ev = |t, kind| Event { t: ms(t), rank: 0, kind };
//! let log = vec![
//!     ev(10, EventKind::KillFired { iter: 5 }),
//!     ev(13, EventKind::FdDetect { epoch: 1, failed: vec![0] }),
//!     ev(14, EventKind::FdAck { epoch: 1 }),
//!     ev(15, EventKind::FailureSignal { epoch: 1 }),
//!     ev(22, EventKind::Restored { epoch: 1, iter: 4 }),
//!     ev(30, EventKind::RedoComplete { epoch: 1, iter: 5 }),
//!     ev(40, EventKind::Finished { iter: 10 }),
//! ];
//! let rep = OverheadReport::from_events(&log);
//! assert_eq!(rep.detect, ms(5)); // OHF1: kill → failure signal
//! assert_eq!(rep.reinit, ms(7)); // OHF2+OHF3: signal → restored
//! assert_eq!(rep.redo, ms(8));
//! assert_eq!(rep.total, ms(40));
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod report;

pub use counters::TelemetrySnapshot;
pub use json::Json;
pub use report::{EpochTimeline, OverheadReport, ScanStats};
