//! A minimal, dependency-free JSON value: enough to emit the telemetry
//! report and to parse it back in schema tests. Object member order is
//! preserved (members are a `Vec`, not a map), so reports render
//! deterministically.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Emitted without a fractional part when it is a whole
    /// number (counters), with full precision otherwise (seconds).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from a `u64` counter.
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage. Supports the escapes the emitter produces plus
    /// `\/`, `\b`, `\f` and BMP `\uXXXX`.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    let end = *pos + lit.len();
    if b.get(*pos..end)? == lit.as_bytes() {
        *pos = end;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => eat(b, pos, "null").map(|()| Json::Null),
        b't' => eat(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => eat(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(members));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&b[start..*pos]).ok()?.parse::<f64>().ok().map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("name", Json::Str("1 fail \"recovery\"".into())),
            ("total_s", Json::Num(1.25)),
            ("recoveries", Json::num_u64(2)),
            ("ok", Json::Bool(true)),
            ("scan", Json::Null),
            ("epochs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, v);
        assert_eq!(back.get("recoveries").and_then(Json::as_u64), Some(2));
        assert_eq!(back.get("total_s").and_then(Json::as_f64), Some(1.25));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("epochs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num_u64(42).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Json::parse("{\"a\":}"), None);
        assert_eq!(Json::parse("[1,2"), None);
        assert_eq!(Json::parse("true false"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = Json::parse(" { \"k\" : \"a\\nb\\u0041\" , \"n\" : -2.5e1 } ").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("a\nbA"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-25.0));
    }
}
