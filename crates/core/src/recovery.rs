//! Communication reconstruction (the paper's Listing 2).
//!
//! After the acknowledgment, every member of the *new* worker group —
//! surviving workers and activated rescues — runs this sequence:
//!
//! 1. delete the old `COMM_MAIN` group,
//! 2. `gaspi_proc_kill` every failed process ("it explicitly enforces the
//!    processes to die even if they were alive", handling transient and
//!    false-positive failures),
//! 3. create `COMM_MAIN_NEW` with a deterministic id derived from the
//!    epoch, add the members from the plan's status, and
//! 4. `gaspi_group_commit` — the blocking step whose cost dominates OHF2.
//!
//! If a *further* failure interrupts the commit, the health watch
//! surfaces the newer plan and the caller restarts recovery with it.

use std::time::Instant;

use ft_gaspi::{GaspiError, Group, Timeout};

use crate::error::{FtError, FtResult};
use crate::events::{EventKind, EventLog};
use crate::health::HealthWatch;
use crate::layout::WorldLayout;
use crate::plan::RecoveryPlan;

/// Rebuild the worker group per `plan`. Returns the committed group.
///
/// Callers must be members of `plan.worker_set(layout)`. On
/// [`FtError::Signal`] the caller should restart with the newer plan.
pub fn execute_recovery(
    watch: &HealthWatch,
    layout: &WorldLayout,
    plan: &RecoveryPlan,
    prev_group: Option<Group>,
    step_timeout: Timeout,
    events: &EventLog,
) -> FtResult<Group> {
    let proc = watch.proc();
    proc.injection_site("recover.begin");
    // 1. The old group is gone (ignore errors: it may never have existed
    //    for a rescue process).
    if let Some(g) = prev_group {
        let _ = proc.group_delete(g);
    }
    // 2. Enforce death of every failed process — transient failures and
    //    false positives must not keep participating.
    for &f in &plan.failed {
        let _ = proc.proc_kill(f, step_timeout);
    }
    // 3. COMM_MAIN_NEW with the epoch-derived id; clear the remnants of an
    //    interrupted previous attempt at this epoch, if any.
    let gid = plan.group_id();
    proc.injection_site("recover.group.create");
    let group = match proc.group_create_with_id(gid) {
        Ok(g) => g,
        Err(_) => {
            let _ = proc.group_delete(Group(gid));
            proc.group_create_with_id(gid)?
        }
    };
    let members = plan.worker_set(layout);
    debug_assert!(members.contains(&proc.rank()), "recovery caller must be a member");
    for &m in &members {
        proc.group_add(group, m)?;
    }
    // 4. Blocking commit, re-checking the watch between attempts so a
    //    failure *during* recovery escalates to the newer epoch.
    let deadline = Instant::now() + watch.policy().abandon;
    loop {
        match proc.group_commit(group, step_timeout) {
            Ok(()) => break,
            Err(GaspiError::Timeout) | Err(GaspiError::RemoteBroken { .. }) => {
                watch.check()?;
                if Instant::now() >= deadline {
                    return Err(FtError::Gaspi(GaspiError::Timeout));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    proc.injection_site("recover.committed");
    events.record(proc.rank(), EventKind::GroupRebuilt { epoch: plan.epoch });
    Ok(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ack::create_ctrl_segment;
    use crate::health::CommPolicy;
    use ft_gaspi::{GaspiConfig, GaspiWorld, RankOutcome};
    use std::time::Duration;

    /// Survivors + rescue rebuild a group after a kill, concurrently.
    #[test]
    fn rebuild_after_failure() {
        let layout = WorldLayout::new(3, 2); // workers 0-2, idle 3, FD 4
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fault = world.fault();
        fault.kill_rank(1);
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![1],
            rescues: vec![3],
            fd_alive: true,
            fd_rank: None,
        };
        let layout2 = layout;
        let outs = world
            .launch(move |p| {
                let plan = plan.clone();
                if !plan.worker_set(&layout2).contains(&p.rank()) {
                    return Ok(true); // dead / FD ranks sit out
                }
                create_ctrl_segment(&p, &layout2).unwrap();
                let events = EventLog::new();
                let watch = HealthWatch::new(
                    p,
                    CommPolicy {
                        attempt: Timeout::Ms(100),
                        abandon: Duration::from_secs(10),
                        ..CommPolicy::default()
                    },
                );
                let g = execute_recovery(&watch, &layout2, &plan, None, Timeout::Ms(2000), &events)
                    .expect("recovery");
                // The rebuilt group is immediately usable.
                watch.proc().barrier(g, Timeout::Ms(5000)).unwrap();
                Ok(true)
            })
            .join();
        for (r, o) in outs.into_iter().enumerate() {
            if r == 1 {
                continue; // pre-killed rank never even started its closure
            }
            assert!(matches!(o, RankOutcome::Completed(true)) || r == 1, "rank {r}: {o:?}");
        }
        assert!(!fault.is_alive(1));
    }
}
