//! The process backend: every rank is a real OS process.
//!
//! The in-memory backend hosts ranks on threads and *simulates* fail-stop
//! death by poisoning liveness flags; this module hosts each rank in its
//! own OS process speaking [`ft_cluster::TcpTransport`] RPC, so death is
//! the real thing — a `SIGKILL` from the supervisor, sockets resetting,
//! peers timing out. The paper validated its recovery with exactly this
//! (`kill -9` from outside, §VI); the process backend lets the same
//! driver, detector, and checkpoint code face it.
//!
//! ## Roles
//!
//! * **Supervisor** (the original process): [`run_supervisor`] re-executes
//!   the current binary once per rank, with the rank's identity and the
//!   full [`FaultSchedule`] shipped in environment variables; brokers the
//!   port map; enforces wall-clock `KillRank`/`KillNode` actions as real
//!   `SIGKILL`s through [`ProcessHost`]; and collects each child's exit
//!   status and `RESULT`/`EVENT` lines.
//! * **Child** (the re-executed binary): detects its role via
//!   [`child_env`], then [`run_child`] builds a single-rank
//!   [`GaspiWorld`] over TCP and runs the ordinary Fig. 3 driver flow for
//!   that one rank.
//!
//! ## Wire protocol with children (line-oriented, over stdio)
//!
//! ```text
//! child → parent:  PORT <tcp-port>
//! parent → child:  MAP <port-rank-0> <port-rank-1> …
//! child → parent:  EVENT <rank> <event-debug>          (zero or more)
//! child → parent:  RESULT <role> <app-rank|-> <ok|err|killed|panic> [detail]
//! ```
//!
//! Exit codes: `0` = ran to completion (a `RESULT` line says how),
//! [`KILLED_EXIT_CODE`] = died to an armed cooperative kill (iteration
//! kill, step-indexed injection, received `gaspi_proc_kill`), death by
//! signal = the supervisor's `SIGKILL`. The last two both classify as
//! [`ProcOutcome::Killed`] — the same fate by different executioners.
//!
//! ## What the schedule means per backend
//!
//! Children arm the schedule's step-indexed injections and iteration
//! kills on their local fault plane with
//! [`FaultPlane::exit_process_on_kill`] set, so every cooperative kill
//! path becomes a process exit. Wall-clock `KillRank`/`KillNode` actions
//! are **not** applied in children — the supervisor owns wall-clock time
//! and delivers them as `SIGKILL`s, with no cooperation from the victim.
//! Wall-clock `BreakLink`/`HealLink` actions are enforced *in-process*:
//! every child applies them to its local fault plane on the same clock
//! (started at MAP time), and the TCP transport turns the table entry
//! into real refusal — live sockets are severed, in-flight sends drain
//! as `Broken`, and the receive side refuses frames per-connection — so
//! a partition is symmetric across the wire without any supervisor
//! cooperation. Step-indexed `BreakLink`/`HealLink` injections fire only
//! on the crossing rank's own plane, which is exactly what makes
//! *asymmetric* partitions (one side believes the link is down, the
//! other does not) expressible. Enforced link ops are listed in
//! [`ProcJobReport::link_faults`]; `skipped_actions` stays empty and is
//! asserted on as a regression guard.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ft_cluster::codec::{from_hex, to_hex};
use ft_cluster::{
    FaultAction, FaultPlane, FaultSchedule, InjectionPlan, NodeId, Rank, RankHost, TcpTransport,
    Topology, Transport, KILLED_EXIT_CODE,
};
use ft_gaspi::{GaspiConfig, GaspiWorld, RankOutcome};

use crate::driver::{run_ft_rank, FtApp, FtConfig, FtCtx, Role};
use crate::events::EventLog;

const ENV_RANK: &str = "FT_PROC_RANK";
const ENV_RANKS: &str = "FT_PROC_RANKS";
const ENV_SCHEDULE: &str = "FT_PROC_SCHEDULE";

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// A child's identity, decoded from the environment.
pub struct ChildEnv {
    /// The rank this process hosts.
    pub rank: Rank,
    /// Total ranks in the job.
    pub num_ranks: u32,
    /// The full fault schedule. Wall-clock kills are the supervisor's to
    /// enforce (as `SIGKILL`s); wall-clock link ops are applied by the
    /// child itself to its local fault plane.
    pub schedule: FaultSchedule,
}

/// Detect whether this process is a supervised rank child. Binaries that
/// support the process backend call this first in `main` and divert to
/// [`run_child`] when it returns `Some`.
pub fn child_env() -> Option<ChildEnv> {
    let rank: Rank = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let num_ranks: u32 = std::env::var(ENV_RANKS).ok()?.parse().ok()?;
    let schedule = match std::env::var(ENV_SCHEDULE) {
        Ok(hex) => FaultSchedule::decode(&from_hex(&hex).ok()?).ok()?,
        Err(_) => FaultSchedule::none(),
    };
    Some(ChildEnv { rank, num_ranks, schedule })
}

/// Run one rank as a supervised child process: handshake ports over
/// stdio, build a single-rank world over TCP, run the driver flow, report
/// a `RESULT` line, and return the exit code for `main` to pass to
/// [`std::process::exit`]. `enc_summary` turns the app summary into the
/// bytes shipped (hex) on the `RESULT` line.
pub fn run_child<A, F, E>(
    env: ChildEnv,
    cfg: FtConfig,
    gaspi: GaspiConfig,
    make_app: F,
    enc_summary: E,
) -> i32
where
    A: FtApp,
    F: Fn(&FtCtx) -> A + Send + Sync + 'static,
    E: Fn(&A::Summary) -> Vec<u8>,
{
    assert_eq!(gaspi.num_ranks, env.num_ranks, "gaspi config must match the supervised world");
    assert_eq!(gaspi.ranks_per_node, 1, "process backend hosts one rank per node");
    let topo = Topology::new(env.num_ranks, 1);
    let fault = FaultPlane::new(topo);
    // Every cooperative kill of *this* rank becomes real process death.
    fault.exit_process_on_kill(env.rank);
    fault.arm_injections(InjectionPlan { injections: env.schedule.injections().to_vec() });

    let tcp = Arc::new(
        TcpTransport::listen(env.rank, env.num_ranks, Arc::clone(&fault), gaspi.model.clone())
            .expect("bind child TCP listener"),
    );
    let transport: Arc<dyn Transport> = Arc::clone(&tcp) as Arc<dyn Transport>;
    // Build the world (which binds this rank's endpoint) BEFORE reporting
    // the port: peers learn our address only through the supervisor's MAP,
    // so no frame can arrive ahead of the endpoint. Reporting first would
    // open a race where a fast-starting peer's message reaches our
    // listener pre-bind and is silently dropped — fatal for payloads that
    // are never re-sent by the originator, like group-commit tokens.
    let world = GaspiWorld::with_transport(gaspi, fault, Arc::clone(&transport), env.rank);
    println!("PORT {}", tcp.port());
    let _ = io::stdout().flush();
    let mut map_line = String::new();
    io::stdin().read_line(&mut map_line).expect("read MAP line");
    let ports: Vec<u16> = map_line
        .trim()
        .strip_prefix("MAP ")
        .expect("MAP line from supervisor")
        .split_whitespace()
        .map(|p| p.parse().expect("port in MAP line"))
        .collect();
    tcp.set_peers(&ports);
    let events = EventLog::new();
    let fd_rank = cfg.layout.fd_rank();
    // Surface every link transition touching this rank in the event
    // stream (both timed ops below and step-indexed injections).
    {
        let ev = events.clone();
        let me = env.rank;
        world.fault().on_link(move |src, dst, broken| {
            if src == me {
                ev.record(me, crate::events::EventKind::LinkFault { peer: dst, broken });
            }
        });
    }
    // Enforce wall-clock link ops in-process: each child applies them to
    // its own fault plane on the supervisor's clock (started at MAP
    // time), and the TCP transport severs/refuses accordingly. Kills stay
    // with the supervisor — a victim cannot be trusted to sign its own
    // death warrant, but a partition needs exactly this local knowledge.
    let link_timer = {
        let mut links = FaultSchedule::none();
        for (after, a) in env.schedule.timed_actions() {
            if matches!(a, FaultAction::BreakLink(..) | FaultAction::HealLink(..)) {
                links = links.timed(*after, a.clone());
            }
        }
        (!links.timed_actions().is_empty()).then(|| links.start_timer(world.fault()))
    };
    let outcome = run_ft_rank(&world, env.rank, cfg, env.schedule, events.clone(), make_app);
    drop(link_timer); // cancel link ops the job outlived

    // Linger until the detector's shutdown broadcast (bounded): a process
    // that exits resets its sockets, and under real fail-stop a completed
    // rank is indistinguishable from a dead one — leaving early makes the
    // still-scanning FD "detect" finished workers and spin up a pointless
    // recovery at the end of every clean run.
    if env.rank != fd_rank {
        let proc = world.proc_handle(env.rank);
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            match proc.notify_peek(crate::ack::CTRL_SEG, crate::ack::SHUTDOWN_NOTIF) {
                Ok(0) => std::thread::sleep(Duration::from_millis(2)),
                _ => break,
            }
        }
    }

    // Ship the event stream before the verdict (the supervisor's asserts
    // read both).
    for ev in events.snapshot() {
        println!("EVENT {} {:?}", ev.rank, ev.kind);
    }
    let code = match outcome {
        RankOutcome::Completed(report) => {
            let role = role_name(report.role);
            let app = report.app_rank.map_or("-".into(), |a| a.to_string());
            match (&report.error, &report.summary) {
                (Some(e), _) => println!("RESULT {role} {app} err {e:?}"),
                (None, Some(s)) => println!("RESULT {role} {app} ok {}", to_hex(&enc_summary(s))),
                (None, None) => println!("RESULT {role} {app} ok -"),
            }
            0
        }
        RankOutcome::Failed(e) => {
            println!("RESULT - - err {e:?}");
            0
        }
        // Unreachable in practice: exit_process_on_kill turns kills into
        // process exits before the unwind surfaces. Kept for robustness.
        RankOutcome::Killed(_) => KILLED_EXIT_CODE,
        RankOutcome::Panicked(msg) => {
            println!("RESULT - - panic {}", msg.replace('\n', " "));
            1
        }
    };
    let _ = io::stdout().flush();
    transport.shutdown();
    code
}

fn role_name(role: Role) -> &'static str {
    match role {
        Role::Worker => "Worker",
        Role::Idle => "Idle",
        Role::Rescue => "Rescue",
        Role::Detector => "Detector",
    }
}

// ---------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------

/// [`RankHost`] over real child processes: a kill is a `SIGKILL`.
pub struct ProcessHost {
    topo: Topology,
    children: Mutex<Vec<Option<Child>>>,
}

impl ProcessHost {
    fn new(children: Vec<Child>) -> Arc<Self> {
        let topo = Topology::new(children.len() as u32, 1);
        Arc::new(Self { topo, children: Mutex::new(children.into_iter().map(Some).collect()) })
    }

    /// Wait (bounded) for the child hosting `rank`; `None` on timeout.
    fn wait_rank(&self, rank: Rank, deadline: Instant) -> Option<std::process::ExitStatus> {
        loop {
            {
                let mut guard = self.children.lock();
                match guard[rank as usize].as_mut() {
                    None => return None,
                    Some(child) => {
                        if let Ok(Some(status)) = child.try_wait() {
                            guard[rank as usize] = None;
                            return Some(status);
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn kill_all(&self) {
        for r in 0..self.topo.num_ranks() {
            self.kill_rank(r);
        }
    }
}

impl RankHost for ProcessHost {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn kill_rank(&self, rank: Rank) {
        if let Some(child) = self.children.lock()[rank as usize].as_mut() {
            // SIGKILL on Unix; idempotent (killing a reaped/dead child is
            // an ignorable error).
            let _ = child.kill();
        }
    }

    fn kill_node(&self, node: NodeId) {
        for r in self.topo.ranks_on(node) {
            self.kill_rank(r);
        }
    }
}

/// How one rank process ended.
#[derive(Debug)]
pub enum ProcOutcome {
    /// Exit 0 with a `RESULT` line.
    Completed(ProcResult),
    /// Died to a kill: supervisor `SIGKILL` (exit by signal) or an armed
    /// cooperative kill (exit code [`KILLED_EXIT_CODE`]).
    Killed {
        /// True when the process died to a real signal (the supervisor's
        /// `SIGKILL`), false for a cooperative kill exit.
        by_signal: bool,
    },
    /// Any other ending (crash, protocol violation, missing `RESULT`).
    Crashed(String),
    /// Still running at the supervisor's deadline (then killed).
    TimedOut,
}

impl ProcOutcome {
    /// True if the rank died to a kill (either executioner).
    pub fn was_killed(&self) -> bool {
        matches!(self, ProcOutcome::Killed { .. })
    }

    /// The completion record, if any.
    pub fn completed(&self) -> Option<&ProcResult> {
        match self {
            ProcOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// A child's parsed `RESULT` line.
#[derive(Debug)]
pub struct ProcResult {
    /// Final role (`Worker`/`Idle`/`Rescue`/`Detector`).
    pub role: String,
    /// Application rank carried at the end, if any.
    pub app_rank: Option<u32>,
    /// Decoded summary bytes (`ok` results with a payload).
    pub summary: Option<Vec<u8>>,
    /// Error detail (`err`/`panic` results).
    pub error: Option<String>,
}

/// Whole-job report from the supervisor.
#[derive(Debug)]
pub struct ProcJobReport {
    /// Per-rank outcomes, indexed by rank.
    pub outcomes: Vec<ProcOutcome>,
    /// `EVENT` payloads from all children, in arrival order: the debug
    /// rendering of each [`crate::events::EventKind`], prefixed by the
    /// recording rank.
    pub event_lines: Vec<String>,
    /// Wall-clock link ops enforced in-process by the children (each
    /// endpoint applies them to its local fault plane; the TCP transport
    /// severs/refuses accordingly). Additive to the per-rank `outcomes`,
    /// so report consumers can tell a partition run from a kill-only run.
    pub link_faults: Vec<FaultAction>,
    /// Wall-clock actions the process backend could not enforce. Every
    /// action class is enforced today — kills by the supervisor, link ops
    /// by the children — so this must stay empty; the conformance sweep
    /// asserts on it as a regression guard.
    pub skipped_actions: Vec<FaultAction>,
}

impl ProcJobReport {
    /// Ranks that died to a kill.
    pub fn killed(&self) -> Vec<Rank> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(r, o)| o.was_killed().then_some(r as Rank))
            .collect()
    }

    /// `(app_rank, summary bytes)` of completed workers/rescues, sorted.
    pub fn worker_summaries(&self) -> Vec<(u32, &[u8])> {
        let mut v: Vec<(u32, &[u8])> = self
            .outcomes
            .iter()
            .filter_map(|o| o.completed())
            .filter_map(|r| match (r.app_rank, &r.summary) {
                (Some(a), Some(s)) => Some((a, s.as_slice())),
                _ => None,
            })
            .collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// Event lines whose kind-name matches `needle` (e.g. `"FdDetect"`).
    pub fn events_matching(&self, needle: &str) -> Vec<&str> {
        self.event_lines.iter().filter(|l| l.contains(needle)).map(|s| s.as_str()).collect()
    }

    /// First error detail reported by any completed rank.
    pub fn first_error(&self) -> Option<&str> {
        self.outcomes.iter().filter_map(|o| o.completed()).find_map(|r| r.error.as_deref())
    }
}

/// Supervisor configuration.
pub struct SupervisorConfig {
    /// Total rank processes to spawn.
    pub num_ranks: u32,
    /// The fault schedule; wall-clock `KillRank`/`KillNode` become
    /// `SIGKILL`s, everything else ships to the children.
    pub schedule: FaultSchedule,
    /// Arguments passed to the re-executed binary (so a multi-mode bin
    /// can route to the right app).
    pub child_args: Vec<String>,
    /// Extra environment for children.
    pub child_env: Vec<(String, String)>,
    /// Hard deadline for the whole job; stragglers are killed and
    /// reported [`ProcOutcome::TimedOut`].
    pub deadline: Duration,
}

impl SupervisorConfig {
    /// A supervisor for `num_ranks` ranks with a 60 s deadline.
    pub fn new(num_ranks: u32, schedule: FaultSchedule) -> Self {
        Self {
            num_ranks,
            schedule,
            child_args: Vec::new(),
            child_env: Vec::new(),
            deadline: Duration::from_secs(60),
        }
    }

    /// Pass `args` to the re-executed binary.
    pub fn with_args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.child_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Set the job deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Spawn, broker, monitor, and reap one rank process per rank of the
/// job. Re-executes the current binary; children must detect
/// [`child_env`] and divert to [`run_child`].
pub fn run_supervisor(cfg: SupervisorConfig) -> io::Result<ProcJobReport> {
    let exe = std::env::current_exe()?;
    let schedule_hex = to_hex(&cfg.schedule.encode());
    let mut children = Vec::with_capacity(cfg.num_ranks as usize);
    let mut stdouts = Vec::with_capacity(cfg.num_ranks as usize);
    for rank in 0..cfg.num_ranks {
        let mut cmd = Command::new(&exe);
        cmd.args(&cfg.child_args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_RANKS, cfg.num_ranks.to_string())
            .env(ENV_SCHEDULE, &schedule_hex)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &cfg.child_env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        stdouts.push(BufReader::new(child.stdout.take().expect("piped child stdout")));
        children.push(child);
    }

    // PORT/MAP handshake: collect every child's listener port, then ship
    // the full map to each.
    let mut ports = Vec::with_capacity(children.len());
    for (rank, out) in stdouts.iter_mut().enumerate() {
        let mut line = String::new();
        out.read_line(&mut line)?;
        let port: u16 =
            line.trim().strip_prefix("PORT ").and_then(|p| p.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rank {rank}: expected PORT line, got {line:?}"),
                )
            })?;
        ports.push(port);
    }
    let map_line =
        format!("MAP {}\n", ports.iter().map(u16::to_string).collect::<Vec<_>>().join(" "));
    for child in &mut children {
        let mut stdin = child.stdin.take().expect("piped child stdin");
        stdin.write_all(map_line.as_bytes())?;
        // Dropping stdin closes it; children only ever read this one line.
    }

    let host = ProcessHost::new(children);
    // The job clock starts when the port map is out: wall-clock kills are
    // now enforced by this thread, as real signals.
    let timer_host = Arc::clone(&host);
    let timed: Vec<(Duration, FaultAction)> = cfg.schedule.timed_actions().to_vec();
    let link_faults: Vec<FaultAction> = timed
        .iter()
        .filter(|(_, a)| matches!(a, FaultAction::BreakLink(..) | FaultAction::HealLink(..)))
        .map(|(_, a)| a.clone())
        .collect();
    let timer_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let timer_stop2 = Arc::clone(&timer_stop);
    let timer = std::thread::Builder::new()
        .name("proc-fault-schedule".into())
        .spawn(move || {
            use std::sync::atomic::Ordering;
            let start = Instant::now();
            let mut timed = timed;
            timed.sort_by_key(|(d, _)| *d);
            for (after, action) in timed {
                // Sleep in short laps so the supervisor can retire this
                // thread as soon as the job ends (a schedule may place
                // kills far beyond the job's actual runtime).
                while let Some(nap) = after.checked_sub(start.elapsed()) {
                    if timer_stop2.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(nap.min(Duration::from_millis(10)));
                }
                if timer_stop2.load(Ordering::Acquire) {
                    return;
                }
                match action {
                    FaultAction::KillRank(r) => timer_host.kill_rank(r),
                    FaultAction::KillNode(n) => timer_host.kill_node(n),
                    // Enforced in-process: every child applies link ops to
                    // its own fault plane on the same clock (see run_child).
                    FaultAction::BreakLink(..) | FaultAction::HealLink(..) => {}
                }
            }
        })
        .expect("spawn supervisor fault-schedule thread");

    // Drain each child's stdout on its own thread (children block on full
    // pipes otherwise), collecting EVENT and RESULT lines.
    type Collected = Arc<Mutex<(Vec<String>, HashMap<Rank, String>)>>;
    let collected: Collected = Arc::new(Mutex::new((Vec::new(), HashMap::new())));
    let mut readers = Vec::new();
    for (rank, out) in stdouts.into_iter().enumerate() {
        let collected = Arc::clone(&collected);
        let h = std::thread::Builder::new()
            .name(format!("proc-stdout-{rank}"))
            .spawn(move || {
                for line in out.lines() {
                    let Ok(line) = line else { break };
                    if let Some(ev) = line.strip_prefix("EVENT ") {
                        collected.lock().0.push(ev.to_string());
                    } else if let Some(res) = line.strip_prefix("RESULT ") {
                        collected.lock().1.insert(rank as Rank, res.to_string());
                    }
                }
            })
            .expect("spawn supervisor stdout reader");
        readers.push(h);
    }

    // Reap children against the deadline.
    let deadline = Instant::now() + cfg.deadline;
    let mut statuses = Vec::with_capacity(cfg.num_ranks as usize);
    for rank in 0..cfg.num_ranks {
        statuses.push(host.wait_rank(rank, deadline));
    }
    host.kill_all(); // No-op for reaped children; stops stragglers.
    for rank in 0..cfg.num_ranks {
        if statuses[rank as usize].is_none() {
            // One more (short) chance to reap the straggler post-SIGKILL.
            let grace = Instant::now() + Duration::from_secs(5);
            if let Some(s) = host.wait_rank(rank, grace) {
                if s.code().is_none() {
                    // Died to our deadline SIGKILL: still a timeout.
                    continue;
                }
                statuses[rank as usize] = Some(s);
            }
        }
    }
    for h in readers {
        let _ = h.join();
    }
    timer_stop.store(true, std::sync::atomic::Ordering::Release);
    let _ = timer.join();

    let (event_lines, mut results) = {
        let mut guard = collected.lock();
        (std::mem::take(&mut guard.0), std::mem::take(&mut guard.1))
    };
    let outcomes = statuses
        .into_iter()
        .enumerate()
        .map(|(rank, status)| classify(status, results.remove(&(rank as Rank))))
        .collect();
    Ok(ProcJobReport { outcomes, event_lines, link_faults, skipped_actions: Vec::new() })
}

fn classify(status: Option<std::process::ExitStatus>, result: Option<String>) -> ProcOutcome {
    let Some(status) = status else { return ProcOutcome::TimedOut };
    match status.code() {
        // Killed by signal: the supervisor's SIGKILL.
        None => ProcOutcome::Killed { by_signal: true },
        Some(c) if c == KILLED_EXIT_CODE => ProcOutcome::Killed { by_signal: false },
        Some(0) => match result.as_deref().map(parse_result) {
            Some(Some(r)) => ProcOutcome::Completed(r),
            _ => ProcOutcome::Crashed("exit 0 without a parseable RESULT line".into()),
        },
        Some(c) => {
            let detail = result.unwrap_or_default();
            ProcOutcome::Crashed(format!("exit code {c}: {detail}"))
        }
    }
}

/// Parse the body of a `RESULT` line (prefix already stripped).
fn parse_result(body: &str) -> Option<ProcResult> {
    let mut it = body.splitn(4, ' ');
    let role = it.next()?.to_string();
    let app_rank = match it.next()? {
        "-" => None,
        a => Some(a.parse().ok()?),
    };
    let status = it.next()?;
    let detail = it.next().unwrap_or("");
    match status {
        "ok" => {
            let summary = match detail {
                "-" | "" => None,
                hex => Some(from_hex(hex).ok()?),
            };
            Some(ProcResult { role, app_rank, summary, error: None })
        }
        "err" | "panic" => {
            Some(ProcResult { role, app_rank, summary: None, error: Some(detail.to_string()) })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_line_parsing() {
        let r = parse_result("Worker 3 ok 0a0b").unwrap();
        assert_eq!(r.role, "Worker");
        assert_eq!(r.app_rank, Some(3));
        assert_eq!(r.summary.as_deref(), Some(&[0x0a, 0x0b][..]));
        assert!(r.error.is_none());

        let r = parse_result("Idle - ok -").unwrap();
        assert_eq!(r.app_rank, None);
        assert!(r.summary.is_none());

        let r = parse_result("Worker 0 err Timeout with spaces").unwrap();
        assert_eq!(r.error.as_deref(), Some("Timeout with spaces"));

        assert!(parse_result("Worker 0 bogus x").is_none());
        assert!(parse_result("").is_none());
    }

    #[test]
    fn classify_exit_codes() {
        // Timeout.
        assert!(matches!(classify(None, None), ProcOutcome::TimedOut));
    }

    #[test]
    fn child_env_absent_outside_supervision() {
        // The test runner itself is not a supervised child.
        assert!(child_env().is_none() || std::env::var(ENV_RANK).is_ok());
    }
}
