//! The recovery plan: what the fault detector broadcasts after failures.
//!
//! A plan is a *pure function* of the job layout and the cumulative
//! `(failed, rescue)` assignment history, so every process — workers that
//! lived through all epochs and rescues that just woke up — derives the
//! same rank map, worker set, and neighbor ring from the same broadcast.

use ft_checkpoint::{Dec, Enc};
use ft_cluster::Rank;

use crate::layout::{ProcStatus, RankMap, WorldLayout};

/// Group-id base for worker groups; the group for recovery epoch `e` is
/// `WORKER_GROUP_BASE + e`, so every participant derives the same id
/// without negotiation.
pub const WORKER_GROUP_BASE: u64 = 1 << 32;

/// Everything a process needs to run Listing 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPlan {
    /// Recovery epoch: 0 = initial world, +1 per acknowledged failure
    /// round.
    pub epoch: u64,
    /// Cumulative failed GASPI ranks, in discovery order.
    pub failed: Vec<Rank>,
    /// Parallel array: `rescues[i]` adopted `failed[i]`'s identity
    /// (`u32::MAX` = no rescue was available for a rank that carried no
    /// work, e.g. a failed idle).
    pub rescues: Vec<Rank>,
    /// Whether a dedicated FD is still in place after this epoch
    /// (paper restriction 2: the FD may have joined the workers).
    pub fd_alive: bool,
    /// Override of the detector's rank: set when a *shadow* detector took
    /// over after the primary died (the paper's proposed "redundancy
    /// approach \[to\] make the FD process fault tolerant", §VIII). `None`
    /// means the layout's default FD rank.
    pub fd_rank: Option<Rank>,
}

/// A rescue slot value meaning "no rescue assigned".
pub const NO_RESCUE: Rank = u32::MAX;

impl RecoveryPlan {
    /// The initial, failure-free plan.
    pub fn initial() -> Self {
        Self { epoch: 0, failed: Vec::new(), rescues: Vec::new(), fd_alive: true, fd_rank: None }
    }

    /// The current detector rank (the layout default unless a shadow took
    /// over).
    pub fn current_fd(&self, layout: &WorldLayout) -> Rank {
        self.fd_rank.unwrap_or_else(|| layout.fd_rank())
    }

    /// Derive the current rank map by replaying the adoption history.
    pub fn rank_map(&self, layout: &WorldLayout) -> RankMap {
        let mut map = RankMap::identity(layout.num_workers);
        for (&f, &r) in self.failed.iter().zip(&self.rescues) {
            if r != NO_RESCUE {
                map.transfer(f, r);
            }
        }
        map
    }

    /// The GASPI ranks forming the worker group at this epoch, sorted.
    pub fn worker_set(&self, layout: &WorldLayout) -> Vec<Rank> {
        self.rank_map(layout).worker_set()
    }

    /// Deterministic group id for this epoch's worker group.
    pub fn group_id(&self) -> u64 {
        WORKER_GROUP_BASE + self.epoch
    }

    /// Status of every GASPI rank at this epoch (the paper's
    /// `status_processes`).
    pub fn status(&self, layout: &WorldLayout) -> Vec<ProcStatus> {
        let mut st: Vec<ProcStatus> = (0..layout.total()).map(|r| layout.initial_role(r)).collect();
        // Rescues first become workers...
        let map = self.rank_map(layout);
        for g in 0..layout.total() {
            if map.app_of(g).is_some() {
                st[g as usize] = ProcStatus::Working;
            }
        }
        // ...then failures override everything.
        for &f in &self.failed {
            st[f as usize] = ProcStatus::Failed;
        }
        if let Some(fd) = self.fd_rank {
            st[fd as usize] = ProcStatus::Detector;
        }
        if !self.fd_alive {
            let fd = self.current_fd(layout) as usize;
            if st[fd] == ProcStatus::Detector {
                st[fd] = ProcStatus::Working;
            }
        }
        st
    }

    /// Ranks newly failed relative to `previous` (what `proc_kill` must
    /// target during this recovery).
    pub fn newly_failed(&self, previous_epochs_failed: usize) -> &[Rank] {
        &self.failed[previous_epochs_failed.min(self.failed.len())..]
    }

    /// Whether `rank` is a rescue activated by this plan.
    pub fn is_rescue(&self, rank: Rank) -> bool {
        self.rescues.contains(&rank)
    }

    /// The app rank `rank` adopted, if it is a rescue (derived by replay).
    pub fn adopted_app_rank(&self, layout: &WorldLayout, rank: Rank) -> Option<u32> {
        self.rank_map(layout).app_of(rank)
    }

    /// Wire encoding (broadcast into every control segment).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(40 + 8 * self.failed.len());
        e.u64(self.epoch)
            .u32(u32::from(self.fd_alive))
            .u32(self.fd_rank.map_or(u32::MAX, |r| r))
            .u32s(&self.failed)
            .u32s(&self.rescues);
        e.finish()
    }

    /// Wire decoding.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut d = Dec::new(buf);
        let epoch = d.u64().ok()?;
        let fd_alive = d.u32().ok()? != 0;
        let fd_rank = match d.u32().ok()? {
            u32::MAX => None,
            r => Some(r),
        };
        let failed = d.u32s().ok()?;
        let rescues = d.u32s().ok()?;
        if failed.len() != rescues.len() {
            return None;
        }
        Some(Self { epoch, failed, rescues, fd_alive, fd_rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> WorldLayout {
        WorldLayout::new(4, 3) // workers 0-3, idles 4-5, FD 6
    }

    #[test]
    fn initial_plan_is_identity() {
        let p = RecoveryPlan::initial();
        let l = layout();
        assert_eq!(p.worker_set(&l), vec![0, 1, 2, 3]);
        assert_eq!(p.group_id(), WORKER_GROUP_BASE);
        let st = p.status(&l);
        assert_eq!(st[4], ProcStatus::Idle);
        assert_eq!(st[6], ProcStatus::Detector);
    }

    #[test]
    fn single_failure_plan() {
        let l = layout();
        let p = RecoveryPlan {
            epoch: 1,
            failed: vec![2],
            rescues: vec![4],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(p.worker_set(&l), vec![0, 1, 3, 4]);
        assert_eq!(p.rank_map(&l).gaspi_of(2), 4);
        let st = p.status(&l);
        assert_eq!(st[2], ProcStatus::Failed);
        assert_eq!(st[4], ProcStatus::Working);
        assert_eq!(st[5], ProcStatus::Idle);
        assert_eq!(p.adopted_app_rank(&l, 4), Some(2));
        assert!(p.is_rescue(4));
        assert!(!p.is_rescue(5));
    }

    #[test]
    fn chained_failures_including_a_rescue() {
        let l = layout();
        // epoch1: rank2 → rescue4; epoch2: rescue4 itself dies → rescue5.
        let p = RecoveryPlan {
            epoch: 2,
            failed: vec![2, 4],
            rescues: vec![4, 5],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(p.rank_map(&l).gaspi_of(2), 5);
        assert_eq!(p.worker_set(&l), vec![0, 1, 3, 5]);
        assert_eq!(p.newly_failed(1), &[4]);
        let st = p.status(&l);
        assert_eq!(st[2], ProcStatus::Failed);
        assert_eq!(st[4], ProcStatus::Failed);
        assert_eq!(st[5], ProcStatus::Working);
    }

    #[test]
    fn failed_idle_consumes_no_rescue() {
        let l = layout();
        let p = RecoveryPlan {
            epoch: 1,
            failed: vec![5],
            rescues: vec![NO_RESCUE],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(p.worker_set(&l), vec![0, 1, 2, 3]);
        assert_eq!(p.status(&l)[5], ProcStatus::Failed);
    }

    #[test]
    fn fd_promotion_reflected_in_status() {
        let l = layout();
        let p = RecoveryPlan {
            epoch: 3,
            failed: vec![0],
            rescues: vec![6],
            fd_alive: false,
            fd_rank: None,
        };
        assert_eq!(p.status(&l)[6], ProcStatus::Working);
        assert_eq!(p.worker_set(&l), vec![1, 2, 3, 6]);
    }

    #[test]
    fn wire_roundtrip() {
        let p = RecoveryPlan {
            epoch: 7,
            failed: vec![2, 9, 5],
            rescues: vec![4, NO_RESCUE, 6],
            fd_alive: false,
            fd_rank: None,
        };
        let buf = p.encode();
        assert_eq!(RecoveryPlan::decode(&buf), Some(p));
        assert_eq!(RecoveryPlan::decode(&buf[..buf.len() - 1]), None);
        assert_eq!(RecoveryPlan::decode(&[]), None);
    }
}
