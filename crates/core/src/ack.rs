//! The failure-acknowledgment channel: control segments.
//!
//! "After detection of failed process(es), the FD process informs all
//! healthy processes about the failed processes as well as their
//! corresponding rescue processes. This is done via one-sided write in the
//! global memory of all healthy processes." (§IV-A)
//!
//! Every rank creates a small *control segment* at startup. The FD writes
//! the encoded [`RecoveryPlan`] into it with `write_notify`; the epoch
//! notification slot doubles as the cheap "has anything happened" flag the
//! workers poll before each communication call — an atomic load, zero
//! communication, which is why the paper measures *no overhead* for the
//! health check in failure-free runs.

use ft_cluster::Rank;
use ft_gaspi::{bytes, GaspiProc, GaspiResult, SegId, Timeout};

use crate::layout::WorldLayout;
use crate::plan::RecoveryPlan;

/// Segment id of the control segment (applications must start their own
/// segments at [`FIRST_APP_SEG`]).
pub const CTRL_SEG: SegId = 0;
/// First segment id available to applications.
pub const FIRST_APP_SEG: SegId = 1;

/// Notification slot carrying the latest recovery epoch.
pub const EPOCH_NOTIF: u32 = 0;
/// Notification slot the workers set on the FD's control segment when the
/// application has finished.
pub const DONE_NOTIF: u32 = 1;
/// Notification slot carrying the orderly-shutdown signal to idles.
pub const SHUTDOWN_NOTIF: u32 = 2;
/// First slot of the worker→FD suspect-report channel: slot
/// `SUSPECT_NOTIF_BASE + r` on the FD's control segment flags rank `r` as
/// suspected by some worker. This is the paper's link-fault path — a
/// worker whose one-sided op came back broken may sit on a severed link
/// the FD's own pings do not cross, so detection cannot rely on the FD's
/// vantage point alone. The FD drains these slots every scan and treats
/// reported ranks as failed without re-pinging them (its own ping *would*
/// succeed across an intact FD link; recovery then enforces the suspect's
/// death via `gaspi_proc_kill`, the §IV-A-a false-positive handling).
pub const SUSPECT_NOTIF_BASE: u32 = 3;

/// Bytes of a control segment for a given layout (plan payload is
/// `28 + 8·total` worst case; headroom doubled).
pub fn ctrl_seg_size(layout: &WorldLayout) -> usize {
    128 + 16 * layout.total() as usize
}

/// Create the control segment — the first thing every rank does.
pub fn create_ctrl_segment(proc: &GaspiProc, layout: &WorldLayout) -> GaspiResult<()> {
    proc.segment_create(CTRL_SEG, ctrl_seg_size(layout))
}

/// FD side: broadcast `plan` into the control segment of every rank in
/// `targets` and flush. Returns the ranks whose write failed (they are
/// candidates for the next detection round).
pub fn broadcast_plan(
    proc: &GaspiProc,
    plan: &RecoveryPlan,
    targets: &[Rank],
    queue: u16,
    timeout: Timeout,
) -> GaspiResult<Vec<Rank>> {
    proc.injection_site("ack.broadcast");
    let payload = plan.encode();
    let len = payload.len();
    // Stage [len][payload] in our own control segment, then push it
    // one-sidedly to every target.
    proc.with_segment_mut(CTRL_SEG, |b| {
        bytes::put_u32(b, 0, len as u32);
        b[4..4 + len].copy_from_slice(&payload);
    })?;
    let epoch_value = u32::try_from(plan.epoch).expect("epoch fits u32");
    for &t in targets {
        if t == proc.rank() {
            continue;
        }
        proc.write_notify(CTRL_SEG, 0, t, CTRL_SEG, 0, 4 + len, EPOCH_NOTIF, epoch_value, queue)?;
    }
    match proc.wait(queue, timeout) {
        Ok(()) => Ok(Vec::new()),
        Err(ft_gaspi::GaspiError::QueueFailure { ranks, .. }) => Ok(ranks),
        Err(e) => Err(e),
    }
}

/// FD side: signal orderly shutdown to `targets` (idle processes mostly).
pub fn broadcast_shutdown(
    proc: &GaspiProc,
    targets: &[Rank],
    queue: u16,
    timeout: Timeout,
) -> GaspiResult<()> {
    for &t in targets {
        if t == proc.rank() {
            continue;
        }
        proc.notify(t, CTRL_SEG, SHUTDOWN_NOTIF, 1, queue)?;
    }
    match proc.wait(queue, timeout) {
        Ok(()) | Err(ft_gaspi::GaspiError::QueueFailure { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Worker side: decode the plan currently in the local control segment.
pub fn read_plan(proc: &GaspiProc) -> GaspiResult<Option<RecoveryPlan>> {
    proc.with_segment(CTRL_SEG, |b| {
        let len = bytes::get_u32(b, 0) as usize;
        if len == 0 || 4 + len > b.len() {
            return None;
        }
        RecoveryPlan::decode(&b[4..4 + len])
    })
}

/// Worker side: report `suspect` to the FD's control segment. Best
/// effort: a failure to deliver (the FD may itself be unreachable) is not
/// an error of *this* rank — the caller keeps holding position per the
/// ordinary acknowledgment-wait discipline.
pub fn report_suspect(
    proc: &GaspiProc,
    fd_rank: Rank,
    suspect: Rank,
    queue: u16,
    timeout: Timeout,
) -> GaspiResult<()> {
    proc.notify(fd_rank, CTRL_SEG, SUSPECT_NOTIF_BASE + suspect, 1, queue)?;
    match proc.wait(queue, timeout) {
        Ok(()) | Err(ft_gaspi::GaspiError::QueueFailure { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// FD side: drain (read + reset) the suspect-report slots for all
/// `total` ranks, returning the reported ranks in ascending order.
pub fn drain_suspects(proc: &GaspiProc, total: u32) -> GaspiResult<Vec<Rank>> {
    let mut reported = Vec::new();
    for r in 0..total {
        if proc.notify_reset(CTRL_SEG, SUSPECT_NOTIF_BASE + r)? != 0 {
            reported.push(r);
        }
    }
    Ok(reported)
}

/// Worker side: tell the FD the application has finished.
pub fn signal_done(
    proc: &GaspiProc,
    fd_rank: Rank,
    queue: u16,
    timeout: Timeout,
) -> GaspiResult<()> {
    proc.notify(fd_rank, CTRL_SEG, DONE_NOTIF, 1, queue)?;
    match proc.wait(queue, timeout) {
        // The FD being gone already is not a failure of *this* rank.
        Ok(()) | Err(ft_gaspi::GaspiError::QueueFailure { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_gaspi::{GaspiConfig, GaspiWorld};

    #[test]
    fn plan_broadcast_roundtrip() {
        let layout = WorldLayout::new(2, 2);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![1],
            rescues: vec![2],
            fd_alive: true,
            fd_rank: None,
        };
        let failed_writes = broadcast_plan(&fd, &plan, &[0], 0, Timeout::Ms(2000)).unwrap();
        assert!(failed_writes.is_empty());
        // Worker sees the epoch notification and reads the same plan.
        let nid = w0.notify_waitsome(CTRL_SEG, EPOCH_NOTIF, 1, Timeout::Ms(2000)).unwrap();
        assert_eq!(nid, EPOCH_NOTIF);
        assert_eq!(w0.notify_peek(CTRL_SEG, EPOCH_NOTIF).unwrap(), 1);
        assert_eq!(read_plan(&w0).unwrap(), Some(plan));
    }

    #[test]
    fn broadcast_reports_dead_targets() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        create_ctrl_segment(&fd, &layout).unwrap();
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&w0, &layout).unwrap();
        world.fault().kill_rank(1); // rank 1 never created its segment & died
        let plan = RecoveryPlan::initial();
        let plan = RecoveryPlan { epoch: 1, ..plan };
        let failed = broadcast_plan(&fd, &plan, &[0, 1], 0, Timeout::Ms(2000)).unwrap();
        assert_eq!(failed, vec![1]);
        assert_eq!(read_plan(&w0).unwrap().unwrap().epoch, 1);
    }

    #[test]
    fn done_and_shutdown_signals() {
        let layout = WorldLayout::new(1, 2);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let w0 = world.proc_handle(0);
        let idle = world.proc_handle(1);
        let fd = world.proc_handle(layout.fd_rank());
        for p in [&w0, &idle, &fd] {
            create_ctrl_segment(p, &layout).unwrap();
        }
        signal_done(&w0, layout.fd_rank(), 0, Timeout::Ms(2000)).unwrap();
        fd.notify_waitsome(CTRL_SEG, DONE_NOTIF, 1, Timeout::Ms(2000)).unwrap();
        broadcast_shutdown(&fd, &[1], 0, Timeout::Ms(2000)).unwrap();
        idle.notify_waitsome(CTRL_SEG, SHUTDOWN_NOTIF, 1, Timeout::Ms(2000)).unwrap();
        assert_eq!(idle.notify_peek(CTRL_SEG, SHUTDOWN_NOTIF).unwrap(), 1);
    }
}
