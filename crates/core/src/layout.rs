//! Process categories and the application-rank ↔ GASPI-rank map.
//!
//! "The basic idea behind our implementation is to designate some
//! processes as 'idle processes' at the start of the computation to
//! facilitate non-shrinking recovery. The remaining processes form the
//! 'worker group' and do computation. One of the pre-determined idle
//! processes serves as a failure detector process." (§IV)
//!
//! The application always computes with *application ranks* `0..W`; the
//! [`RankMap`] translates them to live GASPI ranks. Initially the map is
//! the identity; when rescue process `g` adopts failed process `f`, the
//! application rank that `f` carried is remapped to `g` — the paper's
//! "rescue processes overtake the identity of the failed processes"
//! (Listing 2, `update_my_rank_active`).

use ft_cluster::Rank;

/// Static job layout: how many ranks compute and how many stand by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldLayout {
    /// Workers (the application's world size `W`; app ranks are `0..W`).
    pub num_workers: u32,
    /// Spare/idle processes, *including* the fault detector (≥1). The
    /// rescue pool size is therefore `num_spares - 1`.
    pub num_spares: u32,
}

impl WorldLayout {
    /// A layout with `num_workers` workers and `num_spares` spares (the
    /// last spare is the FD).
    pub fn new(num_workers: u32, num_spares: u32) -> Self {
        assert!(num_workers >= 1, "need at least one worker");
        assert!(num_spares >= 1, "need at least one spare (the fault detector)");
        Self { num_workers, num_spares }
    }

    /// Total GASPI ranks to launch.
    pub fn total(&self) -> u32 {
        self.num_workers + self.num_spares
    }

    /// The dedicated fault detector's GASPI rank (the last one).
    pub fn fd_rank(&self) -> Rank {
        self.total() - 1
    }

    /// Initial idle pool (spares that are not the FD), in activation
    /// order.
    pub fn idle_pool(&self) -> impl Iterator<Item = Rank> {
        self.num_workers..self.total() - 1
    }

    /// Number of failures the job can absorb before the FD must join the
    /// workers itself (paper restriction 1).
    pub fn rescue_capacity(&self) -> u32 {
        self.num_spares - 1
    }

    /// The spare designated as `app_rank`'s hot standby under the
    /// replication strategy: the pool is aligned with the workers, so app
    /// rank `a`'s shadow is spare `num_workers + a` (when that rank is in
    /// the idle pool at all — small pools wrap onto the ordinary
    /// activation order).
    pub fn designated_shadow(&self, app_rank: u32) -> Rank {
        self.num_workers + app_rank
    }

    /// Role of a GASPI rank at job start.
    pub fn initial_role(&self, rank: Rank) -> ProcStatus {
        if rank < self.num_workers {
            ProcStatus::Working
        } else if rank == self.fd_rank() {
            ProcStatus::Detector
        } else {
            ProcStatus::Idle
        }
    }
}

/// Status of a process as tracked by the FD (the paper's
/// `status_processes` array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProcStatus {
    /// Computing member of the worker group.
    Working = 0,
    /// Standing by as a rescue candidate.
    Idle = 1,
    /// Confirmed (or enforced) dead.
    Failed = 2,
    /// The dedicated fault detector.
    Detector = 3,
}

impl ProcStatus {
    /// Decode from the wire byte.
    pub fn from_u8(b: u8) -> Self {
        match b {
            0 => ProcStatus::Working,
            1 => ProcStatus::Idle,
            2 => ProcStatus::Failed,
            _ => ProcStatus::Detector,
        }
    }
}

/// Application rank → GASPI rank translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankMap {
    map: Vec<Rank>,
}

impl RankMap {
    /// The identity map over `num_workers` application ranks.
    pub fn identity(num_workers: u32) -> Self {
        Self { map: (0..num_workers).collect() }
    }

    /// Number of application ranks.
    pub fn len(&self) -> u32 {
        self.map.len() as u32
    }

    /// Whether the map is empty (never, for a valid layout).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// GASPI rank currently carrying `app_rank`.
    pub fn gaspi_of(&self, app_rank: u32) -> Rank {
        self.map[app_rank as usize]
    }

    /// Application rank carried by GASPI rank `g`, if any.
    pub fn app_of(&self, g: Rank) -> Option<u32> {
        self.map.iter().position(|&x| x == g).map(|i| i as u32)
    }

    /// Replace the carrier of whatever app rank `failed` held with
    /// `rescue`. Returns the transferred app rank, or `None` if `failed`
    /// carried no app rank (it was an idle process).
    pub fn transfer(&mut self, failed: Rank, rescue: Rank) -> Option<u32> {
        let app = self.app_of(failed)?;
        self.map[app as usize] = rescue;
        Some(app)
    }

    /// The live GASPI ranks of the worker group, sorted (the member list
    /// for the rebuilt group).
    pub fn worker_set(&self) -> Vec<Rank> {
        let mut v = self.map.clone();
        v.sort_unstable();
        v
    }

    /// Raw map (index = app rank).
    pub fn as_slice(&self) -> &[Rank] {
        &self.map
    }

    /// Rebuild from a raw slice (wire decode).
    pub fn from_vec(map: Vec<Rank>) -> Self {
        Self { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_roles() {
        let l = WorldLayout::new(4, 3); // workers 0..4, idles 4,5, FD 6
        assert_eq!(l.total(), 7);
        assert_eq!(l.fd_rank(), 6);
        assert_eq!(l.idle_pool().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(l.rescue_capacity(), 2);
        assert_eq!(l.initial_role(0), ProcStatus::Working);
        assert_eq!(l.initial_role(3), ProcStatus::Working);
        assert_eq!(l.initial_role(4), ProcStatus::Idle);
        assert_eq!(l.initial_role(6), ProcStatus::Detector);
    }

    #[test]
    fn single_spare_means_fd_only() {
        let l = WorldLayout::new(2, 1);
        assert_eq!(l.rescue_capacity(), 0);
        assert_eq!(l.idle_pool().count(), 0);
        assert_eq!(l.fd_rank(), 2);
    }

    #[test]
    fn rank_map_transfer_chain() {
        let mut m = RankMap::identity(4);
        assert_eq!(m.gaspi_of(2), 2);
        // gaspi 2 fails, gaspi 5 adopts app rank 2
        assert_eq!(m.transfer(2, 5), Some(2));
        assert_eq!(m.gaspi_of(2), 5);
        assert_eq!(m.app_of(5), Some(2));
        assert_eq!(m.app_of(2), None);
        // then gaspi 5 fails too, gaspi 6 adopts the same app rank
        assert_eq!(m.transfer(5, 6), Some(2));
        assert_eq!(m.gaspi_of(2), 6);
        // transferring a rank that carries nothing is a no-op
        assert_eq!(m.transfer(2, 7), None);
        assert_eq!(m.worker_set(), vec![0, 1, 3, 6]);
    }

    #[test]
    fn status_wire_roundtrip() {
        for s in [ProcStatus::Working, ProcStatus::Idle, ProcStatus::Failed, ProcStatus::Detector] {
            assert_eq!(ProcStatus::from_u8(s as u8), s);
        }
    }
}
