//! The alternative failure-detection methods the paper investigated and
//! rejected (§IV-A-b).
//!
//! 1. **Ping-based all-to-all**: each process periodically pings *every*
//!    other process. Not scalable, and introduces overhead in failure-free
//!    runs because the pinging happens on the workers' critical path.
//! 2. **Ping-based neighbor level**: each process `i` pings only `i+1`;
//!    a suspicion escalates to an all-to-all scan for a global view.
//!    Cheaper, but still on the critical path, and reaching consensus
//!    between processes that detected *different* failure sets adds
//!    deadlock-prone complexity.
//!
//! These exist to reproduce the paper's comparison: the ablation bench
//! runs the same workload under each detector and shows that only the
//! dedicated-FD design is overhead-free for the workers. They detect (and
//! agree on) failures but do not drive recovery — the paper rejected them
//! before that stage.

use std::time::{Duration, Instant};

use ft_cluster::Rank;
use ft_gaspi::{GaspiProc, Timeout};

/// A detector a *worker* embeds in its iteration loop (unlike the
/// dedicated FD, which runs on its own spare process).
pub trait InlineDetector {
    /// Called by the worker between iterations; returns newly suspected
    /// ranks (empty almost always). The time this takes is pure overhead
    /// on the worker's critical path.
    fn tick(&mut self, proc: &GaspiProc) -> Vec<Rank>;

    /// Total time spent detecting so far (the failure-free overhead).
    fn time_spent(&self) -> Duration;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// All-to-all: ping every other live rank each `interval`.
pub struct AllToAllDetector {
    peers: Vec<Rank>,
    suspected: Vec<Rank>,
    interval: Duration,
    ping_timeout: Timeout,
    last: Option<Instant>,
    spent: Duration,
}

impl AllToAllDetector {
    /// Detector over `peers` (excluding self), scanning every `interval`.
    pub fn new(peers: Vec<Rank>, interval: Duration, ping_timeout: Timeout) -> Self {
        Self {
            peers,
            suspected: Vec::new(),
            interval,
            ping_timeout,
            last: None,
            spent: Duration::ZERO,
        }
    }
}

impl InlineDetector for AllToAllDetector {
    fn tick(&mut self, proc: &GaspiProc) -> Vec<Rank> {
        let now = Instant::now();
        if let Some(last) = self.last {
            if now.duration_since(last) < self.interval {
                return Vec::new();
            }
        }
        self.last = Some(now);
        let t0 = Instant::now();
        let mut newly = Vec::new();
        for &r in &self.peers {
            if self.suspected.contains(&r) {
                continue;
            }
            if proc.proc_ping(r, self.ping_timeout).is_err() {
                self.suspected.push(r);
                newly.push(r);
            }
        }
        self.spent += t0.elapsed();
        newly
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn name(&self) -> &'static str {
        "all-to-all"
    }
}

/// Neighbor-level: ping only the next live peer in the ring; escalate to
/// an all-to-all scan when the neighbor is suspected.
pub struct NeighborRingDetector {
    peers: Vec<Rank>, // sorted ring (excluding self)
    me: Rank,
    suspected: Vec<Rank>,
    interval: Duration,
    ping_timeout: Timeout,
    last: Option<Instant>,
    spent: Duration,
    /// All-to-all escalations performed (for reports).
    pub escalations: u32,
}

impl NeighborRingDetector {
    /// Ring detector for `me` among `peers`.
    pub fn new(me: Rank, mut peers: Vec<Rank>, interval: Duration, ping_timeout: Timeout) -> Self {
        peers.retain(|&r| r != me);
        peers.sort_unstable();
        Self {
            peers,
            me,
            suspected: Vec::new(),
            interval,
            ping_timeout,
            last: None,
            spent: Duration::ZERO,
            escalations: 0,
        }
    }

    /// The current ring successor of `me` (first live peer after it).
    fn successor(&self) -> Option<Rank> {
        let live: Vec<Rank> =
            self.peers.iter().copied().filter(|r| !self.suspected.contains(r)).collect();
        if live.is_empty() {
            return None;
        }
        live.iter().copied().find(|&r| r > self.me).or_else(|| live.first().copied())
    }
}

impl InlineDetector for NeighborRingDetector {
    fn tick(&mut self, proc: &GaspiProc) -> Vec<Rank> {
        let now = Instant::now();
        if let Some(last) = self.last {
            if now.duration_since(last) < self.interval {
                return Vec::new();
            }
        }
        self.last = Some(now);
        let t0 = Instant::now();
        let mut newly = Vec::new();
        if let Some(next) = self.successor() {
            if proc.proc_ping(next, self.ping_timeout).is_err() {
                self.suspected.push(next);
                newly.push(next);
                // Escalate: all-to-all for the global health view.
                self.escalations += 1;
                for &r in &self.peers {
                    if self.suspected.contains(&r) {
                        continue;
                    }
                    if proc.proc_ping(r, self.ping_timeout).is_err() {
                        self.suspected.push(r);
                        newly.push(r);
                    }
                }
            }
        }
        self.spent += t0.elapsed();
        newly
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn name(&self) -> &'static str {
        "neighbor-ring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_gaspi::{GaspiConfig, GaspiWorld};

    #[test]
    fn all_to_all_detects_all_failures() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(5));
        world.fault().kill_rank(2);
        world.fault().kill_rank(3);
        let p = world.proc_handle(0);
        let mut d = AllToAllDetector::new(vec![1, 2, 3, 4], Duration::ZERO, Timeout::Ms(300));
        let mut newly = d.tick(&p);
        newly.sort_unstable();
        assert_eq!(newly, vec![2, 3]);
        // Second tick: nothing new, already suspected.
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.tick(&p).is_empty());
        assert!(d.time_spent() > Duration::ZERO);
    }

    #[test]
    fn neighbor_ring_escalates_to_global_view() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(5));
        world.fault().kill_rank(1);
        world.fault().kill_rank(3);
        let p = world.proc_handle(0);
        let mut d =
            NeighborRingDetector::new(0, vec![1, 2, 3, 4], Duration::ZERO, Timeout::Ms(300));
        // Successor of 0 is 1 (dead) → escalation finds 3 as well.
        let mut newly = d.tick(&p);
        newly.sort_unstable();
        assert_eq!(newly, vec![1, 3]);
        assert_eq!(d.escalations, 1);
        // New successor is 2 (alive): quiet tick.
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.tick(&p).is_empty());
    }

    #[test]
    fn ring_wraps_around() {
        let d = NeighborRingDetector::new(4, vec![0, 1, 2, 3], Duration::ZERO, Timeout::Ms(100));
        assert_eq!(d.successor(), Some(0));
    }

    #[test]
    fn interval_gates_ticks() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(2));
        let p = world.proc_handle(0);
        let mut d = AllToAllDetector::new(vec![1], Duration::from_secs(3600), Timeout::Ms(100));
        let _ = d.tick(&p);
        let before = d.time_spent();
        // Gated: no pings, no time accrued.
        assert!(d.tick(&p).is_empty());
        assert_eq!(d.time_spent(), before);
    }
}
