//! The dedicated fault detector process.
//!
//! Implements the paper's Listing 1 (`glo_health_chk`) and §IV-A: a
//! designated spare process periodically pings every other process with
//! `gaspi_proc_ping`; a `GASPI_ERROR` return marks the process failed and
//! adds it to the avoid-list. After a scan that found failures, the FD
//! assigns rescue processes from the idle pool, bumps the recovery epoch,
//! and acknowledges the failure to all healthy processes by one-sided
//! writes into their control segments.
//!
//! A *threaded* FD (`threads > 1`) pings many processes concurrently —
//! the configuration behind the paper's "3 simultaneous failures detected
//! at the cost of a single failure" result.

use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

use ft_cluster::Rank;
use ft_gaspi::{GaspiProc, Timeout};

use crate::ack::{self, CTRL_SEG, DONE_NOTIF};
use crate::error::{FtError, FtResult};
use crate::events::{EventKind, EventLog};
use crate::layout::WorldLayout;
use crate::plan::{RecoveryPlan, NO_RESCUE};

/// Fault detector tuning.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Pause between ping scans (the paper uses 3 s; the simulation
    /// defaults to 30 ms — same mechanism, scaled clock).
    pub scan_interval: Duration,
    /// Per-ping timeout.
    pub ping_timeout: Timeout,
    /// Ping threads (1 = the sequential scan of Listing 1; the paper uses
    /// 8 for the simultaneous-failure experiment).
    pub threads: usize,
    /// Queue used for acknowledgment writes.
    pub ack_queue: u16,
    /// Timeout for flushing acknowledgment writes.
    pub ack_timeout: Timeout,
    /// Post each scan as one epoch-batched fan-out
    /// ([`glo_health_chk_batched`]) instead of a ping per target. On the
    /// in-memory backend a batch traverses the transport's shard locks
    /// once per scan, which is what keeps scan time linear in targets out
    /// to 4096 ranks. `false` restores Listing 1's per-ping loop
    /// ([`glo_health_chk`]); both report the same failed set.
    pub batch: bool,
    /// Hysteresis before a batched scan's suspects are re-ping-verified.
    /// A link fault that breaks and heals within this window never
    /// surfaces as a detection — the verifying re-ping crosses the healed
    /// link — so transient partitions shorter than the grace cause no
    /// spurious recovery. `ZERO` (the default) verifies immediately, the
    /// pre-link-fault behavior.
    pub suspect_grace: Duration,
    /// Prefer each app rank's *designated shadow* spare
    /// ([`WorldLayout::designated_shadow`]) when assigning a rescue, so a
    /// replication strategy's hot standby is the process that adopts the
    /// state it has been mirroring. Falls back to the ordinary pool order
    /// when the designated spare is unavailable.
    pub designated_shadows: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            scan_interval: Duration::from_millis(30),
            ping_timeout: Timeout::Ms(200),
            threads: 1,
            ack_queue: 0,
            ack_timeout: Timeout::Ms(2000),
            batch: true,
            suspect_grace: Duration::ZERO,
            designated_shadows: false,
        }
    }
}

/// One detection/acknowledgment round, on the job clock.
#[derive(Debug, Clone)]
pub struct FdRecovery {
    /// Epoch this round produced.
    pub epoch: u64,
    /// Ranks detected this round.
    pub detected: Vec<Rank>,
    /// When the failing pings were confirmed.
    pub t_detect: Duration,
    /// When the acknowledgment broadcast finished.
    pub t_ack: Duration,
}

/// What the detector did over its lifetime.
///
/// The same scan and recovery instants are also recorded into the job's
/// [`EventLog`] (as `FdScan` / `FdDetect` / `FdAck` events), which is
/// what `ft-telemetry`'s reporter reconstructs Table I's scan statistics
/// and the OHF1 detection times from.
#[derive(Debug, Clone, Default)]
pub struct DetectorOutcome {
    /// Total scans performed.
    pub scans: u64,
    /// Durations of *failure-free* scans (the paper's "avg ping scan
    /// time", Table I).
    pub scan_times: Vec<Duration>,
    /// Detection rounds.
    pub recoveries: Vec<FdRecovery>,
    /// Set when the FD had to join the workers itself (paper restriction
    /// 2): the caller must transition into the rescue path with this plan.
    pub promoted_plan: Option<RecoveryPlan>,
    /// Set when failures exceeded the spare pool (restriction 1).
    pub capacity_exhausted: bool,
}

impl DetectorOutcome {
    /// Mean failure-free scan time.
    pub fn avg_scan_time(&self) -> Option<Duration> {
        if self.scan_times.is_empty() {
            return None;
        }
        let total: Duration = self.scan_times.iter().sum();
        Some(total / self.scan_times.len() as u32)
    }
}

/// The paper's `glo_health_chk`: ping every rank in `targets` and return
/// those whose ping errored, in ascending rank order. With `threads > 1`
/// the targets are partitioned across scoped ping threads.
pub fn glo_health_chk(
    proc: &GaspiProc,
    targets: &[Rank],
    ping_timeout: Timeout,
    threads: usize,
) -> Vec<Rank> {
    let mut failed: Vec<Rank> = if threads <= 1 || targets.len() <= 1 {
        targets.iter().copied().filter(|&r| proc.proc_ping(r, ping_timeout).is_err()).collect()
    } else {
        let chunk = targets.len().div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .map(|part| {
                    let p = proc.clone();
                    s.spawn(move || {
                        part.iter()
                            .copied()
                            .filter(|&r| p.proc_ping(r, ping_timeout).is_err())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("ping thread")).collect()
        })
    };
    failed.sort_unstable();
    failed
}

/// The epoch-batched form of [`glo_health_chk`]: all targets are pinged
/// through one `Transport::call_fanout` batch (one shard-lock pass, one
/// shared payload) and a single poll collects every answer. Returns the
/// same failed set as the sequential scan — a rank is failed if its ping
/// broke or went unanswered — in ascending rank order.
///
/// The batch shares one `ping_timeout` window across *all* targets,
/// which under CPU load can time out healthy stragglers the sequential
/// loop (one full window per ping) would have waited for. Suspecting a
/// healthy rank is contract-legal — recovery enforces suspects with
/// `proc_kill` — but it burns a spare and makes replays of the same
/// seeded run diverge. So every suspect from the batch is *verified*
/// with an individual re-ping (its own full window) before being
/// reported; genuinely dead ranks confirm in ≈`break_detect` time, so
/// the flat detection-latency shape is untouched, and an all-healthy
/// scan stays a single batch.
pub fn glo_health_chk_batched(
    proc: &GaspiProc,
    targets: &[Rank],
    ping_timeout: Timeout,
) -> Vec<Rank> {
    glo_health_chk_graced(proc, targets, ping_timeout, Duration::ZERO)
}

/// [`glo_health_chk_batched`] with a hysteresis window: suspects from the
/// batch sit out `grace` before the verifying re-ping, so a link fault
/// that heals within the window (see [`DetectorConfig::suspect_grace`])
/// never surfaces as a detection. An all-healthy batch pays nothing.
pub fn glo_health_chk_graced(
    proc: &GaspiProc,
    targets: &[Rank],
    ping_timeout: Timeout,
    grace: Duration,
) -> Vec<Rank> {
    let suspects = match proc.proc_ping_many(targets, ping_timeout) {
        Ok(s) => s,
        Err(_) => targets.to_vec(),
    };
    if !suspects.is_empty() && !grace.is_zero() {
        std::thread::sleep(grace);
    }
    suspects.into_iter().filter(|&r| proc.proc_ping(r, ping_timeout).is_err()).collect()
}

/// Mutable detection state. It is reconstructible from the last broadcast
/// plan (the plan is cumulative by design), which is what allows a
/// *shadow* detector to take over when the primary dies — the redundancy
/// approach the paper proposes as future work (§VIII).
#[derive(Debug, Clone)]
pub struct DetectorState {
    /// Cumulative failed ranks (the avoid-list).
    pub failed_cum: Vec<Rank>,
    /// Parallel cumulative rescue assignments.
    pub rescues_cum: Vec<Rank>,
    /// Remaining idle pool, in activation order.
    pub idle_pool: VecDeque<Rank>,
    /// Last acknowledged epoch.
    pub epoch: u64,
    /// Set when this detector is not the layout-default FD (a shadow that
    /// took over).
    pub fd_rank_override: Option<Rank>,
}

impl DetectorState {
    /// Fresh state for the primary FD. `reserved` ranks (e.g. the shadow
    /// detector) are withheld from the rescue pool.
    pub fn fresh(layout: &WorldLayout, reserved: &[Rank]) -> Self {
        Self {
            failed_cum: Vec::new(),
            rescues_cum: Vec::new(),
            idle_pool: layout.idle_pool().filter(|r| !reserved.contains(r)).collect(),
            epoch: 0,
            fd_rank_override: None,
        }
    }

    /// Reconstruct state from the last plan a shadow received.
    pub fn from_plan(layout: &WorldLayout, plan: &RecoveryPlan, reserved: &[Rank]) -> Self {
        Self {
            failed_cum: plan.failed.clone(),
            rescues_cum: plan.rescues.clone(),
            idle_pool: layout
                .idle_pool()
                .filter(|r| {
                    !reserved.contains(r) && !plan.failed.contains(r) && !plan.rescues.contains(r)
                })
                .collect(),
            epoch: plan.epoch,
            fd_rank_override: None,
        }
    }

    /// Record the old FD's death and this rank's takeover: one epoch bump
    /// carrying the new detector rank to everyone.
    pub fn register_takeover(&mut self, dead_fd: Rank, me: Rank) {
        if !self.failed_cum.contains(&dead_fd) {
            self.failed_cum.push(dead_fd);
            self.rescues_cum.push(NO_RESCUE);
        }
        self.idle_pool.retain(|&x| x != dead_fd && x != me);
        self.epoch += 1;
        self.fd_rank_override = Some(me);
    }

    /// The plan describing this state.
    pub fn plan(&self, fd_alive: bool) -> RecoveryPlan {
        RecoveryPlan {
            epoch: self.epoch,
            failed: self.failed_cum.clone(),
            rescues: self.rescues_cum.clone(),
            fd_alive,
            fd_rank: self.fd_rank_override,
        }
    }
}

/// Run the dedicated FD until the application signals completion, the
/// spare pool forces a promotion, or capacity is exhausted. The control
/// segment must already exist.
pub fn run_detector(
    proc: &GaspiProc,
    layout: &WorldLayout,
    cfg: &DetectorConfig,
    events: &EventLog,
) -> FtResult<DetectorOutcome> {
    run_detector_from(proc, layout, cfg, events, DetectorState::fresh(layout, &[]))
}

/// [`run_detector`] starting from prior state (fresh for the primary FD,
/// reconstructed-from-plan for a shadow after takeover).
pub fn run_detector_from(
    proc: &GaspiProc,
    layout: &WorldLayout,
    cfg: &DetectorConfig,
    events: &EventLog,
    state: DetectorState,
) -> FtResult<DetectorOutcome> {
    let me = proc.rank();
    let mut out = DetectorOutcome::default();
    let DetectorState {
        mut failed_cum,
        mut rescues_cum,
        mut idle_pool,
        mut epoch,
        fd_rank_override,
    } = state;

    let done = |p: &GaspiProc| -> FtResult<bool> { Ok(p.notify_peek(CTRL_SEG, DONE_NOTIF)? != 0) };

    loop {
        if done(proc)? {
            let alive = alive_targets(layout, &failed_cum, me);
            ack::broadcast_shutdown(proc, &alive, cfg.ack_queue, cfg.ack_timeout)?;
            return Ok(out);
        }

        // One scan cycle over all non-avoided ranks (Listing 1).
        let avoid: HashSet<Rank> = failed_cum.iter().copied().collect();
        let targets: Vec<Rank> =
            (0..layout.total()).filter(|&r| r != me && !avoid.contains(&r)).collect();
        let t0 = Instant::now();
        let mut newly = if cfg.batch {
            glo_health_chk_graced(proc, &targets, cfg.ping_timeout, cfg.suspect_grace)
        } else {
            glo_health_chk(proc, &targets, cfg.ping_timeout, cfg.threads)
        };
        // Merge worker-reported suspects (the link-fault path): a severed
        // worker↔worker link breaks the workers' one-sided ops while the
        // FD's own pings — crossing intact FD links — keep succeeding, so
        // reports are trusted without a re-ping. Recovery then enforces
        // the suspect's death via `proc_kill` (§IV-A-a).
        for r in ack::drain_suspects(proc, layout.total()).unwrap_or_default() {
            if targets.contains(&r) && !newly.contains(&r) {
                newly.push(r);
            }
        }
        newly.sort_unstable();
        let dur = t0.elapsed();
        out.scans += 1;
        events.record(
            me,
            EventKind::FdScan {
                dur,
                targets: targets.len() as u32,
                found_failures: !newly.is_empty(),
            },
        );
        if newly.is_empty() {
            out.scan_times.push(dur);
        } else {
            let t_detect = events.now();
            epoch += 1;
            // Assign rescues against the rank map as of the previous epoch.
            let prev = RecoveryPlan {
                epoch: epoch - 1,
                failed: failed_cum.clone(),
                rescues: rescues_cum.clone(),
                fd_alive: true,
                fd_rank: None,
            };
            let mut map = prev.rank_map(layout);
            let mut promoted = false;
            let mut exhausted = false;
            for &f in &newly {
                failed_cum.push(f);
                idle_pool.retain(|&x| x != f);
                if let Some(app) = map.app_of(f) {
                    // A worker died: it needs a rescue. With designated
                    // shadows on, the app rank's own standby spare is
                    // preferred while it is still in the pool.
                    let designated = cfg
                        .designated_shadows
                        .then(|| layout.designated_shadow(app))
                        .filter(|d| idle_pool.contains(d));
                    if let Some(d) = designated {
                        idle_pool.retain(|&x| x != d);
                    }
                    let rescue = designated.or_else(|| idle_pool.pop_front()).or_else(|| {
                        if promoted {
                            None
                        } else {
                            // "The FD process itself joins the worker
                            // group if no idle process is further
                            // available." (§IV-D)
                            promoted = true;
                            Some(me)
                        }
                    });
                    match rescue {
                        Some(r) => {
                            map.transfer(f, r);
                            rescues_cum.push(r);
                        }
                        None => {
                            exhausted = true;
                            rescues_cum.push(NO_RESCUE);
                        }
                    }
                } else {
                    // A failed idle consumes no rescue.
                    rescues_cum.push(NO_RESCUE);
                }
            }
            events.record(me, EventKind::FdDetect { epoch, failed: newly.clone() });
            let plan = RecoveryPlan {
                epoch,
                failed: failed_cum.clone(),
                rescues: rescues_cum.clone(),
                fd_alive: !promoted,
                fd_rank: fd_rank_override,
            };
            let alive = alive_targets(layout, &failed_cum, me);
            // Ranks whose ack write fails will be detected next scan.
            let _undelivered =
                ack::broadcast_plan(proc, &plan, &alive, cfg.ack_queue, cfg.ack_timeout)?;
            events.record(me, EventKind::FdAck { epoch });
            let t_ack = events.now();
            out.recoveries.push(FdRecovery { epoch, detected: newly, t_detect, t_ack });

            if exhausted {
                events.record(me, EventKind::CapacityExhausted);
                ack::broadcast_shutdown(proc, &alive, cfg.ack_queue, cfg.ack_timeout)?;
                out.capacity_exhausted = true;
                return Err(FtError::CapacityExhausted);
            }
            if promoted {
                events.record(me, EventKind::FdPromoted);
                out.promoted_plan = Some(plan);
                return Ok(out);
            }
        }

        // Sleep the scan interval in small laps so the done signal is
        // honored promptly (and a killed FD unwinds quickly).
        let deadline = Instant::now() + cfg.scan_interval;
        while Instant::now() < deadline {
            if done(proc)? {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn alive_targets(layout: &WorldLayout, failed: &[Rank], me: Rank) -> Vec<Rank> {
    (0..layout.total()).filter(|&r| r != me && !failed.contains(&r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_gaspi::{GaspiConfig, GaspiWorld};

    #[test]
    fn health_chk_finds_the_dead() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(6));
        world.fault().kill_rank(2);
        world.fault().kill_rank(4);
        let p = world.proc_handle(5);
        let failed = glo_health_chk(&p, &[0, 1, 2, 3, 4], Timeout::Ms(500), 1);
        assert_eq!(failed, vec![2, 4]);
    }

    #[test]
    fn threaded_health_chk_matches_sequential() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(10));
        world.fault().kill_rank(1);
        world.fault().kill_rank(7);
        world.fault().kill_rank(8);
        let p = world.proc_handle(9);
        let targets: Vec<Rank> = (0..9).collect();
        let seq = glo_health_chk(&p, &targets, Timeout::Ms(500), 1);
        let par = glo_health_chk(&p, &targets, Timeout::Ms(500), 4);
        assert_eq!(seq, par);
        assert_eq!(seq, vec![1, 7, 8]);
    }

    #[test]
    fn batched_health_chk_matches_sequential() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(10));
        world.fault().kill_rank(1);
        world.fault().kill_rank(7);
        world.fault().kill_rank(8);
        let p = world.proc_handle(9);
        let targets: Vec<Rank> = (0..9).collect();
        let seq = glo_health_chk(&p, &targets, Timeout::Ms(500), 1);
        let bat = glo_health_chk_batched(&p, &targets, Timeout::Ms(500));
        assert_eq!(seq, bat);
        assert_eq!(bat, vec![1, 7, 8]);
        // One transport batch per scan, not one post per target.
        assert_eq!(
            world.transport().metrics().batch_posts.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn batched_health_chk_all_healthy_is_empty() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(8));
        let p = world.proc_handle(7);
        let targets: Vec<Rank> = (0..7).collect();
        assert!(glo_health_chk_batched(&p, &targets, Timeout::Ms(500)).is_empty());
    }

    #[test]
    fn graced_chk_forgives_a_link_that_heals_in_the_window() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(4));
        let p = world.proc_handle(3);
        world.fault().break_link(3, 1);
        let fault = world.fault();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            fault.heal_link(3, 1);
        });
        let failed =
            glo_health_chk_graced(&p, &[0, 1, 2], Timeout::Ms(20), Duration::from_millis(150));
        h.join().unwrap();
        assert!(failed.is_empty(), "link healed within the grace must not be a detection");
        // The same fault without the grace is reported immediately.
        world.fault().break_link(3, 1);
        assert_eq!(glo_health_chk_batched(&p, &[0, 1, 2], Timeout::Ms(20)), vec![1]);
    }

    #[test]
    fn avg_scan_time() {
        let mut o = DetectorOutcome::default();
        assert!(o.avg_scan_time().is_none());
        o.scan_times = vec![Duration::from_millis(2), Duration::from_millis(4)];
        assert_eq!(o.avg_scan_time(), Some(Duration::from_millis(3)));
    }
}
