//! Group-consistent checkpoint restore.
//!
//! All workers checkpoint at the same iterations, but a failure can strike
//! *during* checkpointing, leaving some ranks one version ahead. "In case
//! of a restart, the data is initialized from a consistent checkpoint"
//! (§IV-E): the group agrees on the newest version *every* member can
//! restore (an allreduce-min) and everyone restores exactly that one.
//!
//! A rescue process restores the checkpoint written by its failed
//! *predecessor* (located via the plan's adoption history) and immediately
//! re-homes it under its own rank, so subsequent recoveries resolve
//! uniformly.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CopyPolicy, RestoreOutcome, Restored};
use ft_cluster::Rank;
use ft_gaspi::ReduceOp;

use crate::driver::FtCtx;
use crate::error::FtResult;
use crate::events::EventKind;
use crate::plan::RecoveryPlan;

/// Versions are shifted by one on the wire so that 0 means "nothing
/// restorable" — a member with no checkpoint then correctly drags the
/// group minimum to "restart from scratch" instead of being ignored.
fn encode_version(v: Option<u64>) -> u64 {
    v.map_or(0, |v| v + 1)
}

/// The rank whose checkpoints `me` must restore: its failed predecessor if
/// `me` is a rescue in `plan` (the *last* adoption wins for chained
/// failures), otherwise `me` itself.
pub fn restore_source(plan: &RecoveryPlan, me: Rank) -> Rank {
    plan.failed
        .iter()
        .zip(&plan.rescues)
        .rev()
        .find(|&(_, &r)| r == me)
        .map(|(&f, _)| f)
        .unwrap_or(me)
}

/// Agree on and restore the newest group-consistent checkpoint.
///
/// Two collective rounds:
///
/// 1. **Vote**: allreduce-min over each member's newest restorable
///    version. A member with nothing drags the vote to "restart from
///    scratch".
/// 2. **Confirm**: every member attempts to fetch the voted version and
///    the group allreduce-mins the success flags. This round is what
///    makes the protocol robust to *asymmetric availability*: a process
///    that died before its library thread finished replicating leaves its
///    rescue with an *older* version than the survivors still hold — the
///    survivors may have pruned that older version locally, so a version
///    someone voted for is not necessarily available to everyone else.
///    If anyone misses, the whole group restarts from scratch together
///    (divergence would be worse than redone work; and since the
///    applications are reduction-order deterministic, the redone prefix
///    rewrites bit-identical checkpoints).
///
/// `source` is this rank's [`FtCtx::restore_source`]. Returns `Ok(None)`
/// for the collective restart-from-scratch decision. When this rank
/// restored a predecessor's checkpoint, it re-homes it under its own rank
/// before returning.
pub fn consistent_restore(
    ctx: &FtCtx,
    ck: &Checkpointer,
    source: Rank,
    fetch_timeout: Duration,
) -> FtResult<Option<Restored>> {
    let me = ctx.proc.rank();
    let probed = ck.latest_restorable(source, fetch_timeout);
    if let Some(reason) = probed.miss_reason() {
        // Not-found is the normal fresh-start vote; a timeout or a
        // checksum mismatch means state existed but was unusable — worth
        // an event, since it degrades the whole group's vote.
        if !matches!(probed, RestoreOutcome::NotFound) {
            ctx.events.record(me, EventKind::RestoreMiss { stage: "vote", reason });
        }
    }
    let mine = encode_version(probed.hit());
    let agreed = ctx.allreduce_u64_ft(&[mine], ReduceOp::Min)?[0];
    if agreed == 0 {
        // At least one member has nothing at all: fresh start. (No
        // confirmation round needed — nothing to confirm.)
        return Ok(None);
    }
    let version = agreed - 1;
    let fetched = ck.restore_exact(source, version, fetch_timeout);
    if let Some(reason) = fetched.miss_reason() {
        ctx.events.record(me, EventKind::RestoreMiss { stage: "fetch", reason });
    }
    let ok = u64::from(fetched.is_hit());
    let all_ok = ctx.allreduce_u64_ft(&[ok], ReduceOp::Min)?[0] == 1;
    if !all_ok {
        return Ok(None);
    }
    let restored = fetched.hit().expect("confirmed fetch");
    if source != me {
        // Re-home the adopted state under our own rank so the next
        // recovery resolves it locally. The commit is full (fresh chunk
        // table), so the rescue's replica holder gets a self-contained
        // base image.
        ck.commit(restored.version, restored.data.clone(), CopyPolicy::Replicate);
    }
    Ok(Some(restored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NO_RESCUE;

    #[test]
    fn source_is_self_for_survivors() {
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![2],
            rescues: vec![5],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(restore_source(&plan, 0), 0);
        assert_eq!(restore_source(&plan, 5), 2);
    }

    #[test]
    fn chained_adoption_takes_last() {
        // rank2 → rescue5 (epoch 1); rank5 → rescue6 (epoch 2).
        let plan = RecoveryPlan {
            epoch: 2,
            failed: vec![2, 5],
            rescues: vec![5, 6],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(restore_source(&plan, 6), 5);
        // 5 is dead; if asked (it isn't), it would still resolve to 2.
        assert_eq!(restore_source(&plan, 5), 2);
    }

    #[test]
    fn no_rescue_entries_are_ignored() {
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![4],
            rescues: vec![NO_RESCUE],
            fd_alive: true,
            fd_rank: None,
        };
        assert_eq!(restore_source(&plan, 3), 3);
    }
}
