//! Job-wide event log for overhead decomposition.
//!
//! The paper decomposes failure overhead into detection (OHF1), group
//! rebuild (OHF2), data re-initialization (OHF3), and redo-work time
//! (Fig. 4). The log is shared by every rank of a job — including ranks
//! that later die, whose entries survive them — and the benchmark
//! harnesses reconstruct the decomposition from it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ft_cluster::Rank;

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Worker finished its setup (pre-processing) phase.
    SetupDone,
    /// Checkpoint `version` written (locally) at iteration `iter`.
    Checkpoint {
        /// Checkpoint version.
        version: u64,
        /// Iteration at which it was taken.
        iter: u64,
    },
    /// A rank is about to kill itself on schedule (`exit(-1)` style).
    KillFired {
        /// Iteration at which the kill fired.
        iter: u64,
    },
    /// The FD completed one ping scan over `targets` ranks.
    FdScan {
        /// Scan duration.
        dur: Duration,
        /// Ranks pinged.
        targets: u32,
        /// Whether new failures were found in this scan.
        found_failures: bool,
    },
    /// The FD observed new failures (start of OHF1 accounting).
    FdDetect {
        /// New epoch.
        epoch: u64,
        /// Newly failed ranks.
        failed: Vec<Rank>,
    },
    /// The FD finished broadcasting the acknowledgment.
    FdAck {
        /// Epoch acknowledged.
        epoch: u64,
    },
    /// A worker received the failure acknowledgment signal.
    FailureSignal {
        /// Epoch received.
        epoch: u64,
    },
    /// The new worker group committed (end of OHF2).
    GroupRebuilt {
        /// Epoch recovered to.
        epoch: u64,
    },
    /// A restore probe or fetch missed during the consistent-restore
    /// protocol (the group then degrades to an older version or a fresh
    /// start).
    RestoreMiss {
        /// Protocol stage: `"vote"` (latest-restorable probe) or
        /// `"fetch"` (confirm-round exact fetch).
        stage: &'static str,
        /// Why it missed: `"not-found"`, `"timeout"`, or
        /// `"checksum-mismatch"` (see `RestoreOutcome::miss_reason`).
        reason: &'static str,
    },
    /// State restored from a checkpoint (end of OHF3).
    Restored {
        /// Epoch recovered to.
        epoch: u64,
        /// Iteration resumed from.
        iter: u64,
    },
    /// The worker re-reached its pre-failure iteration (end of redo).
    RedoComplete {
        /// Epoch.
        epoch: u64,
        /// Iteration re-reached.
        iter: u64,
    },
    /// An idle process was activated as a rescue carrying `app_rank`.
    Activated {
        /// Adopted application rank.
        app_rank: u32,
    },
    /// The FD promoted itself to worker (paper restriction 2 reached).
    FdPromoted,
    /// The shadow detector observed the primary FD's death and took over
    /// (the paper's §VIII redundancy proposal).
    FdTakeover {
        /// The dead primary.
        dead_fd: Rank,
    },
    /// A link-fault transition involving this rank was enforced on its
    /// fault plane (on the process backend this severs/refuses real TCP
    /// traffic; in memory it gates simulated delivery).
    LinkFault {
        /// The other endpoint of the affected link.
        peer: Rank,
        /// True for a break, false for a heal.
        broken: bool,
    },
    /// More failures than spares: the job cannot heal (restriction 1).
    CapacityExhausted,
    /// Worker finished the application (at `iter`).
    Finished {
        /// Final iteration count.
        iter: u64,
    },
}

/// A timestamped, rank-tagged event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Time since the job's event log was created.
    pub t: Duration,
    /// GASPI rank that recorded the event.
    pub rank: Rank,
    /// Payload.
    pub kind: EventKind,
}

/// Shared job-wide log.
///
/// Clones share one underlying store, so every rank thread (and any
/// harness watcher) records into — and observes — the same stream:
///
/// ```
/// use ft_core::{EventKind, EventLog};
///
/// let log = EventLog::new();
/// let writer = log.clone(); // e.g. handed to a rank thread
/// writer.record(0, EventKind::SetupDone);
/// writer.record(0, EventKind::Finished { iter: 100 });
///
/// let snapshot = log.snapshot(); // sorted by time
/// assert_eq!(snapshot.len(), 2);
/// let done = log
///     .first_where(|e| matches!(e.kind, EventKind::Finished { .. }))
///     .expect("recorded above");
/// assert_eq!(done.rank, 0);
/// ```
///
/// The benchmark harnesses no longer walk this log by hand; the
/// `ft-telemetry` crate's `OverheadReport` consumes a snapshot and
/// produces the paper's overhead decomposition from it.
#[derive(Clone)]
pub struct EventLog {
    t0: Instant,
    entries: Arc<Mutex<Vec<Event>>>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// Fresh log; `t = 0` is now.
    pub fn new() -> Self {
        Self { t0: Instant::now(), entries: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Record an event for `rank` at the current time.
    pub fn record(&self, rank: Rank, kind: EventKind) {
        let t = self.t0.elapsed();
        self.entries.lock().push(Event { t, rank, kind });
    }

    /// Time since the log was created (the job clock).
    pub fn now(&self) -> Duration {
        self.t0.elapsed()
    }

    /// Snapshot of all events, sorted by time.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut v = self.entries.lock().clone();
        v.sort_by_key(|e| e.t);
        v
    }

    /// First event matching `pred`, by time.
    pub fn first_where(&self, mut pred: impl FnMut(&Event) -> bool) -> Option<Event> {
        self.snapshot().into_iter().find(|e| pred(e))
    }

    /// All events matching `pred`, by time.
    pub fn all_where(&self, mut pred: impl FnMut(&Event) -> bool) -> Vec<Event> {
        self.snapshot().into_iter().filter(|e| pred(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let log = EventLog::new();
        log.record(3, EventKind::SetupDone);
        log.record(1, EventKind::FailureSignal { epoch: 1 });
        log.record(3, EventKind::Finished { iter: 10 });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].t <= w[1].t));
        let f = log.first_where(|e| matches!(e.kind, EventKind::FailureSignal { .. })).unwrap();
        assert_eq!(f.rank, 1);
        assert_eq!(
            log.all_where(|e| e.rank == 3).len(),
            2,
            "rank filter must find both rank-3 events"
        );
    }

    #[test]
    fn clones_share_entries() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.record(0, EventKind::SetupDone);
        assert_eq!(log.snapshot().len(), 1);
    }
}
