//! # ft-core — the paper's fault-tolerance machinery
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§IV): everything needed to turn a GASPI application into one that
//! *heals itself* after fail-stop process/node failures, without
//! restarting the job.
//!
//! The moving parts, mapped to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | idle/worker process categories, spare pool (§IV intro) | [`layout`] |
//! | fault detector process, `glo_health_chk` (Listing 1), threaded FD | [`detector`] |
//! | failure acknowledgment via one-sided writes into global memory | [`ack`] |
//! | workers checking for the ack signal before each communication | [`health`] |
//! | rejected alternatives: all-to-all and neighbor-level pinging (§IV-A-b) | [`baselines`] |
//! | rescue adoption + worker-group reconstruction (Listing 2) | [`plan`], [`recovery`] |
//! | application flow with spare processes (Fig. 3) | [`driver`] |
//! | overhead decomposition OHF1/OHF2/OHF3 (§IV-E) | [`events`] |
//!
//! The entry point for applications is the [`driver::FtApp`] trait plus
//! [`driver::run_ft_job`]: provide `setup` / `step` / `checkpoint` /
//! `restore` / `rewire`, and the driver runs the full Fig. 3 flow — worker
//! group, dedicated FD, idle rescues, non-shrinking recovery — over a
//! simulated cluster with injected failures.

pub mod ack;
pub mod baselines;
pub mod ckpt;
pub mod detector;
pub mod driver;
pub mod error;
pub mod events;
pub mod health;
pub mod layout;
pub mod plan;
pub mod process;
pub mod recovery;
pub mod strategy;

pub use detector::DetectorConfig;
pub use driver::{
    run_ft_job, run_ft_job_with, run_ft_rank, FtApp, FtConfig, FtConfigBuilder, FtConfigError,
    FtCtx, JobReport, RankReport, Role,
};
pub use error::{FtError, FtResult, FtSignal};
pub use events::{Event, EventKind, EventLog};
pub use health::HealthWatch;
pub use layout::{ProcStatus, RankMap, WorldLayout};
pub use plan::RecoveryPlan;
pub use process::{
    child_env, run_child, run_supervisor, ChildEnv, ProcJobReport, ProcOutcome, ProcResult,
    ProcessHost, SupervisorConfig,
};
pub use strategy::{
    Abft, CheckpointRestart, RecoveryStrategy, Replicated, RestoreDecision, StrategyKind,
};
