//! Pluggable recovery strategies (ROADMAP item 4).
//!
//! The paper's recovery model is checkpoint/restart: commit a consistent
//! checkpoint every N iterations, and after a failure vote the group back
//! to the newest version everyone can fetch, then redo the lost work.
//! That model used to be hardwired into the driver; this module turns the
//! recovery seam into a first-class API so three models can be compared
//! head-to-head under the same detector, group-reconstruction and
//! telemetry machinery:
//!
//! | Strategy | steady-state cost | failure cost |
//! |---|---|---|
//! | [`CheckpointRestart`] | one commit per interval | rollback + redo of the lost interval |
//! | [`Abft`] | one XOR-parity allreduce per step | one parity allreduce; **no rollback, no redo** |
//! | [`Replicated`] | one replica push per step | fetch one blob from the mirror stream; no redo |
//!
//! [`Abft`] follows the algorithm-based fault-tolerance line of Bosilca
//! et al. (arXiv:0806.3121): each completed iteration the group XORs the
//! bit patterns of everyone's encoded state into a parity block that every
//! member keeps. After a single failure the survivors XOR their saved
//! blocks with the parity — the result *is* the failed rank's state,
//! bit-exact, because XOR is order-independent (no reduction-order
//! rounding). [`Replicated`] approximates replication-based FT (FTHP-MPI,
//! arXiv:2504.09989): state is pushed to a hot-standby mirror stream every
//! step and a *designated shadow* spare adopts a failed rank without a
//! group-wide restore vote over checkpoint versions.
//!
//! The driver calls the strategy at three points: [`RecoveryStrategy::
//! prepare`] after every completed iteration, [`RecoveryStrategy::
//! on_failure`] once a recovery plan is adopted, and [`RecoveryStrategy::
//! restore`] after the group is rebuilt and the app rewired. Applications
//! plug in through four small [`FtApp`] hooks
//! (`state_stream` / `export_state` / `load_state` / `reset_state`)
//! instead of hand-rolling the restore loop.

use std::collections::VecDeque;
use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy};
use ft_gaspi::{ReduceOp, ALLREDUCE_MAX_ELEMS};

use crate::driver::{FtApp, FtCtx};
use crate::error::{FtError, FtResult};
use crate::events::EventKind;
use crate::plan::RecoveryPlan;

/// What a strategy decided after a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreDecision {
    /// Resume computing from this iteration (state already installed).
    Resume {
        /// First iteration to (re-)execute.
        iter: u64,
    },
    /// Collective fresh start from iteration 0: at least one member had
    /// nothing usable, and divergence would be worse than redone work.
    Fresh,
}

impl RestoreDecision {
    /// The iteration the worker loop continues from.
    pub fn resume_iter(self) -> u64 {
        match self {
            RestoreDecision::Resume { iter } => iter,
            RestoreDecision::Fresh => 0,
        }
    }
}

/// A pluggable recovery model, driven by the worker loop.
///
/// One instance exists per worker/rescue rank; all members of a job must
/// run the *same* strategy (the `prepare`/`restore` protocols are
/// collective).
pub trait RecoveryStrategy<A: FtApp> {
    /// Strategy name as it appears in reports.
    fn name(&self) -> &'static str;

    /// Called after every completed iteration (`iter` iterations done),
    /// *before* the failure-free path continues. This is where a strategy
    /// pays its steady-state cost: interval checkpoints, parity encoding,
    /// replica pushes.
    fn prepare(&mut self, ctx: &FtCtx, app: &mut A, iter: u64) -> FtResult<()>;

    /// Called once a recovery plan is adopted, before `restore`: refresh
    /// strategy-owned resources (mirror streams, neighbor lists) for the
    /// new rank map.
    fn on_failure(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()>;

    /// Called after the worker group is rebuilt and the app rewired:
    /// bring every member (survivors and freshly adopted rescues) to one
    /// consistent state and decide where computation resumes.
    fn restore(&mut self, ctx: &FtCtx, app: &mut A) -> FtResult<RestoreDecision>;
}

/// Strategy selection, carried by [`FtConfig`](crate::driver::FtConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// The paper's model: interval checkpoints + group-consistent
    /// rollback (behavior-preserving default).
    #[default]
    CheckpointRestart,
    /// Checksum (XOR-parity) encoding; reconstruction instead of
    /// rollback.
    Abft,
    /// Hot-standby replication onto designated shadow spares.
    Replicated,
}

impl StrategyKind {
    /// Name as it appears in reports and config surfaces.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::CheckpointRestart => "checkpoint-restart",
            StrategyKind::Abft => "abft",
            StrategyKind::Replicated => "replicated",
        }
    }

    /// Construct the per-rank strategy instance for an `A`-typed job.
    pub fn build<A: FtApp>(self, ctx: &FtCtx) -> Box<dyn RecoveryStrategy<A>> {
        match self {
            StrategyKind::CheckpointRestart => Box::new(CheckpointRestart),
            StrategyKind::Abft => Box::new(Abft::new()),
            StrategyKind::Replicated => Box::new(Replicated::new(ctx)),
        }
    }
}

/// The driver-level restore helper every app used to hand-roll: agree on
/// the newest group-consistent checkpoint through the app's
/// [`state_stream`](crate::driver::FtApp::state_stream), install it via
/// [`load_state`](crate::driver::FtApp::load_state), or
/// [`reset_state`](crate::driver::FtApp::reset_state) on the collective
/// fresh-start vote. Returns the iteration to resume from.
pub fn checkpoint_restore<A: FtApp + ?Sized>(app: &mut A, ctx: &FtCtx) -> FtResult<u64> {
    let restored = {
        let (ck, timeout) = app.state_stream().ok_or(FtError::Unsupported("state_stream"))?;
        crate::ckpt::consistent_restore(ctx, ck, ctx.restore_source(), timeout)?
    };
    match restored {
        Some(r) => app.load_state(ctx, &r.data),
        None => {
            app.reset_state(ctx)?;
            Ok(0)
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restart
// ---------------------------------------------------------------------

/// The paper's recovery model, verbatim: checkpoint every
/// `checkpoint_every` iterations, restore by group vote, redo the lost
/// interval.
#[derive(Debug, Default)]
pub struct CheckpointRestart;

impl<A: FtApp> RecoveryStrategy<A> for CheckpointRestart {
    fn name(&self) -> &'static str {
        "checkpoint-restart"
    }

    fn prepare(&mut self, ctx: &FtCtx, app: &mut A, iter: u64) -> FtResult<()> {
        if ctx.cfg.checkpoint_every > 0 && iter.is_multiple_of(ctx.cfg.checkpoint_every) {
            app.checkpoint(ctx, iter)?;
            ctx.proc.injection_site("driver.checkpoint.commit");
            let version = iter / ctx.cfg.checkpoint_every;
            ctx.events.record(ctx.proc.rank(), EventKind::Checkpoint { version, iter });
        }
        Ok(())
    }

    fn on_failure(&mut self, _ctx: &FtCtx, _plan: &RecoveryPlan) -> FtResult<()> {
        Ok(())
    }

    fn restore(&mut self, ctx: &FtCtx, app: &mut A) -> FtResult<RestoreDecision> {
        Ok(RestoreDecision::Resume { iter: app.restore(ctx)? })
    }
}

// ---------------------------------------------------------------------
// ABFT: XOR-parity checksum encoding
// ---------------------------------------------------------------------

/// One encoded generation: this rank's padded state block and the group
/// parity, both `len` `u64` words.
#[derive(Debug)]
struct Generation {
    iter: u64,
    block: Vec<u64>,
    parity: Vec<u64>,
}

/// Checksum-encoded recovery: every step the group XOR-reduces the bit
/// patterns of everyone's encoded state into a parity block; a single
/// lost rank's state is reconstructed from the survivors' blocks and the
/// parity — bit-exact, with no rollback and no redo.
///
/// Two generations are kept: the parity allreduce inside `prepare` is a
/// synchronization point, so survivors can only ever straddle *adjacent*
/// generations and the group minimum is always in everyone's window.
/// More than one simultaneous failure exceeds the single-erasure code and
/// degrades to a collective fresh start (still correct, just slower).
#[derive(Debug, Default)]
pub struct Abft {
    history: VecDeque<Generation>,
}

impl Abft {
    /// A strategy instance with empty history.
    pub fn new() -> Self {
        Self::default()
    }

    fn generation(&self, iter: u64) -> Option<&Generation> {
        self.history.iter().find(|g| g.iter == iter)
    }
}

/// Pack a state blob into XOR-able `u64` words: `[byte_len ∥ bytes ∥
/// zero-pad]`. The length header makes the padded block self-describing,
/// so reconstruction can recover the exact blob even after padding to the
/// group-wide maximum.
fn pack_block(blob: &[u8]) -> Vec<u64> {
    let mut words = Vec::with_capacity(1 + blob.len().div_ceil(8));
    words.push(blob.len() as u64);
    for chunk in blob.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(b));
    }
    words
}

/// Inverse of [`pack_block`]; `None` when the length header is torn.
fn unpack_block(words: &[u64]) -> Option<Vec<u8>> {
    let len = *words.first()? as usize;
    if len > (words.len() - 1) * 8 {
        return None;
    }
    let mut blob: Vec<u8> = words[1..].iter().flat_map(|w| w.to_le_bytes()).collect();
    blob.truncate(len);
    Some(blob)
}

/// Group XOR-allreduce of an arbitrary-length word block (chunked under
/// the GASPI 255-element collective cap).
fn xor_allreduce(ctx: &FtCtx, words: &[u64]) -> FtResult<Vec<u64>> {
    let mut out = Vec::with_capacity(words.len());
    for chunk in words.chunks(ALLREDUCE_MAX_ELEMS) {
        out.extend(ctx.allreduce_u64_ft(chunk, ReduceOp::BitXor)?);
    }
    Ok(out)
}

impl<A: FtApp> RecoveryStrategy<A> for Abft {
    fn name(&self) -> &'static str {
        "abft"
    }

    fn prepare(&mut self, ctx: &FtCtx, app: &mut A, iter: u64) -> FtResult<()> {
        let blob = app.export_state(ctx, iter)?.ok_or(FtError::Unsupported("export_state"))?;
        let mut block = pack_block(&blob);
        // State sizes may differ across ranks; agree on a common padded
        // width so the parity covers every block end to end.
        let width = ctx.allreduce_u64_ft(&[block.len() as u64], ReduceOp::Max)?[0] as usize;
        block.resize(width, 0);
        let parity = xor_allreduce(ctx, &block)?;
        ctx.proc.injection_site("strategy.abft.encode");
        self.history.push_back(Generation { iter, block, parity });
        while self.history.len() > 2 {
            self.history.pop_front();
        }
        Ok(())
    }

    fn on_failure(&mut self, _ctx: &FtCtx, _plan: &RecoveryPlan) -> FtResult<()> {
        Ok(())
    }

    fn restore(&mut self, ctx: &FtCtx, app: &mut A) -> FtResult<RestoreDecision> {
        let adopted = ctx.restore_source() != ctx.proc.rank();
        // One Min-agreement round carrying two values:
        //   [0] the generation vote — survivors offer their newest
        //       encoded generation (+1 so 0 means "nothing"), adopted
        //       rescues abstain with MAX;
        //   [1] the designated-parity bid — the lowest surviving app
        //       rank will fold the parity into its contribution.
        let newest = self.history.back().map(|g| g.iter);
        let vote = if adopted { u64::MAX } else { newest.map_or(0, |i| i + 1) };
        let bid = if adopted || newest.is_none() { u64::MAX } else { u64::from(ctx.app_rank()) };
        let agreed = ctx.allreduce_u64_ft(&[vote, bid], ReduceOp::Min)?;
        let (vote, designated) = (agreed[0], agreed[1]);
        if vote == 0 || vote == u64::MAX || designated == u64::MAX {
            self.history.clear();
            app.reset_state(ctx)?;
            return Ok(RestoreDecision::Fresh);
        }
        let gen = vote - 1;
        // Second round, now that the generation is fixed: how many ranks
        // need reconstruction (Sum of adopted flags), and the padded width
        // of the agreed generation (Max; the rescue abstains with 0 —
        // every survivor stored the same width, agreed collectively at
        // that generation's own `prepare`). More than one erasure exceeds
        // the parity code; zero (an unreplaced failure) means the
        // survivors just re-align to the agreed generation.
        let my_width =
            if adopted { 0 } else { self.generation(gen).map_or(0, |g| g.block.len() as u64) };
        let missing = ctx.allreduce_u64_ft(&[u64::from(adopted)], ReduceOp::Sum)?[0];
        let width = ctx.allreduce_u64_ft(&[my_width], ReduceOp::Max)?[0] as usize;
        if missing > 1 || width == 0 {
            self.history.clear();
            app.reset_state(ctx)?;
            return Ok(RestoreDecision::Fresh);
        }
        // The generation-spread argument (see the type docs): every
        // survivor that voted holds the agreed generation.
        let own: Option<&Generation> = if adopted {
            None
        } else {
            Some(self.generation(gen).ok_or(FtError::Unsupported("abft generation"))?)
        };
        if missing == 1 {
            // XOR of all survivor blocks and the parity = the lost block;
            // the rescue contributes zeros and reads its state out of the
            // reduction result. The designated survivor folds the parity
            // into its *contribution only* — what it loads afterwards is
            // its own unmodified block, like every other survivor.
            let contribution: Vec<u64> = match own {
                None => vec![0; width],
                Some(g) if u64::from(ctx.app_rank()) == designated => {
                    let mut c = g.block.clone();
                    for (b, p) in c.iter_mut().zip(&g.parity) {
                        *b ^= *p;
                    }
                    c
                }
                Some(g) => g.block.clone(),
            };
            let reconstructed = xor_allreduce(ctx, &contribution)?;
            let words = match own {
                None => &reconstructed,
                Some(g) => &g.block,
            };
            let blob = unpack_block(words).ok_or(FtError::Unsupported("abft reconstruction"))?;
            app.load_state(ctx, &blob)?;
        } else {
            // No erasure to decode (the failure was replaced without
            // adoption, e.g. an FD-only failure): survivors just re-align
            // to the agreed generation.
            let g = own.ok_or(FtError::Unsupported("abft generation"))?;
            let blob = unpack_block(&g.block).ok_or(FtError::Unsupported("abft reconstruction"))?;
            app.load_state(ctx, &blob)?;
        }
        // Drop generations newer than the agreed one: they are stale
        // relative to the rolled-to state. The rescue starts empty and
        // re-syncs at the next prepare.
        self.history.retain(|g| g.iter <= gen);
        Ok(RestoreDecision::Resume { iter: gen })
    }
}

// ---------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------

/// Checkpoint-stream tag of the replication mirror. Distinct from any
/// application tag; the high bit stays clear (it is reserved by the
/// chunk-store wire format).
pub const REPLICA_TAG: u32 = 0x7F00_0000;

/// How many recent generations each rank keeps locally (survivors restore
/// from memory, without touching the mirror stream).
const REPLICA_HISTORY: usize = 4;

/// Replication-based recovery: every step each rank pushes its encoded
/// state into a dedicated mirror checkpoint stream (its hot standby) and
/// keeps a short in-memory history. After a failure the designated shadow
/// spare adopts the lost rank, fetches the newest agreed generation from
/// the mirror, and the survivors re-align from local memory — no interval
/// rollback, no group-wide checkpoint vote on the app's own stream.
pub struct Replicated {
    mirror: Checkpointer,
    fetch_timeout: Duration,
    history: VecDeque<(u64, Vec<u8>)>,
}

impl Replicated {
    /// Build the per-rank mirror stream.
    pub fn new(ctx: &FtCtx) -> Self {
        let cfg = CheckpointerConfig::for_tag(REPLICA_TAG);
        Self {
            mirror: Checkpointer::new(&ctx.proc, cfg, None),
            fetch_timeout: Duration::from_secs(5),
            history: VecDeque::new(),
        }
    }
}

impl<A: FtApp> RecoveryStrategy<A> for Replicated {
    fn name(&self) -> &'static str {
        "replicated"
    }

    fn prepare(&mut self, ctx: &FtCtx, app: &mut A, iter: u64) -> FtResult<()> {
        let blob = app.export_state(ctx, iter)?.ok_or(FtError::Unsupported("export_state"))?;
        ctx.proc.injection_site("strategy.replica.push");
        self.mirror.commit(iter, blob.clone(), CopyPolicy::Replicate);
        // Synchronous push: the standby must hold this generation before
        // the next step can fail, or takeover would silently regress.
        self.mirror.drain(self.fetch_timeout);
        self.history.push_back((iter, blob));
        while self.history.len() > REPLICA_HISTORY {
            self.history.pop_front();
        }
        Ok(())
    }

    fn on_failure(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.mirror.refresh_failed(&plan.failed);
        Ok(())
    }

    fn restore(&mut self, ctx: &FtCtx, app: &mut A) -> FtResult<RestoreDecision> {
        let me = ctx.proc.rank();
        let source = ctx.restore_source();
        let adopted = source != me;
        // Vote: survivors offer their newest local generation, the rescue
        // offers what the failed rank's mirror still answers for.
        let newest = if adopted {
            self.mirror.latest_restorable(source, self.fetch_timeout).hit()
        } else {
            self.history.back().map(|(i, _)| *i)
        };
        let vote = newest.map_or(0, |i| i + 1);
        let agreed = ctx.allreduce_u64_ft(&[vote], ReduceOp::Min)?[0];
        if agreed == 0 {
            self.history.clear();
            app.reset_state(ctx)?;
            return Ok(RestoreDecision::Fresh);
        }
        let gen = agreed - 1;
        // Confirm: unlike `prepare` in the ABFT strategy, the replica
        // push is not a collective, so survivors can be more than one
        // generation apart — confirm everyone can actually produce the
        // agreed generation before installing anything.
        let fetched = if adopted {
            self.mirror.restore_exact(source, gen, self.fetch_timeout).hit().map(|r| r.data)
        } else {
            self.history.iter().find(|(i, _)| *i == gen).map(|(_, b)| b.clone())
        };
        let ok = u64::from(fetched.is_some());
        if ctx.allreduce_u64_ft(&[ok], ReduceOp::Min)?[0] == 0 {
            self.history.clear();
            app.reset_state(ctx)?;
            return Ok(RestoreDecision::Fresh);
        }
        let blob = fetched.expect("confirmed fetch");
        if adopted {
            // Re-home the adopted generation under this rank so the next
            // failure resolves against the new standby directly.
            self.mirror.commit(gen, blob.clone(), CopyPolicy::Replicate);
            self.mirror.drain(self.fetch_timeout);
        }
        app.load_state(ctx, &blob)?;
        self.history.retain(|(i, _)| *i <= gen);
        if adopted {
            self.history.push_back((gen, blob));
        }
        Ok(RestoreDecision::Resume { iter: gen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_packing_round_trips() {
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let blob: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let mut packed = pack_block(&blob);
            packed.resize(packed.len() + 5, 0); // group padding
            assert_eq!(unpack_block(&packed).unwrap(), blob, "len {len}");
        }
    }

    #[test]
    fn torn_length_header_is_rejected() {
        assert!(unpack_block(&[]).is_none());
        assert!(unpack_block(&[9, 0]).is_none()); // claims 9 bytes, holds 8
    }

    #[test]
    fn xor_parity_reconstructs_the_missing_block() {
        let blocks: Vec<Vec<u64>> =
            (0..4u64).map(|r| pack_block(&vec![r as u8 + 1; 24 + r as usize])).collect();
        let width = blocks.iter().map(Vec::len).max().unwrap();
        let mut parity = vec![0u64; width];
        for b in &blocks {
            for (p, w) in parity.iter_mut().zip(b.iter().chain(std::iter::repeat(&0))) {
                *p ^= *w;
            }
        }
        // Reconstruct block 2 from the other three + parity.
        let mut rec = parity.clone();
        for (r, b) in blocks.iter().enumerate() {
            if r != 2 {
                for (x, w) in rec.iter_mut().zip(b.iter().chain(std::iter::repeat(&0))) {
                    *x ^= *w;
                }
            }
        }
        assert_eq!(unpack_block(&rec).unwrap(), vec![3u8; 26]);
    }

    #[test]
    fn strategy_kind_names() {
        assert_eq!(StrategyKind::default(), StrategyKind::CheckpointRestart);
        assert_eq!(StrategyKind::CheckpointRestart.name(), "checkpoint-restart");
        assert_eq!(StrategyKind::Abft.name(), "abft");
        assert_eq!(StrategyKind::Replicated.name(), "replicated");
    }
}
