//! Error/signal types threaded through fault-tolerant applications.

use std::fmt;

use ft_checkpoint::CodecError;
use ft_gaspi::GaspiError;

use crate::plan::RecoveryPlan;

/// Out-of-band conditions a fault-tolerant communication call can surface
/// instead of completing.
#[derive(Debug, Clone, PartialEq)]
pub enum FtSignal {
    /// The fault detector acknowledged failures; enter the recovery stage
    /// with this plan.
    Recover(RecoveryPlan),
    /// Orderly end of the job (the FD's shutdown broadcast to idle
    /// processes, or capacity exhaustion).
    Shutdown,
}

/// Error type for fault-tolerant application code: either a recovery/
/// shutdown signal (the normal "failure path") or a genuine GASPI error.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// A signal from the fault detector.
    Signal(FtSignal),
    /// An unrecoverable communication error.
    Gaspi(GaspiError),
    /// A checkpoint payload failed to decode (torn or mismatched blob).
    Codec(CodecError),
    /// The job cannot continue: more failures than spare processes
    /// (paper restriction 1) or the FD itself is gone (restriction 2).
    CapacityExhausted,
    /// The application does not implement an [`crate::driver::FtApp`]
    /// hook the selected recovery strategy requires (the named one).
    Unsupported(&'static str),
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::Signal(FtSignal::Recover(p)) => {
                write!(f, "failure acknowledgment received (epoch {})", p.epoch)
            }
            FtError::Signal(FtSignal::Shutdown) => write!(f, "shutdown signal received"),
            FtError::Gaspi(e) => write!(f, "GASPI error: {e}"),
            FtError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
            FtError::CapacityExhausted => write!(f, "fault-tolerance capacity exhausted"),
            FtError::Unsupported(hook) => {
                write!(f, "application does not provide the `{hook}` hook")
            }
        }
    }
}

impl std::error::Error for FtError {}

impl From<GaspiError> for FtError {
    fn from(e: GaspiError) -> Self {
        FtError::Gaspi(e)
    }
}

impl From<CodecError> for FtError {
    fn from(e: CodecError) -> Self {
        FtError::Codec(e)
    }
}

/// Result alias for fault-tolerant application code.
pub type FtResult<T> = Result<T, FtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: FtError = GaspiError::Timeout.into();
        assert!(matches!(e, FtError::Gaspi(GaspiError::Timeout)));
        assert!(e.to_string().contains("GASPI_TIMEOUT"));
        assert!(FtError::CapacityExhausted.to_string().contains("capacity"));
        let c: FtError = CodecError::Eof { want: 8, have: 0 }.into();
        assert!(matches!(c, FtError::Codec(_)));
        assert!(c.to_string().contains("codec"));
    }
}
