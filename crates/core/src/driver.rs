//! The fault-tolerant application driver (the paper's Fig. 3 flow chart).
//!
//! At the start of the job, processes are categorized into **workers**
//! (GASPI ranks `0..W`, carrying application ranks `0..W`), **idle**
//! processes, and the **fault detector** (the last rank). Workers compute;
//! the FD scans; idles park on their control segment. Upon a failure
//! acknowledgment, all members of the new worker group — survivors plus
//! activated rescues — reconstruct the group, rewire the application,
//! restore from the last consistent checkpoint, and redo the lost work.
//!
//! Applications implement [`FtApp`]; [`run_ft_job`] runs the whole show
//! over a [`GaspiWorld`] and returns per-rank reports plus the shared
//! [`EventLog`] the benchmark harnesses feed on.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_checkpoint::{Checkpointer, CopyPolicy};
use ft_cluster::{FaultSchedule, Rank};
use ft_gaspi::{
    GaspiProc, GaspiResult, GaspiWorld, Group, NotificationId, RankOutcome, ReduceOp, SegId,
    Timeout,
};

use crate::ack::{self, create_ctrl_segment};
use crate::detector::{DetectorConfig, DetectorOutcome};
use crate::error::{FtError, FtResult, FtSignal};
use crate::events::{EventKind, EventLog};
use crate::health::{CommPolicy, HealthWatch};
use crate::layout::{RankMap, WorldLayout};
use crate::plan::RecoveryPlan;
use crate::recovery::execute_recovery;
use crate::strategy::{RecoveryStrategy, StrategyKind};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Worker/spare split.
    pub layout: WorldLayout,
    /// Fault detector tuning.
    pub detector: DetectorConfig,
    /// Retry policy for fault-tolerant communication.
    pub policy: CommPolicy,
    /// Checkpoint every N iterations (0 = never; the paper uses 500).
    pub checkpoint_every: u64,
    /// Stop after this many iterations (the paper fixes 3500); `step` may
    /// also end the run early by returning `true`.
    pub max_iters: u64,
    /// Per-attempt timeout for recovery steps (kill, commit).
    pub recovery_step: Timeout,
    /// Run a *shadow* detector on the second-to-last spare: it monitors
    /// the primary FD and takes over if the primary dies — the paper's
    /// §VIII "redundancy approach … to make the FD process fault
    /// tolerant". Requires `layout.num_spares >= 2`; costs one rescue
    /// slot.
    pub redundant_fd: bool,
    /// Recovery model every worker runs (all members must agree).
    pub strategy: StrategyKind,
}

impl FtConfig {
    /// Reasonable simulation defaults for a given layout.
    pub fn new(layout: WorldLayout) -> Self {
        Self {
            layout,
            detector: DetectorConfig::default(),
            policy: CommPolicy::default(),
            checkpoint_every: 100,
            max_iters: 1000,
            recovery_step: Timeout::Ms(500),
            redundant_fd: false,
            strategy: StrategyKind::CheckpointRestart,
        }
    }

    /// A validating builder over the same defaults (the supported way to
    /// customize; see [`FtConfigBuilder`]).
    pub fn builder(layout: WorldLayout) -> FtConfigBuilder {
        FtConfigBuilder { cfg: Self::new(layout) }
    }

    /// The shadow detector's rank, when enabled.
    pub fn shadow_rank(&self) -> Option<Rank> {
        (self.redundant_fd && self.layout.num_spares >= 2).then(|| self.layout.total() - 2)
    }
}

/// A config rejected by [`FtConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtConfigError {
    /// `max_iters` was 0 — the job would finish before its first step.
    ZeroIters,
    /// `redundant_fd` needs at least two spares (shadow + detector).
    ShadowNeedsSpares {
        /// Spares the layout actually has.
        have: u32,
    },
    /// The replication strategy needs at least one rescue slot to host a
    /// designated shadow.
    ReplicationNeedsSpares,
}

impl fmt::Display for FtConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtConfigError::ZeroIters => write!(f, "max_iters must be > 0"),
            FtConfigError::ShadowNeedsSpares { have } => {
                write!(f, "redundant_fd requires >= 2 spares, layout has {have}")
            }
            FtConfigError::ReplicationNeedsSpares => {
                write!(f, "the replicated strategy requires >= 1 rescue slot")
            }
        }
    }
}

impl std::error::Error for FtConfigError {}

/// Fluent, validating construction of [`FtConfig`] (mirrors
/// `CheckpointerConfig::builder`). Invalid combinations are rejected at
/// [`build`](Self::build) time instead of failing mid-job.
#[derive(Debug, Clone)]
pub struct FtConfigBuilder {
    cfg: FtConfig,
}

impl FtConfigBuilder {
    /// Fault-detector tuning.
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.cfg.detector = detector;
        self
    }

    /// Retry policy for fault-tolerant communication.
    pub fn policy(mut self, policy: CommPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Checkpoint every `n` iterations (0 = never).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.cfg.checkpoint_every = n;
        self
    }

    /// Stop after `n` iterations.
    pub fn max_iters(mut self, n: u64) -> Self {
        self.cfg.max_iters = n;
        self
    }

    /// Per-attempt timeout for recovery steps.
    pub fn recovery_step(mut self, t: Timeout) -> Self {
        self.cfg.recovery_step = t;
        self
    }

    /// Give up on fault-tolerant communication after this long without
    /// progress (shorthand for setting `policy.abandon`).
    pub fn abandon(mut self, t: Duration) -> Self {
        self.cfg.policy.abandon = t;
        self
    }

    /// Run the shadow fault detector (paper §VIII).
    pub fn redundant_fd(mut self, on: bool) -> Self {
        self.cfg.redundant_fd = on;
        self
    }

    /// Select the recovery model.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Validate and produce the config. Selecting
    /// [`StrategyKind::Replicated`] turns on designated-shadow rescue
    /// assignment in the detector, so each app rank's hot standby is the
    /// spare that actually adopts it.
    pub fn build(mut self) -> Result<FtConfig, FtConfigError> {
        if self.cfg.max_iters == 0 {
            return Err(FtConfigError::ZeroIters);
        }
        if self.cfg.redundant_fd && self.cfg.layout.num_spares < 2 {
            return Err(FtConfigError::ShadowNeedsSpares { have: self.cfg.layout.num_spares });
        }
        if self.cfg.strategy == StrategyKind::Replicated {
            if self.cfg.layout.rescue_capacity() < 1 {
                return Err(FtConfigError::ReplicationNeedsSpares);
            }
            self.cfg.detector.designated_shadows = true;
        }
        Ok(self.cfg)
    }
}

/// Mutable per-rank driver state visible to the application.
struct CtxState {
    group: Option<Group>,
    plan: RecoveryPlan,
    map: RankMap,
    app_rank: Option<u32>,
    /// Set while this rank is a *freshly activated* rescue that has not
    /// yet restored: the failed predecessor whose checkpoints it must
    /// adopt. Cleared once the restore re-homed the state, after which
    /// the rank restores like any survivor.
    adopted_from: Option<Rank>,
}

/// Everything an [`FtApp`] needs: the process handle, the health watch,
/// the current worker group and rank map, and the job event log.
pub struct FtCtx {
    /// This rank's GASPI handle.
    pub proc: GaspiProc,
    /// The job layout.
    pub layout: WorldLayout,
    /// The failure-acknowledgment watch (use its `*_ft` wrappers, or the
    /// convenience methods on this context).
    pub watch: HealthWatch,
    /// Shared job event log.
    pub events: EventLog,
    /// Driver configuration.
    pub cfg: FtConfig,
    state: RefCell<CtxState>,
}

impl FtCtx {
    fn new(proc: GaspiProc, cfg: FtConfig, events: EventLog) -> Self {
        let watch = HealthWatch::new(proc.clone(), cfg.policy.clone());
        let layout = cfg.layout;
        // Aim broken-partner reports at the layout's detector; plan
        // receipt re-aims (or disables) it as the detector moves.
        watch.set_fd_rank(layout.fd_rank());
        let map = RankMap::identity(layout.num_workers);
        Self {
            proc,
            layout,
            watch,
            events,
            cfg,
            state: RefCell::new(CtxState {
                group: None,
                plan: RecoveryPlan::initial(),
                map,
                app_rank: None,
                adopted_from: None,
            }),
        }
    }

    fn install(&self, group: Group, plan: RecoveryPlan) {
        self.sync_fd_rank(&plan);
        let mut st = self.state.borrow_mut();
        st.map = plan.rank_map(&self.layout);
        st.group = Some(group);
        st.plan = plan;
    }

    /// Adopt a plan that does not affect the worker group (FD takeover,
    /// idle death): bookkeeping only, group untouched.
    fn install_plan_only(&self, plan: RecoveryPlan) {
        self.sync_fd_rank(&plan);
        let mut st = self.state.borrow_mut();
        st.map = plan.rank_map(&self.layout);
        st.plan = plan;
    }

    /// Keep the watch's suspect-report target tracking the detector as
    /// plans move (takeover) or retire (promotion) it.
    fn sync_fd_rank(&self, plan: &RecoveryPlan) {
        if let Some(fd) = plan.fd_rank {
            self.watch.set_fd_rank(fd);
        } else if !plan.fd_alive {
            self.watch.clear_fd_rank();
        }
    }

    fn set_app_rank(&self, app: u32) {
        self.state.borrow_mut().app_rank = Some(app);
    }

    /// The current worker group.
    pub fn group(&self) -> Group {
        self.state.borrow().group.expect("no worker group installed")
    }

    /// The current recovery plan (epoch 0 = initial world).
    pub fn plan(&self) -> RecoveryPlan {
        self.state.borrow().plan.clone()
    }

    /// This process's application rank.
    pub fn app_rank(&self) -> u32 {
        self.state.borrow().app_rank.expect("not a worker")
    }

    /// Number of application ranks (constant: non-shrinking recovery).
    pub fn num_app_ranks(&self) -> u32 {
        self.layout.num_workers
    }

    /// GASPI rank currently carrying `app_rank`.
    pub fn gaspi_of(&self, app_rank: u32) -> Rank {
        self.state.borrow().map.gaspi_of(app_rank)
    }

    /// The rank whose checkpoints this process must restore: its failed
    /// predecessor while it is a freshly activated rescue (before its
    /// first restore re-homes the state), itself otherwise. Applications
    /// pass this to [`ft_checkpoint::Checkpointer`] lookups and to
    /// [`crate::ckpt::consistent_restore`].
    pub fn restore_source(&self) -> Rank {
        self.state.borrow().adopted_from.unwrap_or(self.proc.rank())
    }

    fn set_adopted_from(&self, pred: Option<Rank>) {
        self.state.borrow_mut().adopted_from = pred;
    }

    /// Snapshot of the application-rank map.
    pub fn rank_map(&self) -> RankMap {
        self.state.borrow().map.clone()
    }

    /// Fault-tolerant barrier on the current worker group.
    pub fn barrier_ft(&self) -> FtResult<()> {
        self.watch.barrier_ft(self.group())
    }

    /// Fault-tolerant allreduce on the current worker group.
    pub fn allreduce_f64_ft(&self, input: &[f64], op: ReduceOp) -> FtResult<Vec<f64>> {
        self.watch.allreduce_f64_ft(self.group(), input, op)
    }

    /// Fault-tolerant `u64` allreduce on the current worker group.
    pub fn allreduce_u64_ft(&self, input: &[u64], op: ReduceOp) -> FtResult<Vec<u64>> {
        self.watch.allreduce_u64_ft(self.group(), input, op)
    }

    /// Fault-tolerant queue wait.
    pub fn wait_ft(&self, queue: u16) -> FtResult<()> {
        self.watch.wait_ft(queue)
    }

    /// Fault-tolerant notification wait.
    pub fn notify_waitsome_ft(
        &self,
        seg: SegId,
        begin: NotificationId,
        count: u32,
    ) -> FtResult<NotificationId> {
        self.watch.notify_waitsome_ft(seg, begin, count)
    }
}

/// A fault-tolerant application, in the paper's structure.
pub trait FtApp {
    /// Per-worker result returned after completion.
    type Summary: Send + std::fmt::Debug + 'static;

    /// One-time pre-processing on a fresh worker (e.g. spMVM
    /// communication setup). Runs once at job start; rescues use
    /// [`FtApp::join_as_rescue`] instead and must *not* repeat this.
    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()>;

    /// Attach as a rescue process that adopted a failed worker's
    /// application rank: load the one-time checkpoints (communication
    /// plan) instead of redoing pre-processing (paper §V).
    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()>;

    /// One iteration. Return `Ok(true)` when converged.
    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool>;

    /// The checkpoint stream carrying this app's state, plus the fetch
    /// timeout for restores — the handle the default `checkpoint` /
    /// `restore` path runs on. Return `None` (the default) only if the
    /// app overrides both of those methods itself.
    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        None
    }

    /// Encode the full solver state after `iter` completed iterations as
    /// one self-describing blob (same codec the app's checkpoints use).
    /// Powers the default `checkpoint` and the ABFT/replication
    /// strategies; `None` (the default) opts out of both.
    fn export_state(&self, ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let _ = (ctx, iter);
        Ok(None)
    }

    /// Install a blob previously produced by `export_state` (or fetched
    /// from the `state_stream`); return the iteration it represents.
    fn load_state(&mut self, ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let _ = (ctx, data);
        Err(FtError::Unsupported("load_state"))
    }

    /// Reset to the initial (iteration-0) state, for collective
    /// fresh-start decisions.
    fn reset_state(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let _ = ctx;
        Err(FtError::Unsupported("reset_state"))
    }

    /// Write checkpoint for the state after `iter` iterations. The
    /// default commits `export_state` into the `state_stream` at version
    /// `iter / checkpoint_every`; override for custom commit policies
    /// (PFS drains, incremental encodings).
    fn checkpoint(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<()> {
        let blob = self.export_state(ctx, iter)?.ok_or(FtError::Unsupported("export_state"))?;
        let (ck, _) = self.state_stream().ok_or(FtError::Unsupported("state_stream"))?;
        ck.commit(iter / ctx.cfg.checkpoint_every.max(1), blob, CopyPolicy::Replicate);
        Ok(())
    }

    /// Restore from the newest *consistent* checkpoint; return the
    /// iteration to resume from. The default runs the group vote +
    /// fetch-confirm protocol over the `state_stream` and installs the
    /// result through `load_state` / `reset_state` — the loop every app
    /// used to hand-roll.
    fn restore(&mut self, ctx: &FtCtx) -> FtResult<u64> {
        crate::strategy::checkpoint_restore(self, ctx)
    }

    /// React to a completed recovery: refresh communication partners and
    /// the checkpoint library's neighbor list (rank map has changed).
    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()>;

    /// Produce the per-worker summary after the run.
    fn finalize(&mut self, ctx: &FtCtx) -> FtResult<Self::Summary>;
}

/// The role a rank ended up playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Computed from the start.
    Worker,
    /// Stood by; never activated.
    Idle,
    /// Activated as a rescue during the run.
    Rescue,
    /// The dedicated fault detector.
    Detector,
}

/// Per-rank result of a fault-tolerant job.
#[derive(Debug)]
pub struct RankReport<S> {
    /// GASPI rank.
    pub rank: Rank,
    /// Final role.
    pub role: Role,
    /// Application rank carried at the end (workers/rescues).
    pub app_rank: Option<u32>,
    /// Application summary (workers/rescues that finished).
    pub summary: Option<S>,
    /// Error that ended this rank's run, if any.
    pub error: Option<FtError>,
    /// Detector statistics (FD rank only).
    pub detector: Option<DetectorOutcome>,
}

/// Whole-job result.
///
/// The `events` log is the raw material for the paper's evaluation: feed
/// it to `ft-telemetry`'s `OverheadReport` to decompose the run into
/// computation, redo-work, re-initialization and fault-detection time.
pub struct JobReport<S> {
    /// Per-rank outcomes (killed ranks appear as
    /// [`RankOutcome::Killed`]).
    pub outcomes: Vec<RankOutcome<RankReport<S>>>,
    /// The shared event log.
    pub events: EventLog,
}

impl<S: std::fmt::Debug> JobReport<S> {
    /// Reports of ranks that completed.
    pub fn completed(&self) -> Vec<&RankReport<S>> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                RankOutcome::Completed(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Summaries of finished workers, keyed by application rank.
    pub fn worker_summaries(&self) -> Vec<(u32, &S)> {
        let mut v: Vec<(u32, &S)> = self
            .completed()
            .into_iter()
            .filter_map(|r| match (&r.app_rank, &r.summary) {
                (Some(a), Some(s)) => Some((*a, s)),
                _ => None,
            })
            .collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// Ranks killed by fault injection.
    pub fn killed(&self) -> Vec<Rank> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(r, o)| o.was_killed().then_some(r as Rank))
            .collect()
    }

    /// The detector's statistics, if the FD survived to report them.
    pub fn detector(&self) -> Option<&DetectorOutcome> {
        self.completed().into_iter().find_map(|r| r.detector.as_ref())
    }

    /// First error recorded by any completed rank.
    pub fn first_error(&self) -> Option<&FtError> {
        self.completed().into_iter().find_map(|r| r.error.as_ref())
    }
}

/// Run a fault-tolerant job: spawns every rank of `world` into the Fig. 3
/// flow, applies the fault schedule, joins, and reports.
pub fn run_ft_job<A, F>(
    world: &GaspiWorld,
    cfg: FtConfig,
    schedule: FaultSchedule,
    make_app: F,
) -> JobReport<A::Summary>
where
    A: FtApp,
    F: Fn(&FtCtx) -> A + Send + Sync + 'static,
{
    run_ft_job_with(world, cfg, schedule, EventLog::new(), make_app)
}

/// [`run_ft_job`] with a caller-supplied event log, so a harness can watch
/// the job live (e.g. wait for every worker's `SetupDone` before injecting
/// a failure, as the Table I benchmark does).
pub fn run_ft_job_with<A, F>(
    world: &GaspiWorld,
    cfg: FtConfig,
    schedule: FaultSchedule,
    events: EventLog,
    make_app: F,
) -> JobReport<A::Summary>
where
    A: FtApp,
    F: Fn(&FtCtx) -> A + Send + Sync + 'static,
{
    assert_eq!(
        world.config().num_ranks,
        cfg.layout.total(),
        "world size must match layout (workers + spares)"
    );
    // World-global checkpoint service: idle spares never construct a
    // `Checkpointer`, yet their node's replica store must answer fetches.
    ft_checkpoint::service::install(&world.proc_handle(0));
    let events2 = events.clone();
    let timer = schedule.start_timer(world.fault());
    let make_app = Arc::new(make_app);
    let sched = Arc::new(schedule);
    let job = world.launch(move |proc| {
        let ctx = FtCtx::new(proc, cfg.clone(), events2.clone());
        run_rank(ctx, &sched, make_app.as_ref())
    });
    let outcomes = job.join();
    timer.cancel();
    JobReport { outcomes, events }
}

/// Run the Fig. 3 flow for a *single* rank of `world`, on the current
/// thread. This is the process backend's child entry: each OS process
/// hosts exactly one rank, so there is no fan-out and no join — the
/// caller (the supervisor protocol in [`crate::process`]) aggregates
/// per-process outcomes instead. Timed kill actions are applied by the
/// supervisor as real SIGKILLs; timed *link* actions run in-process on a
/// timer the child starts itself (see `crate::process::run_child`), and
/// `at_iteration` injections fire here.
pub fn run_ft_rank<A, F>(
    world: &GaspiWorld,
    rank: Rank,
    cfg: FtConfig,
    schedule: FaultSchedule,
    events: EventLog,
    make_app: F,
) -> RankOutcome<RankReport<A::Summary>>
where
    A: FtApp,
    F: Fn(&FtCtx) -> A + Send + Sync + 'static,
{
    assert_eq!(
        world.config().num_ranks,
        cfg.layout.total(),
        "world size must match layout (workers + spares)"
    );
    ft_checkpoint::service::install(&world.proc_handle(rank));
    world.run_local(rank, move |proc| {
        let ctx = FtCtx::new(proc, cfg, events);
        run_rank(ctx, &schedule, &make_app)
    })
}

fn run_rank<A: FtApp>(
    ctx: FtCtx,
    schedule: &FaultSchedule,
    make_app: &impl Fn(&FtCtx) -> A,
) -> GaspiResult<RankReport<A::Summary>> {
    let rank = ctx.proc.rank();
    let layout = ctx.layout;
    create_ctrl_segment(&ctx.proc, &layout)?;
    let report = |role, app_rank, summary, error, detector| {
        Ok(RankReport { rank, role, app_rank, summary, error, detector })
    };

    if rank == layout.fd_rank() {
        // ---- Primary detector path ------------------------------------
        let reserved: Vec<Rank> = ctx.cfg.shadow_rank().into_iter().collect();
        let state = crate::detector::DetectorState::fresh(&layout, &reserved);
        match crate::detector::run_detector_from(
            &ctx.proc,
            &layout,
            &ctx.cfg.detector.clone(),
            &ctx.events,
            state,
        ) {
            Ok(out) => {
                if let Some(plan) = out.promoted_plan.clone() {
                    // The FD joins the workers (restriction 2).
                    ctx.watch.acknowledge(plan.epoch);
                    return match become_rescue(&ctx, schedule, make_app, plan) {
                        Ok((app_rank, summary)) => {
                            report(Role::Rescue, Some(app_rank), Some(summary), None, Some(out))
                        }
                        Err(e) => report(Role::Rescue, None, None, Some(e), Some(out)),
                    };
                }
                report(Role::Detector, None, None, None, Some(out))
            }
            Err(e) => report(Role::Detector, None, None, Some(e), None),
        }
    } else if ctx.cfg.shadow_rank() == Some(rank) {
        // ---- Shadow detector path --------------------------------------
        match run_shadow(&ctx, schedule, make_app) {
            ShadowEnd::Quiet => report(Role::Detector, None, None, None, None),
            ShadowEnd::TookOver(out) => {
                if let Some(plan) = out.promoted_plan.clone() {
                    ctx.watch.acknowledge(plan.epoch);
                    return match become_rescue(&ctx, schedule, make_app, plan) {
                        Ok((app_rank, summary)) => {
                            report(Role::Rescue, Some(app_rank), Some(summary), None, Some(out))
                        }
                        Err(e) => {
                            abort_job(&ctx);
                            report(Role::Rescue, None, None, Some(e), Some(out))
                        }
                    };
                }
                report(Role::Detector, None, None, None, Some(out))
            }
            ShadowEnd::Failed(e) => report(Role::Detector, None, None, Some(e), None),
        }
    } else if rank < layout.num_workers {
        // ---- Worker path ----------------------------------------------
        ctx.set_app_rank(rank);
        let plan0 = RecoveryPlan::initial();
        let group = match execute_recovery(
            &ctx.watch,
            &layout,
            &plan0,
            None,
            ctx.cfg.recovery_step,
            &ctx.events,
        ) {
            Ok(g) => g,
            Err(e) => {
                abort_job(&ctx);
                return report(Role::Worker, Some(rank), None, Some(e), None);
            }
        };
        ctx.install(group, plan0);
        let mut app = make_app(&ctx);
        let mut strat = ctx.cfg.strategy.build::<A>(&ctx);
        match worker_run(&ctx, &mut app, strat.as_mut(), schedule, 0, true) {
            Ok(summary) => report(Role::Worker, Some(ctx.app_rank()), Some(summary), None, None),
            Err(e) => {
                abort_job(&ctx);
                report(Role::Worker, Some(ctx.app_rank()), None, Some(e), None)
            }
        }
    } else {
        // ---- Idle path -------------------------------------------------
        // Idles park on their control segment, but also watch the
        // detector's liveness: if every detector is gone (restriction 2
        // reached), nothing can ever activate them — exit instead of
        // idling forever.
        let mut last_plan = RecoveryPlan::initial();
        let fd_check_every = ctx.cfg.detector.scan_interval.max(Duration::from_millis(5)) * 4;
        let mut last_fd_check = Instant::now();
        loop {
            match ctx.watch.check() {
                Ok(()) => {}
                Err(FtError::Signal(FtSignal::Shutdown)) => {
                    return report(Role::Idle, None, None, None, None)
                }
                Err(FtError::Signal(FtSignal::Recover(plan))) => {
                    if plan.adopted_app_rank(&layout, rank).is_some() {
                        return match become_rescue(&ctx, schedule, make_app, plan) {
                            Ok((app_rank, summary)) => {
                                report(Role::Rescue, Some(app_rank), Some(summary), None, None)
                            }
                            Err(e) => {
                                abort_job(&ctx);
                                report(Role::Rescue, None, None, Some(e), None)
                            }
                        };
                    }
                    // Not my epoch: keep idling with updated bookkeeping.
                    last_plan = plan;
                }
                Err(e) => return report(Role::Idle, None, None, Some(e), None),
            }
            if last_fd_check.elapsed() >= fd_check_every {
                last_fd_check = Instant::now();
                let fd = last_plan.current_fd(&layout);
                let fd_dead = ctx.proc.proc_ping(fd, ctx.cfg.detector.ping_timeout).is_err();
                if fd_dead {
                    // With redundancy, give the live shadow its chance to
                    // take over; without (or if the shadow is gone too),
                    // fault tolerance has ended.
                    let shadow_alive =
                        ctx.cfg.shadow_rank().filter(|&s| s != fd && s != rank).is_some_and(|s| {
                            ctx.proc.proc_ping(s, ctx.cfg.detector.ping_timeout).is_ok()
                        });
                    if !shadow_alive {
                        return report(
                            Role::Idle,
                            None,
                            None,
                            Some(FtError::Gaspi(ft_gaspi::GaspiError::RemoteBroken { rank: fd })),
                            None,
                        );
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

enum ShadowEnd {
    /// The primary handled everything; the shadow was never needed.
    Quiet,
    /// The shadow took over and ran detection to completion.
    TookOver(DetectorOutcome),
    /// The shadow itself hit an error.
    Failed(FtError),
}

/// The shadow detector: tracks plans, pings the primary FD, and takes
/// over detection when the primary dies (paper §VIII future work).
fn run_shadow<A: FtApp>(
    ctx: &FtCtx,
    schedule: &FaultSchedule,
    make_app: &impl Fn(&FtCtx) -> A,
) -> ShadowEnd {
    let _ = (schedule, make_app);
    let layout = ctx.layout;
    let me = ctx.proc.rank();
    let mut last_plan = RecoveryPlan::initial();
    let interval = ctx.cfg.detector.scan_interval;
    loop {
        match ctx.watch.check() {
            Ok(()) => {}
            Err(FtError::Signal(FtSignal::Recover(plan))) => {
                // Track cumulative state; the shadow is reserved, so it is
                // never in the rescue list.
                last_plan = plan;
                if !last_plan.fd_alive {
                    // The (possibly promoted) detector ended; nothing left
                    // to shadow.
                    return ShadowEnd::Quiet;
                }
            }
            Err(FtError::Signal(FtSignal::Shutdown)) => return ShadowEnd::Quiet,
            Err(e) => return ShadowEnd::Failed(e),
        }
        let primary = last_plan.current_fd(&layout);
        if primary != me && ctx.proc.proc_ping(primary, ctx.cfg.detector.ping_timeout).is_err() {
            // Take over: reconstruct the detection state from the last
            // cumulative plan, announce the new FD, and start scanning.
            ctx.events.record(me, EventKind::FdTakeover { dead_fd: primary });
            let mut state = crate::detector::DetectorState::from_plan(&layout, &last_plan, &[me]);
            state.register_takeover(primary, me);
            let plan = state.plan(true);
            let alive: Vec<Rank> =
                (0..layout.total()).filter(|&r| r != me && !plan.failed.contains(&r)).collect();
            if let Err(e) = ack::broadcast_plan(
                &ctx.proc,
                &plan,
                &alive,
                ctx.cfg.detector.ack_queue,
                ctx.cfg.detector.ack_timeout,
            ) {
                return ShadowEnd::Failed(e.into());
            }
            ctx.events.record(me, EventKind::FdAck { epoch: plan.epoch });
            ctx.watch.acknowledge(plan.epoch);
            return match crate::detector::run_detector_from(
                &ctx.proc,
                &layout,
                &ctx.cfg.detector.clone(),
                &ctx.events,
                state,
            ) {
                Ok(out) => ShadowEnd::TookOver(out),
                Err(e) => ShadowEnd::Failed(e),
            };
        }
        std::thread::sleep(interval.min(Duration::from_millis(5)));
    }
}

/// Best-effort "stop the job" signal sent by a rank that ends in error:
/// without it the FD (and through it the idle pool) would keep running
/// forever, since an errored-but-alive rank still answers pings.
fn abort_job(ctx: &FtCtx) {
    let plan = ctx.plan();
    if plan.fd_alive {
        let _ = ack::signal_done(
            &ctx.proc,
            plan.current_fd(&ctx.layout),
            ctx.cfg.detector.ack_queue,
            ctx.cfg.detector.ack_timeout,
        );
    }
}

/// Activation of a rescue (idle or promoted FD): rebuild the group, attach
/// to the application via the one-time checkpoints, restore, and compute.
fn become_rescue<A: FtApp>(
    ctx: &FtCtx,
    schedule: &FaultSchedule,
    make_app: &impl Fn(&FtCtx) -> A,
    mut plan: RecoveryPlan,
) -> Result<(u32, A::Summary), FtError> {
    let layout = ctx.layout;
    let rank = ctx.proc.rank();
    let mut app: Option<A> = None;
    let mut strat = ctx.cfg.strategy.build::<A>(ctx);
    let start_iter = loop {
        let app_rank = plan.adopted_app_rank(&layout, rank).ok_or(FtError::CapacityExhausted)?;
        ctx.set_app_rank(app_rank);
        ctx.set_adopted_from(Some(crate::ckpt::restore_source(&plan, rank)));
        ctx.events.record(rank, EventKind::Activated { app_rank });
        match recover_once(ctx, &plan, None) {
            Ok(group) => {
                ctx.install(group, plan.clone());
                let a = app.get_or_insert_with(|| make_app(ctx));
                a.join_as_rescue(ctx)?;
                a.rewire(ctx, &plan)?;
                let restored = strat.on_failure(ctx, &plan).and_then(|()| strat.restore(ctx, a));
                match restored {
                    Ok(decision) => {
                        let iter = decision.resume_iter();
                        ctx.events.record(rank, EventKind::Restored { epoch: plan.epoch, iter });
                        ctx.watch.acknowledge(plan.epoch);
                        // State is re-homed: from now on this rank
                        // restores as itself.
                        ctx.set_adopted_from(None);
                        break iter;
                    }
                    Err(FtError::Signal(FtSignal::Recover(newer))) => plan = newer,
                    Err(e) => return Err(e),
                }
            }
            Err(FtError::Signal(FtSignal::Recover(newer))) => plan = newer,
            Err(e) => return Err(e),
        }
    };
    let mut app = app.expect("rescue app constructed");
    let summary = worker_run(ctx, &mut app, strat.as_mut(), schedule, start_iter, false)?;
    Ok((ctx.app_rank(), summary))
}

fn recover_once(ctx: &FtCtx, plan: &RecoveryPlan, prev: Option<Group>) -> FtResult<Group> {
    execute_recovery(&ctx.watch, &ctx.layout, plan, prev, ctx.cfg.recovery_step, &ctx.events)
}

/// The worker compute loop with failure handling and redo accounting.
fn worker_run<A: FtApp>(
    ctx: &FtCtx,
    app: &mut A,
    strat: &mut dyn RecoveryStrategy<A>,
    schedule: &FaultSchedule,
    start_iter: u64,
    fresh: bool,
) -> Result<A::Summary, FtError> {
    let rank = ctx.proc.rank();
    if fresh {
        app.setup(ctx)?;
        ctx.events.record(rank, EventKind::SetupDone);
    }
    let mut iter = start_iter;
    let mut max_iter = start_iter;
    let mut redo: Option<(u64, u64)> = None; // (epoch, target iteration)

    // Handle a recovery signal: loop until a plan sticks. Returns
    // `Some(resume_iteration)` after a real recovery, `None` for a benign
    // plan (e.g. a shadow-detector takeover or a failed idle) that leaves
    // the worker group untouched — no rollback needed then.
    let handle = |app: &mut A,
                  strat: &mut dyn RecoveryStrategy<A>,
                  mut plan: RecoveryPlan|
     -> Result<Option<u64>, FtError> {
        loop {
            if plan.worker_set(&ctx.layout) == ctx.plan().worker_set(&ctx.layout) {
                // The worker group is unaffected (FD change or idle
                // death): adopt the bookkeeping, keep computing.
                ctx.install_plan_only(plan.clone());
                ctx.watch.acknowledge(plan.epoch);
                return Ok(None);
            }
            ctx.events.record(rank, EventKind::FailureSignal { epoch: plan.epoch });
            match recover_once(ctx, &plan, Some(ctx.group())) {
                Ok(group) => {
                    ctx.install(group, plan.clone());
                    app.rewire(ctx, &plan)?;
                    let restored =
                        strat.on_failure(ctx, &plan).and_then(|()| strat.restore(ctx, app));
                    match restored {
                        Ok(decision) => {
                            let resume = decision.resume_iter();
                            ctx.events.record(
                                rank,
                                EventKind::Restored { epoch: plan.epoch, iter: resume },
                            );
                            ctx.watch.acknowledge(plan.epoch);
                            return Ok(Some(resume));
                        }
                        Err(FtError::Signal(FtSignal::Recover(newer))) => plan = newer,
                        Err(e) => return Err(e),
                    }
                }
                Err(FtError::Signal(FtSignal::Recover(newer))) => plan = newer,
                Err(e) => return Err(e),
            }
        }
    };

    loop {
        if schedule.kill_at_iteration(rank, iter) {
            ctx.events.record(rank, EventKind::KillFired { iter });
            ctx.proc.exit_failure();
        }
        // The paper's pre-communication health check, once per iteration
        // at minimum (the *_ft wrappers also check inside each call).
        let step_result = match ctx.watch.check() {
            Ok(()) => app.step(ctx, iter),
            Err(e) => Err(e),
        };
        match step_result {
            Ok(done) => {
                iter += 1;
                if let Some((epoch, target)) = redo {
                    if iter >= target {
                        ctx.events.record(rank, EventKind::RedoComplete { epoch, iter });
                        redo = None;
                    }
                }
                max_iter = max_iter.max(iter);
                if done || iter >= ctx.cfg.max_iters {
                    ctx.events.record(rank, EventKind::Finished { iter });
                    break;
                }
                // The strategy's steady-state work: interval checkpoints
                // for C/R, parity encoding for ABFT, replica pushes for
                // replication.
                match strat.prepare(ctx, app, iter) {
                    Ok(()) => {}
                    Err(FtError::Signal(FtSignal::Recover(plan))) => {
                        if let Some(resume) = handle(app, strat, plan)? {
                            iter = resume;
                            // A resume at the failure frontier (ABFT
                            // reconstruction, replication takeover) loses
                            // no work: record a redo interval only when
                            // there is one.
                            if resume < max_iter {
                                redo = Some((ctx.plan().epoch, max_iter));
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(FtError::Signal(FtSignal::Recover(plan))) => {
                if let Some(resume) = handle(app, strat, plan)? {
                    iter = resume;
                    if resume < max_iter {
                        redo = Some((ctx.plan().epoch, max_iter));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    // Finalize BEFORE telling the FD: finalize may run group collectives
    // (summary reductions), and the FD answers a done signal by
    // broadcasting shutdown to every rank — a worker that sees that
    // shutdown before joining the final collective would abort the whole
    // group on the last step.
    let summary = app.finalize(ctx)?;
    // Tell the FD the application is done (app rank 0 speaks for the
    // group, if a detector is still standing — the *current* one, which
    // may be the shadow after a takeover).
    let plan = ctx.plan();
    if ctx.app_rank() == 0 && plan.fd_alive {
        let _ = ack::signal_done(
            &ctx.proc,
            plan.current_fd(&ctx.layout),
            ctx.cfg.detector.ack_queue,
            ctx.cfg.detector.ack_timeout,
        );
    }
    Ok(summary)
}
