//! Worker-side health watch and fault-tolerant communication wrappers.
//!
//! "The communication routines are checked for a failure acknowledgment
//! signal from the FD process" (§IV-D) and "the worker processes
//! communicating directly with the failed processes keep on returning with
//! GASPI_TIMEOUT unless a failure acknowledgment is received" (§IV-A).
//!
//! [`HealthWatch::check`] is the cheap pre-communication test (an atomic
//! peek of the epoch notification). The `*_ft` wrappers implement the
//! retry-until-acknowledged loop: they issue the underlying GASPI call
//! with a short timeout and re-check the watch between attempts, so a
//! worker stuck on a dead partner leaves the call the moment the FD's
//! acknowledgment lands — as a typed [`FtSignal::Recover`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_cluster::Rank;
use ft_gaspi::{GaspiError, GaspiProc, Group, NotificationId, ReduceOp, SegId, Timeout};

use crate::ack::{self, CTRL_SEG, EPOCH_NOTIF, SHUTDOWN_NOTIF};
use crate::error::{FtError, FtResult, FtSignal};

/// Tuning knobs for the fault-tolerant communication wrappers.
#[derive(Debug, Clone)]
pub struct CommPolicy {
    /// Per-attempt GASPI timeout (the paper sets 1 s; the simulation
    /// scales it down).
    pub attempt: Timeout,
    /// Give up entirely after this long without progress or
    /// acknowledgment. Guards against the paper's restriction 2 (no FD
    /// left to acknowledge) turning into an infinite hang.
    pub abandon: Duration,
    /// Queue used for worker→FD suspect reports (the link-fault path).
    /// Must differ from any queue carrying the traffic being retried:
    /// `report_suspect` waits on this queue, and waiting on the queue of
    /// the broken operation would consume its completions. Defaults to
    /// the highest default app queue.
    pub suspect_queue: u16,
}

impl Default for CommPolicy {
    fn default() -> Self {
        Self { attempt: Timeout::Ms(20), abandon: Duration::from_secs(10), suspect_queue: 7 }
    }
}

/// Sentinel for "no FD rank configured" in [`HealthWatch::fd_rank`].
const FD_UNSET: u64 = u64::MAX;

/// The per-rank failure-acknowledgment watch.
pub struct HealthWatch {
    proc: GaspiProc,
    seen_epoch: Arc<AtomicU64>,
    policy: CommPolicy,
    /// Current detector rank, or [`FD_UNSET`]. Workers report broken
    /// partners here (the paper's link-fault path: the FD's own pings may
    /// not cross a severed worker↔worker link).
    fd_rank: AtomicU64,
    /// Ranks already reported — each suspect is flagged to the FD once.
    reported: parking_lot::Mutex<std::collections::HashSet<Rank>>,
}

impl HealthWatch {
    /// Watch for acknowledgments on `proc`'s control segment.
    pub fn new(proc: GaspiProc, policy: CommPolicy) -> Self {
        Self {
            proc,
            seen_epoch: Arc::new(AtomicU64::new(0)),
            policy,
            fd_rank: AtomicU64::new(FD_UNSET),
            reported: parking_lot::Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Enable worker→FD suspect reporting, aimed at `fd`. The driver sets
    /// this at startup and again whenever a recovery plan or takeover
    /// moves the detector; without it the watch never reports (the
    /// pre-link-fault behavior).
    pub fn set_fd_rank(&self, fd: Rank) {
        self.fd_rank.store(u64::from(fd), Ordering::Release);
    }

    /// Disable suspect reporting (no detector left — e.g. the FD promoted
    /// itself to worker under restriction 2).
    pub fn clear_fd_rank(&self) {
        self.fd_rank.store(FD_UNSET, Ordering::Release);
    }

    /// Best-effort once-only suspect reports to the FD. Skips silently
    /// when no FD is configured, when *we* are the FD, or when the
    /// suspect *is* the FD (the FD-liveness watchdog owns that case).
    fn report_broken(&self, ranks: &[Rank]) {
        let fd = self.fd_rank.load(Ordering::Acquire);
        if fd == FD_UNSET || fd == u64::from(self.proc.rank()) {
            return;
        }
        let fd = fd as Rank;
        let mut reported = self.reported.lock();
        for &r in ranks {
            if r == fd || r == self.proc.rank() || !reported.insert(r) {
                continue;
            }
            // Delivery failure is tolerable: the FD may be unreachable
            // too, and the ordinary scan-and-acknowledge path still runs.
            let _ = ack::report_suspect(
                &self.proc,
                fd,
                r,
                self.policy.suspect_queue,
                self.policy.attempt,
            );
        }
    }

    /// The underlying process handle.
    pub fn proc(&self) -> &GaspiProc {
        &self.proc
    }

    /// The policy in effect.
    pub fn policy(&self) -> &CommPolicy {
        &self.policy
    }

    /// The newest epoch this rank has acknowledged locally.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch.load(Ordering::Acquire)
    }

    /// Mark `epoch` as handled (the driver calls this when a recovery
    /// completes, so an in-flight plan isn't signalled twice).
    pub fn acknowledge(&self, epoch: u64) {
        self.seen_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The cheap pre-communication check: returns `Ok(())` when nothing
    /// happened; a typed signal otherwise.
    pub fn check(&self) -> FtResult<()> {
        if self.proc.notify_peek(CTRL_SEG, SHUTDOWN_NOTIF)? != 0 {
            return Err(FtError::Signal(FtSignal::Shutdown));
        }
        let epoch = u64::from(self.proc.notify_peek(CTRL_SEG, EPOCH_NOTIF)?);
        if epoch > self.seen_epoch() {
            if let Some(plan) = ack::read_plan(&self.proc)? {
                if plan.epoch > self.seen_epoch() {
                    self.seen_epoch.store(plan.epoch, Ordering::Release);
                    return Err(FtError::Signal(FtSignal::Recover(plan)));
                }
            }
        }
        Ok(())
    }

    /// Block until a signal arrives (idle processes park here).
    pub fn wait_signal(&self, lap: Duration) -> FtError {
        loop {
            if let Err(sig) = self.check() {
                return sig;
            }
            std::thread::sleep(lap);
        }
    }

    /// Generic retry loop shared by the `*_ft` wrappers.
    ///
    /// Timeouts re-attempt. A *broken* completion (dead partner or severed
    /// link) is final for this operation — the data did not arrive — so
    /// the loop reports the broken partners to the FD (see
    /// [`Self::report_broken`]), then stops attempting and holds position,
    /// polling only the watch, until the FD's acknowledgment (or the
    /// abandon deadline) arrives. This is the paper's "keep on returning
    /// with GASPI_TIMEOUT unless a failure acknowledgment is received".
    fn retry<T>(&self, mut attempt: impl FnMut() -> Result<T, GaspiError>) -> FtResult<T> {
        let deadline = Instant::now() + self.policy.abandon;
        let mut broken = false;
        loop {
            self.check()?;
            if broken {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                match attempt() {
                    Ok(v) => return Ok(v),
                    Err(GaspiError::Timeout) => {}
                    Err(GaspiError::QueueFailure { ranks, .. }) => {
                        self.report_broken(&ranks);
                        broken = true
                    }
                    Err(GaspiError::RemoteBroken { rank }) => {
                        self.report_broken(&[rank]);
                        broken = true
                    }
                    Err(e) => return Err(FtError::Gaspi(e)),
                }
            }
            if Instant::now() >= deadline {
                return Err(FtError::Gaspi(GaspiError::Timeout));
            }
        }
    }

    /// Fault-tolerant `gaspi_wait`.
    pub fn wait_ft(&self, queue: u16) -> FtResult<()> {
        self.retry(|| self.proc.wait(queue, self.policy.attempt))
    }

    /// Fault-tolerant `gaspi_notify_waitsome`.
    pub fn notify_waitsome_ft(
        &self,
        seg: SegId,
        begin: NotificationId,
        count: u32,
    ) -> FtResult<NotificationId> {
        self.retry(|| self.proc.notify_waitsome(seg, begin, count, self.policy.attempt))
    }

    /// Fault-tolerant barrier on `group`.
    pub fn barrier_ft(&self, group: Group) -> FtResult<()> {
        self.retry(|| self.proc.barrier(group, self.policy.attempt))
    }

    /// Fault-tolerant `f64` allreduce on `group`.
    pub fn allreduce_f64_ft(
        &self,
        group: Group,
        input: &[f64],
        op: ReduceOp,
    ) -> FtResult<Vec<f64>> {
        self.retry(|| self.proc.allreduce_f64(group, input, op, self.policy.attempt))
    }

    /// Fault-tolerant `u64` allreduce on `group`.
    pub fn allreduce_u64_ft(
        &self,
        group: Group,
        input: &[u64],
        op: ReduceOp,
    ) -> FtResult<Vec<u64>> {
        self.retry(|| self.proc.allreduce_u64(group, input, op, self.policy.attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ack::create_ctrl_segment;
    use crate::layout::WorldLayout;
    use crate::plan::RecoveryPlan;
    use ft_gaspi::{GaspiConfig, GaspiWorld};

    #[test]
    fn check_is_quiet_then_signals_once() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        let watch = HealthWatch::new(w0, CommPolicy::default());
        assert!(watch.check().is_ok());
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![1],
            rescues: vec![2],
            fd_alive: true,
            fd_rank: None,
        };
        ack::broadcast_plan(&fd, &plan, &[0], 0, Timeout::Ms(2000)).unwrap();
        // Wait for delivery, then the check must fire exactly once.
        std::thread::sleep(Duration::from_millis(20));
        match watch.check() {
            Err(FtError::Signal(FtSignal::Recover(p))) => assert_eq!(p, plan),
            other => panic!("expected Recover, got {other:?}"),
        }
        assert!(watch.check().is_ok(), "same epoch must not re-signal");
        assert_eq!(watch.seen_epoch(), 1);
    }

    #[test]
    fn shutdown_signal_wins() {
        let layout = WorldLayout::new(1, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        ack::broadcast_shutdown(&fd, &[0], 0, Timeout::Ms(2000)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let watch = HealthWatch::new(w0, CommPolicy::default());
        assert!(matches!(watch.check(), Err(FtError::Signal(FtSignal::Shutdown))));
    }

    #[test]
    fn retry_surfaces_ack_during_blocked_wait() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        w0.segment_create(5, 64).unwrap();
        // Kill rank 1 and post a write to it: wait_ft would loop forever on
        // QueueFailure — until the FD acks.
        world.fault().kill_rank(1);
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        let watch = HealthWatch::new(
            w0,
            CommPolicy {
                attempt: Timeout::Ms(5),
                abandon: Duration::from_secs(30),
                ..CommPolicy::default()
            },
        );
        let fd2 = fd.clone();
        let layout2 = layout;
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let plan = RecoveryPlan {
                epoch: 1,
                failed: vec![1],
                rescues: vec![2],
                fd_alive: true,
                fd_rank: None,
            };
            ack::broadcast_plan(&fd2, &plan, &[0], 0, Timeout::Ms(2000)).unwrap();
            let _ = layout2;
        });
        match watch.wait_ft(0) {
            Err(FtError::Signal(FtSignal::Recover(p))) => assert_eq!(p.epoch, 1),
            other => panic!("expected Recover, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn broken_partner_is_reported_to_the_fd_once() {
        let layout = WorldLayout::new(3, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        w0.segment_create(5, 64).unwrap();
        // Sever the w0→w1 link only: the FD's own pings to rank 1 still
        // succeed, so only the worker's report can surface the fault.
        world.fault().break_link_directed(0, 1);
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        let watch = HealthWatch::new(
            w0.clone(),
            CommPolicy {
                attempt: Timeout::Ms(5),
                abandon: Duration::from_millis(80),
                ..CommPolicy::default()
            },
        );
        watch.set_fd_rank(layout.fd_rank());
        assert!(matches!(watch.wait_ft(0), Err(FtError::Gaspi(GaspiError::Timeout))));
        let suspects = ack::drain_suspects(&fd, layout.total()).unwrap();
        assert_eq!(suspects, vec![1], "w0 must flag its unreachable partner");
        // Second trip over the same broken partner must not re-report.
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        assert!(matches!(watch.wait_ft(0), Err(FtError::Gaspi(GaspiError::Timeout))));
        assert!(ack::drain_suspects(&fd, layout.total()).unwrap().is_empty());
    }

    #[test]
    fn retry_abandons_without_fd() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&w0, &layout).unwrap();
        w0.segment_create(5, 64).unwrap();
        world.fault().kill_rank(1);
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        let watch = HealthWatch::new(
            w0,
            CommPolicy {
                attempt: Timeout::Ms(5),
                abandon: Duration::from_millis(100),
                ..CommPolicy::default()
            },
        );
        let t0 = Instant::now();
        assert!(matches!(watch.wait_ft(0), Err(FtError::Gaspi(GaspiError::Timeout))));
        assert!(t0.elapsed() >= Duration::from_millis(100));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
