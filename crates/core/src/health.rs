//! Worker-side health watch and fault-tolerant communication wrappers.
//!
//! "The communication routines are checked for a failure acknowledgment
//! signal from the FD process" (§IV-D) and "the worker processes
//! communicating directly with the failed processes keep on returning with
//! GASPI_TIMEOUT unless a failure acknowledgment is received" (§IV-A).
//!
//! [`HealthWatch::check`] is the cheap pre-communication test (an atomic
//! peek of the epoch notification). The `*_ft` wrappers implement the
//! retry-until-acknowledged loop: they issue the underlying GASPI call
//! with a short timeout and re-check the watch between attempts, so a
//! worker stuck on a dead partner leaves the call the moment the FD's
//! acknowledgment lands — as a typed [`FtSignal::Recover`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_gaspi::{GaspiError, GaspiProc, Group, NotificationId, ReduceOp, SegId, Timeout};

use crate::ack::{self, CTRL_SEG, EPOCH_NOTIF, SHUTDOWN_NOTIF};
use crate::error::{FtError, FtResult, FtSignal};

/// Tuning knobs for the fault-tolerant communication wrappers.
#[derive(Debug, Clone)]
pub struct CommPolicy {
    /// Per-attempt GASPI timeout (the paper sets 1 s; the simulation
    /// scales it down).
    pub attempt: Timeout,
    /// Give up entirely after this long without progress or
    /// acknowledgment. Guards against the paper's restriction 2 (no FD
    /// left to acknowledge) turning into an infinite hang.
    pub abandon: Duration,
}

impl Default for CommPolicy {
    fn default() -> Self {
        Self { attempt: Timeout::Ms(20), abandon: Duration::from_secs(10) }
    }
}

/// The per-rank failure-acknowledgment watch.
pub struct HealthWatch {
    proc: GaspiProc,
    seen_epoch: Arc<AtomicU64>,
    policy: CommPolicy,
}

impl HealthWatch {
    /// Watch for acknowledgments on `proc`'s control segment.
    pub fn new(proc: GaspiProc, policy: CommPolicy) -> Self {
        Self { proc, seen_epoch: Arc::new(AtomicU64::new(0)), policy }
    }

    /// The underlying process handle.
    pub fn proc(&self) -> &GaspiProc {
        &self.proc
    }

    /// The policy in effect.
    pub fn policy(&self) -> &CommPolicy {
        &self.policy
    }

    /// The newest epoch this rank has acknowledged locally.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch.load(Ordering::Acquire)
    }

    /// Mark `epoch` as handled (the driver calls this when a recovery
    /// completes, so an in-flight plan isn't signalled twice).
    pub fn acknowledge(&self, epoch: u64) {
        self.seen_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The cheap pre-communication check: returns `Ok(())` when nothing
    /// happened; a typed signal otherwise.
    pub fn check(&self) -> FtResult<()> {
        if self.proc.notify_peek(CTRL_SEG, SHUTDOWN_NOTIF)? != 0 {
            return Err(FtError::Signal(FtSignal::Shutdown));
        }
        let epoch = u64::from(self.proc.notify_peek(CTRL_SEG, EPOCH_NOTIF)?);
        if epoch > self.seen_epoch() {
            if let Some(plan) = ack::read_plan(&self.proc)? {
                if plan.epoch > self.seen_epoch() {
                    self.seen_epoch.store(plan.epoch, Ordering::Release);
                    return Err(FtError::Signal(FtSignal::Recover(plan)));
                }
            }
        }
        Ok(())
    }

    /// Block until a signal arrives (idle processes park here).
    pub fn wait_signal(&self, lap: Duration) -> FtError {
        loop {
            if let Err(sig) = self.check() {
                return sig;
            }
            std::thread::sleep(lap);
        }
    }

    /// Generic retry loop shared by the `*_ft` wrappers.
    ///
    /// Timeouts re-attempt. A *broken* completion (dead partner) is final
    /// for this operation — the data did not arrive — so the loop stops
    /// attempting and holds position, polling only the watch, until the
    /// FD's acknowledgment (or the abandon deadline) arrives. This is the
    /// paper's "keep on returning with GASPI_TIMEOUT unless a failure
    /// acknowledgment is received".
    fn retry<T>(&self, mut attempt: impl FnMut() -> Result<T, GaspiError>) -> FtResult<T> {
        let deadline = Instant::now() + self.policy.abandon;
        let mut broken = false;
        loop {
            self.check()?;
            if broken {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                match attempt() {
                    Ok(v) => return Ok(v),
                    Err(GaspiError::Timeout) => {}
                    Err(GaspiError::QueueFailure { .. }) | Err(GaspiError::RemoteBroken { .. }) => {
                        broken = true
                    }
                    Err(e) => return Err(FtError::Gaspi(e)),
                }
            }
            if Instant::now() >= deadline {
                return Err(FtError::Gaspi(GaspiError::Timeout));
            }
        }
    }

    /// Fault-tolerant `gaspi_wait`.
    pub fn wait_ft(&self, queue: u16) -> FtResult<()> {
        self.retry(|| self.proc.wait(queue, self.policy.attempt))
    }

    /// Fault-tolerant `gaspi_notify_waitsome`.
    pub fn notify_waitsome_ft(
        &self,
        seg: SegId,
        begin: NotificationId,
        count: u32,
    ) -> FtResult<NotificationId> {
        self.retry(|| self.proc.notify_waitsome(seg, begin, count, self.policy.attempt))
    }

    /// Fault-tolerant barrier on `group`.
    pub fn barrier_ft(&self, group: Group) -> FtResult<()> {
        self.retry(|| self.proc.barrier(group, self.policy.attempt))
    }

    /// Fault-tolerant `f64` allreduce on `group`.
    pub fn allreduce_f64_ft(
        &self,
        group: Group,
        input: &[f64],
        op: ReduceOp,
    ) -> FtResult<Vec<f64>> {
        self.retry(|| self.proc.allreduce_f64(group, input, op, self.policy.attempt))
    }

    /// Fault-tolerant `u64` allreduce on `group`.
    pub fn allreduce_u64_ft(
        &self,
        group: Group,
        input: &[u64],
        op: ReduceOp,
    ) -> FtResult<Vec<u64>> {
        self.retry(|| self.proc.allreduce_u64(group, input, op, self.policy.attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ack::create_ctrl_segment;
    use crate::layout::WorldLayout;
    use crate::plan::RecoveryPlan;
    use ft_gaspi::{GaspiConfig, GaspiWorld};

    #[test]
    fn check_is_quiet_then_signals_once() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        let watch = HealthWatch::new(w0, CommPolicy::default());
        assert!(watch.check().is_ok());
        let plan = RecoveryPlan {
            epoch: 1,
            failed: vec![1],
            rescues: vec![2],
            fd_alive: true,
            fd_rank: None,
        };
        ack::broadcast_plan(&fd, &plan, &[0], 0, Timeout::Ms(2000)).unwrap();
        // Wait for delivery, then the check must fire exactly once.
        std::thread::sleep(Duration::from_millis(20));
        match watch.check() {
            Err(FtError::Signal(FtSignal::Recover(p))) => assert_eq!(p, plan),
            other => panic!("expected Recover, got {other:?}"),
        }
        assert!(watch.check().is_ok(), "same epoch must not re-signal");
        assert_eq!(watch.seen_epoch(), 1);
    }

    #[test]
    fn shutdown_signal_wins() {
        let layout = WorldLayout::new(1, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        ack::broadcast_shutdown(&fd, &[0], 0, Timeout::Ms(2000)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let watch = HealthWatch::new(w0, CommPolicy::default());
        assert!(matches!(watch.check(), Err(FtError::Signal(FtSignal::Shutdown))));
    }

    #[test]
    fn retry_surfaces_ack_during_blocked_wait() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let fd = world.proc_handle(layout.fd_rank());
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&fd, &layout).unwrap();
        create_ctrl_segment(&w0, &layout).unwrap();
        w0.segment_create(5, 64).unwrap();
        // Kill rank 1 and post a write to it: wait_ft would loop forever on
        // QueueFailure — until the FD acks.
        world.fault().kill_rank(1);
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        let watch = HealthWatch::new(
            w0,
            CommPolicy { attempt: Timeout::Ms(5), abandon: Duration::from_secs(30) },
        );
        let fd2 = fd.clone();
        let layout2 = layout;
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let plan = RecoveryPlan {
                epoch: 1,
                failed: vec![1],
                rescues: vec![2],
                fd_alive: true,
                fd_rank: None,
            };
            ack::broadcast_plan(&fd2, &plan, &[0], 0, Timeout::Ms(2000)).unwrap();
            let _ = layout2;
        });
        match watch.wait_ft(0) {
            Err(FtError::Signal(FtSignal::Recover(p))) => assert_eq!(p.epoch, 1),
            other => panic!("expected Recover, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn retry_abandons_without_fd() {
        let layout = WorldLayout::new(2, 1);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let w0 = world.proc_handle(0);
        create_ctrl_segment(&w0, &layout).unwrap();
        w0.segment_create(5, 64).unwrap();
        world.fault().kill_rank(1);
        w0.write(5, 0, 1, 5, 0, 8, 0).unwrap();
        let watch = HealthWatch::new(
            w0,
            CommPolicy { attempt: Timeout::Ms(5), abandon: Duration::from_millis(100) },
        );
        let t0 = Instant::now();
        assert!(matches!(watch.wait_ft(0), Err(FtError::Gaspi(GaspiError::Timeout))));
        assert!(t0.elapsed() >= Duration::from_millis(100));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
