//! Full-stack restart through the PFS checkpoint tier: a two-node loss
//! that destroys a rank's local checkpoint *and* its neighbor replica
//! must restore from the PFS copy and still finish with the exact
//! result.
//!
//! The kill is step-indexed (node kill at the 3rd crossing of
//! `driver.checkpoint.commit`), so the drained version-3 checkpoint is
//! provably on all three tiers when the nodes die.

use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Dec, Enc, Pfs, PfsConfig};
use ft_cluster::{FaultSchedule, Injection};
use ft_core::{run_ft_job, FtApp, FtConfig, FtCtx, FtResult, RecoveryPlan, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

struct PfsApp {
    acc: f64,
    ck: Checkpointer,
}

impl PfsApp {
    fn new(ctx: &FtCtx, pfs: &Arc<Pfs>) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(
                &ctx.proc,
                CheckpointerConfig { pfs_every: Some(1), ..CheckpointerConfig::for_tag(STATE_TAG) },
                Some(Arc::clone(pfs)),
            ),
        }
    }
}

impl FtApp for PfsApp {
    /// `(accumulator, restores served from PFS)`.
    type Summary = (f64, u64);

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn checkpoint(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<()> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        self.ck.commit(iter / ctx.cfg.checkpoint_every, e.finish(), CopyPolicy::Replicate);
        // Make every tier durable before the commit site: the injected
        // node kill below must find the PFS copy already written.
        assert!(self.ck.drain(FETCH), "replication must land");
        Ok(())
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().unwrap();
        self.acc = d.f64().unwrap();
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<(f64, u64)> {
        Ok((self.acc, self.ck.stats().restores_pfs))
    }
}

#[test]
fn two_node_loss_restores_from_pfs_tier() {
    // 1 rank/node: node n hosts rank n. Node 2 holds node 1's replicas,
    // so killing nodes 1 and 2 destroys rank 1's local copy AND its
    // neighbor replica — only the PFS copy survives.
    let workers = 4u32;
    let iters = 24u64;
    let layout = WorldLayout::new(workers, 3);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let schedule = FaultSchedule::none()
        .inject(Injection::kill_node("driver.checkpoint.commit", 1, 3))
        .inject(Injection::kill_node("driver.checkpoint.commit", 2, 3));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(4)
        .max_iters(iters)
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    let pfs = Pfs::new(PfsConfig::instant());
    let report = run_ft_job(&world, cfg, schedule, move |ctx| PfsApp::new(ctx, &pfs));

    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 2], "both injected node kills must fire");

    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), workers as usize, "all app ranks must finish: {summaries:?}");
    let expected =
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64;
    for (app, (acc, _)) in &summaries {
        assert_eq!(*acc, expected, "app rank {app} accumulated a wrong total");
    }
    // Rank 1's adopter had no local copy and no neighbor replica left:
    // at least one restore must have been served from the PFS tier.
    let pfs_restores: u64 = summaries.iter().map(|(_, (_, p))| p).sum();
    assert!(pfs_restores >= 1, "no restore came from the PFS tier");
    // And the run did restore from a real checkpoint, not from scratch.
    let ev = report.events.snapshot();
    let restored: Vec<u64> = ev
        .iter()
        .filter_map(|e| match e.kind {
            ft_core::EventKind::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .collect();
    assert!(!restored.is_empty());
    assert!(restored.iter().all(|&i| i > 0), "restores must come from checkpoints: {restored:?}");
}
