//! Property tests for the recovery plan algebra: rank maps, worker sets,
//! status derivation, and the wire codec.

use proptest::prelude::*;

use ft_core::plan::NO_RESCUE;
use ft_core::{ProcStatus, RecoveryPlan, WorldLayout};

/// Generate a consistent adoption history for a layout: failures drawn
/// from live workers/idles, rescues drawn from the remaining idle pool.
fn arb_history(workers: u32, spares: u32, steps: usize, picks: Vec<u16>) -> RecoveryPlan {
    let layout = WorldLayout::new(workers, spares);
    let mut failed = Vec::new();
    let mut rescues = Vec::new();
    let mut pool: Vec<u32> = layout.idle_pool().collect();
    let mut map = ft_core::RankMap::identity(workers);
    let mut pick = picks.into_iter();
    for _ in 0..steps {
        // Pick a live carrier (worker) to fail.
        let carriers: Vec<u32> = (0..layout.total() - 1)
            .filter(|&g| !failed.contains(&g) && map.app_of(g).is_some())
            .collect();
        if carriers.is_empty() {
            break;
        }
        let f = carriers[pick.next().unwrap_or(0) as usize % carriers.len()];
        failed.push(f);
        match pool.first().copied() {
            Some(r) => {
                pool.remove(0);
                map.transfer(f, r);
                rescues.push(r);
            }
            None => rescues.push(NO_RESCUE),
        }
    }
    RecoveryPlan { epoch: failed.len() as u64, failed, rescues, fd_alive: true, fd_rank: None }
}

proptest! {
    /// Non-shrinking recovery: as long as every failure got a rescue, the
    /// worker set always has exactly `workers` members, none failed.
    #[test]
    fn worker_set_is_non_shrinking(
        workers in 1u32..12,
        spares in 1u32..8,
        steps in 0usize..6,
        picks in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let layout = WorldLayout::new(workers, spares);
        let plan = arb_history(workers, spares, steps, picks);
        prop_assume!(plan.rescues.iter().all(|&r| r != NO_RESCUE));
        let ws = plan.worker_set(&layout);
        prop_assert_eq!(ws.len(), workers as usize);
        for &g in &ws {
            prop_assert!(!plan.failed.contains(&g), "failed rank in worker set");
        }
        // Every app rank has exactly one carrier.
        let map = plan.rank_map(&layout);
        let mut carriers: Vec<u32> = (0..workers).map(|a| map.gaspi_of(a)).collect();
        carriers.sort_unstable();
        carriers.dedup();
        prop_assert_eq!(carriers.len(), workers as usize, "carriers must be distinct");
    }

    /// Status derivation is consistent with the rank map: carriers are
    /// WORKING, failed are FAILED, and counts add up.
    #[test]
    fn status_partitions_ranks(
        workers in 1u32..12,
        spares in 1u32..8,
        steps in 0usize..6,
        picks in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let layout = WorldLayout::new(workers, spares);
        let plan = arb_history(workers, spares, steps, picks);
        let st = plan.status(&layout);
        prop_assert_eq!(st.len(), layout.total() as usize);
        let map = plan.rank_map(&layout);
        for (g, s) in st.iter().enumerate() {
            let g = g as u32;
            if plan.failed.contains(&g) {
                prop_assert_eq!(*s, ProcStatus::Failed);
            } else if map.app_of(g).is_some() {
                prop_assert_eq!(*s, ProcStatus::Working);
            } else {
                prop_assert!(matches!(s, ProcStatus::Idle | ProcStatus::Detector));
            }
        }
    }

    /// Plan wire codec roundtrips arbitrary histories.
    #[test]
    fn plan_codec_roundtrip(
        workers in 1u32..12,
        spares in 1u32..8,
        steps in 0usize..6,
        picks in proptest::collection::vec(any::<u16>(), 8),
        fd_alive in any::<bool>(),
    ) {
        let mut plan = arb_history(workers, spares, steps, picks);
        plan.fd_alive = fd_alive;
        let buf = plan.encode();
        prop_assert_eq!(RecoveryPlan::decode(&buf), Some(plan));
    }
}
