//! End-to-end tests of the Fig. 3 flow with a toy deterministic
//! application: every worker contributes `(app_rank+1)·(iter+1)` to a
//! group allreduce-sum and accumulates the result. The final accumulator
//! is a pure function of (num_workers, iterations), so any adoption,
//! restore, or redo mistake shows up as a wrong number.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Dec, Enc};
use ft_cluster::FaultSchedule;
use ft_core::ack::FIRST_APP_SEG;
use ft_core::{
    run_ft_job, FtApp, FtConfig, FtCtx, FtError, FtResult, RecoveryPlan, Role, WorldLayout,
};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const PLAN_TAG: u32 = 2;
const PLAN_MAGIC: u64 = 0xC0FF_EE00_DEAD_BEEF;
const FETCH: Duration = Duration::from_secs(5);

struct ToyApp {
    acc: f64,
    state_ck: Checkpointer,
    plan_ck: Checkpointer,
}

impl ToyApp {
    /// `pfs` backs the one-time plan blobs (the paper's "infrequent
    /// PFS-level copies" for a higher degree of reliability), so even
    /// adjacent multi-node failures cannot strand a rescue without its
    /// adopted identity's plan.
    fn new(ctx: &FtCtx, pfs: &std::sync::Arc<ft_checkpoint::Pfs>) -> Self {
        Self {
            acc: 0.0,
            state_ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
            plan_ck: Checkpointer::new(
                &ctx.proc,
                CheckpointerConfig {
                    keep_versions: 1,
                    pfs_every: Some(1),
                    ..CheckpointerConfig::for_tag(PLAN_TAG)
                },
                Some(std::sync::Arc::clone(pfs)),
            ),
        }
    }

    fn encode_state(&self, iter: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        e.finish()
    }
}

impl FtApp for ToyApp {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        // Our "pre-processing result": a plan blob a rescue must be able
        // to read instead of redoing setup.
        let mut e = Enc::new();
        e.u64(PLAN_MAGIC).u32(ctx.app_rank());
        self.plan_ck.commit(0, e.finish(), CopyPolicy::Replicate);
        // A data segment, to make the world realistic.
        ctx.proc.segment_create(FIRST_APP_SEG, 256)?;
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.proc.segment_create(FIRST_APP_SEG, 256)?;
        // Read the predecessor's plan blob — the paper's "the rescue
        // process reads the checkpoint of the failed process. In this way,
        // the rescue process is informed about the communicating partners"
        let source = ctx.restore_source();
        let r = self
            .plan_ck
            .restore_latest(source, FETCH)
            .hit()
            .ok_or(FtError::Gaspi(ft_gaspi::GaspiError::Timeout))?;
        let mut d = Dec::new(&r.data);
        let magic = d.u64().expect("plan blob magic");
        let app = d.u32().expect("plan blob app rank");
        assert_eq!(magic, PLAN_MAGIC);
        assert_eq!(app, ctx.app_rank(), "adopted the wrong identity");
        // Re-home the plan blob under our own rank.
        self.plan_ck.commit(0, r.data, CopyPolicy::Replicate);
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        let sum = ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        self.acc += sum;
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.state_ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        Ok(Some(self.encode_state(iter)))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().expect("state iter");
        self.acc = d.f64().expect("state acc");
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.state_ck.refresh_failed(&plan.failed);
        self.plan_ck.refresh_failed(&plan.failed);
        let _ = ctx;
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}

/// Expected accumulator: Σ_{i=1..iters} i · W(W+1)/2.
fn expected_acc(workers: u32, iters: u64) -> f64 {
    let s = f64::from(workers) * f64::from(workers + 1) / 2.0;
    let t = (iters * (iters + 1) / 2) as f64;
    s * t
}

fn job(
    workers: u32,
    spares: u32,
    iters: u64,
    ckpt_every: u64,
    schedule: FaultSchedule,
) -> ft_core::JobReport<f64> {
    let layout = WorldLayout::new(workers, spares);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(ckpt_every)
        .max_iters(iters)
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    let pfs = ft_checkpoint::Pfs::new(ft_checkpoint::PfsConfig::instant());
    run_ft_job(&world, cfg, schedule, move |ctx| ToyApp::new(ctx, &pfs))
}

fn assert_workers_correct(report: &ft_core::JobReport<f64>, workers: u32, iters: u64) {
    let summaries = report.worker_summaries();
    if summaries.len() != workers as usize {
        for r in report.completed() {
            eprintln!("rank {} role {:?} app {:?} err {:?}", r.rank, r.role, r.app_rank, r.error);
        }
        for (i, o) in report.outcomes.iter().enumerate() {
            if o.was_killed() {
                eprintln!("rank {i}: killed");
            }
        }
        for e in report.events.snapshot() {
            eprintln!("{:>10.3?} r{} {:?}", e.t, e.rank, e.kind);
        }
        panic!("every app rank must finish exactly once: {summaries:?}");
    }
    let want = expected_acc(workers, iters);
    for (app, acc) in summaries {
        assert_eq!(*acc, want, "app rank {app} accumulated a wrong total");
    }
}

#[test]
fn failure_free_run() {
    let report = job(4, 2, 50, 10, FaultSchedule::none());
    assert_workers_correct(&report, 4, 50);
    assert!(report.killed().is_empty());
    let det = report.detector().expect("detector stats");
    assert!(det.recoveries.is_empty());
    assert!(det.scans >= 1);
    assert!(!det.capacity_exhausted);
}

#[test]
fn single_failure_recovers_and_matches_failure_free() {
    let schedule = FaultSchedule::none().kill_rank_at_iteration(2, 37);
    let report = job(4, 3, 60, 10, schedule);
    assert_eq!(report.killed(), vec![2]);
    assert_workers_correct(&report, 4, 60);
    // The rescue (rank 4) must report Role::Rescue with app rank 2.
    let rescue = report
        .completed()
        .into_iter()
        .find(|r| r.role == Role::Rescue)
        .expect("a rescue must have been activated");
    assert_eq!(rescue.rank, 4);
    assert_eq!(rescue.app_rank, Some(2));
    // Event trail: detect → ack → signal → rebuilt → restored → redo.
    let ev = report.events.snapshot();
    use ft_core::EventKind as K;
    let has = |f: &dyn Fn(&K) -> bool| ev.iter().any(|e| f(&e.kind));
    assert!(has(&|k| matches!(k, K::FdDetect { epoch: 1, .. })));
    assert!(has(&|k| matches!(k, K::FdAck { epoch: 1 })));
    assert!(has(&|k| matches!(k, K::FailureSignal { epoch: 1 })));
    assert!(has(&|k| matches!(k, K::GroupRebuilt { epoch: 1 })));
    assert!(has(&|k| matches!(k, K::Restored { epoch: 1, .. })));
    assert!(has(&|k| matches!(k, K::RedoComplete { epoch: 1, .. })));
    // Restore resumed from the last checkpoint before the kill (iter 30).
    let restored = ev
        .iter()
        .find_map(|e| match e.kind {
            K::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .unwrap();
    assert_eq!(restored, 30);
}

#[test]
fn two_sequential_failures() {
    let schedule =
        FaultSchedule::none().kill_rank_at_iteration(1, 25).kill_rank_at_iteration(3, 45);
    let report = job(4, 3, 60, 10, schedule);
    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 3]);
    assert_workers_correct(&report, 4, 60);
    let det = report.detector().expect("detector stats");
    assert_eq!(det.recoveries.len(), 2);
}

#[test]
fn rescue_failure_is_rescued_again() {
    // Rank 1 dies; the first idle (rank 3) adopts app rank 1, then is
    // itself killed mid-compute. The second rescue (rank 4) must adopt
    // the same app rank transitively.
    let schedule =
        FaultSchedule::none().kill_rank_at_iteration(1, 15).kill_rank_at_iteration(3, 35); // fires once rank 3 computes as a worker
    let report = job(3, 4, 50, 10, schedule);
    assert_workers_correct(&report, 3, 50);
    let rescue = report
        .completed()
        .into_iter()
        .find(|r| r.role == Role::Rescue && r.summary.is_some())
        .expect("final rescue");
    assert_eq!(rescue.rank, 4);
    assert_eq!(rescue.app_rank, Some(1));
}

#[test]
fn simultaneous_failures_single_detection_round() {
    // The paper's "3 sim. fail recovery": a node hosting three processes
    // dies, and the threaded FD detects all three in a single round.
    let layout = WorldLayout::new(4, 4);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()).with_ranks_per_node(3));
    // Node 0 hosts ranks {0,1,2}; kill it mid-run.
    let schedule = FaultSchedule::none()
        .timed(Duration::from_millis(10), ft_cluster::FaultAction::KillNode(ft_cluster::NodeId(0)));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(20)
        .max_iters(400)
        .detector(ft_core::DetectorConfig { threads: 8, ..Default::default() })
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    let pfs = ft_checkpoint::Pfs::new(ft_checkpoint::PfsConfig::instant());
    let report = run_ft_job(&world, cfg, schedule, move |ctx| ToyApp::new(ctx, &pfs));
    assert_workers_correct(&report, 4, 400);
    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![0, 1, 2]);
    let det = report.detector().expect("detector stats");
    assert_eq!(det.recoveries.len(), 1, "one detection round for simultaneous failures");
    assert_eq!(det.recoveries[0].detected.len(), 3);
    // All three recoveries resumed from a real checkpoint (the node-local
    // copies died with node 0, the neighbor replicas on node 1 did not).
    let ev = report.events.snapshot();
    let restored: Vec<u64> = ev
        .iter()
        .filter_map(|e| match e.kind {
            ft_core::EventKind::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .collect();
    assert!(!restored.is_empty());
    assert!(restored.iter().all(|&i| *restored.first().unwrap() == i));
}

#[test]
fn fd_promotes_itself_when_pool_empty() {
    // One spare only (the FD). A worker dies; the FD must join the worker
    // group itself and the job still completes correctly.
    let schedule = FaultSchedule::none().kill_rank_at_iteration(1, 17);
    let report = job(3, 1, 30, 5, schedule);
    assert_workers_correct(&report, 3, 30);
    let promoted = report
        .completed()
        .into_iter()
        .find(|r| r.role == Role::Rescue && r.detector.is_some())
        .expect("the FD must have been promoted");
    assert_eq!(promoted.rank, 3);
    assert!(promoted.detector.as_ref().unwrap().promoted_plan.is_some());
    let ev = report.events.snapshot();
    assert!(ev.iter().any(|e| matches!(e.kind, ft_core::EventKind::FdPromoted)));
}

#[test]
fn false_positive_network_failure_is_enforced_dead() {
    // Break the FD→worker link only: the worker is alive, the FD suspects
    // it, and recovery must proc_kill it so it cannot keep computing
    // (paper §IV-A-a).
    let layout = WorldLayout::new(3, 3);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let fault = world.fault();
    let fd = layout.fd_rank();
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(20)
        .max_iters(400)
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    // Break the link early enough that plenty of iterations remain.
    let schedule = FaultSchedule::none()
        .timed(Duration::from_millis(10), ft_cluster::FaultAction::BreakLink(fd, 1));
    let pfs = ft_checkpoint::Pfs::new(ft_checkpoint::PfsConfig::instant());
    let report = run_ft_job(&world, cfg, schedule, move |ctx| ToyApp::new(ctx, &pfs));
    assert_workers_correct(&report, 3, 400);
    assert!(!fault.is_alive(1), "false positive must be enforced dead");
    // Rank 1 was alive when killed: it appears as Killed (fail-stop), and
    // a rescue carries app rank 1 to completion.
    assert!(report.killed().contains(&1));
}

#[test]
fn capacity_exhaustion_is_reported() {
    // Two workers die, but there are zero rescue slots beyond the FD and
    // the FD can cover only one. The job must end with CapacityExhausted
    // rather than hang.
    let schedule =
        FaultSchedule::none().kill_rank_at_iteration(0, 10).kill_rank_at_iteration(1, 10);
    let layout = WorldLayout::new(3, 1);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(5)
        .max_iters(40)
        .abandon(Duration::from_secs(3))
        .build()
        .unwrap();
    let pfs = ft_checkpoint::Pfs::new(ft_checkpoint::PfsConfig::instant());
    let report = run_ft_job(&world, cfg, schedule, move |ctx| ToyApp::new(ctx, &pfs));
    let ev = report.events.snapshot();
    let fd_gave_up = ev.iter().any(|e| matches!(e.kind, ft_core::EventKind::CapacityExhausted));
    // Depending on scan timing the FD either sees both failures in one
    // round (capacity exhausted) or first covers one by promotion and the
    // second is then undetectable (no FD left) — both are the paper's
    // stated restrictions; either way no worker may report a bogus
    // success.
    let summaries = report.worker_summaries();
    let complete = summaries.len() == 3 && summaries.iter().all(|(_, &s)| s == expected_acc(3, 40));
    assert!(
        fd_gave_up || !complete,
        "job must not claim a full correct result after exhausting capacity"
    );
}

#[test]
fn failure_before_first_checkpoint_restarts_from_scratch() {
    let schedule = FaultSchedule::none().kill_rank_at_iteration(1, 3);
    let report = job(3, 2, 20, 10, schedule);
    assert_workers_correct(&report, 3, 20);
    let ev = report.events.snapshot();
    let restored = ev
        .iter()
        .find_map(|e| match e.kind {
            ft_core::EventKind::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .unwrap();
    assert_eq!(restored, 0, "no checkpoint existed; must restart from iteration 0");
}
