//! Chaos test: seeded random failure storms against the full recovery
//! stack. Any number of ranks — workers, idles, even the FD — may die at
//! random times. The contract under test:
//!
//! * the job never hangs (bounded by the abandon policy);
//! * if every application rank reports a summary, the results are the
//!   deterministic ground truth (no silent corruption, ever);
//! * otherwise the degradation is clean: failures exceeded what the
//!   spare pool / detector redundancy could absorb, and surviving ranks
//!   report errors instead of wrong numbers.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, Dec, Enc};
use ft_cluster::{FaultAction, FaultSchedule};
use ft_core::{run_ft_job, FtApp, FtConfig, FtCtx, FtResult, RecoveryPlan, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

struct Acc {
    acc: f64,
    ck: Checkpointer,
}

impl Acc {
    fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }
}

impl FtApp for Acc {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        Ok(Some(e.finish()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().unwrap();
        self.acc = d.f64().unwrap();
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        let _ = ctx;
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn storm(seed: u64) {
    let mut z = seed;
    let workers = 3 + (splitmix(&mut z) % 3) as u32; // 3..=5
    let spares = 2 + (splitmix(&mut z) % 3) as u32; // 2..=4
    let kills = 1 + (splitmix(&mut z) % 4) as usize; // 1..=4
    let redundant = splitmix(&mut z).is_multiple_of(2);
    let layout = WorldLayout::new(workers, spares);
    let total = layout.total();

    let mut schedule = FaultSchedule::none();
    let mut victims = Vec::new();
    for _ in 0..kills {
        let victim = (splitmix(&mut z) % u64::from(total)) as u32;
        if victims.contains(&victim) {
            continue;
        }
        victims.push(victim);
        let at = Duration::from_millis(10 + splitmix(&mut z) % 140);
        schedule = schedule.timed(at, FaultAction::KillRank(victim));
    }

    let world = GaspiWorld::new(GaspiConfig::deterministic(total).with_seed(seed));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(10)
        .max_iters(600)
        .redundant_fd(redundant && spares >= 2)
        .abandon(Duration::from_secs(5))
        .build()
        .unwrap();
    let report = run_ft_job(&world, cfg, schedule, Acc::new);

    let summaries = report.worker_summaries();
    let iters = 600u64;
    let expected =
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64;
    if summaries.len() == workers as usize {
        for (app, acc) in &summaries {
            assert_eq!(
                **acc, expected,
                "seed {seed}: app rank {app} produced a WRONG result (victims {victims:?})"
            );
        }
    } else {
        // Clean degradation: someone must have recorded why.
        let errored = report.completed().into_iter().filter(|r| r.error.is_some()).count();
        let killed = report.killed().len();
        assert!(
            errored + killed > 0,
            "seed {seed}: incomplete without any recorded failure (victims {victims:?})"
        );
        // And no stray *wrong* summaries either: whoever finished must
        // still be correct.
        for (app, acc) in &summaries {
            assert_eq!(
                **acc, expected,
                "seed {seed}: partial completion with corrupt result at app rank {app}"
            );
        }
    }
}

/// One `#[test]` per seed in the fixed bank: a failing seed is a stable
/// test name (`chaos_storm_seed_7`) that can be rerun and bisected
/// directly, instead of a number buried in a loop's panic message.
macro_rules! storm_matrix {
    ($($name:ident => $seed:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                storm($seed);
            }
        )+
    };
}

storm_matrix! {
    chaos_storm_seed_0 => 0,
    chaos_storm_seed_1 => 1,
    chaos_storm_seed_2 => 2,
    chaos_storm_seed_3 => 3,
    chaos_storm_seed_4 => 4,
    chaos_storm_seed_5 => 5,
    chaos_storm_seed_6 => 6,
    chaos_storm_seed_7 => 7,
    chaos_storm_seed_8 => 8,
    chaos_storm_seed_9 => 9,
    chaos_storm_seed_10 => 10,
    chaos_storm_seed_11 => 11,
}

/// Storm at the sharded transport's scale: a 512-rank world (506 workers,
/// 5 idle spares + the FD) with three timed worker kills. Every rank is a
/// live thread and every step is a fault-tolerant allreduce across all
/// 506 workers, so this exercises shard contention, the stream tables,
/// and recovery re-wiring at two orders of magnitude above the seed
/// tests. Iteration count is kept small — the point is width, not depth.
#[test]
fn chaos_storm_512_ranks() {
    let workers = 506u32;
    let layout = WorldLayout::new(workers, 6);
    let total = layout.total();
    assert_eq!(total, 512);

    let mut z = 512u64;
    let mut schedule = FaultSchedule::none();
    let mut victims = Vec::new();
    for _ in 0..3 {
        let victim = (splitmix(&mut z) % u64::from(workers)) as u32;
        if victims.contains(&victim) {
            continue;
        }
        victims.push(victim);
        let at = Duration::from_millis(20 + splitmix(&mut z) % 200);
        schedule = schedule.timed(at, FaultAction::KillRank(victim));
    }

    let world = GaspiWorld::new(GaspiConfig::deterministic(total).with_seed(512));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(5)
        .max_iters(10)
        .abandon(Duration::from_secs(60))
        .build()
        .unwrap();
    let report = run_ft_job(&world, cfg, schedule, Acc::new);

    let summaries = report.worker_summaries();
    let iters = 10u64;
    let expected =
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64;
    if summaries.len() == workers as usize {
        for (app, acc) in &summaries {
            assert_eq!(
                **acc, expected,
                "512-rank storm: app rank {app} produced a WRONG result (victims {victims:?})"
            );
        }
    } else {
        let errored = report.completed().into_iter().filter(|r| r.error.is_some()).count();
        let killed = report.killed().len();
        assert!(
            errored + killed > 0,
            "512-rank storm: incomplete without any recorded failure (victims {victims:?})"
        );
        for (app, acc) in &summaries {
            assert_eq!(
                **acc, expected,
                "512-rank storm: partial completion with corrupt result at app rank {app}"
            );
        }
    }
}

/// CI sweep hook: `FT_CHAOS_SEEDS="100..120"` or `FT_CHAOS_SEEDS="17,42,99"`
/// runs extra storms beyond the fixed bank. A no-op when unset, so local
/// `cargo test` stays fast.
#[test]
fn chaos_storm_env_seeds() {
    let Ok(spec) = std::env::var("FT_CHAOS_SEEDS") else {
        return;
    };
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if let Some((lo, hi)) = part.split_once("..") {
            let lo: u64 = lo.trim().parse().expect("FT_CHAOS_SEEDS range start");
            let hi: u64 = hi.trim().parse().expect("FT_CHAOS_SEEDS range end");
            for seed in lo..hi {
                storm(seed);
            }
        } else {
            storm(part.parse().expect("FT_CHAOS_SEEDS seed"));
        }
    }
}
