//! Conformance tests for the pluggable recovery strategies: one shared
//! kill schedule replayed under checkpoint/restart, ABFT and
//! replication, with the same exactness contract for all three.
//!
//! The deterministic accumulator makes every check bitwise: a run is
//! correct iff each worker's `f64` equals the closed-form ground truth
//! exactly, so an ABFT reconstruction that loses even one bit of the
//! failed rank's state fails the `==`.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, Dec, Enc};
use ft_cluster::FaultSchedule;
use ft_core::{
    run_ft_job, EventKind, FtApp, FtConfig, FtConfigError, FtCtx, FtResult, JobReport,
    RecoveryPlan, StrategyKind, WorldLayout,
};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

/// The deterministic accumulator, expressed purely through the state
/// hooks — the same application code runs under all three strategies.
struct Acc {
    acc: f64,
    /// Rank-local series (never reduced): per-rank state is *asymmetric*,
    /// so any restore path that corrupts one rank's block — e.g. the
    /// designated ABFT survivor loading its parity-folded contribution
    /// instead of its own block — breaks the exactness check instead of
    /// hiding behind group-symmetric state.
    local: f64,
    ck: Checkpointer,
}

impl Acc {
    fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            local: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }

    fn expected(workers: u32, iters: u64) -> f64 {
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64
    }

    fn expected_local(app: u32, iters: u64) -> f64 {
        f64::from(app + 1) * (iters * (iters + 1) / 2) as f64
    }
}

impl FtApp for Acc {
    type Summary = (f64, f64);

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        // Mutate the local half *before* the collective: a step aborted by
        // a failure leaves it half-applied, and only a full state reload
        // can make the redo exact.
        self.local += x;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc).f64(self.local);
        Ok(Some(e.finish()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64()?;
        self.acc = d.f64()?;
        self.local = d.f64()?;
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        self.local = 0.0;
        Ok(())
    }

    fn rewire(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<(f64, f64)> {
        Ok((self.acc, self.local))
    }
}

const WORKERS: u32 = 4;
const SPARES: u32 = 3; // 2 idle rescues + the FD
const ITERS: u64 = 12;

fn job(strategy: StrategyKind, schedule: FaultSchedule) -> JobReport<(f64, f64)> {
    let layout = WorldLayout::new(WORKERS, SPARES);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(4)
        .max_iters(ITERS)
        .abandon(Duration::from_secs(20))
        .strategy(strategy)
        .build()
        .unwrap();
    run_ft_job(&world, cfg, schedule, Acc::new)
}

fn assert_exact(report: &JobReport<(f64, f64)>, label: &str) {
    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), WORKERS as usize, "[{label}] all app ranks must finish");
    for (app, (acc, local)) in summaries {
        assert_eq!(*acc, Acc::expected(WORKERS, ITERS), "[{label}] app rank {app}");
        assert_eq!(*local, Acc::expected_local(app, ITERS), "[{label}] app rank {app} local");
    }
}

/// The shared schedule: rank 1 exits at iteration 6 — two iterations
/// past the version-1 checkpoint, mid steady-state.
fn shared_kill() -> FaultSchedule {
    FaultSchedule::none().kill_rank_at_iteration(1, 6)
}

#[test]
fn one_kill_schedule_is_exact_under_every_strategy() {
    for strategy in [StrategyKind::CheckpointRestart, StrategyKind::Abft, StrategyKind::Replicated]
    {
        let report = job(strategy, shared_kill());
        assert_eq!(report.killed(), vec![1], "[{}] the kill must fire", strategy.name());
        assert_exact(&report, strategy.name());
        let restored =
            report.events.snapshot().iter().any(|e| matches!(e.kind, EventKind::Restored { .. }));
        assert!(restored, "[{}] a real recovery must have happened", strategy.name());
    }
}

#[test]
fn abft_reconstructs_at_the_frontier_with_zero_redo() {
    let report = job(StrategyKind::Abft, shared_kill());
    assert_exact(&report, "abft");
    let ev = report.events.snapshot();
    // The victim died right after the generation-6 parity round, so the
    // group resumes at iteration 6 — the failure frontier. Nothing is
    // recomputed: no redo interval may open.
    assert!(
        !ev.iter().any(|e| matches!(e.kind, EventKind::RedoComplete { .. })),
        "ABFT reconstruction must not redo work"
    );
    let restores: Vec<u64> = ev
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .collect();
    assert!(!restores.is_empty());
    assert!(
        restores.iter().all(|&i| i == 6),
        "every member must resume at the frontier, got {restores:?}"
    );
}

#[test]
fn checkpoint_restart_rolls_back_where_abft_does_not() {
    // Contrast pin: under the identical schedule, C/R resumes at the
    // version-1 checkpoint (iteration 4) and redoes the lost interval.
    let report = job(StrategyKind::CheckpointRestart, shared_kill());
    assert_exact(&report, "checkpoint-restart");
    let ev = report.events.snapshot();
    assert!(
        ev.iter().any(|e| matches!(e.kind, EventKind::Restored { iter: 4, .. })),
        "C/R must roll back to the checkpoint"
    );
    assert!(
        ev.iter().any(|e| matches!(e.kind, EventKind::RedoComplete { .. })),
        "C/R must redo the lost interval"
    );
}

#[test]
fn abft_double_failure_exceeds_the_parity_code_but_stays_exact() {
    // Two ranks die at the same iteration: a single-erasure code cannot
    // reconstruct both, so the group degrades to a collective fresh
    // start — slower, never wrong.
    let schedule = FaultSchedule::none().kill_rank_at_iteration(1, 6).kill_rank_at_iteration(2, 6);
    let report = job(StrategyKind::Abft, schedule);
    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 2]);
    assert_exact(&report, "abft-double");
    let ev = report.events.snapshot();
    assert!(
        ev.iter().any(|e| matches!(e.kind, EventKind::Restored { iter: 0, .. })),
        "a double erasure must degrade to a fresh start"
    );
}

#[test]
fn replication_promotes_the_designated_shadow() {
    // With the replicated strategy the detector assigns each app rank a
    // designated shadow spare: app rank 1's standby is gaspi rank
    // WORKERS + 1, and that exact spare must adopt it.
    let report = job(StrategyKind::Replicated, shared_kill());
    assert_exact(&report, "replicated");
    let ev = report.events.snapshot();
    let activated = ev
        .iter()
        .find(|e| matches!(e.kind, EventKind::Activated { app_rank: 1 }))
        .expect("a rescue must adopt app rank 1");
    assert_eq!(
        activated.rank,
        WORKERS + 1,
        "the designated shadow (not pool order) must take over"
    );
    // Takeover resumes at the frontier generation: no redo either.
    assert!(
        !ev.iter().any(|e| matches!(e.kind, EventKind::RedoComplete { .. })),
        "replication takeover must not redo work"
    );
}

#[test]
fn strategies_agree_bit_for_bit_on_a_clean_run() {
    let mut finals: Vec<Vec<(u32, (f64, f64))>> = Vec::new();
    for strategy in [StrategyKind::CheckpointRestart, StrategyKind::Abft, StrategyKind::Replicated]
    {
        let report = job(strategy, FaultSchedule::none());
        assert_exact(&report, strategy.name());
        finals.push(report.worker_summaries().into_iter().map(|(a, v)| (a, *v)).collect());
    }
    assert_eq!(finals[0], finals[1], "C/R and ABFT must agree bitwise");
    assert_eq!(finals[0], finals[2], "C/R and replication must agree bitwise");
}

#[test]
fn builder_rejects_invalid_configs() {
    let layout = WorldLayout::new(4, 2);
    assert!(matches!(
        FtConfig::builder(layout).max_iters(0).build(),
        Err(FtConfigError::ZeroIters)
    ));
    let layout = WorldLayout::new(4, 1);
    assert!(matches!(
        FtConfig::builder(layout).max_iters(10).redundant_fd(true).build(),
        Err(FtConfigError::ShadowNeedsSpares { have: 1 })
    ));
    // One spare is the FD alone: replication has no standby to promote.
    let layout = WorldLayout::new(4, 1);
    let err = FtConfig::builder(layout)
        .max_iters(10)
        .strategy(StrategyKind::Replicated)
        .build()
        .unwrap_err();
    assert!(matches!(err, FtConfigError::ReplicationNeedsSpares));
    assert!(!err.to_string().is_empty());
    // And the happy path wires the designated-shadow rescue policy in.
    let layout = WorldLayout::new(4, 3);
    let cfg =
        FtConfig::builder(layout).max_iters(10).strategy(StrategyKind::Replicated).build().unwrap();
    assert!(cfg.detector.designated_shadows);
}
