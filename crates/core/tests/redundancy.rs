//! Tests of the shadow fault detector (the paper's §VIII future work:
//! "the redundancy approach can be implemented to make the FD process
//! fault tolerant"), reusing the deterministic toy app from `ft_job.rs`.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, Dec, Enc, Pfs, PfsConfig};
use ft_cluster::{FaultAction, FaultSchedule};
use ft_core::{
    run_ft_job, EventKind, FtApp, FtConfig, FtCtx, FtResult, RecoveryPlan, Role, WorldLayout,
};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

/// Same deterministic accumulator app as in `ft_job.rs`, minus the plan
/// blob (nothing to reload here).
struct Acc {
    acc: f64,
    ck: Checkpointer,
}

impl Acc {
    fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }
}

impl FtApp for Acc {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        Ok(Some(e.finish()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().unwrap();
        self.acc = d.f64().unwrap();
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        let _ = ctx;
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}

fn expected_acc(workers: u32, iters: u64) -> f64 {
    f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64
}

fn redundant_job(
    workers: u32,
    spares: u32,
    iters: u64,
    schedule: FaultSchedule,
) -> ft_core::JobReport<f64> {
    let layout = WorldLayout::new(workers, spares);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(10)
        .max_iters(iters)
        .redundant_fd(true)
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    let _unused_pfs = Pfs::new(PfsConfig::instant());
    run_ft_job(&world, cfg, schedule, Acc::new)
}

fn assert_correct(report: &ft_core::JobReport<f64>, workers: u32, iters: u64) {
    let s = report.worker_summaries();
    assert_eq!(s.len(), workers as usize, "all app ranks must finish");
    for (app, acc) in s {
        assert_eq!(*acc, expected_acc(workers, iters), "app rank {app}");
    }
}

#[test]
fn shadow_stays_quiet_when_primary_survives() {
    // layout: workers 0..3, idle 3, shadow 4, FD 5
    let report = redundant_job(3, 3, 40, FaultSchedule::none());
    assert_correct(&report, 3, 40);
    let ev = report.events.snapshot();
    assert!(!ev.iter().any(|e| matches!(e.kind, EventKind::FdTakeover { .. })));
}

#[test]
fn shadow_takes_over_after_primary_dies_then_handles_a_worker_failure() {
    // Kill the primary FD early, then a worker later: the shadow must
    // detect and recover the worker failure.
    let layout = WorldLayout::new(3, 3); // idle 3, shadow 4, primary FD 5
    let schedule = FaultSchedule::none()
        .timed(Duration::from_millis(20), FaultAction::KillRank(5))
        .kill_rank_at_iteration(1, 150);
    let report = redundant_job(3, 3, 300, schedule);
    let mut killed = report.killed();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 5]);
    assert_correct(&report, 3, 300);
    let ev = report.events.snapshot();
    assert!(
        ev.iter().any(|e| matches!(e.kind, EventKind::FdTakeover { dead_fd: 5 } if e.rank == 4)),
        "shadow (rank 4) must record the takeover"
    );
    // The worker failure was detected by the *shadow* acting as FD.
    let detect = ev
        .iter()
        .find(|e| matches!(&e.kind, EventKind::FdDetect { failed, .. } if failed.contains(&1)))
        .expect("worker failure must be detected");
    assert_eq!(detect.rank, 4, "the shadow must be the detector by then");
    // The rescue for the worker is the remaining idle (rank 3).
    let rescue = report
        .completed()
        .into_iter()
        .find(|r| r.role == Role::Rescue && r.summary.is_some())
        .expect("rescue");
    assert_eq!(rescue.rank, 3);
    let _ = layout;
}

#[test]
fn fd_takeover_does_not_roll_workers_back() {
    // FD death alone must not trigger group rebuild / restore / redo.
    // (Enough iterations that the kill lands well inside the run.)
    let schedule = FaultSchedule::none().timed(Duration::from_millis(25), FaultAction::KillRank(5));
    let report = redundant_job(3, 3, 2000, schedule);
    assert_correct(&report, 3, 2000);
    let ev = report.events.snapshot();
    assert!(ev.iter().any(|e| matches!(e.kind, EventKind::FdTakeover { .. })));
    assert!(
        !ev.iter().any(|e| matches!(e.kind, EventKind::Restored { .. })),
        "a pure FD failure must be benign for the workers"
    );
    assert!(!ev.iter().any(|e| matches!(e.kind, EventKind::GroupRebuilt { epoch } if epoch > 0)));
}

#[test]
fn without_redundancy_fd_death_is_fatal_but_bounded() {
    // Baseline (paper restriction 2): no shadow, the FD dies, a worker
    // dies afterwards — nobody acknowledges, workers abandon with a
    // timeout error instead of hanging forever.
    let layout = WorldLayout::new(3, 2);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(10)
        .max_iters(100_000)
        .redundant_fd(false)
        .abandon(Duration::from_millis(400))
        .build()
        .unwrap();
    let schedule = FaultSchedule::none()
        .timed(Duration::from_millis(20), FaultAction::KillRank(4)) // the FD
        .timed(Duration::from_millis(40), FaultAction::KillRank(1));
    let report = run_ft_job(&world, cfg, schedule, Acc::new);
    assert!(report.worker_summaries().is_empty(), "no worker can finish");
    let errs = report
        .completed()
        .into_iter()
        .filter(|r| r.role == Role::Worker && r.error.is_some())
        .count();
    assert!(errs >= 2, "surviving workers must abandon with errors, got {errs}");
}

#[test]
fn shadow_exits_cleanly_on_normal_completion() {
    let report = redundant_job(2, 4, 30, FaultSchedule::none());
    assert_correct(&report, 2, 30);
    // Shadow (rank 4 of 0..=5) completed as a quiet Detector.
    let detectors = report.completed().into_iter().filter(|r| r.role == Role::Detector).count();
    assert_eq!(detectors, 2, "primary and shadow must both report Detector");
}
