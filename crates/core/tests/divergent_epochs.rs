//! Regression pins for `consistent_restore` when surviving ranks hold
//! *different* checkpoint epochs after a mid-commit kill.
//!
//! A rank killed while writing checkpoint version `v` leaves the group
//! split: survivors finished `v`, the victim's adopter can reach only
//! `v-1`. The pinned behavior is the allreduce-min vote — everyone
//! rolls back to the newest version *every* member can restore, so the
//! group resumes from one consistent iteration and still produces the
//! exact result. Both kill flavors are pinned: the rank's own thread
//! dying at the local-write site, and the checkpoint library thread
//! being poisoned at the neighbor-copy site.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Dec, Enc};
use ft_cluster::{FaultSchedule, Injection};
use ft_core::{run_ft_job, EventKind, FtApp, FtConfig, FtCtx, FtResult, RecoveryPlan, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, ReduceOp};

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

struct Acc {
    acc: f64,
    ck: Checkpointer,
}

impl Acc {
    fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }
}

impl FtApp for Acc {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn checkpoint(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<()> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        self.ck.commit(iter / ctx.cfg.checkpoint_every, e.finish(), CopyPolicy::Replicate);
        // Synchronous replication: when the group later votes, survivor
        // versions are deterministic, which is what this pin relies on.
        assert!(self.ck.drain(FETCH));
        Ok(())
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().unwrap();
        self.acc = d.f64().unwrap();
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}

fn run_divergent(inj: Injection) -> (Vec<u64>, bool) {
    let workers = 4u32;
    let iters = 16u64;
    let layout = WorldLayout::new(workers, 2);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let schedule = FaultSchedule::none().inject(inj);
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(4)
        .max_iters(iters)
        .abandon(Duration::from_secs(20))
        .build()
        .unwrap();
    let report = run_ft_job(&world, cfg, schedule, Acc::new);

    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), workers as usize, "all app ranks must finish: {summaries:?}");
    let expected =
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64;
    for (app, acc) in &summaries {
        assert_eq!(**acc, expected, "app rank {app} accumulated a wrong total");
    }
    let killed = !report.killed().is_empty();
    let restored: Vec<u64> = report
        .events
        .snapshot()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Restored { iter, .. } => Some(iter),
            _ => None,
        })
        .collect();
    (restored, killed)
}

/// Rank 1 dies entering its *second* local checkpoint write (version 2,
/// iteration 8): survivors finish version 2, the adopter can reach only
/// version 1. The vote must agree on version 1 — every restore resumes
/// from iteration 4, not from the survivors' newer epoch.
#[test]
fn mid_commit_kill_votes_down_to_common_version() {
    let (restored, killed) = run_divergent(Injection::kill("ckpt.local.write", 1, 2));
    assert!(killed, "the injected kill must fire");
    assert!(!restored.is_empty(), "recovery must restore from a checkpoint");
    assert!(
        restored.iter().all(|&i| i == 4),
        "divergent epochs must vote down to version 1 (iteration 4), got {restored:?}"
    );
}

/// Same divergence via the library thread: rank 1's replicator is
/// poisoned at its second neighbor copy, so version 2 never reaches the
/// replica holder. The adopter again reaches only version 1 and the
/// vote must roll the whole group back to iteration 4.
#[test]
fn kill_during_neighbor_copy_votes_down_to_common_version() {
    let (restored, killed) = run_divergent(Injection::kill("ckpt.neighbor.copy", 1, 2));
    assert!(killed, "the injected kill must fire");
    assert!(!restored.is_empty(), "recovery must restore from a checkpoint");
    assert!(
        restored.iter().all(|&i| i == 4),
        "divergent epochs must vote down to version 1 (iteration 4), got {restored:?}"
    );
}
