//! End-to-end tests of the fault-tolerant Lanczos application.

use std::sync::Arc;

use ft_checkpoint::{Pfs, PfsConfig};
use ft_cluster::FaultSchedule;
use ft_core::{run_ft_job, FtConfig, JobReport, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld};
use ft_matgen::graphene::Graphene;
use ft_matgen::spectra::{Diagonal, ToeplitzTridiag};
use ft_matgen::RowGen;
use ft_solver::ft_lanczos::{FtLanczos, FtLanczosConfig, LanczosSummary};
use ft_solver::seq::SeqLanczos;

fn run_job(
    gen: Arc<dyn RowGen>,
    workers: u32,
    spares: u32,
    iters: u64,
    ckpt_every: u64,
    schedule: FaultSchedule,
) -> JobReport<LanczosSummary> {
    let layout = WorldLayout::new(workers, spares);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(ckpt_every)
        .max_iters(iters)
        .abandon(std::time::Duration::from_secs(30))
        .build()
        .unwrap();
    let app_cfg = Arc::new(FtLanczosConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        ..FtLanczosConfig::fixed_iters(gen)
    });
    run_ft_job(&world, cfg, schedule, move |ctx| FtLanczos::new(ctx, Arc::clone(&app_cfg)))
}

fn summaries(report: &JobReport<LanczosSummary>, workers: u32) -> Vec<LanczosSummary> {
    let s = report.worker_summaries();
    assert_eq!(s.len(), workers as usize, "all app ranks must finish");
    s.into_iter().map(|(_, x)| x.clone()).collect()
}

#[test]
fn distributed_matches_sequential_reference() {
    let gen = Graphene::new(8, 6).with_nnn(-0.15);
    let iters = 40;
    let seq = SeqLanczos::run(&gen, iters, 0x1A5C_205E);
    let report = run_job(Arc::new(gen), 3, 1, iters, 10, FaultSchedule::none());
    for s in summaries(&report, 3) {
        assert_eq!(s.iters, iters);
        // Distributed reductions reorder the sums relative to the
        // sequential reference; agreement is to rounding, not bitwise.
        for (a, b) in s.alphas.iter().zip(&seq.alphas) {
            assert!((a - b).abs() < 1e-9, "alpha {a} vs {b}");
        }
        for (a, b) in s.betas.iter().zip(&seq.betas) {
            assert!((a - b).abs() < 1e-9, "beta {a} vs {b}");
        }
    }
}

#[test]
fn eigenvalues_match_known_spectrum() {
    // Full Krylov space on a diagonal matrix: extremes are exact.
    let gen = Diagonal::new((0..48).map(|i| 1.0 + 0.25 * f64::from(i)).collect());
    let exact = gen.eigenvalues();
    let report = run_job(Arc::new(gen), 4, 1, 48, 12, FaultSchedule::none());
    for s in summaries(&report, 4) {
        let eig = &s.eigenvalues;
        assert!((eig[0] - exact[0]).abs() < 1e-7, "{} vs {}", eig[0], exact[0]);
        assert!(
            (eig.last().unwrap() - exact.last().unwrap()).abs() < 1e-7,
            "{} vs {}",
            eig.last().unwrap(),
            exact.last().unwrap()
        );
    }
}

#[test]
fn recovered_run_reproduces_failure_free_bit_for_bit() {
    // The headline determinism claim: kill a worker mid-run; after
    // recovery and redo, the α/β sequences (and thus every eigenvalue)
    // must equal the failure-free run's *exactly*.
    let gen = Graphene::new(6, 5).with_nnn(-0.1);
    let iters = 60;
    let clean = run_job(Arc::new(gen.clone()), 4, 3, iters, 10, FaultSchedule::none());
    let clean_s = summaries(&clean, 4);

    let schedule = FaultSchedule::none().kill_rank_at_iteration(1, 37);
    let faulty = run_job(Arc::new(gen), 4, 3, iters, 10, schedule);
    assert_eq!(faulty.killed(), vec![1]);
    let faulty_s = summaries(&faulty, 4);

    assert_eq!(clean_s[0].alphas, faulty_s[0].alphas, "alpha sequence must be bit-identical");
    assert_eq!(clean_s[0].betas, faulty_s[0].betas, "beta sequence must be bit-identical");
    assert_eq!(clean_s[0].eigenvalues, faulty_s[0].eigenvalues);
    // And all workers agree among themselves.
    for s in &faulty_s {
        assert_eq!(s.alphas, faulty_s[0].alphas);
    }
}

#[test]
fn two_failures_still_bitwise_identical() {
    let gen = ToeplitzTridiag::new(240, 2.0, -1.0);
    let iters = 50;
    let clean = run_job(Arc::new(gen.clone()), 4, 4, iters, 10, FaultSchedule::none());
    let clean_s = summaries(&clean, 4);

    let schedule =
        FaultSchedule::none().kill_rank_at_iteration(0, 23).kill_rank_at_iteration(2, 41);
    let faulty = run_job(Arc::new(gen), 4, 4, iters, 10, schedule);
    let faulty_s = summaries(&faulty, 4);
    assert_eq!(clean_s[0].alphas, faulty_s[0].alphas);
    assert_eq!(clean_s[0].betas, faulty_s[0].betas);
    // Spectrum estimates stay inside the true spectral interval [~0, ~4]
    // (Ritz values are bounded by the extremes of the operator).
    let exact = ToeplitzTridiag::new(240, 2.0, -1.0).eigenvalues();
    let (lo, hi) = (exact[0], *exact.last().unwrap());
    for &e in &faulty_s[0].eigenvalues {
        assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "Ritz value {e} outside [{lo}, {hi}]");
    }
}

#[test]
fn convergence_check_stops_early_and_agrees() {
    let gen = Diagonal::new((0..64).map(f64::from).collect());
    let layout = WorldLayout::new(4, 1);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout).checkpoint_every(10).max_iters(64).build().unwrap();
    let app_cfg = Arc::new(FtLanczosConfig {
        conv_check_every: 5,
        conv_tol: 1e-9,
        ..FtLanczosConfig::fixed_iters(Arc::new(gen))
    });
    let report = run_ft_job(&world, cfg, FaultSchedule::none(), move |ctx| {
        FtLanczos::new(ctx, Arc::clone(&app_cfg))
    });
    let s = summaries(&report, 4);
    // All ranks stopped at the same iteration, before the cap.
    assert!(s.iter().all(|x| x.iters == s[0].iters));
    assert!(s[0].iters < 64, "convergence should stop early, got {}", s[0].iters);
}

#[test]
fn sell_kernels_are_bitwise_identical_to_csr() {
    // Same run with CSR kernels vs SELL-C-σ kernels (GHOST's format):
    // α/β must agree bit for bit, even across a failure recovery.
    //
    // The cross-format bitwise promise holds for the *scalar* kernel
    // policy, so it is pinned here explicitly — the build may default to
    // SIMD (`--features simd`), whose CSR kernel legitimately reorders
    // row reductions. The default-policy (possibly SIMD) kernels get
    // their own recovery-determinism assertion below. Note the runtime
    // `KernelPolicy::auto()` check: this crate's own `simd` feature flag
    // is not set when the workspace root enables `ft-sparse/simd`, so a
    // `cfg!(feature = ...)` gate here would silently test the wrong arm.
    let gen = Graphene::new(8, 6).with_nnn(-0.1);
    let iters = 40;
    let run_with = |sell: Option<(usize, usize)>,
                    kernel: Option<ft_sparse::KernelPolicy>,
                    schedule: FaultSchedule| {
        let layout = WorldLayout::new(3, 2);
        let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
        let cfg = FtConfig::builder(layout)
            .checkpoint_every(10)
            .max_iters(iters)
            .abandon(std::time::Duration::from_secs(30))
            .build()
            .unwrap();
        let app_cfg = Arc::new(FtLanczosConfig {
            pfs: Some(Pfs::new(PfsConfig::instant())),
            sell,
            kernel,
            ..FtLanczosConfig::fixed_iters(Arc::new(gen.clone()))
        });
        let report =
            run_ft_job(&world, cfg, schedule, move |ctx| FtLanczos::new(ctx, Arc::clone(&app_cfg)));
        summaries(&report, 3)
    };
    let scalar = Some(ft_sparse::KernelPolicy::Scalar);
    let csr = run_with(None, scalar, FaultSchedule::none());
    let sell = run_with(Some((8, 32)), scalar, FaultSchedule::none());
    assert_eq!(csr[0].alphas, sell[0].alphas);
    assert_eq!(csr[0].betas, sell[0].betas);
    // And with a failure in the SELL run: still identical.
    let sell_faulty =
        run_with(Some((8, 32)), scalar, FaultSchedule::none().kill_rank_at_iteration(1, 23));
    assert_eq!(csr[0].alphas, sell_faulty[0].alphas);
    // The build's default kernels (SIMD when `--features simd`): the
    // recovered run must still reproduce the failure-free run bit for
    // bit, and SELL-SIMD stays bitwise equal to scalar (across-row
    // vectorization preserves per-row addition order).
    let auto = run_with(Some((8, 32)), None, FaultSchedule::none());
    let auto_faulty =
        run_with(Some((8, 32)), None, FaultSchedule::none().kill_rank_at_iteration(1, 23));
    assert_eq!(auto[0].alphas, auto_faulty[0].alphas);
    assert_eq!(auto[0].betas, auto_faulty[0].betas);
    assert_eq!(auto[0].alphas, sell[0].alphas, "SELL SIMD must stay bitwise-scalar");
}
