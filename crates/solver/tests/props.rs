//! Property tests for the QL tridiagonal eigenvalue solver and the
//! Lanczos state codec.

use proptest::prelude::*;

use ft_solver::lanczos::LanczosState;
use ft_solver::tridiag::tridiag_eigenvalues;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QL output: right count, ascending order, trace preserved,
    /// Gershgorin-bounded.
    #[test]
    fn ql_spectrum_invariants(
        alpha in proptest::collection::vec(-10.0f64..10.0, 1..40),
    ) {
        let n = alpha.len();
        let beta: Vec<f64> =
            (0..n - 1).map(|i| ((i as f64) * 1.37).sin() * 3.0).collect();
        let eig = tridiag_eigenvalues(&alpha, &beta);
        prop_assert_eq!(eig.len(), n);
        prop_assert!(eig.windows(2).all(|w| w[0] <= w[1]), "ascending");
        let trace: f64 = alpha.iter().sum();
        let sum: f64 = eig.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()), "trace preserved");
        // Gershgorin: every eigenvalue within max disc.
        let bound = (0..n)
            .map(|i| {
                let r = if i > 0 { beta[i - 1].abs() } else { 0.0 }
                    + if i + 1 < n { beta[i].abs() } else { 0.0 };
                alpha[i].abs() + r
            })
            .fold(0.0f64, f64::max);
        for &l in &eig {
            prop_assert!(l.abs() <= bound + 1e-7);
        }
    }

    /// Eigenvalues are continuous in the matrix entries: a zero
    /// off-diagonal splits into independent blocks whose union matches.
    #[test]
    fn ql_block_split(
        a1 in proptest::collection::vec(-5.0f64..5.0, 1..8),
        a2 in proptest::collection::vec(-5.0f64..5.0, 1..8),
    ) {
        let mut alpha = a1.clone();
        alpha.extend_from_slice(&a2);
        let n = alpha.len();
        let mut beta = vec![0.7; n - 1];
        beta[a1.len() - 1] = 0.0; // decouple the blocks... unless a1 is all
        // Block split only well-defined when a1 isn't the whole matrix.
        prop_assume!(a1.len() < n);
        let whole = tridiag_eigenvalues(&alpha, &beta);
        let mut parts = tridiag_eigenvalues(&a1, &beta[..a1.len() - 1]);
        parts.extend(tridiag_eigenvalues(&a2, &beta[a1.len()..]));
        parts.sort_by(f64::total_cmp);
        for (w, p) in whole.iter().zip(&parts) {
            prop_assert!((w - p).abs() < 1e-8, "{w} vs {p}");
        }
    }

    /// Lanczos checkpoint payloads roundtrip bit-exactly.
    #[test]
    fn lanczos_state_codec(
        v in proptest::collection::vec(any::<f64>(), 1..50),
        alphas in proptest::collection::vec(any::<f64>(), 0..30),
    ) {
        let _n = v.len();
        let st = LanczosState {
            v_prev: v.iter().map(|x| x * 0.5).collect(),
            v,
            betas: alphas.iter().map(|a| a.abs()).collect(),
            iter: alphas.len() as u64,
            alphas,
        };
        let buf = st.encode();
        let back = LanczosState::decode(&buf).unwrap();
        prop_assert_eq!(st.iter, back.iter);
        for (a, b) in st.v.iter().zip(&back.v) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in st.alphas.iter().zip(&back.alphas) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(st.v_prev.len(), back.v_prev.len());
        prop_assert_eq!(st.betas.len(), back.betas.len());
        // Corruption is detected, not misread.
        if !buf.is_empty() {
            let _ = LanczosState::decode(&buf[..buf.len() - 1]);
        }
    }
}
