//! Recovery under a split-phase halo exchange: a rank dies *between*
//! `post()` and `wait()`, the worst spot — its partners have already
//! staged sends to it and are (or soon will be) blocked waiting for its
//! notification. The test asserts the recovery path (failure signal out
//! of the wait, rewire's notification reset + queue purge, stale-tag
//! discard on redo) still produces correct spMVM results on every
//! surviving and rescued rank.
//!
//! The probe application is deliberately stateless: the iteration-`k`
//! input vector is a pure function of (global index, k), so every rank
//! can verify its spMVM output against a locally recomputed reference
//! each step, and `restore` needs no checkpoint — just the collective
//! barrier that keeps any survivor from re-posting before all partners
//! finished rewiring.

use std::sync::Arc;

use ft_cluster::FaultSchedule;
use ft_core::{run_ft_job, FtApp, FtConfig, FtCtx, FtResult, RecoveryPlan, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, SegId};
use ft_matgen::spectra::ToeplitzTridiag;
use ft_matgen::RowGen;
use ft_sparse::plan::SendSpec;
use ft_sparse::{det_allreduce_sum, CommPlan, DistMatrix, HaloStats, RowPartition, SpmvComm};

const SEG_HALO: SegId = 1;
const SEG_STAGE: SegId = 2;
const HALO_QUEUE: u16 = 1;

/// The GASPI rank that kills itself mid-exchange. Guarded by *GASPI*
/// rank, not application rank: the rescue that adopts the app rank has a
/// different GASPI rank and must not re-fire the kill during redo.
const KILL_GASPI_RANK: u32 = 1;
const KILL_ITER: u64 = 5;
const MAX_ITERS: u64 = 12;

/// Iteration-dependent global input vector, identical on every rank.
fn xval(i: u64, iter: u64) -> f64 {
    ((i as f64) * 0.37 + (iter as f64) * 0.11).sin()
}

/// Build the full communication plan purely — every rank derives both
/// its receive *and* send side from the (deterministic) needed-columns
/// map of all ranks, so a rescue can rebuild it without negotiation.
fn pure_plan(gen: &ToeplitzTridiag, part: &RowPartition, me: u32) -> CommPlan {
    let nparts = part.parts();
    let needed = DistMatrix::needed_columns(gen, part, me);
    let mut plan = CommPlan::receives_from_needs(me, nparts, &needed);
    let my_start = part.range(me).start;
    let mut sends = Vec::new();
    for other in 0..nparts {
        if other == me {
            continue;
        }
        let other_needed = DistMatrix::needed_columns(gen, part, other);
        let other_recvs = CommPlan::receives_from_needs(other, nparts, &other_needed);
        if let Some(r) = other_recvs.recvs.iter().find(|r| r.from == me) {
            sends.push(SendSpec {
                to: other,
                dest_offset: r.halo_offset,
                local_rows: r.cols.iter().map(|&c| (c - my_start) as u32).collect(),
            });
        }
    }
    plan.sends = sends;
    plan
}

#[derive(Debug, Clone)]
struct ProbeSummary {
    iters: u64,
    max_err: f64,
    halo: HaloStats,
}

struct OverlapProbe {
    gen: Arc<ToeplitzTridiag>,
    dm: Option<DistMatrix>,
    comm: Option<SpmvComm>,
    halo: Vec<f64>,
    iters: u64,
    max_err: f64,
}

impl OverlapProbe {
    fn new(gen: Arc<ToeplitzTridiag>) -> Self {
        Self { gen, dm: None, comm: None, halo: Vec::new(), iters: 0, max_err: 0.0 }
    }

    fn install(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let part = RowPartition::new(self.gen.dim(), ctx.num_app_ranks());
        let me = ctx.app_rank();
        let plan = pure_plan(&self.gen, &part, me);
        let dm = DistMatrix::assemble(self.gen.as_ref(), part, me, plan);
        let comm = SpmvComm::new(&ctx.proc, &dm.plan, SEG_HALO, SEG_STAGE, HALO_QUEUE)?;
        self.dm = Some(dm);
        self.comm = Some(comm);
        Ok(())
    }
}

impl FtApp for OverlapProbe {
    type Summary = ProbeSummary;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        self.install(ctx)?;
        ctx.barrier_ft()
    }

    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()> {
        // The plan is derived purely; no one-time checkpoint needed.
        self.install(ctx)
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let dm = self.dm.as_ref().expect("step before setup");
        let comm = self.comm.as_ref().expect("step before setup");
        let r = dm.part.range(dm.me);
        let x_local: Vec<f64> = r.clone().map(|i| xval(i, iter)).collect();
        let tag = SpmvComm::tag_for_iter(iter);
        let pending = comm.post(ctx, &dm.plan, &x_local, tag)?;
        let mut y = vec![0.0; x_local.len()];
        dm.spmv_local(&x_local, &mut y);
        // The injected failure: die while partners' exchanges are in
        // flight, after our own sends were posted.
        if ctx.proc.rank() == KILL_GASPI_RANK && iter == KILL_ITER {
            ctx.proc.exit_failure();
        }
        comm.wait(ctx, &dm.plan, pending, &mut self.halo)?;
        dm.spmv_remote_add(&self.halo, &mut y);
        // Verify against a locally recomputed reference.
        let mut local_err: f64 = 0.0;
        for (k, row) in r.enumerate() {
            let want: f64 = self.gen.row_vec(row).iter().map(|e| e.val * xval(e.col, iter)).sum();
            local_err = local_err.max((y[k] - want).abs());
        }
        // The global reduction doubles as the inter-iteration barrier
        // that keeps split-phase halo buffers race-free.
        let global_err = det_allreduce_sum(ctx, local_err)?;
        self.max_err = self.max_err.max(global_err);
        self.iters = iter + 1;
        Ok(false)
    }

    fn checkpoint(&mut self, _ctx: &FtCtx, _iter: u64) -> FtResult<()> {
        Ok(()) // stateless (checkpoint_every = 0; never called)
    }

    fn restore(&mut self, ctx: &FtCtx) -> FtResult<u64> {
        // Collective: no survivor may re-post before every partner has
        // finished rewiring (notification reset + queue purge).
        ctx.barrier_ft()?;
        Ok(0) // stateless — redo from the start
    }

    fn rewire(&mut self, ctx: &FtCtx, _plan: &RecoveryPlan) -> FtResult<()> {
        if let (Some(comm), Some(dm)) = (&self.comm, &self.dm) {
            comm.rewire(&ctx.proc, &dm.plan)?;
        }
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<ProbeSummary> {
        let halo = self.comm.as_ref().map(|c| c.stats()).unwrap_or_default();
        Ok(ProbeSummary { iters: self.iters, max_err: self.max_err, halo })
    }
}

#[test]
fn failure_between_post_and_wait_recovers_and_stays_correct() {
    let gen = Arc::new(ToeplitzTridiag::new(90, 2.0, -1.0));
    let layout = WorldLayout::new(3, 2);
    let world = GaspiWorld::new(GaspiConfig::deterministic(layout.total()));
    let cfg = FtConfig::builder(layout)
        .checkpoint_every(0)
        .max_iters(MAX_ITERS)
        .abandon(std::time::Duration::from_secs(30))
        .build()
        .unwrap();
    let report = run_ft_job(&world, cfg, FaultSchedule::none(), move |_ctx| {
        OverlapProbe::new(Arc::clone(&gen))
    });
    assert_eq!(report.killed(), vec![KILL_GASPI_RANK], "the probe must have killed itself");
    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), 3, "all app ranks must finish (one via a rescue)");
    let mut halo = HaloStats::default();
    for (app, s) in summaries {
        assert_eq!(s.iters, MAX_ITERS, "app rank {app} must complete all iterations");
        assert!(s.max_err < 1e-12, "app rank {app}: spMVM error {} after recovery", s.max_err);
        halo.merge(&s.halo);
    }
    // Abandoned exchange: the victim posted iteration 5 but never waited,
    // so across the job posts must exceed completed exchanges.
    assert!(halo.posts > halo.exchanges, "posts {} vs exchanges {}", halo.posts, halo.exchanges);
}
