//! Eigenvalues of a symmetric tridiagonal matrix by the QL method with
//! implicit shifts (the classic EISPACK `tql1`, as used by the paper's
//! `CalcMinimumEigenVal` step).

/// Eigenvalues (ascending) of the symmetric tridiagonal matrix with
/// diagonal `alpha` and sub-diagonal `beta` (`beta.len() + 1 ==
/// alpha.len()`; `beta[i]` couples rows `i` and `i+1`).
///
/// # Panics
/// Panics if the lengths are inconsistent or the iteration fails to
/// converge (pathological input; 50 sweeps is twice EISPACK's bound).
pub fn tridiag_eigenvalues(alpha: &[f64], beta: &[f64]) -> Vec<f64> {
    let n = alpha.len();
    assert!(n >= 1, "empty tridiagonal matrix");
    assert_eq!(beta.len() + 1, n, "sub-diagonal must have n-1 entries");
    let mut d = alpha.to_vec();
    // Work array: e[i] couples i and i+1; e[n-1] is a scratch zero.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(beta);
    e.push(0.0);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible off-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "QL iteration failed to converge");
            // Implicit shift from the 2x2 block at l.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(f64::total_cmp);
    d
}

/// The `k` smallest eigenvalues.
pub fn lowest_eigenvalues(alpha: &[f64], beta: &[f64], k: usize) -> Vec<f64> {
    let mut all = tridiag_eigenvalues(alpha, beta);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < tol, "{g} vs {w} (tol {tol})\n got={got:?}\nwant={want:?}");
        }
    }

    #[test]
    fn one_by_one() {
        assert_eq!(tridiag_eigenvalues(&[3.5], &[]), vec![3.5]);
    }

    #[test]
    fn two_by_two_analytic() {
        // [[a, b], [b, c]] → ((a+c) ± sqrt((a-c)^2 + 4b^2)) / 2
        let (a, b, c): (f64, f64, f64) = (1.0, 2.0, -1.0);
        let disc = ((a - c) * (a - c) + 4.0 * b * b).sqrt();
        let want = vec![(a + c - disc) / 2.0, (a + c + disc) / 2.0];
        assert_close(&tridiag_eigenvalues(&[a, c], &[b]), &want, 1e-12);
    }

    #[test]
    fn toeplitz_spectrum() {
        // diag a, off b: eigenvalues a + 2b cos(kπ/(n+1)).
        let n = 25;
        let (a, b) = (2.0, -1.0);
        let alpha = vec![a; n];
        let beta = vec![b; n - 1];
        let got = tridiag_eigenvalues(&alpha, &beta);
        let mut want: Vec<f64> = (1..=n)
            .map(|k| a + 2.0 * b * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        want.sort_by(f64::total_cmp);
        assert_close(&got, &want, 1e-10);
    }

    #[test]
    fn diagonal_matrix_passthrough() {
        let alpha = [5.0, -3.0, 0.5, 2.0];
        let beta = [0.0, 0.0, 0.0];
        assert_close(&tridiag_eigenvalues(&alpha, &beta), &[-3.0, 0.5, 2.0, 5.0], 1e-14);
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        // Random-ish fixed tridiagonal: trace is invariant.
        let alpha = [0.3, -1.7, 2.2, 0.9, -0.4, 1.1];
        let beta = [0.5, -0.2, 1.3, 0.7, -0.9];
        let eig = tridiag_eigenvalues(&alpha, &beta);
        let trace: f64 = alpha.iter().sum();
        let sum: f64 = eig.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
        // And the spectrum is sorted.
        assert!(eig.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lowest_k() {
        let alpha = vec![2.0; 10];
        let beta = vec![-1.0; 9];
        let low = lowest_eigenvalues(&alpha, &beta, 3);
        assert_eq!(low.len(), 3);
        let all = tridiag_eigenvalues(&alpha, &beta);
        assert_eq!(low, all[..3]);
    }

    #[test]
    #[should_panic(expected = "sub-diagonal")]
    fn length_mismatch_panics() {
        tridiag_eigenvalues(&[1.0, 2.0], &[0.1, 0.2]);
    }
}
