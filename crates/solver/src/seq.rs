//! Single-process reference Lanczos, for validating the distributed
//! solver against ground truth and against itself.

use ft_matgen::RowGen;

use crate::tridiag::tridiag_eigenvalues;

/// Result of a sequential Lanczos run.
#[derive(Debug, Clone)]
pub struct SeqLanczos {
    /// α history.
    pub alphas: Vec<f64>,
    /// β history (the norms produced by each step).
    pub betas: Vec<f64>,
}

impl SeqLanczos {
    /// Run `iters` Lanczos steps on the full matrix from `gen`, starting
    /// from the same deterministic vector the distributed solver uses.
    pub fn run<G: RowGen>(gen: &G, iters: u64, seed: u64) -> Self {
        let n = gen.dim() as usize;
        let mut v: Vec<f64> = (0..n as u64)
            .map(|k| splitmix_u01(seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) - 0.5)
            .collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v.iter_mut().for_each(|x| *x /= norm);
        let mut v_prev = vec![0.0; n];
        let mut alphas = Vec::new();
        let mut betas: Vec<f64> = Vec::new();
        let mut row = Vec::with_capacity(gen.max_row_entries());
        for _ in 0..iters {
            // w = A v
            let mut w = vec![0.0; n];
            for (i, wi) in w.iter_mut().enumerate() {
                gen.row(i as u64, &mut row);
                let mut acc = 0.0;
                for e in &row {
                    acc += e.val * v[e.col as usize];
                }
                *wi = acc;
            }
            let alpha: f64 = w.iter().zip(&v).map(|(a, b)| a * b).sum();
            let beta_prev = betas.last().copied().unwrap_or(0.0);
            for (i, wi) in w.iter_mut().enumerate() {
                *wi -= alpha * v[i] + beta_prev * v_prev[i];
            }
            let beta = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            alphas.push(alpha);
            betas.push(beta);
            std::mem::swap(&mut v_prev, &mut v);
            if beta > 0.0 {
                for (vi, wi) in v.iter_mut().zip(&w) {
                    *vi = wi / beta;
                }
            } else {
                v.iter_mut().for_each(|x| *x = 0.0);
            }
        }
        Self { alphas, betas }
    }

    /// Eigenvalue estimates (ascending) of the Lanczos tridiagonal.
    pub fn eigenvalues(&self) -> Vec<f64> {
        tridiag_eigenvalues(&self.alphas, &self.betas[..self.alphas.len() - 1])
    }
}

fn splitmix_u01(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matgen::spectra::{Diagonal, ToeplitzTridiag};

    #[test]
    fn lanczos_finds_extreme_eigenvalues_of_diagonal() {
        let d = Diagonal::new((0..40).map(|i| f64::from(i) * 0.5).collect());
        let run = SeqLanczos::run(&d, 40, 7);
        let eig = run.eigenvalues();
        let exact = d.eigenvalues();
        // With a full Krylov space, extremes are essentially exact.
        assert!((eig[0] - exact[0]).abs() < 1e-8, "{} vs {}", eig[0], exact[0]);
        assert!(
            (eig.last().unwrap() - exact.last().unwrap()).abs() < 1e-8,
            "{} vs {}",
            eig.last().unwrap(),
            exact.last().unwrap()
        );
    }

    #[test]
    fn lanczos_converges_on_toeplitz_lowest() {
        // The (2,−1) Laplacian's edge eigenvalues cluster quadratically,
        // so convergence of the lowest one is slow; monotone improvement
        // plus a modest absolute error is the right check here.
        let t = ToeplitzTridiag::new(200, 2.0, -1.0);
        let exact = t.eigenvalues();
        let err = |iters: u64| {
            let run = SeqLanczos::run(&t, iters, 3);
            (run.eigenvalues()[0] - exact[0]).abs()
        };
        let (e40, e80, e160) = (err(40), err(80), err(160));
        assert!(e80 < e40 && e160 < e80, "errors must shrink: {e40} {e80} {e160}");
        assert!(e160 < 1e-4, "lowest eigenvalue error after 160 steps: {e160}");
    }
}
