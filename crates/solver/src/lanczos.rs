//! The distributed Lanczos iteration (the paper's Algorithm 1).
//!
//! Each step is one halo exchange + spMVM and two global reductions. All
//! reductions go through [`ft_sparse::det_allreduce_sum`], so α/β
//! sequences are **bit-for-bit reproducible** across runs and across
//! recoveries — the property the integration tests assert.

use ft_checkpoint::{CodecError, Dec, Enc, DEFAULT_CHUNK_SIZE};
use ft_core::{FtCtx, FtResult};
use ft_sparse::{det_allreduce_sum, DistMatrix, SpmvComm};

use crate::tridiag::tridiag_eigenvalues;

/// The evolving Lanczos state of one rank: the two live Lanczos vectors
/// (local chunks) and the α/β history — exactly the paper's checkpoint
/// content ("two consecutive Lanczos vectors, α, and β", §II/§VI).
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosState {
    /// `v_{j-1}` local chunk.
    pub v_prev: Vec<f64>,
    /// `v_j` local chunk.
    pub v: Vec<f64>,
    /// `α_1..α_j`.
    pub alphas: Vec<f64>,
    /// `β_2..β_{j+1}` (the norm produced by each step).
    pub betas: Vec<f64>,
    /// Completed iterations (`== alphas.len()`).
    pub iter: u64,
}

impl LanczosState {
    /// Deterministic pseudo-random start vector, identical regardless of
    /// how rows are partitioned: entry `i` of the global vector depends
    /// only on `(seed, i)`. Normalized globally by the caller via
    /// [`LanczosState::normalize`].
    pub fn init(local_start: u64, local_len: usize, seed: u64) -> Self {
        let v: Vec<f64> = (0..local_len as u64)
            .map(|k| {
                splitmix_u01(seed ^ (local_start + k).wrapping_mul(0x9E37_79B9_7F4A_7C15)) - 0.5
            })
            .collect();
        Self { v_prev: vec![0.0; local_len], v, alphas: Vec::new(), betas: Vec::new(), iter: 0 }
    }

    /// Normalize `v` globally (collective).
    pub fn normalize(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let local: f64 = self.v.iter().map(|x| x * x).sum();
        let norm = det_allreduce_sum(ctx, local)?.sqrt();
        for x in &mut self.v {
            *x /= norm;
        }
        Ok(())
    }

    /// One Lanczos step: `w = A·v_j`, `α_j = w·v_j`,
    /// `w ← w − α_j v_j − β_j v_{j−1}`, `β_{j+1} = ‖w‖`,
    /// `v_{j+1} = w / β_{j+1}` (collective).
    ///
    /// The halo exchange is split-phase: `a_loc·v` runs while the halo
    /// values are in flight, and only the remote part waits for them. The
    /// two allreduces below double as the inter-iteration barrier that
    /// keeps a partner's `post(k+1)` from overwriting our halo before the
    /// `wait(k)` here consumed it.
    pub fn step(
        &mut self,
        ctx: &FtCtx,
        dm: &DistMatrix,
        comm: &SpmvComm,
        halo: &mut Vec<f64>,
    ) -> FtResult<()> {
        let tag = SpmvComm::tag_for_iter(self.iter);
        let pending = comm.post(ctx, &dm.plan, &self.v, tag)?;
        let mut w = vec![0.0; self.v.len()];
        dm.spmv_local(&self.v, &mut w);
        comm.wait(ctx, &dm.plan, pending, halo)?;
        dm.spmv_remote_add(halo, &mut w);
        let alpha = det_allreduce_sum(ctx, dot(&w, &self.v))?;
        let beta_prev = self.betas.last().copied().unwrap_or(0.0);
        for (i, wi) in w.iter_mut().enumerate() {
            *wi -= alpha * self.v[i] + beta_prev * self.v_prev[i];
        }
        let beta = det_allreduce_sum(ctx, dot(&w, &w))?.sqrt();
        self.alphas.push(alpha);
        self.betas.push(beta);
        std::mem::swap(&mut self.v_prev, &mut self.v);
        if beta > 0.0 {
            for (vi, wi) in self.v.iter_mut().zip(&w) {
                *vi = wi / beta;
            }
        } else {
            // Invariant subspace reached (exact breakdown): keep a zero
            // vector; eigenvalues of T_j are already exact.
            self.v.iter_mut().for_each(|x| *x = 0.0);
        }
        self.iter += 1;
        Ok(())
    }

    /// Eigenvalue estimates of the current Lanczos tridiagonal `T_j`
    /// (ascending); the paper's `CalcMinimumEigenVal` via the QL method.
    pub fn eigenvalues(&self) -> Vec<f64> {
        if self.alphas.is_empty() {
            return Vec::new();
        }
        tridiag_eigenvalues(&self.alphas, &self.betas[..self.alphas.len() - 1])
    }

    /// Checkpoint payload: iteration, α, β, and the two Lanczos vectors.
    ///
    /// The layout is **chunk-aligned** for the incremental checkpoint
    /// pipeline: each section starts on a [`DEFAULT_CHUNK_SIZE`] boundary
    /// (zero padding in between), and the append-only α/β history is
    /// *interleaved* `(α_i, β_i)` at the very end. Between adjacent
    /// checkpoints the vectors change wholesale but the α/β prefix is
    /// immutable — only its trailing chunk (plus the newly appended
    /// pairs and the small header) is dirty, which is what keeps the
    /// dirty-chunk fraction of a commit low as the history grows.
    pub fn encode(&self) -> Vec<u8> {
        const A: usize = DEFAULT_CHUNK_SIZE;
        let mut e = Enc::with_capacity(
            4 * A + 8 * (self.alphas.len() + self.betas.len() + self.v_prev.len() + self.v.len()),
        );
        e.u64(self.iter)
            .u64(self.v_prev.len() as u64)
            .u64(self.v.len() as u64)
            .u64(self.alphas.len() as u64)
            .u64(self.betas.len() as u64)
            .pad_to(A);
        for &x in &self.v_prev {
            e.f64(x);
        }
        e.pad_to(A);
        for &x in &self.v {
            e.f64(x);
        }
        e.pad_to(A);
        let paired = self.alphas.len().min(self.betas.len());
        for i in 0..paired {
            e.f64(self.alphas[i]).f64(self.betas[i]);
        }
        for &a in &self.alphas[paired..] {
            e.f64(a);
        }
        for &b in &self.betas[paired..] {
            e.f64(b);
        }
        e.finish()
    }

    /// Restore from a checkpoint payload (mirrors [`LanczosState::encode`];
    /// truncation or trailing garbage fails loudly).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        const A: usize = DEFAULT_CHUNK_SIZE;
        let mut d = Dec::new(buf);
        let iter = d.u64()?;
        let n_prev = d.u64()? as usize;
        let n_v = d.u64()? as usize;
        let n_alphas = d.u64()? as usize;
        let n_betas = d.u64()? as usize;
        d.align_to(A)?;
        let v_prev = (0..n_prev).map(|_| d.f64()).collect::<Result<Vec<_>, _>>()?;
        d.align_to(A)?;
        let v = (0..n_v).map(|_| d.f64()).collect::<Result<Vec<_>, _>>()?;
        d.align_to(A)?;
        let paired = n_alphas.min(n_betas);
        let mut alphas = Vec::with_capacity(n_alphas);
        let mut betas = Vec::with_capacity(n_betas);
        for _ in 0..paired {
            alphas.push(d.f64()?);
            betas.push(d.f64()?);
        }
        for _ in paired..n_alphas {
            alphas.push(d.f64()?);
        }
        for _ in paired..n_betas {
            betas.push(d.f64()?);
        }
        d.expect_end()?;
        Ok(Self { v_prev, v, alphas, betas, iter })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn splitmix_u01(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_partition_independent() {
        // The global start vector must not depend on the chunking.
        let whole = LanczosState::init(0, 10, 42);
        let left = LanczosState::init(0, 4, 42);
        let right = LanczosState::init(4, 6, 42);
        assert_eq!(&whole.v[..4], &left.v[..]);
        assert_eq!(&whole.v[4..], &right.v[..]);
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let mut s = LanczosState::init(3, 7, 9);
        s.alphas = vec![0.25, -1.5];
        s.betas = vec![0.75, 2.0];
        s.iter = 2;
        let buf = s.encode();
        let t = LanczosState::decode(&buf).unwrap();
        assert_eq!(s, t);
        assert!(LanczosState::decode(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn encode_is_chunk_aligned_and_append_stable() {
        const A: usize = DEFAULT_CHUNK_SIZE;
        let sec = |len: usize| len.div_ceil(A) * A;
        let n = 700usize; // deliberately not a multiple of the chunk size
        let mut s = LanczosState::init(0, n, 3);
        s.alphas = (0..600).map(|i| i as f64).collect();
        s.betas = (0..600).map(|i| 0.5 + i as f64).collect();
        s.iter = 600;
        let before = s.encode();
        // One more "step": vectors change wholesale, history appends.
        let mut t = s.clone();
        t.v.iter_mut().for_each(|x| *x += 1.0);
        t.alphas.push(7.0);
        t.betas.push(8.0);
        t.iter = 601;
        let after = t.encode();
        // The α/β prefix lives at a stable chunk-aligned offset and its
        // bytes are untouched by the append — the incremental pipeline
        // sees clean chunks there.
        let tail_start = sec(40) + 2 * sec(n * 8);
        let prefix = 600 * 16;
        assert_eq!(before.len(), tail_start + prefix);
        assert_eq!(before[tail_start..], after[tail_start..tail_start + prefix]);
        // The v section did change (and starts on its own chunk).
        let v_start = sec(40) + sec(n * 8);
        assert_ne!(before[v_start..v_start + 64], after[v_start..v_start + 64]);
        assert_eq!(LanczosState::decode(&after).unwrap(), t);
    }

    #[test]
    fn eigenvalues_of_empty_state() {
        let s = LanczosState::init(0, 4, 1);
        assert!(s.eigenvalues().is_empty());
    }
}
