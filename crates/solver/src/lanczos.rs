//! The distributed Lanczos iteration (the paper's Algorithm 1).
//!
//! Each step is one halo exchange + spMVM and two global reductions. All
//! reductions go through [`ft_sparse::det_allreduce_sum`], so α/β
//! sequences are **bit-for-bit reproducible** across runs and across
//! recoveries — the property the integration tests assert.

use ft_checkpoint::{CodecError, Dec, Enc};
use ft_core::{FtCtx, FtResult};
use ft_sparse::{det_allreduce_sum, DistMatrix, SpmvComm};

use crate::tridiag::tridiag_eigenvalues;

/// The evolving Lanczos state of one rank: the two live Lanczos vectors
/// (local chunks) and the α/β history — exactly the paper's checkpoint
/// content ("two consecutive Lanczos vectors, α, and β", §II/§VI).
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosState {
    /// `v_{j-1}` local chunk.
    pub v_prev: Vec<f64>,
    /// `v_j` local chunk.
    pub v: Vec<f64>,
    /// `α_1..α_j`.
    pub alphas: Vec<f64>,
    /// `β_2..β_{j+1}` (the norm produced by each step).
    pub betas: Vec<f64>,
    /// Completed iterations (`== alphas.len()`).
    pub iter: u64,
}

impl LanczosState {
    /// Deterministic pseudo-random start vector, identical regardless of
    /// how rows are partitioned: entry `i` of the global vector depends
    /// only on `(seed, i)`. Normalized globally by the caller via
    /// [`LanczosState::normalize`].
    pub fn init(local_start: u64, local_len: usize, seed: u64) -> Self {
        let v: Vec<f64> = (0..local_len as u64)
            .map(|k| {
                splitmix_u01(seed ^ (local_start + k).wrapping_mul(0x9E37_79B9_7F4A_7C15)) - 0.5
            })
            .collect();
        Self { v_prev: vec![0.0; local_len], v, alphas: Vec::new(), betas: Vec::new(), iter: 0 }
    }

    /// Normalize `v` globally (collective).
    pub fn normalize(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let local: f64 = self.v.iter().map(|x| x * x).sum();
        let norm = det_allreduce_sum(ctx, local)?.sqrt();
        for x in &mut self.v {
            *x /= norm;
        }
        Ok(())
    }

    /// One Lanczos step: `w = A·v_j`, `α_j = w·v_j`,
    /// `w ← w − α_j v_j − β_j v_{j−1}`, `β_{j+1} = ‖w‖`,
    /// `v_{j+1} = w / β_{j+1}` (collective).
    ///
    /// The halo exchange is split-phase: `a_loc·v` runs while the halo
    /// values are in flight, and only the remote part waits for them. The
    /// two allreduces below double as the inter-iteration barrier that
    /// keeps a partner's `post(k+1)` from overwriting our halo before the
    /// `wait(k)` here consumed it.
    pub fn step(
        &mut self,
        ctx: &FtCtx,
        dm: &DistMatrix,
        comm: &SpmvComm,
        halo: &mut Vec<f64>,
    ) -> FtResult<()> {
        let tag = SpmvComm::tag_for_iter(self.iter);
        let pending = comm.post(ctx, &dm.plan, &self.v, tag)?;
        let mut w = vec![0.0; self.v.len()];
        dm.spmv_local(&self.v, &mut w);
        comm.wait(ctx, &dm.plan, pending, halo)?;
        dm.spmv_remote_add(halo, &mut w);
        let alpha = det_allreduce_sum(ctx, dot(&w, &self.v))?;
        let beta_prev = self.betas.last().copied().unwrap_or(0.0);
        for (i, wi) in w.iter_mut().enumerate() {
            *wi -= alpha * self.v[i] + beta_prev * self.v_prev[i];
        }
        let beta = det_allreduce_sum(ctx, dot(&w, &w))?.sqrt();
        self.alphas.push(alpha);
        self.betas.push(beta);
        std::mem::swap(&mut self.v_prev, &mut self.v);
        if beta > 0.0 {
            for (vi, wi) in self.v.iter_mut().zip(&w) {
                *vi = wi / beta;
            }
        } else {
            // Invariant subspace reached (exact breakdown): keep a zero
            // vector; eigenvalues of T_j are already exact.
            self.v.iter_mut().for_each(|x| *x = 0.0);
        }
        self.iter += 1;
        Ok(())
    }

    /// Eigenvalue estimates of the current Lanczos tridiagonal `T_j`
    /// (ascending); the paper's `CalcMinimumEigenVal` via the QL method.
    pub fn eigenvalues(&self) -> Vec<f64> {
        if self.alphas.is_empty() {
            return Vec::new();
        }
        tridiag_eigenvalues(&self.alphas, &self.betas[..self.alphas.len() - 1])
    }

    /// Checkpoint payload: iteration, α, β, and the two Lanczos vectors.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(32 + 8 * (self.alphas.len() * 2 + self.v.len() * 2));
        e.u64(self.iter).f64s(&self.alphas).f64s(&self.betas).f64s(&self.v_prev).f64s(&self.v);
        e.finish()
    }

    /// Restore from a checkpoint payload.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(buf);
        let iter = d.u64()?;
        let alphas = d.f64s()?;
        let betas = d.f64s()?;
        let v_prev = d.f64s()?;
        let v = d.f64s()?;
        d.expect_end()?;
        Ok(Self { v_prev, v, alphas, betas, iter })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn splitmix_u01(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_partition_independent() {
        // The global start vector must not depend on the chunking.
        let whole = LanczosState::init(0, 10, 42);
        let left = LanczosState::init(0, 4, 42);
        let right = LanczosState::init(4, 6, 42);
        assert_eq!(&whole.v[..4], &left.v[..]);
        assert_eq!(&whole.v[4..], &right.v[..]);
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let mut s = LanczosState::init(3, 7, 9);
        s.alphas = vec![0.25, -1.5];
        s.betas = vec![0.75, 2.0];
        s.iter = 2;
        let buf = s.encode();
        let t = LanczosState::decode(&buf).unwrap();
        assert_eq!(s, t);
        assert!(LanczosState::decode(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn eigenvalues_of_empty_state() {
        let s = LanczosState::init(0, 4, 1);
        assert!(s.eigenvalues().is_empty());
    }
}
