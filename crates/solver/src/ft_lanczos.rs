//! The fault-tolerant Lanczos application (paper §V).
//!
//! Wires the distributed Lanczos iteration into the [`ft_core::FtApp`]
//! driver:
//!
//! * **setup** — partition the matrix, run the spMVM pre-processing
//!   (index exchange), build the split matrix chunk from the generator on
//!   the fly, and write the *one-time* communication-plan checkpoint so a
//!   rescue can resume "without having to perform the pre-processing step
//!   again";
//! * **step** — one Lanczos iteration, with the QL convergence check
//!   every `conv_check_every` iterations;
//! * **checkpoint** — two consecutive Lanczos vectors plus α/β;
//! * **join_as_rescue / restore / rewire** — the recovery half: read the
//!   adopted identity's plan checkpoint, regenerate the matrix chunk
//!   locally, agree on a consistent state version, and refresh the
//!   checkpoint library's neighbor list.

use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CkptStats, CopyPolicy, Pfs};
use ft_core::{FtApp, FtCtx, FtError, FtResult, RecoveryPlan};
use ft_gaspi::{GaspiError, SegId, Timeout};
use ft_matgen::RowGen;
use ft_sparse::{CommPlan, DistMatrix, HaloStats, RowPartition, SpmvComm};

use crate::lanczos::LanczosState;

/// Checkpoint stream tags.
const STATE_TAG: u32 = 0x10;
const PLAN_TAG: u32 = 0x11;
/// Segment ids (the control segment is 0).
const SEG_HALO: SegId = 1;
const SEG_STAGE: SegId = 2;
/// Queue for halo traffic (the FD uses queue 0 for acknowledgments on its
/// own rank; queues are per-rank, so any app queue works — 1 keeps traces
/// readable).
const HALO_QUEUE: u16 = 1;

/// Configuration of the fault-tolerant Lanczos run.
pub struct FtLanczosConfig {
    /// Matrix generator (each rank regenerates its own chunk on the fly).
    pub gen: Arc<dyn RowGen>,
    /// Start-vector seed.
    pub seed: u64,
    /// Check convergence every this many iterations (0 = never, run to
    /// `max_iters` like the paper's fixed-3500-iteration benchmarks).
    pub conv_check_every: u64,
    /// Convergence: stop when the smallest eigenvalue estimate moved less
    /// than this between consecutive checks.
    pub conv_tol: f64,
    /// Optional PFS tier for the plan checkpoints (recommended: they are
    /// tiny, written once, and make rescues robust to adjacent-node
    /// loss).
    pub pfs: Option<Arc<Pfs>>,
    /// Timeout for checkpoint fetches during restore.
    pub fetch_timeout: Duration,
    /// Use SELL-C-σ kernels (GHOST's format) for the local spMVM parts:
    /// `Some((C, σ))`. Results are bitwise identical to the CSR kernels
    /// under the scalar kernel policy (the SIMD CSR kernel reorders
    /// row reductions; see `ft_sparse::simd`).
    pub sell: Option<(usize, usize)>,
    /// Kernel dispatch policy: `None` follows the build's default
    /// ([`ft_sparse::KernelPolicy::auto`]); tests pin `Scalar` to assert
    /// bitwise cross-format properties regardless of cargo features.
    pub kernel: Option<ft_sparse::KernelPolicy>,
}

impl FtLanczosConfig {
    /// Fixed-iteration configuration (the paper's benchmark mode).
    pub fn fixed_iters(gen: Arc<dyn RowGen>) -> Self {
        Self {
            gen,
            seed: 0x1A5C_205E,
            conv_check_every: 0,
            conv_tol: 1e-10,
            pfs: None,
            fetch_timeout: Duration::from_secs(5),
            sell: None,
            kernel: None,
        }
    }
}

/// Per-worker result.
#[derive(Debug, Clone)]
pub struct LanczosSummary {
    /// Iterations performed.
    pub iters: u64,
    /// Eigenvalue estimates of the final Lanczos tridiagonal (ascending).
    pub eigenvalues: Vec<f64>,
    /// Full α history (bit-exact across failure-free and recovered runs).
    pub alphas: Vec<f64>,
    /// Full β history.
    pub betas: Vec<f64>,
    /// This rank's checkpoint-tier counters (state + plan streams merged),
    /// read after draining pending neighbor copies.
    pub ckpt: CkptStats,
    /// This rank's halo-exchange counters.
    pub halo: HaloStats,
}

/// The fault-tolerant Lanczos application.
pub struct FtLanczos {
    cfg: Arc<FtLanczosConfig>,
    state_ck: Checkpointer,
    plan_ck: Checkpointer,
    dm: Option<DistMatrix>,
    comm: Option<SpmvComm>,
    state: Option<LanczosState>,
    halo: Vec<f64>,
    last_low_eig: Option<f64>,
}

impl FtLanczos {
    /// Build the application object for one rank (pass this to
    /// [`ft_core::run_ft_job`] via a closure).
    pub fn new(ctx: &FtCtx, cfg: Arc<FtLanczosConfig>) -> Self {
        let state_ck =
            Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), cfg.pfs.clone());
        let plan_ck = Checkpointer::new(
            &ctx.proc,
            CheckpointerConfig {
                keep_versions: 1,
                pfs_every: cfg.pfs.as_ref().map(|_| 1),
                ..CheckpointerConfig::for_tag(PLAN_TAG)
            },
            cfg.pfs.clone(),
        );
        Self {
            cfg,
            state_ck,
            plan_ck,
            dm: None,
            comm: None,
            state: None,
            halo: Vec::new(),
            last_low_eig: None,
        }
    }

    fn partition(&self, ctx: &FtCtx) -> RowPartition {
        RowPartition::new(self.cfg.gen.dim(), ctx.num_app_ranks())
    }

    fn install_plan(&mut self, ctx: &FtCtx, plan: CommPlan) -> FtResult<()> {
        let part = self.partition(ctx);
        let me = ctx.app_rank();
        let mut dm = DistMatrix::assemble(self.cfg.gen.as_ref(), part, me, plan);
        if let Some((c, sigma)) = self.cfg.sell {
            dm = dm.with_sell(c, sigma);
        }
        if let Some(kernel) = self.cfg.kernel {
            dm = dm.with_kernel(kernel);
        }
        let comm = SpmvComm::new(&ctx.proc, &dm.plan, SEG_HALO, SEG_STAGE, HALO_QUEUE)?;
        self.dm = Some(dm);
        self.comm = Some(comm);
        Ok(())
    }

    fn fresh_state(&self, ctx: &FtCtx) -> FtResult<LanczosState> {
        let part = self.partition(ctx);
        let me = ctx.app_rank();
        let mut st = LanczosState::init(part.range(me).start, part.len(me), self.cfg.seed);
        st.normalize(ctx)?;
        Ok(st)
    }
}

impl FtApp for FtLanczos {
    type Summary = LanczosSummary;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let part = self.partition(ctx);
        let me = ctx.app_rank();
        // Pre-processing: determine needed RHS indices and exchange them.
        let needed = DistMatrix::needed_columns(self.cfg.gen.as_ref(), &part, me);
        let plan = CommPlan::receives_from_needs(me, part.parts(), &needed).negotiate(
            &ctx.proc,
            &|a| ctx.gaspi_of(a),
            part.range(me).start,
            Timeout::Ms(30_000),
        )?;
        // "Each process writes a checkpoint after the pre-processing
        // stage" — the one-time plan checkpoint.
        self.plan_ck.commit(0, plan.encode(), CopyPolicy::Replicate);
        self.install_plan(ctx, plan)?;
        self.state = Some(self.fresh_state(ctx)?);
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()> {
        // "After failure recovery, the rescue process reads the checkpoint
        // of the failed process. In this way, the rescue process is
        // informed about the communicating partners and the respective
        // RHS indices" (§V).
        let source = ctx.restore_source();
        let blob = self
            .plan_ck
            .restore_latest(source, self.cfg.fetch_timeout)
            .hit()
            .ok_or(FtError::Gaspi(GaspiError::Timeout))?;
        let plan = CommPlan::decode(&blob.data)
            .ok_or(FtError::Gaspi(GaspiError::InvalidArg("corrupt plan checkpoint")))?;
        if plan.me != ctx.app_rank() {
            return Err(FtError::Gaspi(GaspiError::InvalidArg("adopted the wrong plan")));
        }
        // Re-home the plan under our own rank, then regenerate the matrix
        // chunk locally (no PFS read, §V).
        self.plan_ck.commit(0, blob.data, CopyPolicy::Replicate);
        self.install_plan(ctx, plan)?;
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let dm = self.dm.as_ref().expect("step before setup");
        let comm = self.comm.as_ref().expect("step before setup");
        let state = self.state.as_mut().expect("step before setup");
        debug_assert_eq!(state.iter, iter, "driver and Lanczos state out of sync");
        state.step(ctx, dm, comm, &mut self.halo)?;
        // Convergence: eigenvalues of T_j via the QL method, identical on
        // every rank (α/β are bit-identical), so the decision agrees.
        if self.cfg.conv_check_every > 0 && state.iter.is_multiple_of(self.cfg.conv_check_every) {
            let eig = state.eigenvalues();
            if let (Some(prev), Some(&low)) = (self.last_low_eig, eig.first()) {
                if (low - prev).abs() <= self.cfg.conv_tol * low.abs().max(1.0) {
                    return Ok(true);
                }
            }
            self.last_low_eig = eig.first().copied();
        }
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.state_ck, self.cfg.fetch_timeout))
    }

    fn export_state(&self, _ctx: &FtCtx, _iter: u64) -> FtResult<Option<Vec<u8>>> {
        Ok(self.state.as_ref().map(LanczosState::encode))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let st = LanczosState::decode(data)?;
        let iter = st.iter;
        self.state = Some(st);
        self.last_low_eig = None;
        Ok(iter)
    }

    fn reset_state(&mut self, ctx: &FtCtx) -> FtResult<()> {
        // No consistent state anywhere: restart the Krylov process from
        // the deterministic start vector.
        self.state = Some(self.fresh_state(ctx)?);
        self.last_low_eig = None;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.state_ck.refresh_failed(&plan.failed);
        self.plan_ck.refresh_failed(&plan.failed);
        if let (Some(comm), Some(dm)) = (&self.comm, &self.dm) {
            // Drop pre-failure halo notifications and stale queue failure
            // records; partner *ranks* need no update — the plan stores
            // application ranks and the rank map already points at the
            // rescues.
            comm.rewire(&ctx.proc, &dm.plan)?;
        }
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<LanczosSummary> {
        let state = self.state.take().expect("finalize before setup");
        // Let in-flight neighbor copies land so the counters reflect the
        // whole run, then merge both checkpoint streams (state + plan).
        self.state_ck.drain(self.cfg.fetch_timeout);
        self.plan_ck.drain(self.cfg.fetch_timeout);
        let mut ckpt = self.state_ck.stats();
        ckpt.merge(&self.plan_ck.stats());
        let halo = self.comm.as_ref().map(SpmvComm::stats).unwrap_or_default();
        Ok(LanczosSummary {
            iters: state.iter,
            eigenvalues: state.eigenvalues(),
            alphas: state.alphas,
            betas: state.betas,
            ckpt,
            halo,
        })
    }
}
