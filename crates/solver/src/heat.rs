//! A second fault-tolerant application: a 2D heat/Poisson solver.
//!
//! The paper closes its introduction with "the concept can be applied to
//! other applications … as well" — this module demonstrates it. A damped
//! Jacobi iteration solves `A·u = b` for the 5-point Laplacian with a
//! point source, reusing the whole stack: distributed matrix, one-sided
//! halo exchange, neighbor-level checkpoints, and the recovery driver.
//! The per-step residual reduction doubles as the synchronization that
//! keeps halo buffers race-free (see [`ft_sparse::halo`]).

use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Dec, Enc, Pfs};
use ft_core::{FtApp, FtCtx, FtError, FtResult, RecoveryPlan};
use ft_gaspi::{GaspiError, SegId, Timeout};
use ft_matgen::stencil::Laplace2d;
use ft_matgen::RowGen;
use ft_sparse::{det_allreduce_sum, CommPlan, DistMatrix, RowPartition, SpmvComm};

const STATE_TAG: u32 = 0x20;
const PLAN_TAG: u32 = 0x21;
const SEG_HALO: SegId = 3;
const SEG_STAGE: SegId = 4;
const HALO_QUEUE: u16 = 2;

/// Configuration of the fault-tolerant heat solve.
pub struct HeatConfig {
    /// Grid extents.
    pub nx: u64,
    /// Grid extents.
    pub ny: u64,
    /// Jacobi damping factor (≤ 1; 0.8 is robustly convergent).
    pub omega: f64,
    /// Stop when the global residual 2-norm falls below this.
    pub tol: f64,
    /// Optional PFS tier for the plan checkpoint.
    pub pfs: Option<Arc<Pfs>>,
    /// Checkpoint fetch timeout.
    pub fetch_timeout: Duration,
}

impl HeatConfig {
    /// Default solve on an `nx × ny` grid.
    pub fn new(nx: u64, ny: u64) -> Self {
        Self { nx, ny, omega: 0.8, tol: 1e-8, pfs: None, fetch_timeout: Duration::from_secs(5) }
    }
}

/// Per-worker result of the heat solve.
#[derive(Debug, Clone)]
pub struct HeatSummary {
    /// Iterations performed.
    pub iters: u64,
    /// Final global residual 2-norm.
    pub residual: f64,
    /// Global solution 2-norm (a cheap whole-field fingerprint).
    pub solution_norm: f64,
}

/// The fault-tolerant Jacobi heat solver.
pub struct FtHeat {
    cfg: Arc<HeatConfig>,
    gen: Laplace2d,
    state_ck: Checkpointer,
    plan_ck: Checkpointer,
    dm: Option<DistMatrix>,
    comm: Option<SpmvComm>,
    u: Vec<f64>,
    b: Vec<f64>,
    halo: Vec<f64>,
    iter: u64,
    last_residual: f64,
}

impl FtHeat {
    /// Build the application object for one rank.
    pub fn new(ctx: &FtCtx, cfg: Arc<HeatConfig>) -> Self {
        let gen = Laplace2d::new(cfg.nx, cfg.ny);
        let state_ck =
            Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), cfg.pfs.clone());
        let plan_ck = Checkpointer::new(
            &ctx.proc,
            CheckpointerConfig {
                keep_versions: 1,
                pfs_every: cfg.pfs.as_ref().map(|_| 1),
                ..CheckpointerConfig::for_tag(PLAN_TAG)
            },
            cfg.pfs.clone(),
        );
        Self {
            cfg,
            gen,
            state_ck,
            plan_ck,
            dm: None,
            comm: None,
            u: Vec::new(),
            b: Vec::new(),
            halo: Vec::new(),
            iter: 0,
            last_residual: f64::INFINITY,
        }
    }

    fn partition(&self, ctx: &FtCtx) -> RowPartition {
        RowPartition::new(self.gen.dim(), ctx.num_app_ranks())
    }

    /// Right-hand side: a unit point source at the grid center, derived
    /// from global indices (regenerable by any rescue).
    fn source(&self, part: &RowPartition, me: u32) -> Vec<f64> {
        let center = (self.cfg.ny / 2) * self.cfg.nx + self.cfg.nx / 2;
        part.range(me).map(|i| if i == center { 1.0 } else { 0.0 }).collect()
    }

    fn install_plan(&mut self, ctx: &FtCtx, plan: CommPlan) -> FtResult<()> {
        let part = self.partition(ctx);
        let me = ctx.app_rank();
        let dm = DistMatrix::assemble(&self.gen, part, me, plan);
        let comm = SpmvComm::new(&ctx.proc, &dm.plan, SEG_HALO, SEG_STAGE, HALO_QUEUE)?;
        self.b = self.source(&part, me);
        self.dm = Some(dm);
        self.comm = Some(comm);
        Ok(())
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(16 + 8 * self.u.len());
        e.u64(self.iter).f64s(&self.u);
        e.finish()
    }
}

impl FtApp for FtHeat {
    type Summary = HeatSummary;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let part = self.partition(ctx);
        let me = ctx.app_rank();
        let needed = DistMatrix::needed_columns(&self.gen, &part, me);
        let plan = CommPlan::receives_from_needs(me, part.parts(), &needed).negotiate(
            &ctx.proc,
            &|a| ctx.gaspi_of(a),
            part.range(me).start,
            Timeout::Ms(30_000),
        )?;
        self.plan_ck.commit(0, plan.encode(), CopyPolicy::Replicate);
        self.install_plan(ctx, plan)?;
        self.u = vec![0.0; part.len(me)];
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let source = ctx.restore_source();
        let blob = self
            .plan_ck
            .restore_latest(source, self.cfg.fetch_timeout)
            .hit()
            .ok_or(FtError::Gaspi(GaspiError::Timeout))?;
        let plan = CommPlan::decode(&blob.data)
            .ok_or(FtError::Gaspi(GaspiError::InvalidArg("corrupt plan checkpoint")))?;
        self.plan_ck.commit(0, blob.data, CopyPolicy::Replicate);
        self.install_plan(ctx, plan)?;
        self.u = vec![0.0; self.partition(ctx).len(ctx.app_rank())];
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let dm = self.dm.as_ref().expect("step before setup");
        let comm = self.comm.as_ref().expect("step before setup");
        let tag = SpmvComm::tag_for_iter(iter);
        // Split-phase: the local product runs while the halo is in
        // flight; the residual allreduce below is the inter-iteration
        // barrier that keeps the halo buffers race-free.
        let pending = comm.post(ctx, &dm.plan, &self.u, tag)?;
        let mut au = vec![0.0; self.u.len()];
        dm.spmv_local(&self.u, &mut au);
        comm.wait(ctx, &dm.plan, pending, &mut self.halo)?;
        dm.spmv_remote_add(&self.halo, &mut au);
        // Damped Jacobi update u += ω (b − A·u) / diag, with the residual
        // reduction as the global step synchronization.
        let mut local_r2 = 0.0;
        let diag = 4.0; // 5-point Laplacian diagonal
        for (i, u) in self.u.iter_mut().enumerate() {
            let r = self.b[i] - au[i];
            local_r2 += r * r;
            *u += self.cfg.omega * r / diag;
        }
        let r2 = det_allreduce_sum(ctx, local_r2)?;
        self.last_residual = r2.sqrt();
        self.iter = iter + 1;
        Ok(self.last_residual < self.cfg.tol)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.state_ck, self.cfg.fetch_timeout))
    }

    fn export_state(&self, _ctx: &FtCtx, _iter: u64) -> FtResult<Option<Vec<u8>>> {
        Ok(Some(self.encode_state()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64()?;
        self.u = d.f64s()?;
        self.iter = iter;
        Ok(iter)
    }

    fn reset_state(&mut self, ctx: &FtCtx) -> FtResult<()> {
        self.u = vec![0.0; self.partition(ctx).len(ctx.app_rank())];
        self.iter = 0;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.state_ck.refresh_failed(&plan.failed);
        self.plan_ck.refresh_failed(&plan.failed);
        if let (Some(comm), Some(dm)) = (&self.comm, &self.dm) {
            comm.rewire(&ctx.proc, &dm.plan)?;
        }
        Ok(())
    }

    fn finalize(&mut self, ctx: &FtCtx) -> FtResult<HeatSummary> {
        let local: f64 = self.u.iter().map(|x| x * x).sum();
        let norm = det_allreduce_sum(ctx, local)?.sqrt();
        Ok(HeatSummary { iters: self.iter, residual: self.last_residual, solution_norm: norm })
    }
}
