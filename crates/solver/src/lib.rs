//! # ft-solver — the Lanczos eigensolver and its fault-tolerant application
//!
//! The paper's demonstration application (§V): the Lanczos algorithm, an
//! iterative scheme for finding the low-lying eigenvalues of a sparse
//! symmetric matrix. Each iteration is a distributed spMVM plus two
//! global reductions; every few iterations the eigenvalues of the small
//! Lanczos tridiagonal matrix are extracted with the **QL method** and
//! checked against a convergence criterion.
//!
//! * [`tridiag`] — QL-with-implicit-shifts eigenvalues of a symmetric
//!   tridiagonal matrix (the paper's `CalcMinimumEigenVal`).
//! * [`lanczos`] — the distributed Lanczos step (Algorithm 1) and its
//!   state.
//! * [`seq`] — a single-process reference implementation used to validate
//!   the distributed one.
//! * [`ft_lanczos`] — the fault-tolerant application: an
//!   [`ft_core::FtApp`] checkpointing two consecutive Lanczos vectors
//!   plus the α/β arrays (§V), with the one-time communication-plan
//!   checkpoint that lets a rescue skip pre-processing.
//! * [`heat`] — a second fault-tolerant application (2D Jacobi heat
//!   solver) demonstrating that "the concept can be applied to other
//!   applications" (§I).

pub mod ft_lanczos;
pub mod heat;
pub mod lanczos;
pub mod seq;
pub mod tridiag;

pub use ft_lanczos::{FtLanczos, FtLanczosConfig, LanczosSummary};
pub use lanczos::LanczosState;
pub use tridiag::tridiag_eigenvalues;
