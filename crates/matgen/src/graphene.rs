//! Graphene tight-binding Hamiltonian.
//!
//! The paper's matrix "arises from the quantum-mechanical description of
//! electron transport properties in graphene" (§V): a honeycomb lattice
//! of `2·Lx·Ly` sites (two sublattices A/B per unit cell) with
//! nearest-neighbor hopping, optional next-nearest-neighbor hopping (which
//! brings the row population close to the paper's ≈12 nonzeros/row), and
//! optional on-site Anderson disorder. Rows are generated on the fly from
//! the geometry — no global matrix is ever materialized, and a rescue
//! process can regenerate a failed process's chunk locally.

use crate::{RowEntry, RowGen};

/// Honeycomb tight-binding Hamiltonian generator.
#[derive(Debug, Clone)]
pub struct Graphene {
    lx: u64,
    ly: u64,
    /// Nearest-neighbor hopping amplitude (3 neighbors/site).
    pub t1: f64,
    /// Next-nearest-neighbor hopping (6 neighbors/site); 0 disables.
    pub t2: f64,
    /// Anderson disorder strength `W`: on-site energies uniform in
    /// `[-W/2, W/2]`, deterministic per site.
    pub disorder: f64,
    /// Seed for the per-site disorder hash.
    pub seed: u64,
    /// Periodic boundary conditions.
    pub periodic: bool,
}

impl Graphene {
    /// A clean `Lx × Ly`-cell sheet with NN hopping `t1 = -1`.
    pub fn new(lx: u64, ly: u64) -> Self {
        assert!(lx >= 1 && ly >= 1);
        Self { lx, ly, t1: -1.0, t2: 0.0, disorder: 0.0, seed: 0, periodic: false }
    }

    /// Enable next-nearest-neighbor hopping.
    pub fn with_nnn(mut self, t2: f64) -> Self {
        self.t2 = t2;
        self
    }

    /// Enable seeded Anderson disorder of strength `w`.
    pub fn with_disorder(mut self, w: f64, seed: u64) -> Self {
        self.disorder = w;
        self.seed = seed;
        self
    }

    /// Toggle periodic boundaries.
    pub fn with_periodic(mut self, on: bool) -> Self {
        self.periodic = on;
        self
    }

    /// Number of lattice sites (= matrix dimension).
    pub fn sites(&self) -> u64 {
        2 * self.lx * self.ly
    }

    fn site(&self, x: i64, y: i64, sub: u64) -> Option<u64> {
        let (lx, ly) = (self.lx as i64, self.ly as i64);
        let (x, y) = if self.periodic {
            (x.rem_euclid(lx), y.rem_euclid(ly))
        } else {
            if x < 0 || x >= lx || y < 0 || y >= ly {
                return None;
            }
            (x, y)
        };
        Some(((y as u64) * self.lx + x as u64) * 2 + sub)
    }

    fn onsite(&self, site: u64) -> f64 {
        if self.disorder == 0.0 {
            return 0.0;
        }
        self.disorder * (splitmix_u01(self.seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15)) - 0.5)
    }
}

/// SplitMix64 → uniform in [0, 1).
fn splitmix_u01(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl RowGen for Graphene {
    fn dim(&self) -> u64 {
        self.sites()
    }

    fn max_row_entries(&self) -> usize {
        1 + 3 + if self.t2 != 0.0 { 6 } else { 0 }
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        let sub = row & 1;
        let cell = row >> 1;
        let x = (cell % self.lx) as i64;
        let y = (cell / self.lx) as i64;
        let mut push = |col: Option<u64>, val: f64| {
            if let Some(c) = col {
                out.push(RowEntry { col: c, val });
            }
        };
        // Diagonal (on-site energy; always emitted so the sparsity pattern
        // is disorder-independent).
        push(Some(row), self.onsite(row));
        // Nearest neighbors: A(x,y) ↔ B(x,y), B(x−1,y), B(x,y−1).
        if sub == 0 {
            push(self.site(x, y, 1), self.t1);
            push(self.site(x - 1, y, 1), self.t1);
            push(self.site(x, y - 1, 1), self.t1);
        } else {
            push(self.site(x, y, 0), self.t1);
            push(self.site(x + 1, y, 0), self.t1);
            push(self.site(x, y + 1, 0), self.t1);
        }
        // Next-nearest: the six same-sublattice sites of the triangular
        // Bravais lattice.
        if self.t2 != 0.0 {
            for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1), (1, -1), (-1, 1)] {
                push(self.site(x + dx, y + dy, sub), self.t2);
            }
        }
        // Periodic wrap on tiny lattices can map several displacements to
        // the same site (including the diagonal): sort and merge.
        out.sort_by_key(|e| e.col);
        let mut merged: Vec<RowEntry> = Vec::with_capacity(out.len());
        for e in out.drain(..) {
            match merged.last_mut() {
                Some(last) if last.col == e.col => last.val += e.val,
                _ => merged.push(e),
            }
        }
        *out = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_rows;

    #[test]
    fn dimensions_and_degree() {
        let g = Graphene::new(4, 3);
        assert_eq!(g.dim(), 24);
        // A bulk site has exactly 3 NN + diagonal.
        let bulk = g.row_vec(2 * (4 + 1)); // A site of cell (1,1)
        assert_eq!(bulk.len(), 4);
        // Corner A site (0,0): neighbors (−1,0) and (0,−1) fall off.
        let corner = g.row_vec(0);
        assert_eq!(corner.len(), 2);
    }

    #[test]
    fn open_boundaries_symmetric_and_valid() {
        let g = Graphene::new(5, 4).with_nnn(-0.1).with_disorder(0.5, 42);
        validate_rows(&g, 0..g.dim(), true);
    }

    #[test]
    fn periodic_boundaries_symmetric_and_valid() {
        let g = Graphene::new(4, 4).with_nnn(-0.2).with_periodic(true);
        validate_rows(&g, 0..g.dim(), true);
    }

    #[test]
    fn tiny_periodic_lattice_merges_duplicates() {
        // lx = 1 periodic: (x−1) and (x+1) wrap to x itself.
        let g = Graphene::new(1, 2).with_nnn(-0.3).with_periodic(true);
        validate_rows(&g, 0..g.dim(), true);
        for i in 0..g.dim() {
            let r = g.row_vec(i);
            for w in r.windows(2) {
                assert!(w[0].col < w[1].col);
            }
        }
    }

    #[test]
    fn disorder_is_deterministic_and_bounded() {
        let g = Graphene::new(8, 8).with_disorder(2.0, 7);
        let h = Graphene::new(8, 8).with_disorder(2.0, 7);
        for i in 0..g.dim() {
            let a = g.row_vec(i);
            let b = h.row_vec(i);
            assert_eq!(a, b);
            let diag = a.iter().find(|e| e.col == i).unwrap();
            assert!(diag.val.abs() <= 1.0, "disorder must stay in [-W/2, W/2]");
        }
        // Different seed ⇒ (almost surely) different diagonal somewhere.
        let k = Graphene::new(8, 8).with_disorder(2.0, 8);
        let differs = (0..g.dim()).any(|i| k.row_vec(i) != g.row_vec(i));
        assert!(differs);
    }

    #[test]
    fn nnn_row_population_matches_paper_scale() {
        // diag + 3 NN + 6 NNN = 10 entries for a bulk site — the same
        // order as the paper's ≈12.5 nnz/row graphene matrix.
        let g = Graphene::new(6, 6).with_nnn(-0.1).with_periodic(true);
        let bulk = g.row_vec(2 * (2 * 6 + 2));
        assert_eq!(bulk.len(), 10);
    }
}
