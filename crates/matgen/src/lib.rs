//! # ft-matgen — on-the-fly sparse matrix generators
//!
//! "A matrix generation library tool is used to construct the matrix on
//! the fly. Depending upon the specified geometry size, each process
//! allocates its own chunk of the matrix. This way, the expensive step of
//! reading the matrix from PFS is avoided." (§V)
//!
//! Generators implement [`RowGen`]: given a global row index, produce the
//! row's `(column, value)` entries. A distributed application asks the
//! generator only for its own row range — no global matrix ever exists in
//! memory, exactly as in the paper. Provided models:
//!
//! * [`graphene::Graphene`] — the paper's benchmark matrix: a
//!   tight-binding Hamiltonian of a quasi-2D honeycomb (graphene) lattice,
//!   with configurable hopping range and optional Anderson disorder.
//! * [`stencil::Laplace2d`] / [`stencil::Laplace3d`] — classic
//!   finite-difference stencils.
//! * [`random::RandomSym`] — seeded random symmetric matrices.
//! * [`spectra`] — matrices with analytically known eigenvalues, used to
//!   validate the Lanczos + QL solver.

pub mod graphene;
pub mod random;
pub mod spectra;
pub mod stencil;

/// One nonzero entry of a row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowEntry {
    /// Global column index.
    pub col: u64,
    /// Value.
    pub val: f64,
}

/// A deterministic, on-the-fly row generator for a sparse symmetric
/// matrix.
pub trait RowGen: Send + Sync {
    /// Global matrix dimension (rows == columns).
    fn dim(&self) -> u64;

    /// Append the entries of `row` to `out` (sorted by column, no
    /// duplicates). `out` is cleared first.
    fn row(&self, row: u64, out: &mut Vec<RowEntry>);

    /// Convenience: the row as a fresh vector.
    fn row_vec(&self, row: u64) -> Vec<RowEntry> {
        let mut v = Vec::new();
        self.row(row, &mut v);
        v
    }

    /// An upper bound on entries per row (for capacity hints).
    fn max_row_entries(&self) -> usize;
}

/// Verify generator invariants over a row range: sorted columns, in-range
/// indices, no duplicates, and symmetry (`A[i][j] == A[j][i]`) when
/// `check_symmetry` — used by the property tests of every generator.
pub fn validate_rows<G: RowGen>(gen: &G, rows: std::ops::Range<u64>, check_symmetry: bool) {
    let mut buf = Vec::new();
    for i in rows {
        gen.row(i, &mut buf);
        assert!(
            buf.len() <= gen.max_row_entries(),
            "row {i}: {} entries exceeds declared max {}",
            buf.len(),
            gen.max_row_entries()
        );
        for w in buf.windows(2) {
            assert!(w[0].col < w[1].col, "row {i}: columns not strictly ascending");
        }
        for e in &buf {
            assert!(e.col < gen.dim(), "row {i}: column {} out of range", e.col);
            assert!(e.val.is_finite(), "row {i}: non-finite value");
            if check_symmetry {
                let back = gen.row_vec(e.col);
                let mirror = back.iter().find(|b| b.col == i);
                match mirror {
                    Some(m) => assert!(
                        (m.val - e.val).abs() <= 1e-12 * e.val.abs().max(1.0),
                        "asymmetry at ({i},{})",
                        e.col
                    ),
                    None => panic!("missing mirror entry for ({i},{})", e.col),
                }
            }
        }
    }
}
