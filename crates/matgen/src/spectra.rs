//! Matrices with analytically known spectra — ground truth for the
//! Lanczos + QL eigensolver tests.

use crate::{RowEntry, RowGen};

/// Diagonal matrix with the given eigenvalues (trivially known spectrum).
#[derive(Debug, Clone)]
pub struct Diagonal {
    values: Vec<f64>,
}

impl Diagonal {
    /// Diagonal matrix `diag(values)`.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty());
        Self { values }
    }

    /// The exact eigenvalues, ascending.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

impl RowGen for Diagonal {
    fn dim(&self) -> u64 {
        self.values.len() as u64
    }

    fn max_row_entries(&self) -> usize {
        1
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        out.push(RowEntry { col: row, val: self.values[row as usize] });
    }
}

/// Tridiagonal Toeplitz matrix: `a` on the diagonal, `b` on both
/// off-diagonals. Eigenvalues: `a + 2b·cos(kπ/(n+1))`, `k = 1..=n`.
#[derive(Debug, Clone)]
pub struct ToeplitzTridiag {
    n: u64,
    /// Diagonal value.
    pub a: f64,
    /// Off-diagonal value.
    pub b: f64,
}

impl ToeplitzTridiag {
    /// `n × n` tridiagonal Toeplitz matrix.
    pub fn new(n: u64, a: f64, b: f64) -> Self {
        assert!(n >= 1);
        Self { n, a, b }
    }

    /// The exact eigenvalues, ascending.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let n = self.n as usize;
        let mut v: Vec<f64> = (1..=n)
            .map(|k| {
                self.a + 2.0 * self.b * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos()
            })
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

impl RowGen for ToeplitzTridiag {
    fn dim(&self) -> u64 {
        self.n
    }

    fn max_row_entries(&self) -> usize {
        3
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        if row > 0 {
            out.push(RowEntry { col: row - 1, val: self.b });
        }
        out.push(RowEntry { col: row, val: self.a });
        if row + 1 < self.n {
            out.push(RowEntry { col: row + 1, val: self.b });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_rows;

    #[test]
    fn diagonal_rows_and_spectrum() {
        let d = Diagonal::new(vec![3.0, -1.0, 2.0]);
        validate_rows(&d, 0..3, true);
        assert_eq!(d.eigenvalues(), vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn toeplitz_rows_and_known_eigenvalues() {
        let t = ToeplitzTridiag::new(4, 2.0, -1.0);
        validate_rows(&t, 0..4, true);
        let eig = t.eigenvalues();
        // Known: 2 − 2cos(kπ/5) for the (2, −1) Laplacian-like matrix.
        for (k, &l) in (1..=4).zip(eig.iter().rev()) {
            let want = 2.0 + 2.0 * (k as f64 * std::f64::consts::PI / 5.0).cos();
            assert!((l - want).abs() < 1e-12, "k={k}: {l} vs {want}");
        }
    }
}
