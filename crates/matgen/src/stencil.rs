//! Finite-difference Laplacian stencils — the "other applications" class
//! the paper's technique generalizes to (and the substrate of the
//! heat-equation example).

use crate::{RowEntry, RowGen};

/// 5-point 2D Laplacian on an `nx × ny` grid (Dirichlet boundaries).
#[derive(Debug, Clone)]
pub struct Laplace2d {
    nx: u64,
    ny: u64,
}

impl Laplace2d {
    /// Grid of `nx × ny` interior points.
    pub fn new(nx: u64, ny: u64) -> Self {
        assert!(nx >= 1 && ny >= 1);
        Self { nx, ny }
    }
}

impl RowGen for Laplace2d {
    fn dim(&self) -> u64 {
        self.nx * self.ny
    }

    fn max_row_entries(&self) -> usize {
        5
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        let x = row % self.nx;
        let y = row / self.nx;
        if y > 0 {
            out.push(RowEntry { col: row - self.nx, val: -1.0 });
        }
        if x > 0 {
            out.push(RowEntry { col: row - 1, val: -1.0 });
        }
        out.push(RowEntry { col: row, val: 4.0 });
        if x + 1 < self.nx {
            out.push(RowEntry { col: row + 1, val: -1.0 });
        }
        if y + 1 < self.ny {
            out.push(RowEntry { col: row + self.nx, val: -1.0 });
        }
    }
}

/// 7-point 3D Laplacian on an `nx × ny × nz` grid (Dirichlet boundaries).
#[derive(Debug, Clone)]
pub struct Laplace3d {
    nx: u64,
    ny: u64,
    nz: u64,
}

impl Laplace3d {
    /// Grid of `nx × ny × nz` interior points.
    pub fn new(nx: u64, ny: u64, nz: u64) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        Self { nx, ny, nz }
    }
}

impl RowGen for Laplace3d {
    fn dim(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    fn max_row_entries(&self) -> usize {
        7
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        let plane = self.nx * self.ny;
        let z = row / plane;
        let rem = row % plane;
        let y = rem / self.nx;
        let x = rem % self.nx;
        if z > 0 {
            out.push(RowEntry { col: row - plane, val: -1.0 });
        }
        if y > 0 {
            out.push(RowEntry { col: row - self.nx, val: -1.0 });
        }
        if x > 0 {
            out.push(RowEntry { col: row - 1, val: -1.0 });
        }
        out.push(RowEntry { col: row, val: 6.0 });
        if x + 1 < self.nx {
            out.push(RowEntry { col: row + 1, val: -1.0 });
        }
        if y + 1 < self.ny {
            out.push(RowEntry { col: row + self.nx, val: -1.0 });
        }
        if z + 1 < self.nz {
            out.push(RowEntry { col: row + plane, val: -1.0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_rows;

    #[test]
    fn laplace2d_interior_row() {
        let g = Laplace2d::new(4, 4);
        let r = g.row_vec(5); // (x=1, y=1): full 5-point star
        assert_eq!(r.len(), 5);
        assert_eq!(r.iter().map(|e| e.val).sum::<f64>(), 0.0);
        let diag = r.iter().find(|e| e.col == 5).unwrap();
        assert_eq!(diag.val, 4.0);
    }

    #[test]
    fn laplace2d_valid_and_symmetric() {
        let g = Laplace2d::new(5, 3);
        validate_rows(&g, 0..g.dim(), true);
    }

    #[test]
    fn laplace3d_valid_and_symmetric() {
        let g = Laplace3d::new(3, 4, 3);
        assert_eq!(g.dim(), 36);
        validate_rows(&g, 0..g.dim(), true);
        // Interior point (x=1, y=1, z=1) has the full 7-point star.
        let r = g.row_vec(12 + 3 + 1);
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn degenerate_1d_cases() {
        let g = Laplace2d::new(6, 1);
        validate_rows(&g, 0..g.dim(), true);
        assert_eq!(g.row_vec(0).len(), 2);
        assert_eq!(g.row_vec(3).len(), 3);
    }
}
