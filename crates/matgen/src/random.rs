//! Seeded random symmetric band matrices, generated on the fly.
//!
//! Symmetry without materialization: whether the unordered pair `(i, j)`
//! is a nonzero — and its value — is a pure hash of `(min, max, seed)`,
//! so row `i` and row `j` independently agree on the entry.

use crate::{RowEntry, RowGen};

/// Random symmetric matrix with entries confined to a band.
#[derive(Debug, Clone)]
pub struct RandomSym {
    n: u64,
    /// Half-bandwidth: entries satisfy `|i − j| ≤ bandwidth`.
    pub bandwidth: u64,
    /// Fill probability for each in-band off-diagonal pair.
    pub density: f64,
    /// Hash seed.
    pub seed: u64,
    /// Value added to every diagonal entry (diagonal dominance knob).
    pub diag_shift: f64,
}

impl RandomSym {
    /// `n × n` random symmetric matrix.
    pub fn new(n: u64, bandwidth: u64, density: f64, seed: u64) -> Self {
        assert!(n >= 1);
        assert!((0.0..=1.0).contains(&density));
        Self { n, bandwidth, density, seed, diag_shift: 0.0 }
    }

    /// Add `s` to every diagonal entry.
    pub fn with_diag_shift(mut self, s: f64) -> Self {
        self.diag_shift = s;
        self
    }

    fn pair_hash(&self, i: u64, j: u64) -> u64 {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn u01(&self, h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn entry(&self, i: u64, j: u64) -> Option<f64> {
        let h = self.pair_hash(i, j);
        if i == j {
            return Some(self.u01(h) - 0.5 + self.diag_shift);
        }
        if self.u01(h) < self.density {
            // Value from a second hash round, in [-0.5, 0.5).
            Some(self.u01(h.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(1)) - 0.5)
        } else {
            None
        }
    }
}

impl RowGen for RandomSym {
    fn dim(&self) -> u64 {
        self.n
    }

    fn max_row_entries(&self) -> usize {
        (2 * self.bandwidth + 1) as usize
    }

    fn row(&self, row: u64, out: &mut Vec<RowEntry>) {
        out.clear();
        let lo = row.saturating_sub(self.bandwidth);
        let hi = (row + self.bandwidth).min(self.n - 1);
        for j in lo..=hi {
            if let Some(v) = self.entry(row, j) {
                out.push(RowEntry { col: j, val: v });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_rows;

    #[test]
    fn symmetric_and_valid() {
        let g = RandomSym::new(64, 5, 0.5, 1234).with_diag_shift(4.0);
        validate_rows(&g, 0..g.dim(), true);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = RandomSym::new(100, 8, 0.3, 9);
        let b = RandomSym::new(100, 8, 0.3, 9);
        for i in (0..100).step_by(7) {
            assert_eq!(a.row_vec(i), b.row_vec(i));
        }
    }

    #[test]
    fn density_controls_fill() {
        let sparse = RandomSym::new(400, 10, 0.1, 5);
        let dense = RandomSym::new(400, 10, 0.9, 5);
        let count = |g: &RandomSym| -> usize { (0..400).map(|i| g.row_vec(i).len()).sum() };
        assert!(count(&dense) > 2 * count(&sparse));
    }

    #[test]
    fn diagonal_always_present() {
        let g = RandomSym::new(32, 3, 0.0, 77);
        for i in 0..32 {
            let r = g.row_vec(i);
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].col, i);
        }
    }
}
