//! Property tests: every generator produces valid, symmetric rows for
//! arbitrary geometries, and generation is deterministic.

use proptest::prelude::*;

use ft_matgen::graphene::Graphene;
use ft_matgen::random::RandomSym;
use ft_matgen::spectra::ToeplitzTridiag;
use ft_matgen::stencil::{Laplace2d, Laplace3d};
use ft_matgen::{validate_rows, RowGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn graphene_always_valid(
        lx in 1u64..10,
        ly in 1u64..10,
        nnn in any::<bool>(),
        periodic in any::<bool>(),
        disorder in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut g = Graphene::new(lx, ly).with_disorder(disorder, seed).with_periodic(periodic);
        if nnn {
            g = g.with_nnn(-0.2);
        }
        validate_rows(&g, 0..g.dim(), true);
    }

    #[test]
    fn stencils_always_valid(nx in 1u64..12, ny in 1u64..12, nz in 1u64..6) {
        let g2 = Laplace2d::new(nx, ny);
        validate_rows(&g2, 0..g2.dim(), true);
        let g3 = Laplace3d::new(nx, ny, nz);
        validate_rows(&g3, 0..g3.dim(), true);
    }

    #[test]
    fn random_sym_valid_and_deterministic(
        n in 1u64..200,
        bw in 0u64..12,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = RandomSym::new(n, bw, density, seed);
        validate_rows(&g, 0..g.dim().min(64), true);
        let h = RandomSym::new(n, bw, density, seed);
        for i in (0..n).step_by(17) {
            prop_assert_eq!(g.row_vec(i), h.row_vec(i));
        }
    }

    /// Toeplitz eigenvalues stay within the Gershgorin disc.
    #[test]
    fn toeplitz_gershgorin(n in 1u64..80, a in -5.0f64..5.0, b in -3.0f64..3.0) {
        let t = ToeplitzTridiag::new(n, a, b);
        validate_rows(&t, 0..t.dim(), true);
        for l in t.eigenvalues() {
            prop_assert!(l >= a - 2.0 * b.abs() - 1e-9);
            prop_assert!(l <= a + 2.0 * b.abs() + 1e-9);
        }
    }
}
