//! Compressed sparse row storage and the local SpMV kernel.

/// CSR matrix over a local index space. Column indices address either the
/// local vector chunk or the halo buffer, depending on which of the two
/// split matrices this is.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    /// Row pointer array, `nrows + 1` entries.
    pub row_ptr: Vec<usize>,
    /// Column indices, ascending within each row.
    pub cols: Vec<u32>,
    /// Values, parallel to `cols`.
    pub vals: Vec<f64>,
    /// Column-space dimension (bounds-checked in `validate`).
    pub ncols: usize,
}

impl Csr {
    /// An empty matrix with `nrows` rows over `ncols` columns.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { row_ptr: vec![0; nrows + 1], cols: Vec::new(), vals: Vec::new(), ncols }
    }

    /// Build from per-row `(col, val)` lists (each sorted by column).
    pub fn from_rows(rows: &[Vec<(u32, f64)>], ncols: usize) -> Self {
        let mut m = Self::empty(rows.len(), ncols);
        m.cols.reserve(rows.iter().map(Vec::len).sum());
        m.vals.reserve(m.cols.capacity());
        for (i, r) in rows.iter().enumerate() {
            for &(c, v) in r {
                m.cols.push(c);
                m.vals.push(v);
            }
            m.row_ptr[i + 1] = m.cols.len();
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The `(col, val)` entries of one row.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.cols[lo..hi].iter().copied().zip(self.vals[lo..hi].iter().copied())
    }

    /// Check structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate(&self) {
        assert!(!self.row_ptr.is_empty(), "row_ptr must have nrows+1 entries");
        assert_eq!(self.row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*self.row_ptr.last().unwrap(), self.cols.len(), "row_ptr end");
        assert_eq!(self.cols.len(), self.vals.len(), "cols/vals length");
        for w in self.row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be non-decreasing");
        }
        for i in 0..self.nrows() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for w in self.cols[lo..hi].windows(2) {
                assert!(w[0] < w[1], "row {i}: columns must be strictly ascending");
            }
            for &c in &self.cols[lo..hi] {
                assert!((c as usize) < self.ncols, "row {i}: column {c} out of bounds");
            }
        }
    }

    /// `y += A·x` over this matrix's column space.
    #[allow(clippy::needless_range_loop)] // hot kernel, explicit indexing
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y.len(), self.nrows());
        for i in 0..self.nrows() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y[i] += acc;
        }
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.spmv_add(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        Csr::from_rows(&[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)]], 3)
    }

    #[test]
    fn structure_and_validate() {
        let m = sample();
        m.validate();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, -1.0, 4.0];
        let mut y = vec![0.0; 2];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![6.0, -3.0]);
        m.spmv_add(&x, &mut y);
        assert_eq!(y, vec![12.0, -6.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_rows(&[vec![], vec![(0, 1.0)], vec![]], 2);
        m.validate();
        let mut y = vec![9.0; 3];
        m.spmv(&[5.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn validate_catches_bad_column() {
        let m = Csr::from_rows(&[vec![(5, 1.0)]], 3);
        m.validate();
    }
}
