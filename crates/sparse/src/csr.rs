//! Compressed sparse row storage and the local SpMV kernels.
//!
//! Kernel variants and their correctness contracts (the conformance
//! suite in `tests/conformance.rs` enforces them):
//!
//! | variant                               | contract vs [`Csr::spmv`] |
//! |---------------------------------------|---------------------------|
//! | [`Csr::spmv_threaded`]                | bitwise identical         |
//! | [`Csr::spmv_blocked`] (cache-blocked) | bitwise identical         |
//! | [`Csr::spmv_simd`]                    | ULP-bounded ([`crate::simd::simd_ulp_bound`]) |
//! | [`Csr::spmv_simd_threaded`]           | bitwise identical to [`Csr::spmv_simd`] |
//!
//! The SIMD variant splits each row's reduction over [`crate::simd::LANES`]
//! accumulators (reduced in a fixed tree), which reorders the additions —
//! the one reordering in the whole family, and the reason its contract is
//! an ULP bound rather than bit equality. Everything else preserves the
//! sequential per-row addition order exactly.

use crate::simd::{F64x4, LANES};

/// Column width of one cache block of `x` in the blocked kernels:
/// 2048 f64s = 16 KiB, comfortably inside L1d alongside the row tile's
/// accumulators and cursors.
pub const DEFAULT_COL_BLOCK: usize = 2048;

/// Rows per tile of the blocked kernels (bounds the accumulator/cursor
/// scratch: 512 rows × 16 B = 8 KiB).
const ROW_TILE: usize = 512;

/// CSR matrix over a local index space. Column indices address either the
/// local vector chunk or the halo buffer, depending on which of the two
/// split matrices this is.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    /// Row pointer array, `nrows + 1` entries.
    pub row_ptr: Vec<usize>,
    /// Column indices, ascending within each row.
    pub cols: Vec<u32>,
    /// Values, parallel to `cols`.
    pub vals: Vec<f64>,
    /// Column-space dimension (bounds-checked in `validate`).
    pub ncols: usize,
}

impl Csr {
    /// An empty matrix with `nrows` rows over `ncols` columns.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { row_ptr: vec![0; nrows + 1], cols: Vec::new(), vals: Vec::new(), ncols }
    }

    /// Build from per-row `(col, val)` lists (each sorted by column).
    pub fn from_rows(rows: &[Vec<(u32, f64)>], ncols: usize) -> Self {
        let mut m = Self::empty(rows.len(), ncols);
        m.cols.reserve(rows.iter().map(Vec::len).sum());
        m.vals.reserve(m.cols.capacity());
        for (i, r) in rows.iter().enumerate() {
            for &(c, v) in r {
                m.cols.push(c);
                m.vals.push(v);
            }
            m.row_ptr[i + 1] = m.cols.len();
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The `(col, val)` entries of one row.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.cols[lo..hi].iter().copied().zip(self.vals[lo..hi].iter().copied())
    }

    /// Check structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate(&self) {
        assert!(!self.row_ptr.is_empty(), "row_ptr must have nrows+1 entries");
        assert_eq!(self.row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*self.row_ptr.last().unwrap(), self.cols.len(), "row_ptr end");
        assert_eq!(self.cols.len(), self.vals.len(), "cols/vals length");
        for w in self.row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be non-decreasing");
        }
        for i in 0..self.nrows() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for w in self.cols[lo..hi].windows(2) {
                assert!(w[0] < w[1], "row {i}: columns must be strictly ascending");
            }
            for &c in &self.cols[lo..hi] {
                assert!((c as usize) < self.ncols, "row {i}: column {c} out of bounds");
            }
        }
    }

    /// `y += A·x` over this matrix's column space.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows());
        self.spmv_add_block(x, y, 0..self.nrows());
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.spmv_add(x, y);
    }

    /// The row-block worker both spMVM entry points and the threaded
    /// paths funnel into: `y_block[i - rows.start] += (A·x)[i]` for `i`
    /// in `rows`.
    fn spmv_add_block(&self, x: &[f64], y_block: &mut [f64], rows: std::ops::Range<usize>) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y_block.len(), rows.len());
        let start = rows.start;
        for i in rows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y_block[i - start] += acc;
        }
    }

    /// The SIMD row worker: each row's reduction runs over [`LANES`]
    /// independent accumulators (entry `k` of the row lands in lane
    /// `k mod LANES` via full quads + a scalar remainder), reduced by the
    /// fixed tree `(l0 + l1) + (l2 + l3)`. Deterministic — the lane
    /// assignment depends only on the matrix — but *reordered* relative
    /// to the sequential sum, hence the ULP-bound contract.
    fn spmv_add_simd_block(&self, x: &[f64], y_block: &mut [f64], rows: std::ops::Range<usize>) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y_block.len(), rows.len());
        let start = rows.start;
        for i in rows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = F64x4::zero();
            let mut k = lo;
            while k + LANES <= hi {
                let v = F64x4::from_array([
                    self.vals[k],
                    self.vals[k + 1],
                    self.vals[k + 2],
                    self.vals[k + 3],
                ]);
                let xs = F64x4::from_array([
                    x[self.cols[k] as usize],
                    x[self.cols[k + 1] as usize],
                    x[self.cols[k + 2] as usize],
                    x[self.cols[k + 3] as usize],
                ]);
                acc.mul_acc(v, xs);
                k += LANES;
            }
            let mut lanes = acc.to_array();
            for (lane, kk) in (k..hi).enumerate() {
                lanes[lane] += self.vals[kk] * x[self.cols[kk] as usize];
            }
            y_block[i - start] += F64x4::from_array(lanes).reduce_tree();
        }
    }

    /// `y += A·x` with the lane-split SIMD kernel. ULP-bounded against
    /// [`Csr::spmv_add`] (see [`crate::simd::simd_ulp_bound`]); bitwise
    /// reproducible run to run and across SIMD backends.
    pub fn spmv_add_simd(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows());
        self.spmv_add_simd_block(x, y, 0..self.nrows());
    }

    /// `y = A·x`, SIMD; same contract as [`Csr::spmv_add_simd`].
    pub fn spmv_simd(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.spmv_add_simd(x, y);
    }

    /// `y += A·x` with column-blocked traversal: the columns are walked
    /// in blocks of `col_block` so the active window of `x` stays in
    /// cache, with rows tiled so the per-row carry accumulators stay in
    /// L1 too. Each row's terms are still accumulated in ascending column
    /// order into a private accumulator added to `y` once — bitwise
    /// identical to [`Csr::spmv_add`].
    pub fn spmv_add_blocked_with(&self, x: &[f64], y: &mut [f64], col_block: usize) {
        assert!(col_block >= 1, "column block must be positive");
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y.len(), self.nrows());
        let nrows = self.nrows();
        let scratch = ROW_TILE.min(nrows);
        let mut acc = vec![0.0f64; scratch];
        let mut cur = vec![0usize; scratch];
        let mut tile_start = 0usize;
        while tile_start < nrows {
            let tile_end = (tile_start + ROW_TILE).min(nrows);
            let tl = tile_end - tile_start;
            acc[..tl].fill(0.0);
            for (t, slot) in cur[..tl].iter_mut().enumerate() {
                *slot = self.row_ptr[tile_start + t];
            }
            let mut col_start = 0usize;
            while col_start < self.ncols {
                let col_end = (col_start + col_block).min(self.ncols);
                for t in 0..tl {
                    let hi = self.row_ptr[tile_start + t + 1];
                    let mut k = cur[t];
                    while k < hi && (self.cols[k] as usize) < col_end {
                        acc[t] += self.vals[k] * x[self.cols[k] as usize];
                        k += 1;
                    }
                    cur[t] = k;
                }
                col_start = col_end;
            }
            for (t, &a) in acc[..tl].iter().enumerate() {
                y[tile_start + t] += a;
            }
            tile_start = tile_end;
        }
    }

    /// `y += A·x`, cache-blocked with [`DEFAULT_COL_BLOCK`]; bitwise
    /// identical to [`Csr::spmv_add`].
    pub fn spmv_add_blocked(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_add_blocked_with(x, y, DEFAULT_COL_BLOCK);
    }

    /// `y = A·x`, cache-blocked; bitwise identical to [`Csr::spmv`].
    pub fn spmv_blocked(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.spmv_add_blocked(x, y);
    }

    /// `y += A·x` with up to `threads` scoped worker threads. Row blocks
    /// are nnz-balanced (each thread gets a contiguous run of rows with
    /// roughly equal stored entries); every row's accumulation runs in the
    /// same order on exactly one thread, so the result is bitwise
    /// identical to [`Csr::spmv_add`].
    pub fn spmv_add_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_add_threaded_impl(x, y, threads, false);
    }

    /// `y = A·x`, threaded; bitwise identical to [`Csr::spmv`].
    pub fn spmv_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        y.fill(0.0);
        self.spmv_add_threaded(x, y, threads);
    }

    /// `y += A·x`, threaded over the SIMD row kernel. The row cuts and
    /// per-row lane arithmetic are independent, so this is bitwise
    /// identical to [`Csr::spmv_add_simd`] (and thus ULP-bounded against
    /// the sequential kernel with the same stated bound).
    pub fn spmv_add_simd_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_add_threaded_impl(x, y, threads, true);
    }

    /// `y = A·x`, threaded SIMD; bitwise identical to [`Csr::spmv_simd`].
    pub fn spmv_simd_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        y.fill(0.0);
        self.spmv_add_simd_threaded(x, y, threads);
    }

    /// The row-blocked threading scaffold shared by the scalar and SIMD
    /// entry points; `simd` picks the per-block row kernel.
    fn spmv_add_threaded_impl(&self, x: &[f64], y: &mut [f64], threads: usize, simd: bool) {
        debug_assert_eq!(y.len(), self.nrows());
        let nrows = self.nrows();
        let threads = threads.clamp(1, nrows.max(1));
        let run = |y_block: &mut [f64], rows: std::ops::Range<usize>| {
            if simd {
                self.spmv_add_simd_block(x, y_block, rows);
            } else {
                self.spmv_add_block(x, y_block, rows);
            }
        };
        if threads <= 1 || nrows == 0 {
            return run(y, 0..nrows);
        }
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = y;
            let mut row_start = 0usize;
            for t in 0..threads {
                let row_end = if t + 1 == threads {
                    nrows
                } else {
                    // Cut where the nnz prefix crosses the next equal
                    // share, but always advance by at least one row.
                    let target = self.nnz() * (t + 1) / threads;
                    self.row_ptr.partition_point(|&p| p < target).clamp(row_start + 1, nrows)
                };
                let (block, tail) = rest.split_at_mut(row_end - row_start);
                rest = tail;
                let rows = row_start..row_end;
                s.spawn(move || run(block, rows));
                row_start = row_end;
                if row_start == nrows {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        Csr::from_rows(&[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)]], 3)
    }

    #[test]
    fn structure_and_validate() {
        let m = sample();
        m.validate();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, -1.0, 4.0];
        let mut y = vec![0.0; 2];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![6.0, -3.0]);
        m.spmv_add(&x, &mut y);
        assert_eq!(y, vec![12.0, -6.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_rows(&[vec![], vec![(0, 1.0)], vec![]], 2);
        m.validate();
        let mut y = vec![9.0; 3];
        m.spmv(&[5.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn validate_catches_bad_column() {
        let m = Csr::from_rows(&[vec![(5, 1.0)]], 3);
        m.validate();
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        // Skewed nnz distribution to exercise the balanced row cuts.
        let rows: Vec<Vec<(u32, f64)>> = (0..37)
            .map(|i| {
                (0..(i % 9))
                    .map(|j| (((i * 7 + j * 3) % 20) as u32, 0.1 * (i + j) as f64))
                    .collect::<Vec<_>>()
            })
            .map(|mut r: Vec<(u32, f64)>| {
                r.sort_by_key(|&(c, _)| c);
                r.dedup_by_key(|e| e.0);
                r
            })
            .collect();
        let m = Csr::from_rows(&rows, 20);
        m.validate();
        let x: Vec<f64> = (0..20).map(|i| (f64::from(i) * 0.71).cos()).collect();
        let mut want = vec![1.0; m.nrows()];
        m.spmv_add(&x, &mut want);
        for threads in [1, 2, 3, 8, 64] {
            let mut y = vec![1.0; m.nrows()];
            m.spmv_add_threaded(&x, &mut y, threads);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
        // Zero-row matrix: nothing to do on any thread count.
        let empty = Csr::empty(0, 4);
        let mut y: Vec<f64> = Vec::new();
        empty.spmv_threaded(&[0.0; 4], &mut y, 4);
        assert!(y.is_empty());
    }

    /// A ragged deterministic matrix + vector for the variant tests.
    fn ragged(nrows: usize, ncols: usize) -> (Csr, Vec<f64>) {
        let rows: Vec<Vec<(u32, f64)>> = (0..nrows)
            .map(|i| {
                let mut r: Vec<(u32, f64)> = (0..(i % 11))
                    .map(|j| (((i * 5 + j * 7) % ncols) as u32, 0.3 * (i + 2 * j) as f64 - 1.0))
                    .collect();
                r.sort_by_key(|&(c, _)| c);
                r.dedup_by_key(|e| e.0);
                r
            })
            .collect();
        let m = Csr::from_rows(&rows, ncols);
        m.validate();
        let x: Vec<f64> = (0..ncols).map(|i| (f64::from(i as u32) * 0.31).sin()).collect();
        (m, x)
    }

    #[test]
    fn blocked_matches_sequential_bitwise() {
        let (m, x) = ragged(53, 17);
        let mut want = vec![0.5; m.nrows()];
        m.spmv_add(&x, &mut want);
        // Tiny column blocks force many partial passes per row.
        for cb in [1, 2, 3, 7, 17, 4096] {
            let mut y = vec![0.5; m.nrows()];
            m.spmv_add_blocked_with(&x, &mut y, cb);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "col_block={cb}"
            );
        }
        let mut y = vec![9.0; m.nrows()];
        m.spmv_blocked(&x, &mut y);
        let mut want = vec![0.0; m.nrows()];
        m.spmv(&x, &mut want);
        assert_eq!(want, y);
    }

    #[test]
    fn simd_is_ulp_bounded_and_deterministic() {
        use crate::simd::{row_cond, simd_ulp_bound, ulp_diff, ulp_eq};
        let (m, x) = ragged(61, 23);
        let mut seq = vec![0.0; m.nrows()];
        m.spmv(&x, &mut seq);
        let mut simd = vec![0.0; m.nrows()];
        m.spmv_simd(&x, &mut simd);
        for i in 0..m.nrows() {
            let abs: f64 = m.row(i).map(|(c, v)| (v * x[c as usize]).abs()).sum();
            let nnz = m.row_ptr[i + 1] - m.row_ptr[i];
            let bound = simd_ulp_bound(nnz, row_cond(abs, seq[i]));
            assert!(
                ulp_eq(seq[i], simd[i], bound),
                "row {i}: {} vs {} ({} ulps, bound {bound})",
                seq[i],
                simd[i],
                ulp_diff(seq[i], simd[i])
            );
        }
        // The lane split is deterministic: re-running and threading over
        // it reproduce the exact bits.
        for threads in [1, 2, 7] {
            let mut again = vec![0.0; m.nrows()];
            m.spmv_simd_threaded(&x, &mut again, threads);
            assert_eq!(
                simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn simd_handles_empty_and_short_rows() {
        // Rows shorter than a quad exercise the pure-remainder path.
        let m = Csr::from_rows(&[vec![], vec![(0, 2.0)], vec![(1, 3.0), (2, 4.0)]], 3);
        let x = [1.0, -1.0, 2.0];
        let mut y = vec![7.0; 3];
        m.spmv_simd(&x, &mut y);
        assert_eq!(y, vec![0.0, 2.0, 5.0]);
        m.spmv_add_simd(&x, &mut y);
        assert_eq!(y, vec![0.0, 4.0, 10.0]);
    }
}
