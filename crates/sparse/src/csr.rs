//! Compressed sparse row storage and the local SpMV kernel.

/// CSR matrix over a local index space. Column indices address either the
/// local vector chunk or the halo buffer, depending on which of the two
/// split matrices this is.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    /// Row pointer array, `nrows + 1` entries.
    pub row_ptr: Vec<usize>,
    /// Column indices, ascending within each row.
    pub cols: Vec<u32>,
    /// Values, parallel to `cols`.
    pub vals: Vec<f64>,
    /// Column-space dimension (bounds-checked in `validate`).
    pub ncols: usize,
}

impl Csr {
    /// An empty matrix with `nrows` rows over `ncols` columns.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { row_ptr: vec![0; nrows + 1], cols: Vec::new(), vals: Vec::new(), ncols }
    }

    /// Build from per-row `(col, val)` lists (each sorted by column).
    pub fn from_rows(rows: &[Vec<(u32, f64)>], ncols: usize) -> Self {
        let mut m = Self::empty(rows.len(), ncols);
        m.cols.reserve(rows.iter().map(Vec::len).sum());
        m.vals.reserve(m.cols.capacity());
        for (i, r) in rows.iter().enumerate() {
            for &(c, v) in r {
                m.cols.push(c);
                m.vals.push(v);
            }
            m.row_ptr[i + 1] = m.cols.len();
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The `(col, val)` entries of one row.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.cols[lo..hi].iter().copied().zip(self.vals[lo..hi].iter().copied())
    }

    /// Check structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate(&self) {
        assert!(!self.row_ptr.is_empty(), "row_ptr must have nrows+1 entries");
        assert_eq!(self.row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*self.row_ptr.last().unwrap(), self.cols.len(), "row_ptr end");
        assert_eq!(self.cols.len(), self.vals.len(), "cols/vals length");
        for w in self.row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be non-decreasing");
        }
        for i in 0..self.nrows() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for w in self.cols[lo..hi].windows(2) {
                assert!(w[0] < w[1], "row {i}: columns must be strictly ascending");
            }
            for &c in &self.cols[lo..hi] {
                assert!((c as usize) < self.ncols, "row {i}: column {c} out of bounds");
            }
        }
    }

    /// `y += A·x` over this matrix's column space.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows());
        self.spmv_add_block(x, y, 0..self.nrows());
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.spmv_add(x, y);
    }

    /// The row-block worker both spMVM entry points and the threaded
    /// paths funnel into: `y_block[i - rows.start] += (A·x)[i]` for `i`
    /// in `rows`.
    fn spmv_add_block(&self, x: &[f64], y_block: &mut [f64], rows: std::ops::Range<usize>) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y_block.len(), rows.len());
        let start = rows.start;
        for i in rows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y_block[i - start] += acc;
        }
    }

    /// `y += A·x` with up to `threads` scoped worker threads. Row blocks
    /// are nnz-balanced (each thread gets a contiguous run of rows with
    /// roughly equal stored entries); every row's accumulation runs in the
    /// same order on exactly one thread, so the result is bitwise
    /// identical to [`Csr::spmv_add`].
    pub fn spmv_add_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        debug_assert_eq!(y.len(), self.nrows());
        let nrows = self.nrows();
        let threads = threads.clamp(1, nrows.max(1));
        if threads <= 1 || nrows == 0 {
            return self.spmv_add_block(x, y, 0..nrows);
        }
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = y;
            let mut row_start = 0usize;
            for t in 0..threads {
                let row_end = if t + 1 == threads {
                    nrows
                } else {
                    // Cut where the nnz prefix crosses the next equal
                    // share, but always advance by at least one row.
                    let target = self.nnz() * (t + 1) / threads;
                    self.row_ptr.partition_point(|&p| p < target).clamp(row_start + 1, nrows)
                };
                let (block, tail) = rest.split_at_mut(row_end - row_start);
                rest = tail;
                let rows = row_start..row_end;
                s.spawn(move || self.spmv_add_block(x, block, rows));
                row_start = row_end;
                if row_start == nrows {
                    break;
                }
            }
        });
    }

    /// `y = A·x`, threaded; bitwise identical to [`Csr::spmv`].
    pub fn spmv_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        y.fill(0.0);
        self.spmv_add_threaded(x, y, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        Csr::from_rows(&[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)]], 3)
    }

    #[test]
    fn structure_and_validate() {
        let m = sample();
        m.validate();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, -1.0, 4.0];
        let mut y = vec![0.0; 2];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![6.0, -3.0]);
        m.spmv_add(&x, &mut y);
        assert_eq!(y, vec![12.0, -6.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_rows(&[vec![], vec![(0, 1.0)], vec![]], 2);
        m.validate();
        let mut y = vec![9.0; 3];
        m.spmv(&[5.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn validate_catches_bad_column() {
        let m = Csr::from_rows(&[vec![(5, 1.0)]], 3);
        m.validate();
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        // Skewed nnz distribution to exercise the balanced row cuts.
        let rows: Vec<Vec<(u32, f64)>> = (0..37)
            .map(|i| {
                (0..(i % 9))
                    .map(|j| (((i * 7 + j * 3) % 20) as u32, 0.1 * (i + j) as f64))
                    .collect::<Vec<_>>()
            })
            .map(|mut r: Vec<(u32, f64)>| {
                r.sort_by_key(|&(c, _)| c);
                r.dedup_by_key(|e| e.0);
                r
            })
            .collect();
        let m = Csr::from_rows(&rows, 20);
        m.validate();
        let x: Vec<f64> = (0..20).map(|i| (f64::from(i) * 0.71).cos()).collect();
        let mut want = vec![1.0; m.nrows()];
        m.spmv_add(&x, &mut want);
        for threads in [1, 2, 3, 8, 64] {
            let mut y = vec![1.0; m.nrows()];
            m.spmv_add_threaded(&x, &mut y, threads);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
        // Zero-row matrix: nothing to do on any thread count.
        let empty = Csr::empty(0, 4);
        let mut y: Vec<f64> = Vec::new();
        empty.spmv_threaded(&[0.0; 4], &mut y, 4);
        assert!(y.is_empty());
    }
}
