#![cfg_attr(feature = "portable-simd", feature(portable_simd))]
//! # ft-sparse — distributed spMVM with fault-aware one-sided halo exchange
//!
//! The paper's application substrate (§V): a sparse matrix–vector
//! multiplication library in the GHOST style, adapted for fault
//! tolerance. The matrix is row-block distributed; each process splits its
//! chunk into a **local part** (columns it owns) and a **remote part**
//! (columns owned by others). A one-time **pre-processing** stage
//! determines which right-hand-side entries each process needs, exchanges
//! those index lists, and fixes, for every pair of partners, where in the
//! receiver's halo segment the sender's values land. Before every spMVM,
//! partners *push* the needed RHS values with `write_notify` — pure
//! one-sided communication.
//!
//! Fault-tolerance hooks, as the paper describes:
//!
//! * every blocking call goes through the [`ft_core::HealthWatch`]
//!   wrappers, so a failure acknowledgment interrupts the exchange;
//! * the communication plan is a plain value ([`plan::CommPlan`]) with a
//!   byte codec, checkpointed *once* after pre-processing so a rescue
//!   process resumes "without having to perform the pre-processing step
//!   again";
//! * partners are addressed by **application rank** through the driver's
//!   rank map, so replacing a failed process by its rescue requires no
//!   plan surgery at all — the map update *is* the paper's "refreshes its
//!   list of communication partners".

pub mod csr;
pub mod dist;
pub mod halo;
pub mod partition;
pub mod plan;
pub mod sell;
pub mod simd;

pub use csr::Csr;
pub use dist::{det_allreduce_sum, DistMatrix, KernelPolicy, KernelStats};
pub use halo::{HaloStats, PendingExchange, SpmvComm};
pub use partition::RowPartition;
pub use plan::CommPlan;
pub use sell::SellCSigma;
pub use simd::{row_cond, simd_ulp_bound, ulp_diff, ulp_eq};
