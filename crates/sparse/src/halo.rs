//! The per-iteration halo exchange over one-sided `write_notify`.
//!
//! Senders *push*: each rank gathers the RHS values its partners need
//! into a staging segment and `write_notify`s them into the partners'
//! halo segments, tagging the notification with the iteration number.
//! Receivers wait for one notification per incoming block, check the tag
//! (stale tags from before a recovery are discarded), and read the halo.
//!
//! Synchronization note: a sender may only overwrite a receiver's halo
//! block for iteration `k+1` after the receiver has consumed iteration
//! `k`. In the Lanczos loop this is guaranteed for free by the two
//! allreduces that follow every spMVM; applications without a natural
//! collective per iteration must add one (see the heat example).

use std::sync::atomic::{AtomicU64, Ordering};

use ft_core::{FtCtx, FtResult};
use ft_gaspi::{bytes, GaspiProc, GaspiResult, SegId};

use crate::plan::CommPlan;

/// Point-in-time halo-exchange counters for one rank, carried out of the
/// rank thread by application summaries and merged into the job-wide
/// telemetry report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Completed halo exchanges (one per spMVM iteration).
    pub exchanges: u64,
    /// Stale notifications discarded (tags from pre-recovery traffic).
    pub stale_drops: u64,
}

impl HaloStats {
    /// Accumulate `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &HaloStats) {
        self.exchanges += other.exchanges;
        self.stale_drops += other.stale_drops;
    }
}

/// The communication state of one rank's spMVM: two segments and the
/// staging layout.
#[derive(Debug)]
pub struct SpmvComm {
    /// Halo segment id (partners write into it).
    pub seg_halo: SegId,
    /// Staging segment id (we gather outgoing values here).
    pub seg_stage: SegId,
    /// Queue for the halo writes.
    pub queue: u16,
    /// Per-send staging offsets (slots).
    stage_offsets: Vec<usize>,
    /// Completed exchanges (telemetry).
    exchanges: AtomicU64,
    /// Stale notification tags dropped (telemetry).
    stale_drops: AtomicU64,
}

impl SpmvComm {
    /// Create the halo and staging segments for `plan`.
    pub fn new(
        proc: &GaspiProc,
        plan: &CommPlan,
        seg_halo: SegId,
        seg_stage: SegId,
        queue: u16,
    ) -> GaspiResult<Self> {
        let mut stage_offsets = Vec::with_capacity(plan.sends.len());
        let mut off = 0usize;
        for s in &plan.sends {
            stage_offsets.push(off);
            off += s.local_rows.len();
        }
        proc.segment_create(seg_halo, 8 * plan.halo_len.max(1))?;
        proc.segment_create(seg_stage, 8 * off.max(1))?;
        Ok(Self {
            seg_halo,
            seg_stage,
            queue,
            stage_offsets,
            exchanges: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
        })
    }

    /// Point-in-time readout of this rank's exchange counters.
    pub fn stats(&self) -> HaloStats {
        HaloStats {
            exchanges: self.exchanges.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
        }
    }

    /// Notification tag for an iteration (non-zero as GASPI requires).
    pub fn tag_for_iter(iter: u64) -> u32 {
        (iter as u32).wrapping_add(1).max(1)
    }

    /// Push our values, await our partners', and read the halo into
    /// `halo_out`. `x_local` is this rank's vector chunk; `tag` must be
    /// [`SpmvComm::tag_for_iter`] of the current iteration on every rank.
    pub fn exchange(
        &self,
        ctx: &FtCtx,
        plan: &CommPlan,
        x_local: &[f64],
        tag: u32,
        halo_out: &mut Vec<f64>,
    ) -> FtResult<()> {
        let proc = &ctx.proc;
        // Gather and push to every partner.
        for (send, &off) in plan.sends.iter().zip(&self.stage_offsets) {
            proc.with_segment_mut(self.seg_stage, |b| {
                for (k, &li) in send.local_rows.iter().enumerate() {
                    bytes::put_f64(b, 8 * (off + k), x_local[li as usize]);
                }
            })?;
            let dst = ctx.gaspi_of(send.to);
            proc.write_notify(
                self.seg_stage,
                8 * off,
                dst,
                self.seg_halo,
                8 * send.dest_offset,
                8 * send.local_rows.len(),
                plan.me, // receiver keys the notification by *sender* app rank
                tag,
                self.queue,
            )?;
        }
        // Await one tagged notification per incoming block; drop stale
        // tags left over from pre-recovery traffic.
        for recv in &plan.recvs {
            loop {
                ctx.notify_waitsome_ft(self.seg_halo, recv.from, 1)?;
                let v = proc.notify_reset(self.seg_halo, recv.from)?;
                if v == tag {
                    break;
                }
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Read the full halo.
        halo_out.resize(plan.halo_len, 0.0);
        proc.with_segment(self.seg_halo, |b| {
            for (i, h) in halo_out.iter_mut().enumerate() {
                *h = bytes::get_f64(b, 8 * i);
            }
        })?;
        // Flush our writes before the iteration's collectives.
        ctx.wait_ft(self.queue)?;
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Clear all halo notifications — part of post-recovery rewiring, so
    /// no pre-failure notification can satisfy a post-restore wait.
    pub fn reset_notifications(&self, proc: &GaspiProc, plan: &CommPlan) -> GaspiResult<()> {
        for from in 0..plan.nparts {
            let _ = proc.notify_reset(self.seg_halo, from)?;
        }
        Ok(())
    }

    /// Full post-recovery rewire: drop stale notifications *and* the halo
    /// queue's failure records (writes posted to the now-dead partner
    /// completed as broken; that failure has been acknowledged and must
    /// not poison the next `wait`).
    pub fn rewire(&self, proc: &GaspiProc, plan: &CommPlan) -> GaspiResult<()> {
        self.reset_notifications(proc, plan)?;
        proc.queue_purge(self.queue, ft_gaspi::Timeout::Ms(200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_tags_are_nonzero_and_distinct() {
        assert_eq!(SpmvComm::tag_for_iter(0), 1);
        assert_eq!(SpmvComm::tag_for_iter(1), 2);
        assert_ne!(SpmvComm::tag_for_iter(7), SpmvComm::tag_for_iter(8));
        // Wraparound still never zero.
        assert!(SpmvComm::tag_for_iter(u64::from(u32::MAX)) >= 1);
    }
}
