//! The per-iteration halo exchange over one-sided `write_notify`, as a
//! split-phase (post/wait) pair so halo flight hides behind local compute.
//!
//! Senders *push*: each rank gathers the RHS values its partners need
//! into a staging segment and `write_notify`s them into the partners'
//! halo segments, tagging the notification with the iteration number —
//! that is [`SpmvComm::post`]. Receivers then run the local half of the
//! spMVM (`a_loc·x`, which needs no halo data) before [`SpmvComm::wait`]
//! blocks for one notification per incoming block, checks the tag (stale
//! tags from before a recovery are discarded), and reads the halo. The
//! solver loop is therefore
//!
//! ```text
//! post(k) → spmv_local → wait(k) → spmv_remote_add → collectives(k)
//! ```
//!
//! and the exchange only stalls for however much of the flight time the
//! local product did not cover. [`SpmvComm::exchange`] (post immediately
//! followed by wait) remains for callers with no compute to overlap.
//!
//! Synchronization note: a sender may only overwrite a receiver's halo
//! block for iteration `k+1` after the receiver has consumed iteration
//! `k`. Split-phase does not weaken this: `post(k+1)` happens after the
//! iteration-`k` collectives, which happen after every rank's `wait(k)`.
//! In the Lanczos loop the two allreduces that follow every spMVM provide
//! the collective for free; applications without a natural per-iteration
//! collective must add one (see the heat example's residual allreduce).
//!
//! Recovery interacts with the split phase in one place: a failure
//! signalled between `post` and `wait` abandons the pending exchange
//! (dropping the [`PendingExchange`] token is fine — it holds no
//! resources), the rewire resets all halo notifications and purges the
//! queue's failure records, and the collective restore barrier keeps any
//! survivor from re-posting before all partners finished rewiring. A
//! straggler notification that still lands after the reset carries a
//! pre-rollback iteration tag and is discarded by the next `wait`'s
//! stale-tag loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ft_core::{FtCtx, FtResult};
use ft_gaspi::{bytes, GaspiProc, GaspiResult, SegId};

use crate::plan::CommPlan;

/// Point-in-time halo-exchange counters for one rank, carried out of the
/// rank thread by application summaries and merged into the job-wide
/// telemetry report (the `spmv_overlap` family).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Completed halo exchanges (one per spMVM iteration).
    pub exchanges: u64,
    /// Posted sends-phases (≥ `exchanges`; the surplus is exchanges
    /// abandoned by a failure between post and wait).
    pub posts: u64,
    /// Stale notifications discarded (tags from pre-recovery traffic).
    pub stale_drops: u64,
    /// Total nanoseconds between `post` returning and `wait` being
    /// entered — the window in which halo flight was hidden behind
    /// compute.
    pub overlap_ns: u64,
    /// Total nanoseconds `wait` spent blocked for notifications — the
    /// part of the flight time the overlap did *not* cover.
    pub wait_stall_ns: u64,
}

impl HaloStats {
    /// Accumulate `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &HaloStats) {
        self.exchanges += other.exchanges;
        self.posts += other.posts;
        self.stale_drops += other.stale_drops;
        self.overlap_ns += other.overlap_ns;
        self.wait_stall_ns += other.wait_stall_ns;
    }

    /// Counter delta since `earlier` (saturating, so a counter reset
    /// never produces a bogus huge delta).
    pub fn since(&self, earlier: &HaloStats) -> HaloStats {
        HaloStats {
            exchanges: self.exchanges.saturating_sub(earlier.exchanges),
            posts: self.posts.saturating_sub(earlier.posts),
            stale_drops: self.stale_drops.saturating_sub(earlier.stale_drops),
            overlap_ns: self.overlap_ns.saturating_sub(earlier.overlap_ns),
            wait_stall_ns: self.wait_stall_ns.saturating_sub(earlier.wait_stall_ns),
        }
    }

    /// Fraction of the exchange window spent computing rather than
    /// stalled: `overlap / (overlap + stall)`. 1.0 means the halo was
    /// always ready when `wait` ran; 0.0 means nothing was hidden (the
    /// synchronous regime). Reports 1.0 when no time was observed at all.
    pub fn overlap_efficiency(&self) -> f64 {
        let window = self.overlap_ns + self.wait_stall_ns;
        if window == 0 {
            return 1.0;
        }
        self.overlap_ns as f64 / window as f64
    }
}

/// Token for a posted-but-not-yet-awaited halo exchange, returned by
/// [`SpmvComm::post`] and consumed by [`SpmvComm::wait`].
///
/// Holds no GASPI resources: dropping it (e.g. when a failure signal
/// unwinds the iteration between post and wait) abandons the exchange,
/// and the recovery rewire cleans up whatever the abandoned writes left
/// behind.
#[must_use = "a posted exchange must be awaited with SpmvComm::wait (or deliberately abandoned on recovery)"]
#[derive(Debug)]
pub struct PendingExchange {
    /// The iteration tag the matching `wait` must see.
    tag: u32,
    /// When `post` returned, for the overlap telemetry.
    posted_at: Instant,
}

impl PendingExchange {
    /// The iteration tag this exchange was posted with.
    pub fn tag(&self) -> u32 {
        self.tag
    }
}

/// The communication state of one rank's spMVM: two segments and the
/// staging layout.
#[derive(Debug)]
pub struct SpmvComm {
    /// Halo segment id (partners write into it).
    pub seg_halo: SegId,
    /// Staging segment id (we gather outgoing values here).
    pub seg_stage: SegId,
    /// Queue for the halo writes.
    pub queue: u16,
    /// Per-send staging offsets (slots).
    stage_offsets: Vec<usize>,
    /// Completed exchanges (telemetry).
    exchanges: AtomicU64,
    /// Posted send-phases (telemetry).
    posts: AtomicU64,
    /// Stale notification tags dropped (telemetry).
    stale_drops: AtomicU64,
    /// Nanoseconds between post and wait (telemetry).
    overlap_ns: AtomicU64,
    /// Nanoseconds blocked inside wait (telemetry).
    wait_stall_ns: AtomicU64,
}

impl SpmvComm {
    /// Create the halo and staging segments for `plan`.
    pub fn new(
        proc: &GaspiProc,
        plan: &CommPlan,
        seg_halo: SegId,
        seg_stage: SegId,
        queue: u16,
    ) -> GaspiResult<Self> {
        let mut stage_offsets = Vec::with_capacity(plan.sends.len());
        let mut off = 0usize;
        for s in &plan.sends {
            stage_offsets.push(off);
            off += s.local_rows.len();
        }
        proc.segment_create(seg_halo, 8 * plan.halo_len.max(1))?;
        proc.segment_create(seg_stage, 8 * off.max(1))?;
        Ok(Self {
            seg_halo,
            seg_stage,
            queue,
            stage_offsets,
            exchanges: AtomicU64::new(0),
            posts: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            overlap_ns: AtomicU64::new(0),
            wait_stall_ns: AtomicU64::new(0),
        })
    }

    /// Point-in-time readout of this rank's exchange counters.
    pub fn stats(&self) -> HaloStats {
        HaloStats {
            exchanges: self.exchanges.load(Ordering::Relaxed),
            posts: self.posts.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            overlap_ns: self.overlap_ns.load(Ordering::Relaxed),
            wait_stall_ns: self.wait_stall_ns.load(Ordering::Relaxed),
        }
    }

    /// Notification tag for an iteration (non-zero as GASPI requires).
    pub fn tag_for_iter(iter: u64) -> u32 {
        (iter as u32).wrapping_add(1).max(1)
    }

    /// Phase one: gather our partners' values into the staging segment
    /// and `write_notify` every outgoing block. Returns immediately with
    /// a [`PendingExchange`] token; the caller should now run the local
    /// half of the spMVM before handing the token to [`SpmvComm::wait`].
    ///
    /// `x_local` is this rank's vector chunk; `tag` must be
    /// [`SpmvComm::tag_for_iter`] of the current iteration on every rank.
    pub fn post(
        &self,
        ctx: &FtCtx,
        plan: &CommPlan,
        x_local: &[f64],
        tag: u32,
    ) -> FtResult<PendingExchange> {
        let proc = &ctx.proc;
        for (send, &off) in plan.sends.iter().zip(&self.stage_offsets) {
            proc.with_segment_mut(self.seg_stage, |b| {
                for (k, &li) in send.local_rows.iter().enumerate() {
                    bytes::put_f64(b, 8 * (off + k), x_local[li as usize]);
                }
            })?;
            let dst = ctx.gaspi_of(send.to);
            proc.write_notify(
                self.seg_stage,
                8 * off,
                dst,
                self.seg_halo,
                8 * send.dest_offset,
                8 * send.local_rows.len(),
                plan.me, // receiver keys the notification by *sender* app rank
                tag,
                self.queue,
            )?;
        }
        self.posts.fetch_add(1, Ordering::Relaxed);
        Ok(PendingExchange { tag, posted_at: Instant::now() })
    }

    /// Phase two: await one tagged notification per incoming block
    /// (dropping stale tags left over from pre-recovery traffic), read
    /// the halo into `halo_out`, and flush our own writes.
    pub fn wait(
        &self,
        ctx: &FtCtx,
        plan: &CommPlan,
        pending: PendingExchange,
        halo_out: &mut Vec<f64>,
    ) -> FtResult<()> {
        let entered = Instant::now();
        self.overlap_ns.fetch_add(
            entered.duration_since(pending.posted_at).as_nanos() as u64,
            Ordering::Relaxed,
        );
        let proc = &ctx.proc;
        for recv in &plan.recvs {
            loop {
                ctx.notify_waitsome_ft(self.seg_halo, recv.from, 1)?;
                let v = proc.notify_reset(self.seg_halo, recv.from)?;
                if v == pending.tag {
                    break;
                }
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Read the full halo.
        halo_out.resize(plan.halo_len, 0.0);
        proc.with_segment(self.seg_halo, |b| {
            for (i, h) in halo_out.iter_mut().enumerate() {
                *h = bytes::get_f64(b, 8 * i);
            }
        })?;
        // Flush our writes before the iteration's collectives.
        ctx.wait_ft(self.queue)?;
        self.wait_stall_ns.fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Synchronous exchange: [`SpmvComm::post`] immediately followed by
    /// [`SpmvComm::wait`], for callers with no compute to overlap (and
    /// for the pre-split-phase harnesses).
    pub fn exchange(
        &self,
        ctx: &FtCtx,
        plan: &CommPlan,
        x_local: &[f64],
        tag: u32,
        halo_out: &mut Vec<f64>,
    ) -> FtResult<()> {
        let pending = self.post(ctx, plan, x_local, tag)?;
        self.wait(ctx, plan, pending, halo_out)
    }

    /// Clear all halo notifications — part of post-recovery rewiring, so
    /// no pre-failure notification can satisfy a post-restore wait.
    pub fn reset_notifications(&self, proc: &GaspiProc, plan: &CommPlan) -> GaspiResult<()> {
        for from in 0..plan.nparts {
            let _ = proc.notify_reset(self.seg_halo, from)?;
        }
        Ok(())
    }

    /// Full post-recovery rewire: drop stale notifications *and* the halo
    /// queue's failure records (writes posted to the now-dead partner
    /// completed as broken; that failure has been acknowledged and must
    /// not poison the next `wait`). Any exchange posted before the
    /// failure is implicitly abandoned — its [`PendingExchange`] was
    /// dropped with the unwound iteration.
    pub fn rewire(&self, proc: &GaspiProc, plan: &CommPlan) -> GaspiResult<()> {
        self.reset_notifications(proc, plan)?;
        proc.queue_purge(self.queue, ft_gaspi::Timeout::Ms(200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_tags_are_nonzero_and_distinct() {
        assert_eq!(SpmvComm::tag_for_iter(0), 1);
        assert_eq!(SpmvComm::tag_for_iter(1), 2);
        assert_ne!(SpmvComm::tag_for_iter(7), SpmvComm::tag_for_iter(8));
        // Wraparound still never zero.
        assert!(SpmvComm::tag_for_iter(u64::from(u32::MAX)) >= 1);
    }

    #[test]
    fn stats_merge_since_and_efficiency() {
        let mut a = HaloStats {
            exchanges: 10,
            posts: 11,
            stale_drops: 1,
            overlap_ns: 900,
            wait_stall_ns: 100,
        };
        let b =
            HaloStats { exchanges: 5, posts: 5, stale_drops: 0, overlap_ns: 100, wait_stall_ns: 0 };
        a.merge(&b);
        assert_eq!(a.exchanges, 15);
        assert_eq!(a.posts, 16);
        assert_eq!(a.overlap_ns, 1000);
        let d = a.since(&b);
        assert_eq!(d.exchanges, 10);
        assert_eq!(d.overlap_ns, 900);
        // since() saturates across counter resets.
        assert_eq!(b.since(&a).exchanges, 0);
        assert!((a.overlap_efficiency() - 1000.0 / 1100.0).abs() < 1e-12);
        assert_eq!(HaloStats::default().overlap_efficiency(), 1.0);
    }
}
