//! The spMVM communication plan and its one-time negotiation.
//!
//! "In the pre-processing stage, each process determines the indices of
//! the RHS that it needs from other processes. These indices are
//! communicated to the respective processes, who then write (via
//! one-sided GASPI communication) the RHS values of those indices before
//! every spMVM iteration." (§V)
//!
//! The plan is deliberately a plain value with a byte codec: it is
//! checkpointed once after pre-processing, and a rescue process restores
//! it instead of re-running the exchange. Partners are stored as
//! *application* ranks; the driver's rank map supplies the current GASPI
//! rank at send time, which is how "every non-failing process refreshes
//! its list of communication partners" reduces to a map update.

use std::collections::BTreeMap;

use ft_checkpoint::{Dec, Enc};
use ft_cluster::Rank;
use ft_gaspi::{GaspiError, GaspiProc, GaspiResult, Timeout};

/// Incoming halo block: `cols` (global indices, ascending) arrive from
/// `from` at `halo_offset` in the halo segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvSpec {
    /// Sending application rank.
    pub from: u32,
    /// First halo-slot index of this block.
    pub halo_offset: usize,
    /// Global column indices, ascending.
    pub cols: Vec<u64>,
}

/// Outgoing halo block: our local rows `local_rows` go to `to`'s halo
/// segment at `dest_offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSpec {
    /// Receiving application rank.
    pub to: u32,
    /// First halo-slot index on the receiver.
    pub dest_offset: usize,
    /// Local row indices (relative to our chunk) to gather, in the
    /// receiver's column order.
    pub local_rows: Vec<u32>,
}

/// A rank's complete spMVM communication plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommPlan {
    /// This plan's application rank.
    pub me: u32,
    /// Total application ranks.
    pub nparts: u32,
    /// Halo buffer length in slots.
    pub halo_len: usize,
    /// Incoming blocks, ascending by `from`.
    pub recvs: Vec<RecvSpec>,
    /// Outgoing blocks, ascending by `to`.
    pub sends: Vec<SendSpec>,
}

impl CommPlan {
    /// Build the receive side from the needed-columns map (owner →
    /// ascending global columns). Halo slots are assigned in ascending
    /// owner order.
    pub fn receives_from_needs(me: u32, nparts: u32, needed: &BTreeMap<u32, Vec<u64>>) -> Self {
        let mut recvs = Vec::with_capacity(needed.len());
        let mut off = 0usize;
        for (&from, cols) in needed {
            assert_ne!(from, me, "needed set must not contain own columns");
            if cols.is_empty() {
                continue;
            }
            recvs.push(RecvSpec { from, halo_offset: off, cols: cols.clone() });
            off += recvs.last().unwrap().cols.len();
        }
        Self { me, nparts, halo_len: off, recvs, sends: Vec::new() }
    }

    /// Halo slot of a global column, if it is in the plan.
    pub fn halo_slot(&self, col: u64) -> Option<usize> {
        for r in &self.recvs {
            if let Ok(i) = r.cols.binary_search(&col) {
                return Some(r.halo_offset + i);
            }
        }
        None
    }

    /// Total values this rank pushes per iteration.
    pub fn send_volume(&self) -> usize {
        self.sends.iter().map(|s| s.local_rows.len()).sum()
    }

    /// The one-time index exchange (pre-processing). Every rank sends its
    /// request (possibly empty) to every other rank via passive messages
    /// and converts the requests it receives into send specs.
    ///
    /// `gaspi_of` translates application ranks to GASPI ranks;
    /// `my_row_start` anchors the conversion from global columns to local
    /// row indices.
    pub fn negotiate(
        mut self,
        proc: &GaspiProc,
        gaspi_of: &dyn Fn(u32) -> Rank,
        my_row_start: u64,
        timeout: Timeout,
    ) -> GaspiResult<Self> {
        let me = self.me;
        let nparts = self.nparts;
        // Round 1: one request to every other rank.
        for to_app in 0..nparts {
            if to_app == me {
                continue;
            }
            let mut e = Enc::new();
            e.u32(me);
            match self.recvs.iter().find(|r| r.from == to_app) {
                Some(r) => {
                    e.u64(r.halo_offset as u64);
                    e.u64s(&r.cols);
                }
                None => {
                    e.u64(0);
                    e.u64s(&[]);
                }
            }
            proc.passive_send(gaspi_of(to_app), e.finish(), timeout)?;
        }
        // Round 2: collect exactly nparts−1 requests.
        let mut sends = Vec::new();
        for _ in 0..nparts - 1 {
            let (_, payload) = proc.passive_receive(timeout)?;
            let mut d = Dec::new(&payload);
            let from_app = d.u32().map_err(|_| GaspiError::InvalidArg("malformed plan request"))?;
            let dest_offset =
                d.u64().map_err(|_| GaspiError::InvalidArg("malformed plan request"))? as usize;
            let cols = d.u64s().map_err(|_| GaspiError::InvalidArg("malformed plan request"))?;
            if cols.is_empty() {
                continue;
            }
            let local_rows = cols
                .iter()
                .map(|&c| {
                    c.checked_sub(my_row_start)
                        .map(|l| l as u32)
                        .ok_or(GaspiError::InvalidArg("requested column not owned"))
                })
                .collect::<GaspiResult<Vec<u32>>>()?;
            sends.push(SendSpec { to: from_app, dest_offset, local_rows });
        }
        sends.sort_by_key(|s| s.to);
        self.sends = sends;
        Ok(self)
    }

    /// Byte encoding for the one-time plan checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.me).u32(self.nparts).u64(self.halo_len as u64);
        e.u64(self.recvs.len() as u64);
        for r in &self.recvs {
            e.u32(r.from).u64(r.halo_offset as u64).u64s(&r.cols);
        }
        e.u64(self.sends.len() as u64);
        for s in &self.sends {
            e.u32(s.to).u64(s.dest_offset as u64).u32s(&s.local_rows);
        }
        e.finish()
    }

    /// Decode a checkpointed plan.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut d = Dec::new(buf);
        let me = d.u32().ok()?;
        let nparts = d.u32().ok()?;
        let halo_len = d.u64().ok()? as usize;
        let nr = d.u64().ok()?;
        let mut recvs = Vec::with_capacity(nr as usize);
        for _ in 0..nr {
            let from = d.u32().ok()?;
            let halo_offset = d.u64().ok()? as usize;
            let cols = d.u64s().ok()?;
            recvs.push(RecvSpec { from, halo_offset, cols });
        }
        let ns = d.u64().ok()?;
        let mut sends = Vec::with_capacity(ns as usize);
        for _ in 0..ns {
            let to = d.u32().ok()?;
            let dest_offset = d.u64().ok()? as usize;
            let local_rows = d.u32s().ok()?;
            sends.push(SendSpec { to, dest_offset, local_rows });
        }
        d.expect_end().ok()?;
        Some(Self { me, nparts, halo_len, recvs, sends })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_gaspi::{GaspiConfig, GaspiWorld, RankOutcome};

    #[test]
    fn receives_layout_is_dense_and_ordered() {
        let mut needed = BTreeMap::new();
        needed.insert(0u32, vec![1u64, 5]);
        needed.insert(2u32, vec![40u64]);
        needed.insert(3u32, vec![]);
        let p = CommPlan::receives_from_needs(1, 4, &needed);
        assert_eq!(p.halo_len, 3);
        assert_eq!(p.recvs.len(), 2);
        assert_eq!(p.recvs[0].halo_offset, 0);
        assert_eq!(p.recvs[1].halo_offset, 2);
        assert_eq!(p.halo_slot(5), Some(1));
        assert_eq!(p.halo_slot(40), Some(2));
        assert_eq!(p.halo_slot(7), None);
    }

    #[test]
    fn codec_roundtrip() {
        let plan = CommPlan {
            me: 2,
            nparts: 4,
            halo_len: 5,
            recvs: vec![RecvSpec { from: 0, halo_offset: 0, cols: vec![3, 9, 11] }],
            sends: vec![
                SendSpec { to: 1, dest_offset: 7, local_rows: vec![0, 4] },
                SendSpec { to: 3, dest_offset: 0, local_rows: vec![2] },
            ],
        };
        let buf = plan.encode();
        assert_eq!(CommPlan::decode(&buf), Some(plan));
        assert_eq!(CommPlan::decode(&buf[1..]), None);
    }

    /// Ring exchange: rank i needs the first row of rank (i+1) % n.
    #[test]
    fn negotiation_builds_matching_sends() {
        let n: u32 = 4;
        let rows_per = 10u64;
        let world = GaspiWorld::new(GaspiConfig::deterministic(n));
        let outs = world
            .launch(move |p| {
                let me = p.rank();
                let next = (me + 1) % n;
                let mut needed = BTreeMap::new();
                needed.insert(next, vec![u64::from(next) * rows_per]);
                let plan = CommPlan::receives_from_needs(me, n, &needed).negotiate(
                    &p,
                    &|a| a,
                    u64::from(me) * rows_per,
                    Timeout::Ms(5000),
                )?;
                Ok(plan)
            })
            .join();
        for (r, o) in outs.into_iter().enumerate() {
            let plan = match o {
                RankOutcome::Completed(p) => p,
                other => panic!("rank {r}: {other:?}"),
            };
            assert_eq!(plan.halo_len, 1);
            assert_eq!(plan.recvs.len(), 1);
            // The previous rank in the ring asks for our row 0.
            assert_eq!(plan.sends.len(), 1);
            let prev = ((r as u32) + n - 1) % n;
            assert_eq!(plan.sends[0].to, prev);
            assert_eq!(plan.sends[0].local_rows, vec![0]);
            assert_eq!(plan.sends[0].dest_offset, 0);
        }
    }
}
