//! Row-block partitioning across application ranks.

use std::ops::Range;

/// Contiguous row-block partition of `n` rows over `parts` application
/// ranks; the first `n % parts` ranks get one extra row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPartition {
    n: u64,
    parts: u32,
}

impl RowPartition {
    /// Partition `n` rows over `parts` ranks.
    pub fn new(n: u64, parts: u32) -> Self {
        assert!(parts >= 1);
        assert!(n >= u64::from(parts), "need at least one row per rank");
        Self { n, parts }
    }

    /// Global dimension.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of parts.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// Row range owned by `part`.
    pub fn range(&self, part: u32) -> Range<u64> {
        assert!(part < self.parts);
        let base = self.n / u64::from(self.parts);
        let extra = self.n % u64::from(self.parts);
        let p = u64::from(part);
        let start = p * base + p.min(extra);
        let len = base + u64::from(p < extra);
        start..start + len
    }

    /// Number of rows owned by `part`.
    pub fn len(&self, part: u32) -> usize {
        let r = self.range(part);
        (r.end - r.start) as usize
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The application rank owning `row`.
    pub fn owner(&self, row: u64) -> u32 {
        assert!(row < self.n);
        let base = self.n / u64::from(self.parts);
        let extra = self.n % u64::from(self.parts);
        let fat = (base + 1) * extra; // rows held by the first `extra` parts
        if row < fat {
            (row / (base + 1)) as u32
        } else {
            (extra + (row - fat) / base) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = RowPartition::new(12, 4);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..12);
        assert_eq!(p.len(1), 3);
    }

    #[test]
    fn uneven_split_front_loaded() {
        let p = RowPartition::new(10, 4); // 3,3,2,2
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(1), 3..6);
        assert_eq!(p.range(2), 6..8);
        assert_eq!(p.range(3), 8..10);
    }

    #[test]
    fn ranges_tile_and_owner_agrees() {
        for (n, parts) in [(10u64, 4u32), (17, 5), (64, 8), (7, 7), (100, 3)] {
            let p = RowPartition::new(n, parts);
            let mut covered = 0;
            for part in 0..parts {
                let r = p.range(part);
                assert_eq!(r.start, covered, "ranges must tile");
                covered = r.end;
                for row in r.clone() {
                    assert_eq!(p.owner(row), part, "owner({row}) with n={n}, parts={parts}");
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn rejects_more_parts_than_rows() {
        RowPartition::new(3, 4);
    }
}
