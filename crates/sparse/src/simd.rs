//! The SIMD lane abstraction and the ULP-bounded comparison layer.
//!
//! # Lane semantics (the correctness contract)
//!
//! Every vectorized kernel in this crate is written against `F64x4`
//! (crate-private):
//! four independent f64 lanes with *element-wise* IEEE-754 multiply and
//! add (never fused). Two backends implement it:
//!
//! * **portable SIMD** (`--features portable-simd`, nightly only):
//!   a thin wrapper over `std::simd::f64x4`;
//! * **scalar-unrolled fallback** (default, stable): `[f64; 4]` with
//!   element-wise loops, shaped so LLVM can auto-vectorize and the four
//!   accumulator chains break the sequential dependence even when it
//!   does not.
//!
//! Both backends perform *identical* IEEE arithmetic (same operations,
//! same order, no FMA contraction), so a kernel's result is **bitwise
//! identical across backends**. What can differ is the kernel's result
//! versus the *sequential* kernel's, and only where the kernel reorders
//! a reduction:
//!
//! * `SellCSigma::spmv_simd` vectorizes **across rows** (one chunk lane
//!   per SIMD lane) — every row's additions happen in the sequential
//!   order, so it is **bitwise identical** to `SellCSigma::spmv`.
//! * `Csr::spmv_simd` splits each row's reduction over [`LANES`]
//!   accumulators and reduces them in the fixed tree
//!   `(l0 + l1) + (l2 + l3)` — a genuine reordering, so agreement with
//!   `Csr::spmv` is **ULP-bounded**, not bitwise (see below).
//!
//! # The stated ULP bound
//!
//! For a row with `n` stored entries, both the sequential and the
//! lane-split summation of the terms `tⱼ = aᵢⱼ·xⱼ` have forward error at
//! most `(n−1)·u·Σ|tⱼ|` with `u = 2⁻⁵³` (the standard recursive-sum
//! bound; the lane-split order is just another summation tree over the
//! same terms). Their difference is therefore at most
//! `2·(n−1)·u·Σ|tⱼ| = 2·(n−1)·cond·u·|y|` where
//! `cond = Σ|tⱼ| / |y|` is the condition of the row sum. One ULP of `y`
//! is at least `u·|y|`, so the results differ by at most
//! `2·(n−1)·cond` ULPs. [`simd_ulp_bound`] returns `4·n·cond + 8`, a
//! safe ceiling of that bound (the slack covers the final `y += acc`
//! add and the `ulp(y) ∈ [u|y|, 2u|y|)` binade ambiguity).
//!
//! The bound — like any relative-error statement — is meaningful only
//! while intermediate sums stay finite: once a partial sum overflows or
//! a row mixes `±∞`, the two orders may legitimately produce different
//! non-finite results. What *is* guaranteed unconditionally is
//! containment: no variant ever reads a padded SELL slot or an entry
//! outside the row, so a NaN/Inf poisons exactly the rows whose stored
//! entries reference it (asserted by the float-edge tests).

/// SIMD width used by every vectorized kernel (f64 lanes).
pub const LANES: usize = 4;

/// Four f64 lanes with element-wise (never fused) IEEE arithmetic. See
/// the module docs for the backend-agreement contract.
#[derive(Debug, Clone, Copy)]
pub(crate) struct F64x4(Repr);

#[cfg(feature = "portable-simd")]
type Repr = std::simd::f64x4;
#[cfg(not(feature = "portable-simd"))]
type Repr = [f64; LANES];

impl F64x4 {
    /// All lanes zero.
    #[inline(always)]
    pub(crate) fn zero() -> Self {
        Self::from_array([0.0; LANES])
    }

    #[inline(always)]
    pub(crate) fn from_array(a: [f64; LANES]) -> Self {
        #[cfg(feature = "portable-simd")]
        {
            Self(std::simd::f64x4::from_array(a))
        }
        #[cfg(not(feature = "portable-simd"))]
        {
            Self(a)
        }
    }

    #[inline(always)]
    pub(crate) fn to_array(self) -> [f64; LANES] {
        #[cfg(feature = "portable-simd")]
        {
            self.0.to_array()
        }
        #[cfg(not(feature = "portable-simd"))]
        {
            self.0
        }
    }

    /// `self[l] += v[l] * x[l]` per lane — a separate multiply and add
    /// (no FMA), so both backends round identically.
    #[inline(always)]
    pub(crate) fn mul_acc(&mut self, v: Self, x: Self) {
        #[cfg(feature = "portable-simd")]
        {
            self.0 = v.0 * x.0 + self.0;
        }
        #[cfg(not(feature = "portable-simd"))]
        {
            for l in 0..LANES {
                self.0[l] += v.0[l] * x.0[l];
            }
        }
    }

    /// The fixed lane-reduction tree `(l0 + l1) + (l2 + l3)`.
    #[inline(always)]
    pub(crate) fn reduce_tree(self) -> f64 {
        let a = self.to_array();
        (a[0] + a[1]) + (a[2] + a[3])
    }
}

/// Map an f64 to a monotone integer key: `a < b` (as floats, with
/// `-0.0 < +0.0` collapsed) iff `key(a) < key(b)`. Infinities sit one
/// step past the largest finite values; NaN is handled by the callers.
fn ulp_key(x: f64) -> i128 {
    let b = x.to_bits() as i64;
    if b >= 0 {
        i128::from(b)
    } else {
        -i128::from(b & i64::MAX)
    }
}

/// Distance between `a` and `b` in units of representable f64 steps
/// ("ULPs" in the units-in-the-last-place sense across binades).
///
/// * `a == b` (including `+0.0` vs `-0.0`) → 0;
/// * both NaN → 0 (the values "agree" — used by the conformance suite
///   to accept NaN-for-NaN);
/// * exactly one NaN → `u64::MAX`;
/// * otherwise the number of representable values between them
///   (saturating), with infinities adjacent to the extreme finites.
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    match (a.is_nan(), b.is_nan()) {
        (true, true) => return 0,
        (true, false) | (false, true) => return u64::MAX,
        (false, false) => {}
    }
    let d = (ulp_key(a) - ulp_key(b)).unsigned_abs();
    u64::try_from(d).unwrap_or(u64::MAX)
}

/// Shared comparison helper of the kernel-conformance suite: `a` and `b`
/// agree to within `max_ulps` representable steps (see [`ulp_diff`] for
/// the NaN/zero conventions).
pub fn ulp_eq(a: f64, b: f64, max_ulps: u64) -> bool {
    ulp_diff(a, b) <= max_ulps
}

/// The stated conformance bound for the lane-split CSR SIMD kernel
/// versus the sequential one: `4·n·cond + 8` ULPs for a row with
/// `row_nnz` stored entries and row-sum condition `cond` (see the module
/// docs for the derivation; `cond ≤ 1` and non-finite `cond` are
/// clamped). [`row_cond`] computes `cond` from the term magnitudes.
pub fn simd_ulp_bound(row_nnz: usize, cond: f64) -> u64 {
    if !cond.is_finite() {
        return u64::MAX;
    }
    let b = 4.0 * row_nnz.max(1) as f64 * cond.max(1.0) + 8.0;
    if b >= u64::MAX as f64 {
        u64::MAX
    } else {
        b as u64
    }
}

/// Condition of a row sum: `Σ|tⱼ| / |y|` — 1.0 when nothing cancels,
/// growing as cancellation eats significant digits. `abs_sum` is the sum
/// of term magnitudes, `result` the rounded row sum. An all-zero row
/// conditions to 1.0; an exactly-cancelled nonzero row to `+∞` (the
/// bound then passes vacuously, which is the honest answer: no finite
/// ULP statement survives total cancellation).
pub fn row_cond(abs_sum: f64, result: f64) -> f64 {
    if abs_sum == 0.0 {
        return 1.0;
    }
    abs_sum / result.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(f64::NAN, f64::NAN), 0);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
        // Across zero: -min_positive .. +min_positive is two steps.
        assert_eq!(ulp_diff(f64::from_bits(1), -f64::from_bits(1)), 2);
        // Infinity is adjacent to MAX.
        assert_eq!(ulp_diff(f64::MAX, f64::INFINITY), 1);
        assert!(ulp_eq(1.0, 1.0 + f64::EPSILON, 8));
        assert!(!ulp_eq(1.0, 2.0, 8));
    }

    #[test]
    fn bound_scales_with_nnz_and_cond() {
        assert_eq!(simd_ulp_bound(1, 1.0), 12);
        assert!(simd_ulp_bound(100, 1.0) > simd_ulp_bound(10, 1.0));
        assert!(simd_ulp_bound(10, 50.0) > simd_ulp_bound(10, 1.0));
        assert_eq!(simd_ulp_bound(10, f64::INFINITY), u64::MAX);
        assert_eq!(simd_ulp_bound(0, 0.5), 12);
    }

    #[test]
    fn cond_of_cancellation() {
        assert_eq!(row_cond(0.0, 0.0), 1.0);
        assert_eq!(row_cond(2.0, 2.0), 1.0);
        assert_eq!(row_cond(2.0, 0.5), 4.0);
        assert!(row_cond(1.0, 0.0).is_infinite());
    }

    #[test]
    fn lanes_do_elementwise_ieee() {
        let mut acc = F64x4::zero();
        acc.mul_acc(F64x4::from_array([1.0, 2.0, 3.0, 4.0]), F64x4::from_array([0.5; LANES]));
        assert_eq!(acc.to_array(), [0.5, 1.0, 1.5, 2.0]);
        acc.mul_acc(F64x4::from_array([1.0; LANES]), F64x4::from_array([1.0, 0.0, 0.0, 0.0]));
        assert_eq!(acc.reduce_tree(), (1.5 + 1.0) + (1.5 + 2.0));
    }
}
