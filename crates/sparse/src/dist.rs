//! The distributed matrix: local/remote split and deterministic
//! reductions.

use std::collections::BTreeMap;

use ft_core::{FtCtx, FtResult};
use ft_gaspi::ReduceOp;
use ft_matgen::RowGen;

use crate::csr::Csr;
use crate::partition::RowPartition;
use crate::plan::CommPlan;

/// Which spMVM kernel family a [`DistMatrix`] dispatches to.
///
/// The kernels themselves are always compiled (the conformance suite
/// exercises every variant on every toolchain); the `simd` cargo feature
/// only changes what [`KernelPolicy::auto`] picks, i.e. what solvers get
/// by default. See `crate::simd` for the correctness contract: SELL SIMD
/// is bitwise identical to scalar, CSR SIMD is ULP-bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Sequential / threaded scalar kernels — bitwise-reproducible
    /// baseline.
    Scalar,
    /// Vectorized kernels ([`Csr::spmv_simd`], `SellCSigma::spmv_simd`):
    /// bitwise for SELL, ULP-bounded for CSR.
    Simd,
}

impl KernelPolicy {
    /// The build's default: [`KernelPolicy::Simd`] iff the crate was
    /// compiled with `--features simd`, else [`KernelPolicy::Scalar`].
    ///
    /// This is a *runtime* value on purpose: downstream crates must not
    /// gate tests on their own `cfg(feature = "simd")` (feature
    /// unification means the flag may be set on `ft-sparse` without
    /// being set on them) — they should branch on `KernelPolicy::auto()`
    /// instead.
    pub fn auto() -> Self {
        if cfg!(feature = "simd") {
            KernelPolicy::Simd
        } else {
            KernelPolicy::Scalar
        }
    }
}

/// Counters for raw spMVM kernel work: how many products ran, how long
/// they took, and how many flops they performed (2·nnz per product).
/// Filled by harnesses that time their kernel sections — like
/// [`crate::HaloStats`], this is per-rank data merged through application
/// summaries rather than sampled from the world.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Full `y = A·x` products executed.
    pub spmvs: u64,
    /// Wall time spent inside kernel code, nanoseconds.
    pub kernel_ns: u64,
    /// Floating-point operations performed (see
    /// [`DistMatrix::flops_per_spmv`]).
    pub flops: u64,
}

impl KernelStats {
    /// Accumulate another rank's (or another variant's) counters.
    pub fn merge(&mut self, other: &KernelStats) {
        self.spmvs += other.spmvs;
        self.kernel_ns += other.kernel_ns;
        self.flops += other.flops;
    }

    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            spmvs: self.spmvs.saturating_sub(earlier.spmvs),
            kernel_ns: self.kernel_ns.saturating_sub(earlier.kernel_ns),
            flops: self.flops.saturating_sub(earlier.flops),
        }
    }

    /// Sustained GFLOP/s over the recorded kernel time (flops per
    /// nanosecond); 0.0 when nothing was recorded.
    pub fn gflops(&self) -> f64 {
        if self.kernel_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.kernel_ns as f64
    }
}

/// One rank's chunk of a row-block-distributed sparse matrix, split into
/// the part whose columns are locally owned (`a_loc`, columns index the
/// local vector chunk) and the part whose columns live elsewhere
/// (`a_rem`, columns index the halo buffer) — the structure the paper's
/// spMVM library uses (§V).
#[derive(Debug, Clone)]
pub struct DistMatrix {
    /// The global partition.
    pub part: RowPartition,
    /// This chunk's application rank.
    pub me: u32,
    /// Local part: columns in `0..local_len`.
    pub a_loc: Csr,
    /// Remote part: columns in `0..plan.halo_len`.
    pub a_rem: Csr,
    /// The communication plan (receive side describes the halo layout).
    pub plan: CommPlan,
    /// Optional SELL-C-σ views of both parts (GHOST's kernel format);
    /// when present, [`DistMatrix::spmv`] uses them.
    pub sell: Option<(crate::sell::SellCSigma, crate::sell::SellCSigma)>,
    /// Kernel family the spmv entry points dispatch to; defaults to
    /// [`KernelPolicy::auto`] so solvers pick up the build's kernels
    /// unchanged.
    pub kernel: KernelPolicy,
}

impl DistMatrix {
    /// The needed-columns map for `me`: owner → ascending global columns
    /// (the input of pre-processing).
    pub fn needed_columns<G: RowGen + ?Sized>(
        gen: &G,
        part: &RowPartition,
        me: u32,
    ) -> BTreeMap<u32, Vec<u64>> {
        let my_rows = part.range(me);
        let mut needed: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        let mut buf = Vec::with_capacity(gen.max_row_entries());
        for row in my_rows.clone() {
            gen.row(row, &mut buf);
            for e in &buf {
                if !my_rows.contains(&e.col) {
                    needed.entry(part.owner(e.col)).or_default().push(e.col);
                }
            }
        }
        for cols in needed.values_mut() {
            cols.sort_unstable();
            cols.dedup();
        }
        needed
    }

    /// Build the split chunk from a generator and a finished plan. Works
    /// identically for the initial build (after negotiation) and for a
    /// rescue process that restored the plan from a checkpoint and
    /// regenerates the matrix chunk on the fly.
    pub fn assemble<G: RowGen + ?Sized>(
        gen: &G,
        part: RowPartition,
        me: u32,
        plan: CommPlan,
    ) -> Self {
        let my_rows = part.range(me);
        let local_len = part.len(me);
        let start = my_rows.start;
        let mut rows_loc: Vec<Vec<(u32, f64)>> = Vec::with_capacity(local_len);
        let mut rows_rem: Vec<Vec<(u32, f64)>> = Vec::with_capacity(local_len);
        let mut buf = Vec::with_capacity(gen.max_row_entries());
        for row in my_rows.clone() {
            gen.row(row, &mut buf);
            let mut rl = Vec::new();
            let mut rr = Vec::new();
            for e in &buf {
                if my_rows.contains(&e.col) {
                    rl.push(((e.col - start) as u32, e.val));
                } else {
                    let slot = plan
                        .halo_slot(e.col)
                        .expect("plan must cover every remote column of the chunk");
                    rr.push((slot as u32, e.val));
                }
            }
            // Halo slots are not globally ordered within a row; CSR wants
            // ascending columns.
            rr.sort_by_key(|&(c, _)| c);
            rows_loc.push(rl);
            rows_rem.push(rr);
        }
        let a_loc = Csr::from_rows(&rows_loc, local_len);
        // The true halo length — a halo-free rank gets an honest
        // zero-column remote part (a fake 1-column space used to trip the
        // kernels' `x.len() >= ncols` assertion on an empty halo buffer).
        let a_rem = Csr::from_rows(&rows_rem, plan.halo_len);
        Self { part, me, a_loc, a_rem, plan, sell: None, kernel: KernelPolicy::auto() }
    }

    /// Switch the local kernels to SELL-C-σ (bitwise-identical results;
    /// per-row addition order is preserved by construction).
    pub fn with_sell(mut self, c: usize, sigma: usize) -> Self {
        self.sell = Some((
            crate::sell::SellCSigma::from_csr(&self.a_loc, c, sigma),
            crate::sell::SellCSigma::from_csr(&self.a_rem, c, sigma),
        ));
        self
    }

    /// Override the kernel dispatch policy (tests pin
    /// [`KernelPolicy::Scalar`] to assert bitwise properties regardless
    /// of build features).
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }

    /// Rows owned locally.
    pub fn local_len(&self) -> usize {
        self.part.len(self.me)
    }

    /// Flops one full `y = A·x` of this chunk performs (2·nnz: one
    /// multiply and one add per stored entry) — the numerator of the
    /// bench harness's GFLOP/s column and of the telemetry kernel
    /// counters.
    pub fn flops_per_spmv(&self) -> u64 {
        2 * (self.a_loc.nnz() as u64 + self.a_rem.nnz() as u64)
    }

    /// `y = A·x` for this chunk, given the local vector chunk and the
    /// freshly exchanged halo values.
    ///
    /// Defined as exactly [`DistMatrix::spmv_local`] followed by
    /// [`DistMatrix::spmv_remote_add`], so a split-phase solver loop
    /// (`post → spmv_local → wait → spmv_remote_add`) produces bitwise
    /// the same result as the synchronous one.
    pub fn spmv(&self, x_local: &[f64], halo: &[f64], y: &mut [f64]) {
        self.spmv_local(x_local, y);
        self.spmv_remote_add(halo, y);
    }

    /// The local half of the product: `y = a_loc·x_local`. Needs no halo
    /// data, so it runs while the halo exchange is in flight.
    pub fn spmv_local(&self, x_local: &[f64], y: &mut [f64]) {
        match (&self.sell, self.kernel) {
            (Some((sl, _)), KernelPolicy::Scalar) => sl.spmv(x_local, y),
            (Some((sl, _)), KernelPolicy::Simd) => sl.spmv_simd(x_local, y),
            (None, KernelPolicy::Scalar) => self.a_loc.spmv(x_local, y),
            (None, KernelPolicy::Simd) => self.a_loc.spmv_simd(x_local, y),
        }
    }

    /// The remote half: `y += a_rem·halo`, run after the halo arrived.
    pub fn spmv_remote_add(&self, halo: &[f64], y: &mut [f64]) {
        if self.a_rem.nnz() == 0 {
            return;
        }
        match (&self.sell, self.kernel) {
            (Some((_, sr)), KernelPolicy::Scalar) => sr.spmv_add(halo, y),
            (Some((_, sr)), KernelPolicy::Simd) => sr.spmv_add_simd(halo, y),
            (None, KernelPolicy::Scalar) => self.a_rem.spmv_add(halo, y),
            (None, KernelPolicy::Simd) => self.a_rem.spmv_add_simd(halo, y),
        }
    }

    /// `y = A·x` with row-blocked scoped threads for both halves;
    /// bitwise identical to [`DistMatrix::spmv`].
    pub fn spmv_threaded(&self, x_local: &[f64], halo: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_local_threaded(x_local, y, threads);
        self.spmv_remote_add_threaded(halo, y, threads);
    }

    /// Threaded variant of [`DistMatrix::spmv_local`].
    pub fn spmv_local_threaded(&self, x_local: &[f64], y: &mut [f64], threads: usize) {
        match (&self.sell, self.kernel) {
            (Some((sl, _)), KernelPolicy::Scalar) => sl.spmv_threaded(x_local, y, threads),
            (Some((sl, _)), KernelPolicy::Simd) => sl.spmv_simd_threaded(x_local, y, threads),
            (None, KernelPolicy::Scalar) => self.a_loc.spmv_threaded(x_local, y, threads),
            (None, KernelPolicy::Simd) => self.a_loc.spmv_simd_threaded(x_local, y, threads),
        }
    }

    /// Threaded variant of [`DistMatrix::spmv_remote_add`].
    pub fn spmv_remote_add_threaded(&self, halo: &[f64], y: &mut [f64], threads: usize) {
        if self.a_rem.nnz() == 0 {
            return;
        }
        match (&self.sell, self.kernel) {
            (Some((_, sr)), KernelPolicy::Scalar) => sr.spmv_add_threaded(halo, y, threads),
            (Some((_, sr)), KernelPolicy::Simd) => sr.spmv_add_simd_threaded(halo, y, threads),
            (None, KernelPolicy::Scalar) => self.a_rem.spmv_add_threaded(halo, y, threads),
            (None, KernelPolicy::Simd) => self.a_rem.spmv_add_simd_threaded(halo, y, threads),
        }
    }
}

/// Deterministic (run-to-run and membership-order independent) global sum
/// over one value per application rank.
///
/// Each rank contributes its value in its own slot of a `nparts`-wide
/// buffer; the tree reduction only ever adds exact zeros to it, so the
/// slots arrive exactly; the final summation then runs in application-rank
/// order on every rank. A recovered run therefore reproduces the
/// failure-free run's floating-point results *bit for bit*, even though
/// the rebuilt group reduces in a different tree shape.
///
/// Falls back to a plain (order-dependent) allreduce when `nparts`
/// exceeds the GASPI 255-element buffer limit.
pub fn det_allreduce_sum(ctx: &FtCtx, value: f64) -> FtResult<f64> {
    let nparts = ctx.num_app_ranks() as usize;
    if nparts > ft_gaspi::ALLREDUCE_MAX_ELEMS {
        let s = ctx.allreduce_f64_ft(&[value], ReduceOp::Sum)?;
        return Ok(s[0]);
    }
    let mut buf = vec![0.0f64; nparts];
    buf[ctx.app_rank() as usize] = value;
    let out = ctx.allreduce_f64_ft(&buf, ReduceOp::Sum)?;
    Ok(out.into_iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_matgen::graphene::Graphene;
    use ft_matgen::spectra::ToeplitzTridiag;

    fn full_plan<G: RowGen>(gen: &G, part: &RowPartition, me: u32) -> CommPlan {
        let needed = DistMatrix::needed_columns(gen, part, me);
        CommPlan::receives_from_needs(me, part.parts(), &needed)
    }

    /// Distributed SpMV with manually filled halo must equal the global
    /// product.
    #[test]
    fn chunked_spmv_matches_global() {
        let gen = Graphene::new(4, 3).with_nnn(-0.2);
        let n = gen.dim();
        let parts = 3;
        let part = RowPartition::new(n, parts);
        // Global reference.
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_ref = vec![0.0; n as usize];
        for i in 0..n {
            for e in gen.row_vec(i) {
                y_ref[i as usize] += e.val * x[e.col as usize];
            }
        }
        for me in 0..parts {
            let plan = full_plan(&gen, &part, me);
            let dm = DistMatrix::assemble(&gen, part, me, plan);
            dm.a_loc.validate();
            dm.a_rem.validate();
            let r = part.range(me);
            let x_local: Vec<f64> = r.clone().map(|i| x[i as usize]).collect();
            // Fill the halo from the global vector via the plan layout.
            let mut halo = vec![0.0; dm.plan.halo_len];
            for recv in &dm.plan.recvs {
                for (k, &c) in recv.cols.iter().enumerate() {
                    halo[recv.halo_offset + k] = x[c as usize];
                }
            }
            let mut y = vec![0.0; dm.local_len()];
            dm.spmv(&x_local, &halo, &mut y);
            for (k, row) in r.enumerate() {
                assert!(
                    (y[k] - y_ref[row as usize]).abs() < 1e-12,
                    "row {row}: {} vs {}",
                    y[k],
                    y_ref[row as usize]
                );
            }
        }
    }

    #[test]
    fn needed_columns_are_remote_sorted_unique() {
        let gen = ToeplitzTridiag::new(30, 2.0, -1.0);
        let part = RowPartition::new(30, 3);
        let needed = DistMatrix::needed_columns(&gen, &part, 1);
        // Middle chunk (rows 10..20) touches rows 9 and 20.
        assert_eq!(needed.get(&0), Some(&vec![9u64]));
        assert_eq!(needed.get(&2), Some(&vec![20u64]));
        for (owner, cols) in &needed {
            for &c in cols {
                assert_eq!(part.owner(c), *owner);
                assert!(!part.range(1).contains(&c));
            }
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn no_remote_columns_means_empty_plan() {
        let gen = ToeplitzTridiag::new(10, 1.0, 0.5);
        let part = RowPartition::new(10, 1);
        let needed = DistMatrix::needed_columns(&gen, &part, 0);
        assert!(needed.is_empty());
        let plan = full_plan(&gen, &part, 0);
        assert_eq!(plan.halo_len, 0);
        let dm = DistMatrix::assemble(&gen, part, 0, plan);
        assert_eq!(dm.a_rem.nnz(), 0);
    }
}
