//! SELL-C-σ sparse storage — the format of the GHOST spMVM library the
//! paper's application builds on (Kreutzer et al., the paper's co-author
//! group).
//!
//! Rows are sorted by length within windows of σ rows, grouped into
//! chunks of C rows, and each chunk is stored column-major, padded to its
//! longest row — the layout that makes spMVM vectorizable on wide-SIMD
//! hardware. This implementation exists (a) for fidelity to the paper's
//! substrate and (b) to let the micro-benchmarks compare kernel formats;
//! the distributed layer works with either format since both consume the
//! same local/halo column spaces.

use crate::csr::Csr;

/// A SELL-C-σ matrix over the same column space as the [`Csr`] it was
/// built from.
#[derive(Debug, Clone)]
pub struct SellCSigma {
    /// Chunk height C.
    pub c: usize,
    /// Sorting window σ (a multiple of C).
    pub sigma: usize,
    /// Start of each chunk in `cols`/`vals`.
    chunk_ptr: Vec<usize>,
    /// Padded row length of each chunk.
    chunk_len: Vec<usize>,
    /// Column indices, chunk-by-chunk, column-major, padded.
    cols: Vec<u32>,
    /// Values, parallel to `cols` (padding is 0.0 so it never contributes).
    vals: Vec<f64>,
    /// `perm[k]` = original row index stored at sorted position `k`.
    perm: Vec<u32>,
    nrows: usize,
    ncols: usize,
}

impl SellCSigma {
    /// Convert from CSR with chunk height `c` and sorting window `sigma`
    /// (`sigma` is rounded up to a multiple of `c`; `sigma = 1` disables
    /// sorting).
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> Self {
        assert!(c >= 1, "chunk height must be positive");
        let nrows = a.nrows();
        let sigma = sigma.max(1).div_ceil(c) * c;
        // Sort rows by descending length within each σ-window.
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| {
                let r = r as usize;
                std::cmp::Reverse(a.row_ptr[r + 1] - a.row_ptr[r])
            });
        }
        let nchunks = nrows.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_len = Vec::with_capacity(nchunks);
        chunk_ptr.push(0);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for chunk in 0..nchunks {
            let rows: Vec<usize> =
                (chunk * c..((chunk + 1) * c).min(nrows)).map(|k| perm[k] as usize).collect();
            let width = rows.iter().map(|&r| a.row_ptr[r + 1] - a.row_ptr[r]).max().unwrap_or(0);
            chunk_len.push(width);
            // Column-major: entry j of every row in the chunk, then j+1...
            for j in 0..width {
                for lane in 0..c {
                    if let Some(&r) = rows.get(lane) {
                        let lo = a.row_ptr[r];
                        let hi = a.row_ptr[r + 1];
                        if lo + j < hi {
                            cols.push(a.cols[lo + j]);
                            vals.push(a.vals[lo + j]);
                            continue;
                        }
                    }
                    // Padding lane: column 0, value 0 (never contributes).
                    cols.push(0);
                    vals.push(0.0);
                }
            }
            chunk_ptr.push(cols.len());
        }
        Self { c, sigma, chunk_ptr, chunk_len, cols, vals, perm, nrows, ncols: a.ncols }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Stored entries including padding.
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Padding overhead: stored entries / real nonzeros (β ≥ 1; the
    /// SELL-C-σ papers call its inverse the chunk occupancy).
    pub fn padding_factor(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            return 1.0;
        }
        self.stored() as f64 / nnz as f64
    }

    /// `y = A·x` (same semantics as [`Csr::spmv`]).
    #[allow(clippy::needless_range_loop)] // hot kernel, explicit indexing
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        let nchunks = self.chunk_len.len();
        let mut acc = vec![0.0f64; self.c];
        for chunk in 0..nchunks {
            let width = self.chunk_len[chunk];
            let base = self.chunk_ptr[chunk];
            acc[..].fill(0.0);
            // Column-major sweep: the inner loop over lanes is the
            // SIMD-friendly one.
            for j in 0..width {
                let off = base + j * self.c;
                for lane in 0..self.c {
                    let idx = off + lane;
                    acc[lane] += self.vals[idx] * x[self.cols[idx] as usize];
                }
            }
            for lane in 0..self.c {
                let k = chunk * self.c + lane;
                if k < self.nrows {
                    y[self.perm[k] as usize] = acc[lane];
                }
            }
        }
    }

    /// `y += A·x`.
    #[allow(clippy::needless_range_loop)] // hot kernel, explicit indexing
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        let nchunks = self.chunk_len.len();
        let mut acc = vec![0.0f64; self.c];
        for chunk in 0..nchunks {
            let width = self.chunk_len[chunk];
            let base = self.chunk_ptr[chunk];
            acc[..].fill(0.0);
            for j in 0..width {
                let off = base + j * self.c;
                for lane in 0..self.c {
                    let idx = off + lane;
                    acc[lane] += self.vals[idx] * x[self.cols[idx] as usize];
                }
            }
            for lane in 0..self.c {
                let k = chunk * self.c + lane;
                if k < self.nrows {
                    y[self.perm[k] as usize] += acc[lane];
                }
            }
        }
    }

    /// Structural sanity checks (chunk bounds, permutation bijectivity).
    pub fn validate(&self) {
        assert_eq!(self.chunk_ptr.len(), self.chunk_len.len() + 1);
        assert_eq!(*self.chunk_ptr.last().unwrap(), self.cols.len());
        assert_eq!(self.cols.len(), self.vals.len());
        for (i, (&p, &w)) in self.chunk_ptr.iter().zip(&self.chunk_len).enumerate() {
            assert_eq!(self.chunk_ptr[i + 1] - p, w * self.c, "chunk {i} extent");
        }
        let mut seen = vec![false; self.nrows];
        for &r in &self.perm {
            assert!(!seen[r as usize], "permutation must be a bijection");
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for &c in &self.cols {
            assert!((c as usize) < self.ncols.max(1), "column {c} out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // Ragged rows to exercise padding and sorting.
        Csr::from_rows(
            &[
                vec![(0, 1.0)],
                vec![(0, 2.0), (1, 3.0), (3, 4.0)],
                vec![],
                vec![(2, 5.0), (3, 6.0)],
                vec![(1, 7.0)],
            ],
            4,
        )
    }

    fn dense_ref(a: &Csr, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        a.spmv(x, &mut y);
        y
    }

    #[test]
    fn matches_csr_for_various_c_sigma() {
        let a = sample();
        let x = [1.0, -2.0, 0.5, 3.0];
        let want = dense_ref(&a, &x);
        for (c, sigma) in [(1, 1), (2, 1), (2, 4), (4, 4), (8, 8), (3, 6)] {
            let s = SellCSigma::from_csr(&a, c, sigma);
            s.validate();
            let mut y = vec![0.0; a.nrows()];
            s.spmv(&x, &mut y);
            assert_eq!(y, want, "C={c} σ={sigma}");
        }
    }

    #[test]
    fn sorting_reduces_padding() {
        // One long row among short ones: with σ=1 (no sorting) every
        // chunk containing it pads heavily; σ=n groups long rows together.
        let rows: Vec<Vec<(u32, f64)>> = (0..32)
            .map(|i| {
                if i % 8 == 0 {
                    (0..16).map(|j| (j as u32, 1.0)).collect()
                } else {
                    vec![(0, 1.0)]
                }
            })
            .collect();
        let a = Csr::from_rows(&rows, 16);
        let unsorted = SellCSigma::from_csr(&a, 4, 1);
        let sorted = SellCSigma::from_csr(&a, 4, 32);
        assert!(
            sorted.stored() < unsorted.stored(),
            "σ-sorting must reduce padding: {} vs {}",
            sorted.stored(),
            unsorted.stored()
        );
        let x = vec![1.0; 16];
        let (mut y1, mut y2) = (vec![0.0; 32], vec![0.0; 32]);
        unsorted.spmv(&x, &mut y1);
        sorted.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_and_single_row_edge_cases() {
        let a = Csr::from_rows(&[vec![]], 1);
        let s = SellCSigma::from_csr(&a, 4, 4);
        s.validate();
        let mut y = vec![9.0];
        s.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![0.0]);

        let a = Csr::from_rows(&[vec![(0, 3.0)]], 1);
        let s = SellCSigma::from_csr(&a, 8, 16);
        let mut y = vec![0.0];
        s.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![6.0]);
    }

    #[test]
    fn padding_factor_accounting() {
        let a = sample();
        let s = SellCSigma::from_csr(&a, 2, 2);
        s.validate();
        assert!(s.padding_factor(a.nnz()) >= 1.0);
        // C=1 never pads.
        let s1 = SellCSigma::from_csr(&a, 1, 1);
        assert_eq!(s1.stored(), a.nnz());
        assert_eq!(s1.padding_factor(a.nnz()), 1.0);
    }
}
