//! SELL-C-σ sparse storage — the format of the GHOST spMVM library the
//! paper's application builds on (Kreutzer et al., the paper's co-author
//! group).
//!
//! Rows are sorted by length within windows of σ rows, grouped into
//! chunks of C rows, and each chunk is stored column-major, padded to its
//! longest row — the layout that makes spMVM vectorizable on wide-SIMD
//! hardware. This implementation exists (a) for fidelity to the paper's
//! substrate and (b) to let the micro-benchmarks compare kernel formats;
//! the distributed layer works with either format since both consume the
//! same local/halo column spaces.
//!
//! Two structural properties of the construction carry the kernels:
//!
//! * **Padding is inert.** Padded slots store `(col 0, val 0.0)` but are
//!   *never read*: because σ is a multiple of C, every chunk lies inside
//!   one sorting window, so lane lengths are non-increasing across a
//!   chunk and the padded lanes at column `j` form a contiguous tail the
//!   kernels skip. (Computing `0.0 * x[0]` instead would be wrong under
//!   IEEE-754 — a NaN or Inf in `x[0]` poisons every padded lane — and
//!   reads out of bounds when the column space is empty.)
//! * **σ-windows are permutation-local.** The row sort permutes indices
//!   only *within* each σ-window, so a block of whole windows writes a
//!   contiguous range of `y`. The threaded kernels split the chunk list
//!   at window boundaries and hand each thread a disjoint `&mut` slice —
//!   row-blocked parallelism without locks or unsafe code.

use crate::csr::Csr;
use crate::simd::{F64x4, LANES};

/// Lane accumulators up to this chunk height live on the stack; the spMVM
/// entry points only touch the heap for (unusual) larger C.
const ACC_STACK_LANES: usize = 32;

/// A SELL-C-σ matrix over the same column space as the [`Csr`] it was
/// built from.
#[derive(Debug, Clone)]
pub struct SellCSigma {
    /// Chunk height C.
    pub c: usize,
    /// Sorting window σ (a multiple of C).
    pub sigma: usize,
    /// Start of each chunk in `cols`/`vals`.
    chunk_ptr: Vec<usize>,
    /// Padded row length of each chunk.
    chunk_len: Vec<usize>,
    /// Entry count of each lane (`nchunks * c` entries, 0 for lanes past
    /// the last row); non-increasing within each chunk, which is what
    /// lets the kernels skip padded lanes entirely.
    lane_len: Vec<u32>,
    /// Column indices, chunk-by-chunk, column-major, padded.
    cols: Vec<u32>,
    /// Values, parallel to `cols` (padding slots are never read).
    vals: Vec<f64>,
    /// `perm[k]` = original row index stored at sorted position `k`.
    perm: Vec<u32>,
    nrows: usize,
    ncols: usize,
}

impl SellCSigma {
    /// Convert from CSR with chunk height `c` and sorting window `sigma`
    /// (`sigma` is rounded up to a multiple of `c`).
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> Self {
        assert!(c >= 1, "chunk height must be positive");
        let nrows = a.nrows();
        let sigma = sigma.max(1).div_ceil(c) * c;
        // Sort rows by descending length within each σ-window.
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| {
                let r = r as usize;
                std::cmp::Reverse(a.row_ptr[r + 1] - a.row_ptr[r])
            });
        }
        let nchunks = nrows.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_len = Vec::with_capacity(nchunks);
        let mut lane_len = Vec::with_capacity(nchunks * c);
        chunk_ptr.push(0);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for chunk in 0..nchunks {
            let rows: Vec<usize> =
                (chunk * c..((chunk + 1) * c).min(nrows)).map(|k| perm[k] as usize).collect();
            let width = rows.iter().map(|&r| a.row_ptr[r + 1] - a.row_ptr[r]).max().unwrap_or(0);
            chunk_len.push(width);
            for lane in 0..c {
                let len = rows.get(lane).map_or(0, |&r| a.row_ptr[r + 1] - a.row_ptr[r]);
                lane_len.push(len as u32);
            }
            // Column-major: entry j of every row in the chunk, then j+1...
            for j in 0..width {
                for lane in 0..c {
                    if let Some(&r) = rows.get(lane) {
                        let lo = a.row_ptr[r];
                        let hi = a.row_ptr[r + 1];
                        if lo + j < hi {
                            cols.push(a.cols[lo + j]);
                            vals.push(a.vals[lo + j]);
                            continue;
                        }
                    }
                    // Padding slot; the kernels never read it.
                    cols.push(0);
                    vals.push(0.0);
                }
            }
            chunk_ptr.push(cols.len());
        }
        Self { c, sigma, chunk_ptr, chunk_len, lane_len, cols, vals, perm, nrows, ncols: a.ncols }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Stored entries including padding.
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Padding overhead: stored entries / real nonzeros (β ≥ 1; the
    /// SELL-C-σ papers call its inverse the chunk occupancy).
    pub fn padding_factor(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            return 1.0;
        }
        self.stored() as f64 / nnz as f64
    }

    /// The row-block worker every spMVM entry point funnels into: process
    /// `chunks`, writing (or accumulating into) `y_block`, which covers
    /// sorted row positions starting at `y_origin`. `acc` is the caller's
    /// lane-accumulator scratch (hoisted so the per-iteration hot path
    /// allocates nothing).
    ///
    /// Lane lengths are non-increasing within a chunk (σ is a multiple of
    /// C), so at column `j` only the leading `live` lanes carry real
    /// entries — padded slots are never read.
    #[allow(clippy::needless_range_loop)] // hot kernel, explicit indexing
    fn spmv_block(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        y_origin: usize,
        chunks: std::ops::Range<usize>,
        accumulate: bool,
        acc: &mut [f64],
    ) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(acc.len(), self.c);
        for chunk in chunks {
            let width = self.chunk_len[chunk];
            let base = self.chunk_ptr[chunk];
            let lens = &self.lane_len[chunk * self.c..(chunk + 1) * self.c];
            acc[..].fill(0.0);
            let mut live = self.c;
            // Column-major sweep: the inner loop over lanes is the
            // SIMD-friendly one. Lanes whose rows are exhausted drop off
            // the tail as j grows.
            for j in 0..width {
                while live > 0 && (lens[live - 1] as usize) <= j {
                    live -= 1;
                }
                let off = base + j * self.c;
                for lane in 0..live {
                    let idx = off + lane;
                    acc[lane] += self.vals[idx] * x[self.cols[idx] as usize];
                }
            }
            for lane in 0..self.c {
                let k = chunk * self.c + lane;
                if k < self.nrows {
                    let yi = self.perm[k] as usize - y_origin;
                    if accumulate {
                        y_block[yi] += acc[lane];
                    } else {
                        y_block[yi] = acc[lane];
                    }
                }
            }
        }
    }

    /// The vectorized row-block worker — this is what the SELL-C-σ
    /// layout was built for. The inner lane loop of [`SellCSigma::spmv_block`]
    /// runs [`LANES`] chunk rows at a time: at column `j`, lanes
    /// `[g, g+4)` load four values and four gathered `x` entries and
    /// accumulate element-wise; the partial group at the live boundary
    /// falls back to scalar lanes.
    ///
    /// Because each SIMD lane *is* one row's accumulator, every row's
    /// additions happen in exactly the sequential kernel's order — this
    /// variant is **bitwise identical** to [`SellCSigma::spmv`] (unlike
    /// the CSR SIMD kernel, which splits within-row reductions and is
    /// only ULP-bounded). Padded lanes are skipped via `lane_len`
    /// exactly as in the scalar kernel, so padding stays inert.
    fn spmv_block_simd(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        y_origin: usize,
        chunks: std::ops::Range<usize>,
        accumulate: bool,
        acc: &mut [f64],
    ) {
        debug_assert!(x.len() >= self.ncols);
        debug_assert_eq!(acc.len(), self.c);
        for chunk in chunks {
            let width = self.chunk_len[chunk];
            let base = self.chunk_ptr[chunk];
            let lens = &self.lane_len[chunk * self.c..(chunk + 1) * self.c];
            acc[..].fill(0.0);
            let mut live = self.c;
            for j in 0..width {
                while live > 0 && (lens[live - 1] as usize) <= j {
                    live -= 1;
                }
                let off = base + j * self.c;
                let mut lane = 0usize;
                while lane + LANES <= live {
                    let idx = off + lane;
                    let v = F64x4::from_array([
                        self.vals[idx],
                        self.vals[idx + 1],
                        self.vals[idx + 2],
                        self.vals[idx + 3],
                    ]);
                    let xs = F64x4::from_array([
                        x[self.cols[idx] as usize],
                        x[self.cols[idx + 1] as usize],
                        x[self.cols[idx + 2] as usize],
                        x[self.cols[idx + 3] as usize],
                    ]);
                    let mut a =
                        F64x4::from_array([acc[lane], acc[lane + 1], acc[lane + 2], acc[lane + 3]]);
                    a.mul_acc(v, xs);
                    acc[lane..lane + LANES].copy_from_slice(&a.to_array());
                    lane += LANES;
                }
                for (lane, a) in acc.iter_mut().enumerate().take(live).skip(lane) {
                    let idx = off + lane;
                    *a += self.vals[idx] * x[self.cols[idx] as usize];
                }
            }
            for (lane, &a) in acc.iter().enumerate() {
                let k = chunk * self.c + lane;
                if k < self.nrows {
                    let yi = self.perm[k] as usize - y_origin;
                    if accumulate {
                        y_block[yi] += a;
                    } else {
                        y_block[yi] = a;
                    }
                }
            }
        }
    }

    /// Run `f` with a lane-accumulator slice of length C, on the stack
    /// when C is small.
    fn with_acc<R>(&self, f: impl FnOnce(&mut [f64]) -> R) -> R {
        if self.c <= ACC_STACK_LANES {
            let mut acc = [0.0f64; ACC_STACK_LANES];
            f(&mut acc[..self.c])
        } else {
            let mut acc = vec![0.0f64; self.c];
            f(&mut acc)
        }
    }

    /// `y = A·x` (same semantics as [`Csr::spmv`]).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows);
        self.with_acc(|acc| self.spmv_block(x, y, 0, 0..self.chunk_len.len(), false, acc));
    }

    /// `y += A·x`.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows);
        self.with_acc(|acc| self.spmv_block(x, y, 0, 0..self.chunk_len.len(), true, acc));
    }

    /// `y = A·x` with the across-row SIMD kernel; **bitwise identical**
    /// to [`SellCSigma::spmv`] (see `spmv_block_simd` for why the
    /// vectorization does not reorder any row's sum).
    pub fn spmv_simd(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows);
        self.with_acc(|acc| self.spmv_block_simd(x, y, 0, 0..self.chunk_len.len(), false, acc));
    }

    /// `y += A·x`, SIMD; bitwise identical to [`SellCSigma::spmv_add`].
    pub fn spmv_add_simd(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.nrows);
        self.with_acc(|acc| self.spmv_block_simd(x, y, 0, 0..self.chunk_len.len(), true, acc));
    }

    /// `y = A·x` with up to `threads` scoped worker threads, bitwise
    /// identical to [`SellCSigma::spmv`] (every row's additions run in the
    /// same order on exactly one thread).
    pub fn spmv_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_threaded_impl(x, y, threads, false, false);
    }

    /// `y += A·x`, threaded; bitwise identical to
    /// [`SellCSigma::spmv_add`].
    pub fn spmv_add_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_threaded_impl(x, y, threads, true, false);
    }

    /// `y = A·x`, threaded over the SIMD chunk kernel; bitwise identical
    /// to [`SellCSigma::spmv`] (threading and vectorization both
    /// preserve per-row addition order here).
    pub fn spmv_simd_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_threaded_impl(x, y, threads, false, true);
    }

    /// `y += A·x`, threaded SIMD; bitwise identical to
    /// [`SellCSigma::spmv_add`].
    pub fn spmv_add_simd_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.spmv_threaded_impl(x, y, threads, true, true);
    }

    /// Row-blocked threading over whole σ-windows: the permutation is
    /// window-local, so each block of windows owns a contiguous `y`
    /// range, split with `split_at_mut` — no locks, no unsafe. `simd`
    /// picks the per-block chunk kernel.
    fn spmv_threaded_impl(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
        accumulate: bool,
        simd: bool,
    ) {
        debug_assert_eq!(y.len(), self.nrows);
        let nchunks = self.chunk_len.len();
        let chunks_per_window = self.sigma / self.c;
        let nwindows = nchunks.div_ceil(chunks_per_window);
        let threads = threads.clamp(1, nwindows.max(1));
        let run = |y_block: &mut [f64], origin: usize, chunks: std::ops::Range<usize>| {
            self.with_acc(|acc| {
                if simd {
                    self.spmv_block_simd(x, y_block, origin, chunks, accumulate, acc);
                } else {
                    self.spmv_block(x, y_block, origin, chunks, accumulate, acc);
                }
            })
        };
        if threads <= 1 {
            return run(y, 0, 0..nchunks);
        }
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = y;
            let mut chunk_start = 0usize;
            let mut row_start = 0usize;
            for t in 0..threads {
                let chunk_end = (nwindows * (t + 1) / threads * chunks_per_window).min(nchunks);
                let row_end = (chunk_end * self.c).min(self.nrows);
                let (block, tail) = rest.split_at_mut(row_end - row_start);
                rest = tail;
                let chunks = chunk_start..chunk_end;
                let origin = row_start;
                s.spawn(move || run(block, origin, chunks));
                chunk_start = chunk_end;
                row_start = row_end;
            }
        });
    }

    /// Structural sanity checks (chunk bounds, permutation bijectivity,
    /// lane-length monotonicity, window-locality of the permutation).
    pub fn validate(&self) {
        assert_eq!(self.chunk_ptr.len(), self.chunk_len.len() + 1);
        assert_eq!(*self.chunk_ptr.last().unwrap(), self.cols.len());
        assert_eq!(self.cols.len(), self.vals.len());
        assert_eq!(self.lane_len.len(), self.chunk_len.len() * self.c);
        assert_eq!(self.sigma % self.c, 0, "σ must be a multiple of C");
        for (i, (&p, &w)) in self.chunk_ptr.iter().zip(&self.chunk_len).enumerate() {
            assert_eq!(self.chunk_ptr[i + 1] - p, w * self.c, "chunk {i} extent");
            let lens = &self.lane_len[i * self.c..(i + 1) * self.c];
            assert!(
                lens.windows(2).all(|l| l[0] >= l[1]),
                "chunk {i}: lane lengths must be non-increasing"
            );
            assert_eq!(lens.first().copied().unwrap_or(0) as usize, w, "chunk {i} width");
        }
        let mut seen = vec![false; self.nrows];
        for (k, &r) in self.perm.iter().enumerate() {
            assert!(!seen[r as usize], "permutation must be a bijection");
            seen[r as usize] = true;
            // The sort permutes only within σ-windows; the threaded
            // kernels' disjoint y-slices rely on this.
            assert_eq!(k / self.sigma, r as usize / self.sigma, "perm must be window-local");
        }
        assert!(seen.iter().all(|&s| s));
        // Only the first lane_len entries of each lane are real; check
        // those columns (padding slots are unconstrained and unread).
        for (chunk, &w) in self.chunk_len.iter().enumerate() {
            for j in 0..w {
                for lane in 0..self.c {
                    if (self.lane_len[chunk * self.c + lane] as usize) > j {
                        let c = self.cols[self.chunk_ptr[chunk] + j * self.c + lane];
                        assert!((c as usize) < self.ncols, "column {c} out of range");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // Ragged rows to exercise padding and sorting.
        Csr::from_rows(
            &[
                vec![(0, 1.0)],
                vec![(0, 2.0), (1, 3.0), (3, 4.0)],
                vec![],
                vec![(2, 5.0), (3, 6.0)],
                vec![(1, 7.0)],
            ],
            4,
        )
    }

    fn dense_ref(a: &Csr, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        a.spmv(x, &mut y);
        y
    }

    #[test]
    fn matches_csr_for_various_c_sigma() {
        let a = sample();
        let x = [1.0, -2.0, 0.5, 3.0];
        let want = dense_ref(&a, &x);
        for (c, sigma) in [(1, 1), (2, 1), (2, 4), (4, 4), (8, 8), (3, 6)] {
            let s = SellCSigma::from_csr(&a, c, sigma);
            s.validate();
            let mut y = vec![0.0; a.nrows()];
            s.spmv(&x, &mut y);
            assert_eq!(y, want, "C={c} σ={sigma}");
            for threads in [1, 2, 3, 7] {
                let mut yt = vec![0.0; a.nrows()];
                s.spmv_threaded(&x, &mut yt, threads);
                assert_eq!(yt, want, "C={c} σ={sigma} threads={threads}");
            }
        }
    }

    /// The padding-lane poisoning regression: padded slots used to compute
    /// `0.0 * x[0]`, which under IEEE-754 is NaN whenever `x[0]` is — so a
    /// NaN in the first vector entry corrupted every padded row. Padding
    /// must be truly inert: SELL must equal CSR bitwise even then.
    #[test]
    fn nan_in_x0_does_not_poison_padded_lanes() {
        // Rows 1.. never reference column 0, but every chunk pads.
        let rows: Vec<Vec<(u32, f64)>> = (0..10)
            .map(|i| {
                if i == 0 {
                    vec![(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]
                } else {
                    vec![(1 + (i % 3) as u32, 1.5)]
                }
            })
            .collect();
        let a = Csr::from_rows(&rows, 4);
        let mut x = [f64::NAN, 1.0, -2.0, 0.5];
        for (c, sigma) in [(2, 2), (4, 4), (4, 8), (8, 8)] {
            let s = SellCSigma::from_csr(&a, c, sigma);
            s.validate();
            let want = dense_ref(&a, &x);
            let mut y = vec![0.0; a.nrows()];
            s.spmv(&x, &mut y);
            for (i, (u, v)) in want.iter().zip(&y).enumerate() {
                assert_eq!(u.to_bits(), v.to_bits(), "row {i}: {u} vs {v} (C={c} σ={sigma})");
            }
            assert!(y[1..].iter().all(|v| v.is_finite()), "NaN leaked into padded rows");
            let mut yt = vec![0.0; a.nrows()];
            s.spmv_threaded(&x, &mut yt, 3);
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                yt.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        // Same story for Inf.
        x[0] = f64::INFINITY;
        let s = SellCSigma::from_csr(&a, 4, 8);
        let want = dense_ref(&a, &x);
        let mut y = vec![0.0; a.nrows()];
        s.spmv(&x, &mut y);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// An all-empty matrix over an empty column space must not read `x`
    /// at all (the padded slots' column 0 would be out of bounds).
    #[test]
    fn empty_column_space_reads_nothing() {
        let a = Csr::from_rows(&[vec![], vec![], vec![]], 0);
        let s = SellCSigma::from_csr(&a, 4, 4);
        s.validate();
        let mut y = vec![7.0; 3];
        s.spmv(&[], &mut y);
        assert_eq!(y, vec![0.0; 3]);
        let mut y = vec![1.0; 3];
        s.spmv_add(&[], &mut y);
        assert_eq!(y, vec![1.0; 3]);
    }

    #[test]
    fn sorting_reduces_padding() {
        // One long row among short ones: with σ=1 (no sorting) every
        // chunk containing it pads heavily; σ=n groups long rows together.
        let rows: Vec<Vec<(u32, f64)>> = (0..32)
            .map(|i| {
                if i % 8 == 0 {
                    (0..16).map(|j| (j as u32, 1.0)).collect()
                } else {
                    vec![(0, 1.0)]
                }
            })
            .collect();
        let a = Csr::from_rows(&rows, 16);
        let unsorted = SellCSigma::from_csr(&a, 4, 1);
        let sorted = SellCSigma::from_csr(&a, 4, 32);
        assert!(
            sorted.stored() < unsorted.stored(),
            "σ-sorting must reduce padding: {} vs {}",
            sorted.stored(),
            unsorted.stored()
        );
        let x = vec![1.0; 16];
        let (mut y1, mut y2) = (vec![0.0; 32], vec![0.0; 32]);
        unsorted.spmv(&x, &mut y1);
        sorted.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_and_single_row_edge_cases() {
        let a = Csr::from_rows(&[vec![]], 1);
        let s = SellCSigma::from_csr(&a, 4, 4);
        s.validate();
        let mut y = vec![9.0];
        s.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![0.0]);

        let a = Csr::from_rows(&[vec![(0, 3.0)]], 1);
        let s = SellCSigma::from_csr(&a, 8, 16);
        let mut y = vec![0.0];
        s.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![6.0]);

        let a = Csr::from_rows(&[], 3);
        let s = SellCSigma::from_csr(&a, 4, 4);
        s.validate();
        let mut y: Vec<f64> = Vec::new();
        s.spmv(&[1.0, 2.0, 3.0], &mut y);
        s.spmv_threaded(&[1.0, 2.0, 3.0], &mut y, 4);
        assert!(y.is_empty());
    }

    #[test]
    fn large_chunk_height_spills_acc_to_heap() {
        // C beyond the stack-accumulator bound still works.
        let rows: Vec<Vec<(u32, f64)>> =
            (0..100).map(|i| vec![(i as u32, 1.0 + f64::from(i))]).collect();
        let a = Csr::from_rows(&rows, 100);
        let s = SellCSigma::from_csr(&a, ACC_STACK_LANES + 8, ACC_STACK_LANES + 8);
        s.validate();
        let x = vec![2.0; 100];
        let want = dense_ref(&a, &x);
        let mut y = vec![0.0; 100];
        s.spmv(&x, &mut y);
        assert_eq!(y, want);
    }

    #[test]
    fn padding_factor_accounting() {
        let a = sample();
        let s = SellCSigma::from_csr(&a, 2, 2);
        s.validate();
        assert!(s.padding_factor(a.nnz()) >= 1.0);
        // C=1 never pads.
        let s1 = SellCSigma::from_csr(&a, 1, 1);
        assert_eq!(s1.stored(), a.nnz());
        assert_eq!(s1.padding_factor(a.nnz()), 1.0);
    }
}
