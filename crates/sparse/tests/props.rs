//! Property tests: partition, plan codec, and distributed SpMV equality.

use proptest::prelude::*;

use ft_matgen::random::RandomSym;
use ft_matgen::RowGen;
use ft_sparse::{
    row_cond, simd_ulp_bound, ulp_diff, ulp_eq, CommPlan, Csr, DistMatrix, KernelPolicy,
    RowPartition, SellCSigma,
};

proptest! {
    /// Ranges tile, owner agrees, sizes differ by at most one.
    #[test]
    fn partition_invariants(n in 1u64..5000, parts in 1u32..64) {
        prop_assume!(n >= u64::from(parts));
        let p = RowPartition::new(n, parts);
        let mut covered = 0u64;
        let (mut min_len, mut max_len) = (usize::MAX, 0usize);
        for part in 0..parts {
            let r = p.range(part);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
            min_len = min_len.min(p.len(part));
            max_len = max_len.max(p.len(part));
            prop_assert_eq!(p.owner(r.start), part);
            prop_assert_eq!(p.owner(r.end - 1), part);
        }
        prop_assert_eq!(covered, n);
        prop_assert!(max_len - min_len <= 1, "balanced within one row");
    }

    /// Plan codec roundtrips arbitrary well-formed plans.
    #[test]
    fn plan_codec_roundtrip(
        me in 0u32..16,
        nparts in 1u32..16,
        recv_data in proptest::collection::vec(
            (0u32..16, proptest::collection::vec(0u64..10_000, 1..20)), 0..5),
        send_data in proptest::collection::vec(
            (0u32..16, 0usize..1000, proptest::collection::vec(0u32..500, 1..20)), 0..5),
    ) {
        let mut off = 0usize;
        let recvs: Vec<_> = recv_data
            .into_iter()
            .map(|(from, mut cols)| {
                cols.sort_unstable();
                cols.dedup();
                let r = ft_sparse::plan::RecvSpec { from, halo_offset: off, cols };
                off += r.cols.len();
                r
            })
            .collect();
        let sends: Vec<_> = send_data
            .into_iter()
            .map(|(to, dest_offset, local_rows)| ft_sparse::plan::SendSpec {
                to,
                dest_offset,
                local_rows,
            })
            .collect();
        let plan = CommPlan { me, nparts, halo_len: off, recvs, sends };
        let buf = plan.encode();
        prop_assert_eq!(CommPlan::decode(&buf), Some(plan));
    }

    /// halo_slot finds exactly the planned columns, densely.
    #[test]
    fn halo_slots_are_dense_and_exact(
        cols_per_owner in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..10), 1..5),
    ) {
        // A global column has exactly one owner: drop duplicates across
        // owners, as the real needed-columns derivation guarantees.
        let mut needed = std::collections::BTreeMap::new();
        let mut claimed = std::collections::HashSet::new();
        for (i, mut cols) in cols_per_owner.into_iter().enumerate() {
            cols.sort_unstable();
            cols.dedup();
            cols.retain(|c| claimed.insert(*c));
            needed.insert(i as u32 + 1, cols);
        }
        let plan = CommPlan::receives_from_needs(0, 16, &needed);
        let mut seen = vec![false; plan.halo_len];
        for cols in needed.values() {
            for &c in cols {
                let slot = plan.halo_slot(c).expect("planned column must resolve");
                prop_assert!(!seen[slot], "slots must be unique");
                seen[slot] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "halo must be dense");
    }

    /// Chunked SpMV over any partition equals the global product.
    #[test]
    fn chunked_spmv_equals_global(
        n in 8u64..120,
        parts in 1u32..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= u64::from(parts));
        let gen = RandomSym::new(n, 4, 0.5, seed).with_diag_shift(2.0);
        let part = RowPartition::new(n, parts);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        // Global reference.
        let mut y_ref = vec![0.0; n as usize];
        for i in 0..n {
            for e in gen.row_vec(i) {
                y_ref[i as usize] += e.val * x[e.col as usize];
            }
        }
        for me in 0..parts {
            let needed = DistMatrix::needed_columns(&gen, &part, me);
            let plan = CommPlan::receives_from_needs(me, parts, &needed);
            let dm = DistMatrix::assemble(&gen, part, me, plan);
            dm.a_loc.validate();
            dm.a_rem.validate();
            let r = part.range(me);
            let x_local: Vec<f64> = r.clone().map(|i| x[i as usize]).collect();
            let mut halo = vec![0.0; dm.plan.halo_len];
            for recv in &dm.plan.recvs {
                for (k, &c) in recv.cols.iter().enumerate() {
                    halo[recv.halo_offset + k] = x[c as usize];
                }
            }
            let mut y = vec![0.0; dm.local_len()];
            dm.spmv(&x_local, &halo, &mut y);
            for (k, row) in r.enumerate() {
                prop_assert!((y[k] - y_ref[row as usize]).abs() < 1e-10);
            }
        }
    }
}

proptest! {
    /// SELL-C-σ SpMV agrees exactly with CSR SpMV for any (C, σ) and any
    /// random matrix (same additions in the same per-row order, so the
    /// agreement is bitwise).
    #[test]
    fn sell_matches_csr(
        n in 1u64..120,
        bw in 0u64..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        c in 1usize..9,
        sigma_mult in 1usize..5,
    ) {
        let gen = RandomSym::new(n, bw, density, seed);
        let rows: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| gen.row_vec(i).into_iter().map(|e| (e.col as u32, e.val)).collect())
            .collect();
        let a = Csr::from_rows(&rows, n as usize);
        let s = SellCSigma::from_csr(&a, c, c * sigma_mult);
        s.validate();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.3).sin()).collect();
        let mut y_csr = vec![0.0; a.nrows()];
        let mut y_sell = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_csr);
        s.spmv(&x, &mut y_sell);
        for (u, v) in y_csr.iter().zip(&y_sell) {
            prop_assert_eq!(u.to_bits(), v.to_bits(), "bitwise agreement");
        }
        prop_assert!(s.padding_factor(a.nnz()) >= 1.0 || a.nnz() == 0);
    }
}

fn bits(y: &[f64]) -> Vec<u64> {
    y.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Every spMVM path — synchronous CSR, split-phase composition
    /// (local + remote_add, as the overlapped solver loops run it),
    /// threaded, and the three SELL-C-σ counterparts — produces bitwise
    /// the same `DistMatrix` result, across chunk sizes, σ windows,
    /// thread counts, empty-halo ranks (parts == 1), and zero-nnz rows;
    /// and that shared result matches the dense reference to tolerance
    /// (the halo summation order legitimately differs from the global
    /// order, so "bitwise" is across paths, not against the reference).
    ///
    /// The kernel policy is pinned to [`KernelPolicy::Scalar`]: the
    /// bitwise promise is a property of the scalar/threaded/blocked
    /// family regardless of build features; the SIMD dispatch has its
    /// own ULP-bounded property below and the full variant matrix in
    /// `tests/conformance.rs`.
    #[test]
    fn all_spmv_paths_agree_bitwise(
        n in 1u64..100,
        parts in 1u32..5,
        bw in 0u64..8,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        c in 1usize..9,
        sigma_mult in 1usize..5,
        threads in 1usize..5,
    ) {
        prop_assume!(n >= u64::from(parts));
        let gen = RandomSym::new(n, bw, density, seed);
        let part = RowPartition::new(n, parts);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        let mut y_ref = vec![0.0; n as usize];
        for i in 0..n {
            for e in gen.row_vec(i) {
                y_ref[i as usize] += e.val * x[e.col as usize];
            }
        }
        for me in 0..parts {
            let needed = DistMatrix::needed_columns(&gen, &part, me);
            let plan = CommPlan::receives_from_needs(me, parts, &needed);
            let dm = DistMatrix::assemble(&gen, part, me, plan).with_kernel(KernelPolicy::Scalar);
            let r = part.range(me);
            let x_local: Vec<f64> = r.clone().map(|i| x[i as usize]).collect();
            let mut halo = vec![0.0; dm.plan.halo_len];
            for recv in &dm.plan.recvs {
                for (k, &col) in recv.cols.iter().enumerate() {
                    halo[recv.halo_offset + k] = x[col as usize];
                }
            }
            let nloc = dm.local_len();
            // Path 1: synchronous one-shot (the reference bits).
            let mut y_sync = vec![0.0; nloc];
            dm.spmv(&x_local, &halo, &mut y_sync);
            for (k, row) in r.enumerate() {
                prop_assert!((y_sync[k] - y_ref[row as usize]).abs() < 1e-10);
            }
            let want = bits(&y_sync);
            // Path 2: split-phase composition (the overlapped loop).
            let mut y_split = vec![0.0; nloc];
            dm.spmv_local(&x_local, &mut y_split);
            dm.spmv_remote_add(&halo, &mut y_split);
            prop_assert_eq!(&bits(&y_split), &want, "split-phase CSR");
            // Path 3: threaded.
            let mut y_thr = vec![0.0; nloc];
            dm.spmv_threaded(&x_local, &halo, &mut y_thr, threads);
            prop_assert_eq!(&bits(&y_thr), &want, "threaded CSR");
            // Paths 4-6: the same three through SELL-C-σ kernels.
            let dms = dm.with_sell(c, c * sigma_mult);
            let mut y_sell = vec![0.0; nloc];
            dms.spmv(&x_local, &halo, &mut y_sell);
            prop_assert_eq!(&bits(&y_sell), &want, "SELL sync");
            let mut y_sell_split = vec![0.0; nloc];
            dms.spmv_local(&x_local, &mut y_sell_split);
            dms.spmv_remote_add(&halo, &mut y_sell_split);
            prop_assert_eq!(&bits(&y_sell_split), &want, "SELL split-phase");
            let mut y_sell_thr = vec![0.0; nloc];
            dms.spmv_threaded(&x_local, &halo, &mut y_sell_thr, threads);
            prop_assert_eq!(&bits(&y_sell_thr), &want, "SELL threaded");
        }
    }

    /// The SIMD kernel policy agrees with the scalar one to within the
    /// stated per-row ULP bound through the `DistMatrix` dispatch (CSR
    /// kernels; the reduction is genuinely reordered), and **bitwise**
    /// through the SELL-C-σ kernels (across-row vectorization preserves
    /// every row's addition order).
    #[test]
    fn simd_policy_is_ulp_bounded_against_scalar(
        n in 1u64..100,
        parts in 1u32..5,
        bw in 0u64..8,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        c in 1usize..9,
        sigma_mult in 1usize..5,
    ) {
        prop_assume!(n >= u64::from(parts));
        let gen = RandomSym::new(n, bw, density, seed);
        let part = RowPartition::new(n, parts);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        for me in 0..parts {
            let needed = DistMatrix::needed_columns(&gen, &part, me);
            let plan = CommPlan::receives_from_needs(me, parts, &needed);
            let dm = DistMatrix::assemble(&gen, part, me, plan);
            let r = part.range(me);
            let x_local: Vec<f64> = r.clone().map(|i| x[i as usize]).collect();
            let mut halo = vec![0.0; dm.plan.halo_len];
            for recv in &dm.plan.recvs {
                for (k, &col) in recv.cols.iter().enumerate() {
                    halo[recv.halo_offset + k] = x[col as usize];
                }
            }
            let nloc = dm.local_len();
            let dm_scalar = dm.clone().with_kernel(KernelPolicy::Scalar);
            let dm_simd = dm.with_kernel(KernelPolicy::Simd);
            let mut y_scalar = vec![0.0; nloc];
            let mut y_simd = vec![0.0; nloc];
            dm_scalar.spmv(&x_local, &halo, &mut y_scalar);
            dm_simd.spmv(&x_local, &halo, &mut y_simd);
            for (k, row) in r.clone().enumerate() {
                let terms = gen.row_vec(row);
                let abs_sum: f64 =
                    terms.iter().map(|e| (e.val * x[e.col as usize]).abs()).sum();
                let bound = simd_ulp_bound(terms.len(), row_cond(abs_sum, y_scalar[k]));
                prop_assert!(
                    ulp_eq(y_scalar[k], y_simd[k], bound),
                    "row {}: scalar {} vs simd {} differs by {} ulps (bound {})",
                    row, y_scalar[k], y_simd[k], ulp_diff(y_scalar[k], y_simd[k]), bound
                );
            }
            // Through SELL the two policies are bitwise identical.
            let dms_scalar = dm_scalar.with_sell(c, c * sigma_mult);
            let dms_simd = dms_scalar.clone().with_kernel(KernelPolicy::Simd);
            let mut y_sell_scalar = vec![0.0; nloc];
            let mut y_sell_simd = vec![0.0; nloc];
            dms_scalar.spmv(&x_local, &halo, &mut y_sell_scalar);
            dms_simd.spmv(&x_local, &halo, &mut y_sell_simd);
            prop_assert_eq!(bits(&y_sell_scalar), bits(&y_sell_simd), "SELL simd is bitwise");
        }
    }
}

/// Promoted from `props.proptest-regressions` (the shimmed proptest runner
/// keeps no regression corpus): `halo_slots_are_dense_and_exact` with
/// `cols_per_owner = [[846], [846]]` — two owners both claiming global
/// column 846. The dedup-across-owners step must leave the second owner's
/// list empty rather than double-planning the column into two halo slots.
#[test]
fn regression_duplicate_column_across_owners_claims_one_slot() {
    let mut needed = std::collections::BTreeMap::new();
    needed.insert(1u32, vec![846u64]);
    needed.insert(2u32, Vec::new()); // owner 2's claim deduped away
    let plan = CommPlan::receives_from_needs(0, 16, &needed);
    assert_eq!(plan.halo_len, 1);
    assert_eq!(plan.halo_slot(846), Some(0));
    assert_eq!(plan.recvs.len(), 1, "empty claims must not produce a recv spec");
    assert_eq!(plan.recvs[0].from, 1);
}
