//! Kernel-conformance property suite: every spMVM variant against the
//! sequential CSR reference, over proptest-generated matrices (varying
//! size, bandwidth-free random structure, empty rows, empty matrices,
//! and σ/C combinations).
//!
//! The contract under test (stated in `ft_sparse::simd` and the §9
//! kernel-variant table of ARCHITECTURE.md):
//!
//! | variant                          | promise vs sequential CSR      |
//! |----------------------------------|--------------------------------|
//! | `Csr::spmv_threaded` @ {1,2,7}   | bitwise                        |
//! | `Csr::spmv_blocked` (any block)  | bitwise                        |
//! | `SellCSigma::spmv` (any C, σ)    | bitwise                        |
//! | `SellCSigma::spmv_threaded`      | bitwise                        |
//! | `SellCSigma::spmv_simd`          | bitwise                        |
//! | `SellCSigma::spmv_simd_threaded` | bitwise                        |
//! | `Csr::spmv_simd`                 | ≤ `simd_ulp_bound(nnz, cond)`  |
//! | `Csr::spmv_simd_threaded`        | bitwise vs `Csr::spmv_simd`    |
//!
//! plus: for every variant, `spmv_add` on a zeroed `y` equals `spmv`
//! (compared with `ulp_diff == 0`, which collapses the one representable
//! difference the composition is allowed: the sign of a zero row sum,
//! `0.0 + -0.0 == +0.0`).

use proptest::prelude::*;

use ft_sparse::{row_cond, simd_ulp_bound, ulp_diff, ulp_eq, Csr, SellCSigma};

/// The threaded variants' thread counts: degenerate (1), even split (2),
/// and a count that exceeds the row-block/window count of most generated
/// matrices (7).
const THREADS: [usize; 3] = [1, 2, 7];

fn bits(y: &[f64]) -> Vec<u64> {
    y.iter().map(|v| v.to_bits()).collect()
}

/// Build a CSR from raw proptest output: cols are folded into the column
/// space, sorted, deduped (keeping the first value for a duplicate).
fn build(raw_rows: &[Vec<(u32, f64)>], ncols: usize) -> Csr {
    let rows: Vec<Vec<(u32, f64)>> = raw_rows
        .iter()
        .map(|r| {
            let mut r: Vec<(u32, f64)> = r.iter().map(|&(c, v)| (c % ncols as u32, v)).collect();
            r.sort_by_key(|&(c, _)| c);
            r.dedup_by_key(|&mut (c, _)| c);
            r
        })
        .collect();
    let a = Csr::from_rows(&rows, ncols);
    a.validate();
    a
}

/// Per-row ULP budget of the lane-split SIMD kernel, computed from the
/// stored entries themselves.
fn row_bound(a: &Csr, x: &[f64], i: usize, y_ref: f64) -> u64 {
    let mut nnz = 0usize;
    let mut abs_sum = 0.0f64;
    for (c, v) in a.row(i) {
        nnz += 1;
        abs_sum += (v * x[c as usize]).abs();
    }
    simd_ulp_bound(nnz, row_cond(abs_sum, y_ref))
}

proptest! {
    /// The full variant matrix on one generated matrix per case.
    #[test]
    fn variant_matrix_conforms(
        nrows in 0usize..48,
        ncols in 1usize..48,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec((0u32..1024, -2.0f64..2.0), 0..14), 0..48),
        xs in proptest::collection::vec(-2.0f64..2.0, 48),
        c in 1usize..9,
        sigma_mult in 1usize..5,
        col_block in 1usize..64,
    ) {
        let raw_rows = &raw_rows[..nrows.min(raw_rows.len())];
        let a = build(raw_rows, ncols);
        let x = &xs[..ncols];
        let n = a.nrows();
        // Sequential CSR: the reference bits.
        let mut y_ref = vec![0.0; n];
        a.spmv(x, &mut y_ref);
        let want = bits(&y_ref);

        // --- Bitwise family -------------------------------------------
        let mut y = vec![0.0; n];
        for t in THREADS {
            y.fill(f64::NAN); // stale y must not leak into non-accumulating variants
            a.spmv_threaded(x, &mut y, t);
            prop_assert_eq!(&bits(&y), &want, "CSR threaded@{}", t);
        }
        y.fill(f64::NAN);
        a.spmv_blocked(x, &mut y);
        prop_assert_eq!(&bits(&y), &want, "CSR blocked (default block)");
        let mut y_b = vec![0.0; n];
        a.spmv_add_blocked_with(x, &mut y_b, col_block);
        prop_assert_eq!(&bits(&y_b), &want, "CSR blocked @ col_block={}", col_block);

        let s = SellCSigma::from_csr(&a, c, c * sigma_mult);
        s.validate();
        y.fill(f64::NAN);
        s.spmv(x, &mut y);
        prop_assert_eq!(&bits(&y), &want, "SELL seq");
        for t in THREADS {
            y.fill(f64::NAN);
            s.spmv_threaded(x, &mut y, t);
            prop_assert_eq!(&bits(&y), &want, "SELL threaded@{}", t);
        }
        y.fill(f64::NAN);
        s.spmv_simd(x, &mut y);
        prop_assert_eq!(&bits(&y), &want, "SELL simd (across-row lanes are order-preserving)");
        for t in THREADS {
            y.fill(f64::NAN);
            s.spmv_simd_threaded(x, &mut y, t);
            prop_assert_eq!(&bits(&y), &want, "SELL simd+threaded@{}", t);
        }

        // --- ULP-bounded family ---------------------------------------
        let mut y_simd = vec![f64::NAN; n];
        a.spmv_simd(x, &mut y_simd);
        for i in 0..n {
            let bound = row_bound(&a, x, i, y_ref[i]);
            prop_assert!(
                ulp_eq(y_ref[i], y_simd[i], bound),
                "CSR simd row {}: {} vs {} differs by {} ulps (bound {})",
                i, y_ref[i], y_simd[i], ulp_diff(y_ref[i], y_simd[i]), bound
            );
        }
        // ... and the threaded SIMD variant is bitwise against spmv_simd.
        let want_simd = bits(&y_simd);
        for t in THREADS {
            y.fill(f64::NAN);
            a.spmv_simd_threaded(x, &mut y, t);
            prop_assert_eq!(&bits(&y), &want_simd, "CSR simd+threaded@{}", t);
        }
    }

    /// `spmv` versus `spmv_add` on a zeroed `y`, for every variant: the
    /// accumulating entry point on a fresh vector is the same product.
    #[test]
    fn spmv_add_on_zeroed_y_matches_spmv(
        nrows in 0usize..40,
        ncols in 1usize..40,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec((0u32..1024, -2.0f64..2.0), 0..10), 0..40),
        xs in proptest::collection::vec(-2.0f64..2.0, 40),
        c in 1usize..9,
        sigma_mult in 1usize..5,
        threads in 1usize..8,
    ) {
        let raw_rows = &raw_rows[..nrows.min(raw_rows.len())];
        let a = build(raw_rows, ncols);
        let x = &xs[..ncols];
        let n = a.nrows();
        let s = SellCSigma::from_csr(&a, c, c * sigma_mult);
        type Pair = (
            &'static str,
            fn(&Csr, &SellCSigma, &[f64], &mut [f64], usize),
            fn(&Csr, &SellCSigma, &[f64], &mut [f64], usize),
        );
        let pairs: [Pair; 6] = [
            ("CSR seq", |a, _, x, y, _| a.spmv(x, y), |a, _, x, y, _| a.spmv_add(x, y)),
            (
                "CSR threaded",
                |a, _, x, y, t| a.spmv_threaded(x, y, t),
                |a, _, x, y, t| a.spmv_add_threaded(x, y, t),
            ),
            (
                "CSR blocked",
                |a, _, x, y, _| a.spmv_blocked(x, y),
                |a, _, x, y, _| a.spmv_add_blocked(x, y),
            ),
            ("CSR simd", |a, _, x, y, _| a.spmv_simd(x, y), |a, _, x, y, _| a.spmv_add_simd(x, y)),
            ("SELL seq", |_, s, x, y, _| s.spmv(x, y), |_, s, x, y, _| s.spmv_add(x, y)),
            (
                "SELL simd+threaded",
                |_, s, x, y, t| s.spmv_simd_threaded(x, y, t),
                |_, s, x, y, t| s.spmv_add_simd_threaded(x, y, t),
            ),
        ];
        for (name, f, f_add) in pairs {
            let mut y = vec![f64::NAN; n];
            f(&a, &s, x, &mut y, threads);
            let mut y_add = vec![0.0; n];
            f_add(&a, &s, x, &mut y_add, threads);
            for i in 0..n {
                prop_assert!(
                    ulp_diff(y[i], y_add[i]) == 0,
                    "{} row {}: spmv {} vs spmv_add-on-zero {}",
                    name, i, y[i], y_add[i]
                );
            }
        }
    }
}

/// The degenerate shapes, pinned as named tests so a regression is
/// visible in `cargo test` output by name.
mod degenerate {
    use super::*;

    fn all_variants(a: &Csr, x: &[f64]) -> Vec<(&'static str, Vec<f64>)> {
        let s = SellCSigma::from_csr(a, 4, 8);
        s.validate();
        let n = a.nrows();
        let mut out = Vec::new();
        let mut run = |name: &'static str, f: &dyn Fn(&mut [f64])| {
            let mut y = vec![f64::NAN; n];
            f(&mut y);
            out.push((name, y));
        };
        run("csr_seq", &|y| a.spmv(x, y));
        run("csr_threaded7", &|y| a.spmv_threaded(x, y, 7));
        run("csr_blocked", &|y| a.spmv_blocked(x, y));
        run("csr_simd", &|y| a.spmv_simd(x, y));
        run("csr_simd_threaded7", &|y| a.spmv_simd_threaded(x, y, 7));
        run("sell_seq", &|y| s.spmv(x, y));
        run("sell_simd", &|y| s.spmv_simd(x, y));
        run("sell_simd_threaded7", &|y| s.spmv_simd_threaded(x, y, 7));
        out
    }

    #[test]
    fn empty_matrix_zero_rows() {
        let a = Csr::empty(0, 5);
        for (name, y) in all_variants(&a, &[1.0; 5]) {
            assert!(y.is_empty(), "{name}");
        }
    }

    #[test]
    fn empty_column_space_all_rows_empty() {
        // ncols == 1 with no stored entries is the smallest legal column
        // space (kernels assert `x.len() >= ncols`); every variant must
        // write exact zeros to every row and never read `x`.
        let a = Csr::from_rows(&[vec![], vec![], vec![]], 1);
        for (name, y) in all_variants(&a, &[f64::NAN]) {
            assert_eq!(y, vec![0.0; 3], "{name} must not read x for empty rows");
        }
    }

    #[test]
    fn single_row_matches_dot_product() {
        let a = Csr::from_rows(&[vec![(0, 2.0), (2, -3.0), (3, 0.5)]], 4);
        let x = [1.0, 99.0, 2.0, 4.0];
        let expect = (2.0 * 1.0 + -3.0 * 2.0) + 0.5 * 4.0;
        for (name, y) in all_variants(&a, &x) {
            assert_eq!(y.len(), 1);
            assert!(ft_sparse::ulp_eq(y[0], expect, 12), "{name}: {} vs {expect}", y[0]);
        }
    }
}
