//! Adversarial float-edge properties: NaN, ±Inf, and subnormal values in
//! `x`, in the halo, and in the matrix itself must stay **contained** —
//! they may poison exactly the rows whose stored entries reference them,
//! and nothing else. In particular they must never leak through SELL-C-σ
//! padding slots (which store column 0, so a NaN in `x[0]` is the canary)
//! or across row-block/tile boundaries of the threaded and blocked
//! variants.
//!
//! The containment guarantee is unconditional — unlike the SIMD ULP
//! bound, it does not assume finite partial sums (see `ft_sparse::simd`).

use proptest::prelude::*;

use ft_sparse::{CommPlan, Csr, DistMatrix, KernelPolicy, RowPartition, SellCSigma};

/// Every kernel variant, run uniformly: (name, result) pairs.
fn all_variants(a: &Csr, x: &[f64], c: usize, sigma: usize) -> Vec<(&'static str, Vec<f64>)> {
    let s = SellCSigma::from_csr(a, c, sigma);
    let n = a.nrows();
    let mut out = Vec::new();
    let mut run = |name: &'static str, f: &dyn Fn(&mut [f64])| {
        let mut y = vec![0.0; n];
        f(&mut y);
        out.push((name, y));
    };
    run("csr_seq", &|y| a.spmv(x, y));
    run("csr_threaded2", &|y| a.spmv_threaded(x, y, 2));
    run("csr_threaded7", &|y| a.spmv_threaded(x, y, 7));
    run("csr_blocked", &|y| a.spmv_blocked(x, y));
    run("csr_blocked3", &|y| a.spmv_add_blocked_with(x, y, 3));
    run("csr_simd", &|y| a.spmv_simd(x, y));
    run("csr_simd_threaded2", &|y| a.spmv_simd_threaded(x, y, 2));
    run("sell_seq", &|y| s.spmv(x, y));
    run("sell_threaded2", &|y| s.spmv_threaded(x, y, 2));
    run("sell_simd", &|y| s.spmv_simd(x, y));
    run("sell_simd_threaded2", &|y| s.spmv_simd_threaded(x, y, 2));
    out
}

/// The poison palette: index into this with a proptest-chosen selector.
const POISONS: [f64; 5] =
    [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE / 4.0, -1.0e-310];

fn build(raw_rows: &[Vec<(u32, f64)>], ncols: usize) -> Csr {
    let rows: Vec<Vec<(u32, f64)>> = raw_rows
        .iter()
        .map(|r| {
            let mut r: Vec<(u32, f64)> = r.iter().map(|&(c, v)| (c % ncols as u32, v)).collect();
            r.sort_by_key(|&(c, _)| c);
            r.dedup_by_key(|&mut (c, _)| c);
            r
        })
        .collect();
    Csr::from_rows(&rows, ncols)
}

proptest! {
    /// Poison arbitrary columns of `x`: rows that do not reference a
    /// poisoned column must be bitwise unaffected, under every variant.
    /// (Subnormal "poison" additionally checks that no variant flushes
    /// them to zero differently than the sequential kernel.)
    #[test]
    fn poisoned_x_columns_stay_contained(
        nrows in 1usize..32,
        ncols in 1usize..32,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec((0u32..1024, -2.0f64..2.0), 0..10), 1..32),
        xs in proptest::collection::vec(-2.0f64..2.0, 32),
        poison_sel in proptest::collection::vec((0usize..32, 0usize..POISONS.len()), 1..5),
        c in 1usize..9,
        sigma_mult in 1usize..5,
    ) {
        let raw_rows = &raw_rows[..nrows.min(raw_rows.len())];
        let a = build(raw_rows, ncols);
        let x_clean = &xs[..ncols];
        let mut x = x_clean.to_vec();
        let mut poisoned = vec![false; ncols];
        for &(pos, kind) in &poison_sel {
            let col = pos % ncols;
            x[col] = POISONS[kind];
            poisoned[col] = true;
        }
        let sigma = c * sigma_mult;
        let clean = all_variants(&a, x_clean, c, sigma);
        let dirty = all_variants(&a, &x, c, sigma);
        for ((name, yc), (_, yd)) in clean.iter().zip(&dirty) {
            for i in 0..a.nrows() {
                if a.row(i).any(|(col, _)| poisoned[col as usize]) {
                    continue; // this row may legitimately see the poison
                }
                prop_assert_eq!(
                    yc[i].to_bits(), yd[i].to_bits(),
                    "{} row {}: {} leaked into a row that references no poisoned column \
                     (clean {})", name, i, yd[i], yc[i]
                );
            }
        }
    }

    /// Poison stored matrix values: only the owning rows may change.
    #[test]
    fn poisoned_matrix_values_stay_contained(
        nrows in 1usize..32,
        ncols in 1usize..32,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec((0u32..1024, -2.0f64..2.0), 0..10), 1..32),
        xs in proptest::collection::vec(-2.0f64..2.0, 32),
        poison_sel in proptest::collection::vec((0usize..32, 0usize..POISONS.len()), 1..4),
        c in 1usize..9,
        sigma_mult in 1usize..5,
    ) {
        let raw_rows = &raw_rows[..nrows.min(raw_rows.len())];
        let a = build(raw_rows, ncols);
        let x = &xs[..ncols];
        // Rebuild with poisoned values in the chosen rows' first entries.
        let mut rows: Vec<Vec<(u32, f64)>> =
            (0..a.nrows()).map(|i| a.row(i).collect()).collect();
        let mut hit = vec![false; a.nrows()];
        for &(pos, kind) in &poison_sel {
            let i = pos % a.nrows();
            if let Some(e) = rows[i].first_mut() {
                e.1 = POISONS[kind];
                hit[i] = true;
            }
        }
        let b = Csr::from_rows(&rows, ncols);
        let sigma = c * sigma_mult;
        let clean = all_variants(&a, x, c, sigma);
        let dirty = all_variants(&b, x, c, sigma);
        for ((name, yc), (_, yd)) in clean.iter().zip(&dirty) {
            for i in 0..a.nrows() {
                if hit[i] {
                    continue;
                }
                prop_assert_eq!(
                    yc[i].to_bits(), yd[i].to_bits(),
                    "{} row {}: poisoned matrix value leaked across rows", name, i
                );
            }
        }
    }
}

/// SELL padding slots store column 0, so a NaN in `x[0]` leaks into every
/// padded lane of every variant that fails to honor `lane_len` — while a
/// matrix that never references column 0 must come out NaN-free.
#[test]
fn nan_in_x0_never_leaks_through_sell_padding() {
    // Ragged rows (lengths 3/1/0/2/1) force padding in every chunk shape;
    // all columns are >= 1.
    let rows: Vec<Vec<(u32, f64)>> = vec![
        vec![(1, 1.0), (3, -2.0), (6, 0.5)],
        vec![(4, 2.0)],
        vec![],
        vec![(2, -1.0), (5, 1.5)],
        vec![(7, 3.0)],
    ];
    let a = Csr::from_rows(&rows, 8);
    let mut x = vec![1.0; 8];
    x[0] = f64::NAN;
    for (c, sigma) in [(1, 1), (2, 2), (4, 4), (4, 8), (8, 8)] {
        for (name, y) in all_variants(&a, &x, c, sigma) {
            assert!(
                y.iter().all(|v| v.is_finite()),
                "{name} (C={c}, σ={sigma}): padding read x[0] = NaN: {y:?}"
            );
        }
    }
}

/// An explicitly stored zero times an infinite `x` entry is NaN — for the
/// row that stores it, and for no other row.
#[test]
fn stored_zero_times_inf_poisons_only_its_row() {
    let rows: Vec<Vec<(u32, f64)>> = vec![
        vec![(0, 1.0)],
        vec![(1, 0.0)], // 0.0 * inf = NaN
        vec![(2, 2.0)],
    ];
    let a = Csr::from_rows(&rows, 3);
    let x = [1.0, f64::INFINITY, 1.0];
    for (name, y) in all_variants(&a, &x, 2, 4) {
        assert_eq!(y[0].to_bits(), 1.0f64.to_bits(), "{name}");
        assert!(y[1].is_nan(), "{name}: 0·∞ must be NaN");
        assert_eq!(y[2].to_bits(), 2.0f64.to_bits(), "{name}");
    }
}

/// Halo poisoning through the distributed layer: NaN in every halo slot
/// must reach exactly the rows with remote entries (the partition-border
/// rows of a tridiagonal matrix), under both kernel policies.
#[test]
fn poisoned_halo_reaches_only_border_rows() {
    use ft_matgen::spectra::ToeplitzTridiag;

    let n = 30u64;
    let gen = ToeplitzTridiag::new(n, 2.0, -1.0);
    let part = RowPartition::new(n, 3);
    let me = 1u32; // middle chunk: remote rows are its first and last
    let needed = DistMatrix::needed_columns(&gen, &part, me);
    let plan = CommPlan::receives_from_needs(me, 3, &needed);
    for policy in [KernelPolicy::Scalar, KernelPolicy::Simd] {
        let dm = DistMatrix::assemble(&gen, part, me, plan.clone()).with_kernel(policy);
        let x_local = vec![1.0; dm.local_len()];
        let clean_halo = vec![1.0; dm.plan.halo_len];
        let nan_halo = vec![f64::NAN; dm.plan.halo_len];
        let mut y_clean = vec![0.0; dm.local_len()];
        let mut y_dirty = vec![0.0; dm.local_len()];
        dm.spmv(&x_local, &clean_halo, &mut y_clean);
        dm.spmv(&x_local, &nan_halo, &mut y_dirty);
        let last = dm.local_len() - 1;
        for i in 0..dm.local_len() {
            if i == 0 || i == last {
                assert!(y_dirty[i].is_nan(), "border row {i} must see the halo ({policy:?})");
            } else {
                assert_eq!(
                    y_clean[i].to_bits(),
                    y_dirty[i].to_bits(),
                    "interior row {i} must not touch the halo ({policy:?})"
                );
            }
        }
    }
}
