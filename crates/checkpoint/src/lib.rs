//! # ft-checkpoint — fault-aware neighbor node-level checkpoint/restart
//!
//! The paper's third contribution (§IV-C): writing checkpoints to the
//! parallel file system is expensive, so this library checkpoints to the
//! **local node** first and then asynchronously replicates each checkpoint
//! to the **neighbor node**, from a library thread the application merely
//! signals (paper Fig. 2). Optionally, every k-th checkpoint also goes to
//! a (slow, simulated) PFS tier for a higher degree of reliability.
//!
//! Because node-local storage dies with the node, a failed rank's state is
//! recovered from the *neighbor's* replica — and since failures change who
//! neighbors whom, the library is itself fault-aware:
//! [`Checkpointer::refresh_failed`] re-derives the neighbor ring from the
//! cumulative failed-process list the fault detector distributes, exactly
//! as the paper describes ("the C/R library refreshes its list of
//! neighboring processes based on the failed processes list provided by
//! the application thread").
//!
//! Restore resolution order ([`Checkpointer::restore_latest`]):
//! local node → neighbor replica → PFS; the returned [`Provenance`] lets
//! benchmarks attribute re-initialization cost (the paper's OHF3).

pub mod codec;
pub mod neighbor;
pub mod pfs;
pub mod stats;
pub mod writer;

pub use codec::{CodecError, Dec, Enc};
pub use neighbor::NeighborMap;
pub use pfs::{Pfs, PfsConfig};
pub use stats::CkptStats;
pub use writer::{Checkpointer, CheckpointerConfig, Provenance, Restored};
