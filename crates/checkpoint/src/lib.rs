//! # ft-checkpoint — fault-aware neighbor node-level checkpoint/restart
//!
//! The paper's third contribution (§IV-C): writing checkpoints to the
//! parallel file system is expensive, so this library checkpoints to the
//! **local node** first and then asynchronously replicates each checkpoint
//! to the **neighbor node**, from a library thread the application merely
//! signals (paper Fig. 2). Optionally, every k-th checkpoint also goes to
//! a (slow, simulated) PFS tier for a higher degree of reliability.
//!
//! On top of the paper's tiering, commits are **incremental and
//! chunk-deduplicated** (module [`chunk`]): payloads are split into
//! fixed-size content-hashed chunks, [`Checkpointer::commit`] writes only
//! the chunks that changed since the previous commit plus a compact
//! manifest, and the neighbor copy ships only those dirty chunks.
//! Periodic full commits bound the delta chain; every restore reassembles
//! a full image from manifest + chunks and verifies a whole-payload
//! checksum, falling back to the previous consistent version on any gap.
//!
//! Because node-local storage dies with the node, a failed rank's state is
//! recovered from the *neighbor's* replica — and since failures change who
//! neighbors whom, the library is itself fault-aware:
//! [`Checkpointer::refresh_failed`] re-derives the neighbor ring from the
//! cumulative failed-process list the fault detector distributes, exactly
//! as the paper describes ("the C/R library refreshes its list of
//! neighboring processes based on the failed processes list provided by
//! the application thread"), and additionally forces the next commit to be
//! full so a new replica holder gets a self-contained base image.
//!
//! Restore resolution order ([`Checkpointer::restore_latest`]):
//! local node → neighbor replica → PFS; the returned [`Provenance`] lets
//! benchmarks attribute re-initialization cost (the paper's OHF3), and the
//! [`RestoreOutcome`] distinguishes *why* a restore missed (not found /
//! timeout / checksum mismatch) for the recovery vote path.

pub mod chunk;
pub mod codec;
pub mod neighbor;
pub mod pfs;
pub mod service;
pub mod stats;
pub mod writer;

pub use chunk::{
    chunk_hashes, chunk_range, chunk_tag, Manifest, CHUNK_TAG_BIT, DEFAULT_CHUNK_SIZE,
};
pub use codec::{fnv1a64, CodecError, Dec, Enc};
pub use neighbor::NeighborMap;
pub use pfs::{Pfs, PfsConfig};
pub use stats::CkptStats;
pub use writer::{
    Checkpointer, CheckpointerConfig, CheckpointerConfigBuilder, ConfigError, CopyPolicy,
    Provenance, RestoreOutcome, Restored,
};
