//! Checkpoint-tier counters as plain data.
//!
//! Each [`crate::Checkpointer`] counts its own activity (commits, dirty
//! chunks, neighbor copies, PFS spills, restores by provenance); a
//! [`CkptStats`] is the point-in-time readout. The struct is plain `Copy`
//! data so application summaries can carry it out of a rank thread and a
//! harness can [`CkptStats::merge`] the per-rank values into a job-wide
//! total — the checkpoint rows of the telemetry report.
//!
//! Byte accounting of the incremental pipeline: `bytes_local` stays the
//! *logical* full-image size of every commit (what the legacy pipeline
//! shipped), while `chunk_bytes` + `manifest_bytes` is what was
//! physically written and `copy_bytes` what crossed the wire to the
//! neighbor — `dedup_bytes = bytes_local − chunk_bytes` is the win.

/// Point-in-time checkpoint counters for one rank (or, after
/// [`CkptStats::merge`], a whole job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Checkpoint commits (local manifest + dirty-chunk writes).
    pub local_writes: u64,
    /// Logical payload bytes committed (full-image equivalent).
    pub bytes_local: u64,
    /// Commits written as full checkpoints (every chunk dirty).
    pub full_commits: u64,
    /// Commits written incrementally (only changed chunks).
    pub incremental_commits: u64,
    /// Dirty chunks written to the local chunk store.
    pub chunks_written: u64,
    /// Bytes of dirty chunks written to the local chunk store.
    pub chunk_bytes: u64,
    /// Clean payload bytes *not* rewritten thanks to chunk dedup.
    pub dedup_bytes: u64,
    /// Manifest bytes written locally.
    pub manifest_bytes: u64,
    /// Asynchronous neighbor copies completed.
    pub neighbor_copies: u64,
    /// Neighbor copies that failed (dead neighbor / broken link).
    pub copy_failures: u64,
    /// Bytes shipped to the neighbor replica (dirty chunks + manifest).
    pub copy_bytes: u64,
    /// Checkpoint versions spilled (as reconstituted full images) to the
    /// PFS tier.
    pub pfs_spills: u64,
    /// Restores served from the local node.
    pub restores_local: u64,
    /// Restores served from the neighbor replica.
    pub restores_neighbor: u64,
    /// Restores served from the PFS.
    pub restores_pfs: u64,
    /// Total payload bytes restored (all provenances).
    pub restore_bytes: u64,
    /// Manifest versions skipped during restore because a referenced
    /// chunk was missing (fell back to an older version / another tier).
    pub restore_gaps: u64,
    /// Reassembled payloads rejected by the whole-payload checksum.
    pub checksum_failures: u64,
}

impl CkptStats {
    /// Accumulate `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &CkptStats) {
        self.local_writes += other.local_writes;
        self.bytes_local += other.bytes_local;
        self.full_commits += other.full_commits;
        self.incremental_commits += other.incremental_commits;
        self.chunks_written += other.chunks_written;
        self.chunk_bytes += other.chunk_bytes;
        self.dedup_bytes += other.dedup_bytes;
        self.manifest_bytes += other.manifest_bytes;
        self.neighbor_copies += other.neighbor_copies;
        self.copy_failures += other.copy_failures;
        self.copy_bytes += other.copy_bytes;
        self.pfs_spills += other.pfs_spills;
        self.restores_local += other.restores_local;
        self.restores_neighbor += other.restores_neighbor;
        self.restores_pfs += other.restores_pfs;
        self.restore_bytes += other.restore_bytes;
        self.restore_gaps += other.restore_gaps;
        self.checksum_failures += other.checksum_failures;
    }

    /// Restores served from any tier.
    pub fn total_restores(&self) -> u64 {
        self.restores_local + self.restores_neighbor + self.restores_pfs
    }

    /// Physically written bytes (dirty chunks + manifests) as a fraction
    /// of the logical full-image bytes; 1.0 when nothing was committed.
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_local == 0 {
            return 1.0;
        }
        (self.chunk_bytes + self.manifest_bytes) as f64 / self.bytes_local as f64
    }

    /// Counter deltas `self - earlier` (saturating), mirroring
    /// `MetricsSnapshot::since` in the cluster crate so telemetry can
    /// diff all counter families uniformly.
    pub fn since(&self, earlier: &CkptStats) -> CkptStats {
        CkptStats {
            local_writes: self.local_writes.saturating_sub(earlier.local_writes),
            bytes_local: self.bytes_local.saturating_sub(earlier.bytes_local),
            full_commits: self.full_commits.saturating_sub(earlier.full_commits),
            incremental_commits: self
                .incremental_commits
                .saturating_sub(earlier.incremental_commits),
            chunks_written: self.chunks_written.saturating_sub(earlier.chunks_written),
            chunk_bytes: self.chunk_bytes.saturating_sub(earlier.chunk_bytes),
            dedup_bytes: self.dedup_bytes.saturating_sub(earlier.dedup_bytes),
            manifest_bytes: self.manifest_bytes.saturating_sub(earlier.manifest_bytes),
            neighbor_copies: self.neighbor_copies.saturating_sub(earlier.neighbor_copies),
            copy_failures: self.copy_failures.saturating_sub(earlier.copy_failures),
            copy_bytes: self.copy_bytes.saturating_sub(earlier.copy_bytes),
            pfs_spills: self.pfs_spills.saturating_sub(earlier.pfs_spills),
            restores_local: self.restores_local.saturating_sub(earlier.restores_local),
            restores_neighbor: self.restores_neighbor.saturating_sub(earlier.restores_neighbor),
            restores_pfs: self.restores_pfs.saturating_sub(earlier.restores_pfs),
            restore_bytes: self.restore_bytes.saturating_sub(earlier.restore_bytes),
            restore_gaps: self.restore_gaps.saturating_sub(earlier.restore_gaps),
            checksum_failures: self.checksum_failures.saturating_sub(earlier.checksum_failures),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = CkptStats { local_writes: 1, restore_bytes: 10, ..Default::default() };
        let b = CkptStats {
            local_writes: 2,
            restores_local: 1,
            restores_neighbor: 2,
            restores_pfs: 3,
            chunks_written: 4,
            chunk_bytes: 100,
            dedup_bytes: 50,
            manifest_bytes: 7,
            copy_bytes: 20,
            restore_gaps: 1,
            checksum_failures: 1,
            full_commits: 1,
            incremental_commits: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.local_writes, 3);
        assert_eq!(a.restore_bytes, 10);
        assert_eq!(a.total_restores(), 6);
        assert_eq!(a.chunks_written, 4);
        assert_eq!(a.chunk_bytes, 100);
        assert_eq!(a.dedup_bytes, 50);
        assert_eq!(a.manifest_bytes, 7);
        assert_eq!(a.copy_bytes, 20);
        assert_eq!(a.restore_gaps, 1);
        assert_eq!(a.checksum_failures, 1);
        assert_eq!(a.full_commits + a.incremental_commits, 2);
    }

    #[test]
    fn since_saturates() {
        let a = CkptStats { local_writes: 5, pfs_spills: 1, chunk_bytes: 9, ..Default::default() };
        let b = CkptStats { local_writes: 3, pfs_spills: 2, chunk_bytes: 4, ..Default::default() };
        let d = a.since(&b);
        assert_eq!(d.local_writes, 2);
        assert_eq!(d.pfs_spills, 0);
        assert_eq!(d.chunk_bytes, 5);
    }

    #[test]
    fn dedup_ratio_of_idle_stats_is_one() {
        assert_eq!(CkptStats::default().dedup_ratio(), 1.0);
        let s = CkptStats {
            bytes_local: 100,
            chunk_bytes: 30,
            manifest_bytes: 10,
            ..Default::default()
        };
        assert!((s.dedup_ratio() - 0.4).abs() < 1e-12);
    }
}
