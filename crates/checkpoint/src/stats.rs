//! Checkpoint-tier counters as plain data.
//!
//! Each [`crate::Checkpointer`] counts its own activity (local writes,
//! neighbor copies, PFS spills, restores by provenance); a
//! [`CkptStats`] is the point-in-time readout. The struct is plain `Copy`
//! data so application summaries can carry it out of a rank thread and a
//! harness can [`CkptStats::merge`] the per-rank values into a job-wide
//! total — the checkpoint rows of the telemetry report.

/// Point-in-time checkpoint counters for one rank (or, after
/// [`CkptStats::merge`], a whole job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Checkpoints written to the local node (`write_local` calls).
    pub local_writes: u64,
    /// Bytes written to the local node.
    pub bytes_local: u64,
    /// Asynchronous neighbor copies completed.
    pub neighbor_copies: u64,
    /// Neighbor copies that failed (dead neighbor / broken link).
    pub copy_failures: u64,
    /// Checkpoint versions spilled to the PFS tier.
    pub pfs_spills: u64,
    /// Restores served from the local node.
    pub restores_local: u64,
    /// Restores served from the neighbor replica.
    pub restores_neighbor: u64,
    /// Restores served from the PFS.
    pub restores_pfs: u64,
    /// Total payload bytes restored (all provenances).
    pub restore_bytes: u64,
}

impl CkptStats {
    /// Accumulate `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &CkptStats) {
        self.local_writes += other.local_writes;
        self.bytes_local += other.bytes_local;
        self.neighbor_copies += other.neighbor_copies;
        self.copy_failures += other.copy_failures;
        self.pfs_spills += other.pfs_spills;
        self.restores_local += other.restores_local;
        self.restores_neighbor += other.restores_neighbor;
        self.restores_pfs += other.restores_pfs;
        self.restore_bytes += other.restore_bytes;
    }

    /// Restores served from any tier.
    pub fn total_restores(&self) -> u64 {
        self.restores_local + self.restores_neighbor + self.restores_pfs
    }

    /// Counter deltas `self - earlier` (saturating), mirroring
    /// `MetricsSnapshot::since` in the cluster crate so telemetry can
    /// diff all counter families uniformly.
    pub fn since(&self, earlier: &CkptStats) -> CkptStats {
        CkptStats {
            local_writes: self.local_writes.saturating_sub(earlier.local_writes),
            bytes_local: self.bytes_local.saturating_sub(earlier.bytes_local),
            neighbor_copies: self.neighbor_copies.saturating_sub(earlier.neighbor_copies),
            copy_failures: self.copy_failures.saturating_sub(earlier.copy_failures),
            pfs_spills: self.pfs_spills.saturating_sub(earlier.pfs_spills),
            restores_local: self.restores_local.saturating_sub(earlier.restores_local),
            restores_neighbor: self.restores_neighbor.saturating_sub(earlier.restores_neighbor),
            restores_pfs: self.restores_pfs.saturating_sub(earlier.restores_pfs),
            restore_bytes: self.restore_bytes.saturating_sub(earlier.restore_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = CkptStats { local_writes: 1, restore_bytes: 10, ..Default::default() };
        let b = CkptStats {
            local_writes: 2,
            restores_local: 1,
            restores_neighbor: 2,
            restores_pfs: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.local_writes, 3);
        assert_eq!(a.restore_bytes, 10);
        assert_eq!(a.total_restores(), 6);
    }

    #[test]
    fn since_saturates() {
        let a = CkptStats { local_writes: 5, pfs_spills: 1, ..Default::default() };
        let b = CkptStats { local_writes: 3, pfs_spills: 2, ..Default::default() };
        let d = a.since(&b);
        assert_eq!(d.local_writes, 2);
        assert_eq!(d.pfs_spills, 0);
    }
}
