//! The fault-aware neighbor ring.
//!
//! A rank's checkpoints are replicated to the *next working node* in a
//! ring over the topology. "Working" is derived from the cumulative
//! failed-process list distributed by the fault detector, so every rank —
//! including a rescue process that just joined — derives exactly the same
//! ring from the same list (the map is a pure function of the failed set).
//!
//! The replication traffic this ring routes is counted by the writer's
//! [`crate::CkptStats`] (`neighbor_copies` / `copy_failures`), which the
//! telemetry layer folds into the per-run report.

use std::collections::HashSet;

use ft_cluster::{NodeId, Rank, Topology};

/// Pure function of (topology, cumulative failed ranks) → neighbor ring.
#[derive(Debug, Clone)]
pub struct NeighborMap {
    topo: Topology,
    failed: HashSet<Rank>,
    generation: u64,
}

impl NeighborMap {
    /// A ring with no failures.
    pub fn new(topo: Topology) -> Self {
        Self { topo, failed: HashSet::new(), generation: 0 }
    }

    /// A ring derived from a cumulative failed list.
    pub fn from_failed(topo: Topology, failed: impl IntoIterator<Item = Rank>) -> Self {
        let failed: HashSet<Rank> = failed.into_iter().collect();
        let generation = u64::from(!failed.is_empty());
        Self { topo, failed, generation }
    }

    /// Record additional failures (the paper's refresh after recovery).
    pub fn mark_failed(&mut self, ranks: &[Rank]) {
        let before = self.failed.len();
        self.failed.extend(ranks.iter().copied());
        if self.failed.len() != before {
            self.generation += 1;
        }
    }

    /// Monotone counter bumped whenever the failed set (and hence,
    /// possibly, the ring) changes. The incremental checkpoint writer
    /// compares this across commits: after a ring change, the next
    /// commit is forced *full* so a new replica holder receives a
    /// self-contained base image rather than a dirty-chunk delta against
    /// state it never had.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cumulative failed set.
    pub fn failed(&self) -> &HashSet<Rank> {
        &self.failed
    }

    /// A node is considered dead when every rank placed on it has failed
    /// (its local storage is then presumed lost).
    pub fn node_dead(&self, node: NodeId) -> bool {
        self.topo.ranks_on(node).all(|r| self.failed.contains(&r))
    }

    /// The next working node after `node` in the ring — where `node`'s
    /// checkpoints are replicated. `None` if no other working node exists.
    pub fn neighbor_of(&self, node: NodeId) -> Option<NodeId> {
        self.topo.next_live_node(node, |n| self.node_dead(n))
    }

    /// Neighbor node for a *rank*'s checkpoints.
    pub fn neighbor_of_rank(&self, rank: Rank) -> Option<NodeId> {
        self.neighbor_of(self.topo.node_of(rank))
    }

    /// The topology this map is over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_ring_is_successor() {
        let m = NeighborMap::new(Topology::one_per_node(4));
        assert_eq!(m.neighbor_of(NodeId(0)), Some(NodeId(1)));
        assert_eq!(m.neighbor_of(NodeId(3)), Some(NodeId(0)));
    }

    #[test]
    fn failures_shift_the_ring() {
        let mut m = NeighborMap::new(Topology::one_per_node(5));
        m.mark_failed(&[1, 2]);
        assert!(m.node_dead(NodeId(1)));
        assert_eq!(m.neighbor_of(NodeId(0)), Some(NodeId(3)));
        // The dead node's own neighbor is still well-defined (used to find
        // its replica holder).
        assert_eq!(m.neighbor_of(NodeId(1)), Some(NodeId(3)));
    }

    #[test]
    fn multi_rank_nodes_die_only_fully() {
        let mut m = NeighborMap::new(Topology::new(6, 2)); // 3 nodes × 2 ranks
        m.mark_failed(&[2]); // node1 half dead
        assert!(!m.node_dead(NodeId(1)));
        assert_eq!(m.neighbor_of(NodeId(0)), Some(NodeId(1)));
        m.mark_failed(&[3]); // node1 fully dead
        assert!(m.node_dead(NodeId(1)));
        assert_eq!(m.neighbor_of(NodeId(0)), Some(NodeId(2)));
    }

    #[test]
    fn no_working_neighbor_left() {
        let mut m = NeighborMap::new(Topology::one_per_node(2));
        m.mark_failed(&[1]);
        assert_eq!(m.neighbor_of(NodeId(0)), None);
    }

    #[test]
    fn generation_tracks_ring_changes_only() {
        let mut m = NeighborMap::new(Topology::one_per_node(4));
        assert_eq!(m.generation(), 0);
        m.mark_failed(&[1]);
        assert_eq!(m.generation(), 1);
        m.mark_failed(&[1]); // already failed: no change
        assert_eq!(m.generation(), 1);
        m.mark_failed(&[2, 3]);
        assert_eq!(m.generation(), 2);
    }

    #[test]
    fn pure_function_of_failed_set() {
        let topo = Topology::one_per_node(8);
        let mut a = NeighborMap::new(topo.clone());
        a.mark_failed(&[3]);
        a.mark_failed(&[5, 6]);
        let b = NeighborMap::from_failed(topo, [6, 3, 5]);
        for n in 0..8 {
            assert_eq!(a.neighbor_of(NodeId(n)), b.neighbor_of(NodeId(n)));
        }
    }
}
