//! Checkpoint payload codec — now a re-export.
//!
//! The codec started life here, but once the transport grew a real wire
//! (process backend) the same encoder had to serve fault schedules and RPC
//! payloads below this crate, so it moved into [`ft_cluster::codec`]. This
//! shim keeps the historical `ft_checkpoint::codec::{Enc, Dec}` paths
//! working.

pub use ft_cluster::codec::{fnv1a64, from_hex, to_hex, CodecError, Dec, Enc};
