//! The checkpointer: local write, asynchronous neighbor copy, restore.
//!
//! Mirrors the paper's Fig. 2 interaction: at `init` the library spawns a
//! thread that waits for a signal from the application; at a checkpoint
//! iteration the application writes the checkpoint on its local node and
//! signals the thread, which then copies the blob to the neighbor node
//! (and, optionally, every k-th version to the PFS). The application never
//! blocks on the replication — which is why the paper measures ≈0.01 %
//! checkpoint overhead in failure-free runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use ft_cluster::{BlobKey, Envelope, NodeId, NodeStorage, Outcome, Rank, Topology, Transport};
use ft_gaspi::GaspiProc;

use crate::neighbor::NeighborMap;
use crate::pfs::Pfs;
use crate::stats::CkptStats;

/// Where a restored checkpoint came from (the paper's OHF3 has different
/// cost depending on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Found on the caller's own node.
    Local,
    /// Fetched from the neighbor node's replica.
    Neighbor(NodeId),
    /// Read back from the parallel file system.
    Pfs,
}

/// A successfully restored checkpoint.
#[derive(Debug, Clone)]
pub struct Restored {
    /// Checkpoint version (the application's checkpoint counter).
    pub version: u64,
    /// Checkpoint payload.
    pub data: Vec<u8>,
    /// Which tier served it.
    pub provenance: Provenance,
}

/// Checkpointer configuration.
#[derive(Debug, Clone)]
pub struct CheckpointerConfig {
    /// Stream tag separating independent checkpoint streams (state vs.
    /// communication plan).
    pub tag: u32,
    /// How many recent versions to keep on each tier (≥1; 2 tolerates a
    /// failure *during* checkpointing).
    pub keep_versions: u64,
    /// Also copy every k-th version to the PFS (None = never).
    pub pfs_every: Option<u64>,
    /// Replicate to the neighbor node (disable only for ablations).
    pub neighbor_copy: bool,
}

impl CheckpointerConfig {
    /// Defaults matching the paper's setup: neighbor copies on, keep two
    /// versions, no PFS.
    pub fn for_tag(tag: u32) -> Self {
        Self { tag, keep_versions: 2, pfs_every: None, neighbor_copy: true }
    }
}

enum Job {
    Copy { version: u64 },
    Stop,
}

#[derive(Default)]
struct Pending {
    count: Mutex<u64>,
    cv: Condvar,
}

/// Per-rank neighbor-level checkpoint/restart handle.
pub struct Checkpointer {
    rank: Rank,
    node: NodeId,
    topo: Topology,
    cfg: CheckpointerConfig,
    storage: Arc<NodeStorage>,
    transport: Transport,
    pfs: Option<Arc<Pfs>>,
    neighbors: Arc<Mutex<NeighborMap>>,
    tx: Sender<Job>,
    worker: Option<std::thread::JoinHandle<()>>,
    pending: Arc<Pending>,
    /// Completed neighbor copies.
    pub copies_done: Arc<AtomicU64>,
    /// Neighbor copies that failed (broken link / dead neighbor).
    pub copy_failures: Arc<AtomicU64>,
    /// Local checkpoint bytes written.
    pub bytes_local: AtomicU64,
    /// Local checkpoint writes.
    pub local_writes: AtomicU64,
    /// Versions spilled to the PFS tier (library thread).
    pub pfs_spills: Arc<AtomicU64>,
    /// Restores served locally / from the neighbor replica / from PFS.
    pub restores_local: AtomicU64,
    /// Restores served from the neighbor replica.
    pub restores_neighbor: AtomicU64,
    /// Restores served from the PFS tier.
    pub restores_pfs: AtomicU64,
    /// Total payload bytes restored.
    pub restore_bytes: AtomicU64,
}

impl Checkpointer {
    /// `init`: bind to a rank and spawn the library thread (paper Fig. 2).
    pub fn new(proc: &GaspiProc, cfg: CheckpointerConfig, pfs: Option<Arc<Pfs>>) -> Self {
        let rank = proc.rank();
        let topo = proc.topology().clone();
        let node = topo.node_of(rank);
        let storage = proc.cluster_storage();
        let transport = proc.cluster_transport();
        let neighbors = Arc::new(Mutex::new(NeighborMap::new(topo.clone())));
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(Pending::default());
        let copies_done = Arc::new(AtomicU64::new(0));
        let copy_failures = Arc::new(AtomicU64::new(0));
        let pfs_spills = Arc::new(AtomicU64::new(0));

        let w_storage = Arc::clone(&storage);
        let w_transport = transport.clone();
        let w_neighbors = Arc::clone(&neighbors);
        let w_pending = Arc::clone(&pending);
        let w_done = Arc::clone(&copies_done);
        let w_fail = Arc::clone(&copy_failures);
        let w_spills = Arc::clone(&pfs_spills);
        let w_pfs = pfs.clone();
        let w_cfg = cfg.clone();
        let w_topo = topo.clone();
        let worker = std::thread::Builder::new()
            .name(format!("ckpt-lib-{rank}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Stop => break,
                        Job::Copy { version } => copy_one(
                            rank,
                            node,
                            version,
                            &w_cfg,
                            &w_topo,
                            &w_storage,
                            &w_transport,
                            &w_neighbors,
                            &w_pending,
                            &w_done,
                            &w_fail,
                            &w_spills,
                            w_pfs.as_deref(),
                        ),
                    }
                }
            })
            .expect("spawn checkpoint library thread");

        Self {
            rank,
            node,
            topo,
            cfg,
            storage,
            transport,
            pfs,
            neighbors,
            tx,
            worker: Some(worker),
            pending,
            copies_done,
            copy_failures,
            bytes_local: AtomicU64::new(0),
            local_writes: AtomicU64::new(0),
            pfs_spills,
            restores_local: AtomicU64::new(0),
            restores_neighbor: AtomicU64::new(0),
            restores_pfs: AtomicU64::new(0),
            restore_bytes: AtomicU64::new(0),
        }
    }

    /// Point-in-time readout of every counter (see [`CkptStats`]).
    /// Neighbor-copy and PFS-spill counts are updated by the library
    /// thread, so call [`Checkpointer::drain`] first for an exact view
    /// after the last checkpoint.
    pub fn stats(&self) -> CkptStats {
        CkptStats {
            local_writes: self.local_writes.load(Ordering::Relaxed),
            bytes_local: self.bytes_local.load(Ordering::Relaxed),
            neighbor_copies: self.copies_done.load(Ordering::Relaxed),
            copy_failures: self.copy_failures.load(Ordering::Relaxed),
            pfs_spills: self.pfs_spills.load(Ordering::Relaxed),
            restores_local: self.restores_local.load(Ordering::Relaxed),
            restores_neighbor: self.restores_neighbor.load(Ordering::Relaxed),
            restores_pfs: self.restores_pfs.load(Ordering::Relaxed),
            restore_bytes: self.restore_bytes.load(Ordering::Relaxed),
        }
    }

    /// The stream tag.
    pub fn tag(&self) -> u32 {
        self.cfg.tag
    }

    /// Write a checkpoint on the local node and signal the library thread
    /// to replicate it. Returns immediately after the (in-memory) local
    /// write — the fast path the paper relies on.
    ///
    /// `version` must increase by 1 per checkpoint (use *checkpoint
    /// counter*, not iteration number): `keep_versions` pruning assumes
    /// consecutive versions.
    pub fn checkpoint(&self, version: u64, payload: Vec<u8>) {
        self.transport.fault().site(self.rank, "ckpt.local.write");
        self.write_local(version, payload);
        self.signal_copy(version);
    }

    /// The local-node write alone.
    pub fn write_local(&self, version: u64, payload: Vec<u8>) {
        let key = BlobKey { rank: self.rank, tag: self.cfg.tag, version };
        self.bytes_local.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.local_writes.fetch_add(1, Ordering::Relaxed);
        self.storage.put(self.node, key, Arc::new(payload));
        if version + 1 >= self.cfg.keep_versions {
            let keep_from = version + 1 - self.cfg.keep_versions;
            self.storage.prune(self.node, self.rank, self.cfg.tag, keep_from);
        }
    }

    /// Signal the library thread to copy `version` to the neighbor (and
    /// PFS when due) — the paper's "signals the library thread after
    /// completion".
    pub fn signal_copy(&self, version: u64) {
        *self.pending.count.lock() += 1;
        if self.tx.send(Job::Copy { version }).is_err() {
            let mut c = self.pending.count.lock();
            *c -= 1;
        }
    }

    /// Block until all signaled copies have been replicated (or failed).
    /// Used by tests and by shutdown; the application itself never calls
    /// this on the fast path.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut c = self.pending.count.lock();
        while *c != 0 {
            if self.pending.cv.wait_until(&mut c, deadline).timed_out() {
                return *c == 0;
            }
        }
        true
    }

    /// Fault-aware refresh: fold the cumulative failed list into the
    /// neighbor ring (paper §IV-C). Call after every recovery.
    pub fn refresh_failed(&self, failed: &[Rank]) {
        self.neighbors.lock().mark_failed(failed);
    }

    /// Current neighbor node for this rank's checkpoints.
    pub fn neighbor_node(&self) -> Option<NodeId> {
        self.neighbors.lock().neighbor_of(self.node)
    }

    /// Latest locally stored version for `for_rank` (only meaningful when
    /// `for_rank`'s node is this rank's node).
    fn local_latest(&self, for_rank: Rank) -> Option<u64> {
        if self.topo.node_of(for_rank) != self.node {
            return None;
        }
        self.storage.latest_version(self.node, for_rank, self.cfg.tag)
    }

    /// Count a served restore by provenance (the paper's OHF3 cost
    /// differs per tier).
    fn count_restore(&self, r: &Restored) {
        match r.provenance {
            Provenance::Local => self.restores_local.fetch_add(1, Ordering::Relaxed),
            Provenance::Neighbor(_) => self.restores_neighbor.fetch_add(1, Ordering::Relaxed),
            Provenance::Pfs => self.restores_pfs.fetch_add(1, Ordering::Relaxed),
        };
        self.restore_bytes.fetch_add(r.data.len() as u64, Ordering::Relaxed);
    }

    /// Restore the newest reachable checkpoint of `for_rank` (usually
    /// `self.rank()`, or the failed rank a rescue process adopted).
    /// Resolution order: local node → neighbor replica → PFS.
    pub fn restore_latest(&self, for_rank: Rank, timeout: Duration) -> Option<Restored> {
        self.transport.fault().site(self.rank, "ckpt.restore");
        let r = self.restore_latest_uncounted(for_rank, timeout)?;
        self.count_restore(&r);
        Some(r)
    }

    fn restore_latest_uncounted(&self, for_rank: Rank, timeout: Duration) -> Option<Restored> {
        // 1. Local.
        if let Some(v) = self.local_latest(for_rank) {
            let key = BlobKey { rank: for_rank, tag: self.cfg.tag, version: v };
            if let Some(data) = self.storage.get(self.node, key) {
                return Some(Restored {
                    version: v,
                    data: data.as_ref().clone(),
                    provenance: Provenance::Local,
                });
            }
        }
        // 2. Neighbor replica.
        if let Some(r) = self.fetch_from_neighbor(for_rank, None, timeout) {
            return Some(r);
        }
        // 3. PFS.
        let pfs = self.pfs.as_ref()?;
        let v = pfs.latest_version(for_rank, self.cfg.tag)?;
        let data = pfs.read(for_rank, self.cfg.tag, v)?;
        Some(Restored { version: v, data: data.as_ref().clone(), provenance: Provenance::Pfs })
    }

    /// Restore a specific version (after the group agreed on a consistent
    /// one, e.g. via an allreduce-min over each member's newest version).
    pub fn restore_exact(
        &self,
        for_rank: Rank,
        version: u64,
        timeout: Duration,
    ) -> Option<Restored> {
        self.transport.fault().site(self.rank, "ckpt.restore");
        let r = self.restore_exact_uncounted(for_rank, version, timeout)?;
        self.count_restore(&r);
        Some(r)
    }

    fn restore_exact_uncounted(
        &self,
        for_rank: Rank,
        version: u64,
        timeout: Duration,
    ) -> Option<Restored> {
        let key = BlobKey { rank: for_rank, tag: self.cfg.tag, version };
        if self.topo.node_of(for_rank) == self.node {
            if let Some(data) = self.storage.get(self.node, key) {
                return Some(Restored {
                    version,
                    data: data.as_ref().clone(),
                    provenance: Provenance::Local,
                });
            }
        }
        if let Some(r) = self.fetch_from_neighbor(for_rank, Some(version), timeout) {
            return Some(r);
        }
        let pfs = self.pfs.as_ref()?;
        let data = pfs.read(for_rank, self.cfg.tag, version)?;
        Some(Restored { version, data: data.as_ref().clone(), provenance: Provenance::Pfs })
    }

    /// The newest version this rank could restore for `for_rank`, without
    /// transferring the payload. Feed the group minimum of this into
    /// [`Checkpointer::restore_exact`].
    pub fn latest_restorable(&self, for_rank: Rank, timeout: Duration) -> Option<u64> {
        let local = self.local_latest(for_rank);
        let replica_node = self.neighbors.lock().neighbor_of(self.topo.node_of(for_rank));
        let neighbor = replica_node.and_then(|nb| {
            if nb == self.node {
                self.storage.latest_version(nb, for_rank, self.cfg.tag)
            } else {
                self.remote_latest(nb, for_rank, timeout)
            }
        });
        let pfs = self.pfs.as_ref().and_then(|p| p.latest_version(for_rank, self.cfg.tag));
        [local, neighbor, pfs].into_iter().flatten().max()
    }

    /// Fetch `for_rank`'s checkpoint from the neighbor replica holder.
    fn fetch_from_neighbor(
        &self,
        for_rank: Rank,
        version: Option<u64>,
        timeout: Duration,
    ) -> Option<Restored> {
        let home = self.topo.node_of(for_rank);
        let replica_node = self.neighbors.lock().neighbor_of(home)?;
        let tag = self.cfg.tag;
        if replica_node == self.node {
            // The rescue process happens to *be* the replica holder.
            let v = version.or_else(|| self.storage.latest_version(self.node, for_rank, tag))?;
            let key = BlobKey { rank: for_rank, tag, version: v };
            let data = self.storage.get(self.node, key)?;
            return Some(Restored {
                version: v,
                data: data.as_ref().clone(),
                provenance: Provenance::Neighbor(replica_node),
            });
        }
        // Remote fetch: request → replica holder reads its node storage →
        // costed response.
        let dst = self.representative_rank(replica_node)?;
        type Cell = Arc<(Mutex<Option<Option<(u64, Arc<Vec<u8>>)>>>, Condvar)>;
        let cell: Cell = Arc::new((Mutex::new(None), Condvar::new()));
        let c1 = Arc::clone(&cell);
        let storage = Arc::clone(&self.storage);
        let me = self.rank;
        self.transport.post(Envelope {
            src: me,
            dst,
            queue: u16::MAX, // dedicated checkpoint-fetch stream
            bytes: 24,
            action: Box::new(move |t, out| {
                let found = (out == Outcome::Delivered)
                    .then(|| {
                        let v = version
                            .or_else(|| storage.latest_version(replica_node, for_rank, tag))?;
                        let key = BlobKey { rank: for_rank, tag, version: v };
                        storage.get(replica_node, key).map(|d| (v, d))
                    })
                    .flatten();
                let bytes = found.as_ref().map_or(0, |(_, d)| d.len());
                let c2 = Arc::clone(&c1);
                t.post(Envelope {
                    src: dst,
                    dst: me,
                    queue: u16::MAX,
                    bytes,
                    action: Box::new(move |_, out2| {
                        let value = if out2 == Outcome::Delivered { found } else { None };
                        *c2.0.lock() = Some(value);
                        c2.1.notify_all();
                    }),
                });
            }),
        });
        let deadline = Instant::now() + timeout;
        let mut g = cell.0.lock();
        while g.is_none() {
            if cell.1.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        let (v, data) = g.take().flatten()?;
        Some(Restored {
            version: v,
            data: data.as_ref().clone(),
            provenance: Provenance::Neighbor(replica_node),
        })
    }

    /// Version-only remote query against the replica holder.
    fn remote_latest(
        &self,
        replica_node: NodeId,
        for_rank: Rank,
        timeout: Duration,
    ) -> Option<u64> {
        let dst = self.representative_rank(replica_node)?;
        let tag = self.cfg.tag;
        type Cell = Arc<(Mutex<Option<Option<u64>>>, Condvar)>;
        let cell: Cell = Arc::new((Mutex::new(None), Condvar::new()));
        let c1 = Arc::clone(&cell);
        let storage = Arc::clone(&self.storage);
        let me = self.rank;
        self.transport.post(Envelope {
            src: me,
            dst,
            queue: u16::MAX,
            bytes: 16,
            action: Box::new(move |t, out| {
                let v = (out == Outcome::Delivered)
                    .then(|| storage.latest_version(replica_node, for_rank, tag))
                    .flatten();
                let c2 = Arc::clone(&c1);
                t.post(Envelope {
                    src: dst,
                    dst: me,
                    queue: u16::MAX,
                    bytes: 8,
                    action: Box::new(move |_, out2| {
                        *c2.0.lock() = Some(if out2 == Outcome::Delivered { v } else { None });
                        c2.1.notify_all();
                    }),
                });
            }),
        });
        let deadline = Instant::now() + timeout;
        let mut g = cell.0.lock();
        while g.is_none() {
            if cell.1.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        g.take().flatten()
    }

    /// Lowest non-failed rank on `node` — the endpoint for remote fetches.
    fn representative_rank(&self, node: NodeId) -> Option<Rank> {
        let nb = self.neighbors.lock();
        self.topo.ranks_on(node).find(|r| !nb.failed().contains(r))
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Stop);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// One neighbor (and possibly PFS) replication, on the library thread.
#[allow(clippy::too_many_arguments)]
fn copy_one(
    rank: Rank,
    node: NodeId,
    version: u64,
    cfg: &CheckpointerConfig,
    topo: &Topology,
    storage: &Arc<NodeStorage>,
    transport: &Transport,
    neighbors: &Arc<Mutex<NeighborMap>>,
    pending: &Arc<Pending>,
    done: &Arc<AtomicU64>,
    failed: &Arc<AtomicU64>,
    spills: &Arc<AtomicU64>,
    pfs: Option<&Pfs>,
) {
    let finish = |ok: bool| {
        if ok {
            done.fetch_add(1, Ordering::Relaxed);
        } else {
            failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut c = pending.count.lock();
        *c -= 1;
        pending.cv.notify_all();
    };
    let key = BlobKey { rank, tag: cfg.tag, version };
    let Some(data) = storage.get(node, key) else {
        // Node died (or version pruned) between signal and copy.
        finish(false);
        return;
    };
    // Passive site: this is the library thread, not the rank's own, so a
    // matching kill only poisons liveness — re-check and bail like the
    // storage probe above, modeling a rank dying mid-replication.
    transport.fault().site_passive(rank, "ckpt.neighbor.copy");
    if !transport.fault().is_alive(rank) {
        finish(false);
        return;
    }
    // PFS tier first (blocking, costed — deliberately on this thread, not
    // the application's).
    if let (Some(p), Some(k)) = (pfs, cfg.pfs_every) {
        if k > 0 && version.is_multiple_of(k) {
            transport.fault().site_passive(rank, "ckpt.pfs.write");
            p.write(rank, cfg.tag, version, Arc::clone(&data));
            spills.fetch_add(1, Ordering::Relaxed);
        }
    }
    if !cfg.neighbor_copy {
        finish(true);
        return;
    }
    let (neighbor_node, dst) = {
        let nb = neighbors.lock();
        let Some(nn) = nb.neighbor_of(node) else {
            drop(nb);
            finish(false);
            return;
        };
        let Some(dst) = topo.ranks_on(nn).find(|r| !nb.failed().contains(r)) else {
            drop(nb);
            finish(false);
            return;
        };
        (nn, dst)
    };
    let storage2 = Arc::clone(storage);
    let pending2 = Arc::clone(pending);
    let done2 = Arc::clone(done);
    let failed2 = Arc::clone(failed);
    let bytes = data.len();
    let keep = cfg.keep_versions;
    transport.post(Envelope {
        src: rank,
        dst,
        queue: u16::MAX - 1, // checkpoint replication stream
        bytes,
        action: Box::new(move |_, out| {
            let ok = out == Outcome::Delivered;
            if ok {
                storage2.put(neighbor_node, key, data);
                if version + 1 >= keep {
                    storage2.prune(neighbor_node, rank, key.tag, version + 1 - keep);
                }
            }
            if ok {
                done2.fetch_add(1, Ordering::Relaxed);
            } else {
                failed2.fetch_add(1, Ordering::Relaxed);
            }
            let mut c = pending2.count.lock();
            *c -= 1;
            pending2.cv.notify_all();
        }),
    });
}
