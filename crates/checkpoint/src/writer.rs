//! The checkpointer: incremental local commit, asynchronous neighbor
//! copy, reassembling restore.
//!
//! Mirrors the paper's Fig. 2 interaction: at `init` the library spawns a
//! thread that waits for a signal from the application; at a checkpoint
//! iteration the application commits the checkpoint on its local node and
//! signals the thread, which then replicates it to the neighbor node
//! (and, optionally, every k-th version to the PFS). The application never
//! blocks on the replication — which is why the paper measures ≈0.01 %
//! checkpoint overhead in failure-free runs.
//!
//! On top of the paper's design, commits are **incremental and
//! chunk-deduplicated** (see [`crate::chunk`]): the payload is split into
//! fixed-size content-hashed chunks, only chunks whose hash changed since
//! the previous commit are written (and replicated), and a compact
//! manifest per version ties them together. Chunks are written *before*
//! the manifest, so the manifest put is the atomic commit point: a torn
//! commit (killed mid-chunk or mid-manifest) leaves the new version
//! invisible and every tier falls back to the previous consistent one.
//! Periodic full commits (`full_every`), plus forced fulls after a
//! neighbor-ring change or a non-consecutive version, bound the delta
//! chain; a rescue process adopting a failed identity always restores (and
//! re-homes) a fully materialized image.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use ft_cluster::{BlobKey, NodeId, NodeStorage, Outcome, Rank, Topology, Transport};
use ft_gaspi::GaspiProc;

use crate::chunk::{chunk_hashes, chunk_range, chunk_tag, Manifest, DEFAULT_CHUNK_SIZE};
use crate::codec::fnv1a64;
use crate::neighbor::NeighborMap;
use crate::pfs::Pfs;
use crate::service;
use crate::stats::CkptStats;

/// Where a restored checkpoint came from (the paper's OHF3 has different
/// cost depending on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Found on the caller's own node.
    Local,
    /// Fetched from the neighbor node's replica.
    Neighbor(NodeId),
    /// Read back from the parallel file system.
    Pfs,
}

/// A successfully restored checkpoint.
#[derive(Debug, Clone)]
pub struct Restored {
    /// Checkpoint version (the application's checkpoint counter).
    pub version: u64,
    /// Checkpoint payload (always a fully materialized image).
    pub data: Vec<u8>,
    /// Which tier served it.
    pub provenance: Provenance,
}

/// Whether a commit is replicated to the neighbor (and PFS, when due) or
/// stays on the local node only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPolicy {
    /// Signal the library thread: asynchronous neighbor copy plus the
    /// every-k-th PFS spill — the paper's normal checkpoint path.
    Replicate,
    /// Local-node write only (ablations, scratch state).
    LocalOnly,
}

/// Outcome of a restore probe or fetch, distinguishing *why* nothing was
/// returned — the vote path in `ft-core` surfaces the distinction in its
/// recovery events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreOutcome<T> {
    /// Restored successfully.
    Hit(T),
    /// No tier holds anything restorable (a fresh start, or everything
    /// genuinely lost).
    NotFound,
    /// A remote tier did not answer within the timeout; state may still
    /// exist there.
    Timeout,
    /// A payload was reassembled but rejected by the whole-payload
    /// checksum, and no other tier could serve a valid image.
    ChecksumMismatch {
        /// The newest version that failed verification.
        version: u64,
    },
}

impl<T> RestoreOutcome<T> {
    /// The hit value, discarding miss details.
    pub fn hit(self) -> Option<T> {
        match self {
            RestoreOutcome::Hit(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, RestoreOutcome::Hit(_))
    }

    /// Stable label for the miss ("not-found" / "timeout" /
    /// "checksum-mismatch"), `None` for a hit. Used in recovery events.
    pub fn miss_reason(&self) -> Option<&'static str> {
        match self {
            RestoreOutcome::Hit(_) => None,
            RestoreOutcome::NotFound => Some("not-found"),
            RestoreOutcome::Timeout => Some("timeout"),
            RestoreOutcome::ChecksumMismatch { .. } => Some("checksum-mismatch"),
        }
    }

    /// Map the hit value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RestoreOutcome<U> {
        match self {
            RestoreOutcome::Hit(v) => RestoreOutcome::Hit(f(v)),
            RestoreOutcome::NotFound => RestoreOutcome::NotFound,
            RestoreOutcome::Timeout => RestoreOutcome::Timeout,
            RestoreOutcome::ChecksumMismatch { version } => {
                RestoreOutcome::ChecksumMismatch { version }
            }
        }
    }
}

/// An invalid [`CheckpointerConfig`], rejected by the builder (and by
/// [`Checkpointer::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The tag has the reserved chunk-store bit set.
    ReservedTag(u32),
    /// `keep_versions` must be ≥ 1.
    ZeroKeepVersions,
    /// `chunk_size` must be ≥ 1 and fit the manifest's `u32` field.
    BadChunkSize(usize),
    /// `full_every` must be ≥ 1.
    ZeroFullEvery,
    /// `pfs_every = Some(0)` is meaningless — use `None` to disable.
    ZeroPfsEvery,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ReservedTag(t) => {
                write!(f, "tag {t:#x} uses the reserved chunk-store bit")
            }
            ConfigError::ZeroKeepVersions => write!(f, "keep_versions must be >= 1"),
            ConfigError::BadChunkSize(n) => write!(f, "invalid chunk_size {n}"),
            ConfigError::ZeroFullEvery => write!(f, "full_every must be >= 1"),
            ConfigError::ZeroPfsEvery => write!(f, "pfs_every must be None or >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checkpointer configuration.
#[derive(Debug, Clone)]
pub struct CheckpointerConfig {
    /// Stream tag separating independent checkpoint streams (state vs.
    /// communication plan). The high bit is reserved for the chunk store.
    pub tag: u32,
    /// How many recent versions to keep on each tier (≥1; 2 tolerates a
    /// failure *during* checkpointing).
    pub keep_versions: u64,
    /// Also spill every k-th version to the PFS as a reconstituted full
    /// image (None = never).
    pub pfs_every: Option<u64>,
    /// Replicate to the neighbor node (disable only for ablations).
    pub neighbor_copy: bool,
    /// Chunk size of the incremental pipeline (bytes).
    pub chunk_size: usize,
    /// Write a full (non-incremental) checkpoint whenever
    /// `version % full_every == 0` — bounds the delta-chain length.
    pub full_every: u64,
}

impl CheckpointerConfig {
    /// Defaults matching the paper's setup: neighbor copies on, keep two
    /// versions, no PFS; incremental commits with a full anchor every 8
    /// versions.
    pub fn for_tag(tag: u32) -> Self {
        Self {
            tag,
            keep_versions: 2,
            pfs_every: None,
            neighbor_copy: true,
            chunk_size: DEFAULT_CHUNK_SIZE,
            full_every: 8,
        }
    }

    /// Validating builder over [`CheckpointerConfig::for_tag`] defaults.
    pub fn builder(tag: u32) -> CheckpointerConfigBuilder {
        CheckpointerConfigBuilder { cfg: Self::for_tag(tag) }
    }

    /// Check the invariants the writer relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tag & crate::chunk::CHUNK_TAG_BIT != 0 {
            return Err(ConfigError::ReservedTag(self.tag));
        }
        if self.keep_versions == 0 {
            return Err(ConfigError::ZeroKeepVersions);
        }
        if self.chunk_size == 0 || self.chunk_size > u32::MAX as usize {
            return Err(ConfigError::BadChunkSize(self.chunk_size));
        }
        if self.full_every == 0 {
            return Err(ConfigError::ZeroFullEvery);
        }
        if self.pfs_every == Some(0) {
            return Err(ConfigError::ZeroPfsEvery);
        }
        Ok(())
    }
}

/// Builder returned by [`CheckpointerConfig::builder`]; `build` validates.
#[derive(Debug, Clone)]
pub struct CheckpointerConfigBuilder {
    cfg: CheckpointerConfig,
}

impl CheckpointerConfigBuilder {
    /// Versions retained per tier.
    pub fn keep_versions(mut self, n: u64) -> Self {
        self.cfg.keep_versions = n;
        self
    }

    /// Spill every k-th version to the PFS.
    pub fn pfs_every(mut self, k: u64) -> Self {
        self.cfg.pfs_every = Some(k);
        self
    }

    /// Disable the asynchronous neighbor copy (ablations).
    pub fn no_neighbor_copy(mut self) -> Self {
        self.cfg.neighbor_copy = false;
        self
    }

    /// Chunk size of the incremental pipeline.
    pub fn chunk_size(mut self, bytes: usize) -> Self {
        self.cfg.chunk_size = bytes;
        self
    }

    /// Full-checkpoint period.
    pub fn full_every(mut self, k: u64) -> Self {
        self.cfg.full_every = k;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<CheckpointerConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

enum Job {
    Copy { version: u64, dirty: Vec<u64>, release: Vec<u64> },
    Stop,
}

#[derive(Default)]
struct Pending {
    count: Mutex<u64>,
    cv: Condvar,
}

/// The per-tag chunk-hash table: what the last commit looked like, which
/// manifests are retained (for chunk GC), and whether the next commit
/// must be full.
#[derive(Default)]
struct ChunkTable {
    /// Chunk hashes of the last committed version, by chunk index.
    last: Vec<u64>,
    /// Version of the last commit (None before the first).
    last_version: Option<u64>,
    /// `(version, chunk hashes)` of the retained manifests, oldest first.
    history: VecDeque<(u64, Vec<u64>)>,
    /// Next commit must be a full checkpoint (fresh table, ring change).
    force_full: bool,
    /// Neighbor-ring generation observed at the last commit.
    ring_gen: u64,
}

/// Shared state the library thread needs for one replication job.
struct CopyShared {
    rank: Rank,
    node: NodeId,
    cfg: CheckpointerConfig,
    topo: Topology,
    storage: Arc<NodeStorage>,
    transport: Arc<dyn Transport>,
    neighbors: Arc<Mutex<NeighborMap>>,
    pending: Arc<Pending>,
    done: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    spills: Arc<AtomicU64>,
    copy_bytes: Arc<AtomicU64>,
    pfs: Option<Arc<Pfs>>,
}

/// Per-rank neighbor-level checkpoint/restart handle.
pub struct Checkpointer {
    rank: Rank,
    node: NodeId,
    topo: Topology,
    cfg: CheckpointerConfig,
    storage: Arc<NodeStorage>,
    transport: Arc<dyn Transport>,
    pfs: Option<Arc<Pfs>>,
    neighbors: Arc<Mutex<NeighborMap>>,
    table: Mutex<ChunkTable>,
    tx: Sender<Job>,
    worker: Option<std::thread::JoinHandle<()>>,
    pending: Arc<Pending>,
    /// Completed neighbor copies.
    pub copies_done: Arc<AtomicU64>,
    /// Neighbor copies that failed (broken link / dead neighbor).
    pub copy_failures: Arc<AtomicU64>,
    /// Bytes shipped to the neighbor (dirty chunks + manifests).
    pub copy_bytes: Arc<AtomicU64>,
    /// Logical checkpoint bytes committed (full-image equivalent).
    pub bytes_local: AtomicU64,
    /// Checkpoint commits.
    pub local_writes: AtomicU64,
    /// Full (non-incremental) commits.
    pub full_commits: AtomicU64,
    /// Incremental commits.
    pub incremental_commits: AtomicU64,
    /// Dirty chunks written locally.
    pub chunks_written: AtomicU64,
    /// Bytes of dirty chunks written locally.
    pub chunk_bytes: AtomicU64,
    /// Clean payload bytes skipped thanks to chunk dedup.
    pub dedup_bytes: AtomicU64,
    /// Manifest bytes written locally.
    pub manifest_bytes: AtomicU64,
    /// Versions spilled to the PFS tier (library thread).
    pub pfs_spills: Arc<AtomicU64>,
    /// Restores served locally.
    pub restores_local: AtomicU64,
    /// Restores served from the neighbor replica.
    pub restores_neighbor: AtomicU64,
    /// Restores served from the PFS tier.
    pub restores_pfs: AtomicU64,
    /// Total payload bytes restored.
    pub restore_bytes: AtomicU64,
    /// Manifest versions skipped during restore because a chunk was gone.
    pub restore_gaps: Arc<AtomicU64>,
    /// Reassembled payloads rejected by the whole-payload checksum.
    pub checksum_failures: Arc<AtomicU64>,
}

impl Checkpointer {
    /// `init`: bind to a rank and spawn the library thread (paper Fig. 2).
    ///
    /// Panics on an invalid config — construct through
    /// [`CheckpointerConfig::builder`] to validate ahead of time.
    pub fn new(proc: &GaspiProc, cfg: CheckpointerConfig, pfs: Option<Arc<Pfs>>) -> Self {
        cfg.validate().expect("invalid CheckpointerConfig");
        // Make sure this world answers replication pushes and fetches
        // addressed to this rank (idempotent; first install wins).
        service::install(proc);
        let rank = proc.rank();
        let topo = proc.topology().clone();
        let node = topo.node_of(rank);
        let storage = proc.cluster_storage();
        let transport = proc.cluster_transport();
        let neighbors = Arc::new(Mutex::new(NeighborMap::new(topo.clone())));
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(Pending::default());
        let copies_done = Arc::new(AtomicU64::new(0));
        let copy_failures = Arc::new(AtomicU64::new(0));
        let copy_bytes = Arc::new(AtomicU64::new(0));
        let pfs_spills = Arc::new(AtomicU64::new(0));

        let shared = CopyShared {
            rank,
            node,
            cfg: cfg.clone(),
            topo: topo.clone(),
            storage: Arc::clone(&storage),
            transport: transport.clone(),
            neighbors: Arc::clone(&neighbors),
            pending: Arc::clone(&pending),
            done: Arc::clone(&copies_done),
            failed: Arc::clone(&copy_failures),
            spills: Arc::clone(&pfs_spills),
            copy_bytes: Arc::clone(&copy_bytes),
            pfs: pfs.clone(),
        };
        let worker = std::thread::Builder::new()
            .name(format!("ckpt-lib-{rank}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Stop => break,
                        Job::Copy { version, dirty, release } => {
                            copy_one(&shared, version, &dirty, &release);
                        }
                    }
                }
            })
            .expect("spawn checkpoint library thread");

        Self {
            rank,
            node,
            topo,
            cfg,
            storage,
            transport,
            pfs,
            neighbors,
            table: Mutex::new(ChunkTable::default()),
            tx,
            worker: Some(worker),
            pending,
            copies_done,
            copy_failures,
            copy_bytes,
            bytes_local: AtomicU64::new(0),
            local_writes: AtomicU64::new(0),
            full_commits: AtomicU64::new(0),
            incremental_commits: AtomicU64::new(0),
            chunks_written: AtomicU64::new(0),
            chunk_bytes: AtomicU64::new(0),
            dedup_bytes: AtomicU64::new(0),
            manifest_bytes: AtomicU64::new(0),
            pfs_spills,
            restores_local: AtomicU64::new(0),
            restores_neighbor: AtomicU64::new(0),
            restores_pfs: AtomicU64::new(0),
            restore_bytes: AtomicU64::new(0),
            restore_gaps: Arc::new(AtomicU64::new(0)),
            checksum_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Point-in-time readout of every counter (see [`CkptStats`]).
    /// Neighbor-copy and PFS-spill counts are updated by the library
    /// thread, so call [`Checkpointer::drain`] first for an exact view
    /// after the last checkpoint.
    pub fn stats(&self) -> CkptStats {
        CkptStats {
            local_writes: self.local_writes.load(Ordering::Relaxed),
            bytes_local: self.bytes_local.load(Ordering::Relaxed),
            full_commits: self.full_commits.load(Ordering::Relaxed),
            incremental_commits: self.incremental_commits.load(Ordering::Relaxed),
            chunks_written: self.chunks_written.load(Ordering::Relaxed),
            chunk_bytes: self.chunk_bytes.load(Ordering::Relaxed),
            dedup_bytes: self.dedup_bytes.load(Ordering::Relaxed),
            manifest_bytes: self.manifest_bytes.load(Ordering::Relaxed),
            neighbor_copies: self.copies_done.load(Ordering::Relaxed),
            copy_failures: self.copy_failures.load(Ordering::Relaxed),
            copy_bytes: self.copy_bytes.load(Ordering::Relaxed),
            pfs_spills: self.pfs_spills.load(Ordering::Relaxed),
            restores_local: self.restores_local.load(Ordering::Relaxed),
            restores_neighbor: self.restores_neighbor.load(Ordering::Relaxed),
            restores_pfs: self.restores_pfs.load(Ordering::Relaxed),
            restore_bytes: self.restore_bytes.load(Ordering::Relaxed),
            restore_gaps: self.restore_gaps.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
        }
    }

    /// The stream tag.
    pub fn tag(&self) -> u32 {
        self.cfg.tag
    }

    /// Commit checkpoint `version` on the local node and, under
    /// [`CopyPolicy::Replicate`], signal the library thread to replicate
    /// it. Returns immediately after the (in-memory) local write — the
    /// fast path the paper relies on.
    ///
    /// The write is incremental: only chunks whose content hash changed
    /// since the previous commit are stored, plus a manifest. Chunks go
    /// first, the manifest last — a kill anywhere in between leaves this
    /// version invisible and restore falls back to the previous one.
    ///
    /// `version` must increase by 1 per commit (use the *checkpoint
    /// counter*, not the iteration number): `keep_versions` pruning
    /// assumes consecutive versions. A non-consecutive version is
    /// tolerated (it forces a full commit) but loses dedup.
    pub fn commit(&self, version: u64, payload: Vec<u8>, policy: CopyPolicy) {
        let fault = self.transport.fault();
        fault.site(self.rank, "ckpt.local.write");

        let mut t = self.table.lock();
        let ring_gen = self.neighbors.lock().generation();
        let seq_ok = match t.last_version {
            None => true,
            Some(lv) => version == lv + 1,
        };
        let full = t.force_full
            || !seq_ok
            || t.last_version.is_none()
            || ring_gen != t.ring_gen
            || version.is_multiple_of(self.cfg.full_every);
        if !seq_ok {
            // Superseded chain (restart-from-scratch redo): forget the old
            // history rather than GC against it. The redo rewrites
            // bit-identical content, so the content-addressed chunks are
            // reused, not leaked.
            t.history.clear();
        }

        let hashes = chunk_hashes(&payload, self.cfg.chunk_size);
        let ctag = chunk_tag(self.cfg.tag);
        let mut written = HashSet::new();
        let mut dirty = Vec::new();
        let mut dirty_bytes = 0u64;
        for (i, &h) in hashes.iter().enumerate() {
            let clean = !full && t.last.get(i) == Some(&h);
            if clean || !written.insert(h) {
                continue;
            }
            fault.site(self.rank, "ckpt.chunk.write");
            let blob = payload[chunk_range(i, self.cfg.chunk_size, payload.len())].to_vec();
            dirty_bytes += blob.len() as u64;
            self.storage.put(
                self.node,
                BlobKey { rank: self.rank, tag: ctag, version: h },
                Arc::new(blob),
            );
            dirty.push(h);
        }

        let manifest = Manifest {
            version,
            total_len: payload.len() as u64,
            chunk_size: self.cfg.chunk_size as u32,
            full,
            checksum: fnv1a64(&payload),
            chunks: hashes.clone(),
        };
        fault.site(self.rank, "ckpt.manifest.write");
        let mbytes = manifest.encode();
        let mlen = mbytes.len() as u64;
        self.storage.put(
            self.node,
            BlobKey { rank: self.rank, tag: self.cfg.tag, version },
            Arc::new(mbytes),
        );

        // The version is now durable locally: prune old manifests, GC the
        // chunks only they referenced, update the table and counters.
        let keep_from = (version + 1).saturating_sub(self.cfg.keep_versions);
        self.storage.prune(self.node, self.rank, self.cfg.tag, keep_from);
        t.history.push_back((version, hashes.clone()));
        let mut dropped: Vec<u64> = Vec::new();
        while t.history.front().is_some_and(|(v, _)| *v < keep_from) {
            let (_, old) = t.history.pop_front().expect("front checked");
            dropped.extend(old);
        }
        let release: Vec<u64> = if dropped.is_empty() {
            Vec::new()
        } else {
            let retained: HashSet<u64> =
                t.history.iter().flat_map(|(_, hs)| hs.iter().copied()).collect();
            let release: Vec<u64> = dropped
                .into_iter()
                .collect::<HashSet<u64>>()
                .into_iter()
                .filter(|h| !retained.contains(h))
                .collect();
            for &h in &release {
                self.storage.remove(self.node, BlobKey { rank: self.rank, tag: ctag, version: h });
            }
            release
        };
        t.last = hashes;
        t.last_version = Some(version);
        t.force_full = false;
        t.ring_gen = ring_gen;
        drop(t);

        self.local_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_local.fetch_add(payload.len() as u64, Ordering::Relaxed);
        if full {
            self.full_commits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.incremental_commits.fetch_add(1, Ordering::Relaxed);
        }
        self.chunks_written.fetch_add(dirty.len() as u64, Ordering::Relaxed);
        self.chunk_bytes.fetch_add(dirty_bytes, Ordering::Relaxed);
        self.dedup_bytes.fetch_add(payload.len() as u64 - dirty_bytes, Ordering::Relaxed);
        self.manifest_bytes.fetch_add(mlen, Ordering::Relaxed);

        if policy == CopyPolicy::Replicate {
            *self.pending.count.lock() += 1;
            if self.tx.send(Job::Copy { version, dirty, release }).is_err() {
                let mut c = self.pending.count.lock();
                *c -= 1;
            }
        }
    }

    /// Block until all signaled copies have been replicated (or failed).
    /// Used by tests and by shutdown; the application itself never calls
    /// this on the fast path.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut c = self.pending.count.lock();
        while *c != 0 {
            if self.pending.cv.wait_until(&mut c, deadline).timed_out() {
                return *c == 0;
            }
        }
        true
    }

    /// Fault-aware refresh: fold the cumulative failed list into the
    /// neighbor ring (paper §IV-C). Call after every recovery. The next
    /// commit is forced full so a (possibly new) replica holder receives
    /// a self-contained base image.
    pub fn refresh_failed(&self, failed: &[Rank]) {
        self.neighbors.lock().mark_failed(failed);
        self.table.lock().force_full = true;
    }

    /// Current neighbor node for this rank's checkpoints.
    pub fn neighbor_node(&self) -> Option<NodeId> {
        self.neighbors.lock().neighbor_of(self.node)
    }

    /// Count a served restore by provenance (the paper's OHF3 cost
    /// differs per tier).
    fn count_restore(&self, r: &Restored) {
        match r.provenance {
            Provenance::Local => self.restores_local.fetch_add(1, Ordering::Relaxed),
            Provenance::Neighbor(_) => self.restores_neighbor.fetch_add(1, Ordering::Relaxed),
            Provenance::Pfs => self.restores_pfs.fetch_add(1, Ordering::Relaxed),
        };
        self.restore_bytes.fetch_add(r.data.len() as u64, Ordering::Relaxed);
    }

    /// Fold one tier's probe misses into the running miss state.
    fn note_probe(&self, probe: &TierProbe, misses: &mut Misses) {
        self.restore_gaps.fetch_add(probe.gaps, Ordering::Relaxed);
        if let Some(v) = probe.mismatch {
            self.checksum_failures.fetch_add(1, Ordering::Relaxed);
            misses.note_mismatch(v);
        }
    }

    /// Restore the newest reachable checkpoint of `for_rank` (usually
    /// `self.rank()`, or the failed rank a rescue process adopted),
    /// reassembled from manifest + chunks and checksum-verified.
    /// Resolution order: local node → neighbor replica → PFS; within a
    /// tier, a version with missing chunks or a bad checksum falls back
    /// to the next older one.
    pub fn restore_latest(&self, for_rank: Rank, timeout: Duration) -> RestoreOutcome<Restored> {
        self.transport.fault().site(self.rank, "ckpt.restore");
        let mut misses = Misses::default();
        // 1. Local.
        if self.topo.node_of(for_rank) == self.node {
            let p = assemble_best(&self.storage, self.node, for_rank, self.cfg.tag);
            self.note_probe(&p, &mut misses);
            if let Some((version, data)) = p.found {
                let r = Restored { version, data, provenance: Provenance::Local };
                self.count_restore(&r);
                return RestoreOutcome::Hit(r);
            }
        }
        // 2. Neighbor replica.
        match self.fetch_from_neighbor(for_rank, None, timeout) {
            Fetch::Found(r) => {
                self.count_restore(&r);
                return RestoreOutcome::Hit(r);
            }
            Fetch::TimedOut => misses.timeout = true,
            Fetch::Miss { mismatch } => {
                if let Some(v) = mismatch {
                    misses.note_mismatch(v);
                }
            }
        }
        // 3. PFS (stores reconstituted full images).
        if let Some(pfs) = self.pfs.as_ref() {
            if let Some(v) = pfs.latest_version(for_rank, self.cfg.tag) {
                if let Some(data) = pfs.read(for_rank, self.cfg.tag, v) {
                    let r = Restored {
                        version: v,
                        data: data.as_ref().clone(),
                        provenance: Provenance::Pfs,
                    };
                    self.count_restore(&r);
                    return RestoreOutcome::Hit(r);
                }
            }
        }
        misses.outcome()
    }

    /// Restore a specific version (after the group agreed on a consistent
    /// one, e.g. via an allreduce-min over each member's newest version).
    pub fn restore_exact(
        &self,
        for_rank: Rank,
        version: u64,
        timeout: Duration,
    ) -> RestoreOutcome<Restored> {
        self.transport.fault().site(self.rank, "ckpt.restore");
        let mut misses = Misses::default();
        if self.topo.node_of(for_rank) == self.node {
            let p = assemble_exact(&self.storage, self.node, for_rank, self.cfg.tag, version);
            self.note_probe(&p, &mut misses);
            if let Some((version, data)) = p.found {
                let r = Restored { version, data, provenance: Provenance::Local };
                self.count_restore(&r);
                return RestoreOutcome::Hit(r);
            }
        }
        match self.fetch_from_neighbor(for_rank, Some(version), timeout) {
            Fetch::Found(r) => {
                self.count_restore(&r);
                return RestoreOutcome::Hit(r);
            }
            Fetch::TimedOut => misses.timeout = true,
            Fetch::Miss { mismatch } => {
                if let Some(v) = mismatch {
                    misses.note_mismatch(v);
                }
            }
        }
        if let Some(pfs) = self.pfs.as_ref() {
            if let Some(data) = pfs.read(for_rank, self.cfg.tag, version) {
                let r =
                    Restored { version, data: data.as_ref().clone(), provenance: Provenance::Pfs };
                self.count_restore(&r);
                return RestoreOutcome::Hit(r);
            }
        }
        misses.outcome()
    }

    /// The newest version this rank could restore for `for_rank`, without
    /// transferring the payload (each tier verifies reassembly before
    /// answering). Feed the group minimum of this into
    /// [`Checkpointer::restore_exact`].
    pub fn latest_restorable(&self, for_rank: Rank, timeout: Duration) -> RestoreOutcome<u64> {
        let mut misses = Misses::default();
        let mut best: Option<u64> = None;
        if self.topo.node_of(for_rank) == self.node {
            let p = assemble_best(&self.storage, self.node, for_rank, self.cfg.tag);
            self.note_probe(&p, &mut misses);
            best = best.max(p.found.map(|(v, _)| v));
        }
        let replica_node = self.neighbors.lock().neighbor_of(self.topo.node_of(for_rank));
        if let Some(nb) = replica_node {
            if nb == self.node {
                let p = assemble_best(&self.storage, nb, for_rank, self.cfg.tag);
                self.note_probe(&p, &mut misses);
                best = best.max(p.found.map(|(v, _)| v));
            } else {
                match self.remote_latest(nb, for_rank, timeout) {
                    Some(v) => best = best.max(v),
                    None => misses.timeout = true,
                }
            }
        }
        if let Some(pfs) = self.pfs.as_ref() {
            best = best.max(pfs.latest_version(for_rank, self.cfg.tag));
        }
        match best {
            Some(v) => RestoreOutcome::Hit(v),
            None => misses.outcome(),
        }
    }

    /// Fetch `for_rank`'s checkpoint from the neighbor replica holder,
    /// which reassembles a full image from its manifest + chunk replica
    /// and ships the materialized bytes.
    fn fetch_from_neighbor(
        &self,
        for_rank: Rank,
        version: Option<u64>,
        timeout: Duration,
    ) -> Fetch {
        let home = self.topo.node_of(for_rank);
        let Some(replica_node) = self.neighbors.lock().neighbor_of(home) else {
            return Fetch::Miss { mismatch: None };
        };
        let tag = self.cfg.tag;
        if replica_node == self.node {
            // The rescue process happens to *be* the replica holder.
            let p = match version {
                Some(v) => assemble_exact(&self.storage, self.node, for_rank, tag, v),
                None => assemble_best(&self.storage, self.node, for_rank, tag),
            };
            let mut misses = Misses::default();
            self.note_probe(&p, &mut misses);
            return match p.found {
                Some((v, data)) => Fetch::Found(Restored {
                    version: v,
                    data,
                    provenance: Provenance::Neighbor(replica_node),
                }),
                None => Fetch::Miss { mismatch: misses.mismatch },
            };
        }
        // Remote fetch: request → the replica holder's service handler
        // reassembles from *its* node storage → costed full-image reply.
        // Gap/mismatch counts observed by the holder ride back in the
        // reply and are folded into this rank's counters.
        let Some(dst) = self.representative_rank(replica_node) else {
            return Fetch::Miss { mismatch: None };
        };
        struct Reply {
            found: Option<(u64, Vec<u8>)>,
            mismatch: Option<u64>,
        }
        type Cell = Arc<(Mutex<Option<Reply>>, Condvar)>;
        let cell: Cell = Arc::new((Mutex::new(None), Condvar::new()));
        let c1 = Arc::clone(&cell);
        let gaps = Arc::clone(&self.restore_gaps);
        let cksum = Arc::clone(&self.checksum_failures);
        let me = self.rank;
        self.transport.call(
            me,
            dst,
            service::FETCH_QUEUE,
            24,
            service::enc_fetch(for_rank, tag, version),
            Box::new(move |out, reply| {
                let r = if out == Outcome::Delivered {
                    service::dec_fetch_reply(&reply)
                } else {
                    service::FetchReply::default()
                };
                gaps.fetch_add(r.gaps, Ordering::Relaxed);
                if r.mismatch.is_some() {
                    cksum.fetch_add(1, Ordering::Relaxed);
                }
                *c1.0.lock() = Some(Reply { found: r.found, mismatch: r.mismatch });
                c1.1.notify_all();
            }),
        );
        let deadline = Instant::now() + timeout;
        let mut g = cell.0.lock();
        while g.is_none() {
            if cell.1.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        match g.take() {
            None => Fetch::TimedOut,
            Some(Reply { found: Some((v, data)), .. }) => Fetch::Found(Restored {
                version: v,
                data,
                provenance: Provenance::Neighbor(replica_node),
            }),
            Some(Reply { found: None, mismatch }) => Fetch::Miss { mismatch },
        }
    }

    /// Version-only remote query against the replica holder (the replica
    /// verifies reassembly before answering). `None` means timeout.
    fn remote_latest(
        &self,
        replica_node: NodeId,
        for_rank: Rank,
        timeout: Duration,
    ) -> Option<Option<u64>> {
        let dst = self.representative_rank(replica_node)?;
        let tag = self.cfg.tag;
        type Cell = Arc<(Mutex<Option<Option<u64>>>, Condvar)>;
        let cell: Cell = Arc::new((Mutex::new(None), Condvar::new()));
        let c1 = Arc::clone(&cell);
        let gaps = Arc::clone(&self.restore_gaps);
        let me = self.rank;
        self.transport.call(
            me,
            dst,
            service::FETCH_QUEUE,
            16,
            service::enc_latest(for_rank, tag),
            Box::new(move |out, reply| {
                let v = if out == Outcome::Delivered {
                    let (v, g) = service::dec_latest_reply(&reply);
                    gaps.fetch_add(g, Ordering::Relaxed);
                    v
                } else {
                    None
                };
                *c1.0.lock() = Some(v);
                c1.1.notify_all();
            }),
        );
        let deadline = Instant::now() + timeout;
        let mut g = cell.0.lock();
        while g.is_none() {
            if cell.1.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        g.take()
    }

    /// Lowest non-failed rank on `node` — the endpoint for remote fetches.
    fn representative_rank(&self, node: NodeId) -> Option<Rank> {
        let nb = self.neighbors.lock();
        self.topo.ranks_on(node).find(|r| !nb.failed().contains(r))
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Stop);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// How a neighbor fetch resolved.
enum Fetch {
    Found(Restored),
    TimedOut,
    Miss { mismatch: Option<u64> },
}

/// Running miss state across tiers, resolved into a [`RestoreOutcome`]
/// when no tier hit. Timeout outranks mismatch (it is transient — the
/// data may still exist), mismatch outranks plain not-found.
#[derive(Default)]
struct Misses {
    timeout: bool,
    mismatch: Option<u64>,
}

impl Misses {
    fn note_mismatch(&mut self, version: u64) {
        let best = self.mismatch.map_or(version, |m| m.max(version));
        self.mismatch = Some(best);
    }

    fn outcome<T>(&self) -> RestoreOutcome<T> {
        if self.timeout {
            RestoreOutcome::Timeout
        } else if let Some(version) = self.mismatch {
            RestoreOutcome::ChecksumMismatch { version }
        } else {
            RestoreOutcome::NotFound
        }
    }
}

/// Result of probing one tier for a reassemblable version.
#[derive(Default)]
pub(crate) struct TierProbe {
    /// Newest `(version, materialized payload)` that reassembled and
    /// verified.
    pub(crate) found: Option<(u64, Vec<u8>)>,
    /// Newest version rejected by the checksum, if any.
    pub(crate) mismatch: Option<u64>,
    /// Versions skipped because a referenced chunk was missing.
    pub(crate) gaps: u64,
}

/// How one manifest version reassembled on one node.
enum Assembled {
    Ok(Vec<u8>),
    NoManifest,
    Gap,
    Mismatch,
}

/// Reassemble `(rank, tag, version)` from `node`'s manifest + chunk
/// store: fetch every referenced chunk by content hash, concatenate,
/// verify the whole-payload checksum.
fn assemble(storage: &NodeStorage, node: NodeId, rank: Rank, tag: u32, version: u64) -> Assembled {
    let Some(mbytes) = storage.get(node, BlobKey { rank, tag, version }) else {
        return Assembled::NoManifest;
    };
    let Ok(m) = Manifest::decode(&mbytes) else {
        // A corrupt (torn) manifest is as unusable as a missing one.
        return Assembled::Gap;
    };
    let ctag = chunk_tag(tag);
    let mut out = Vec::with_capacity(m.total_len as usize);
    for (i, &h) in m.chunks.iter().enumerate() {
        let Some(c) = storage.get(node, BlobKey { rank, tag: ctag, version: h }) else {
            return Assembled::Gap;
        };
        if c.len() != m.chunk_range(i).len() {
            return Assembled::Gap;
        }
        out.extend_from_slice(&c);
    }
    if out.len() as u64 != m.total_len {
        return Assembled::Gap;
    }
    if fnv1a64(&out) != m.checksum {
        return Assembled::Mismatch;
    }
    Assembled::Ok(out)
}

/// Probe exactly one version on one node.
pub(crate) fn assemble_exact(
    storage: &NodeStorage,
    node: NodeId,
    rank: Rank,
    tag: u32,
    version: u64,
) -> TierProbe {
    let mut p = TierProbe::default();
    match assemble(storage, node, rank, tag, version) {
        Assembled::Ok(data) => p.found = Some((version, data)),
        Assembled::Mismatch => p.mismatch = Some(version),
        Assembled::Gap => p.gaps += 1,
        Assembled::NoManifest => {}
    }
    p
}

/// Walk a node's manifest versions newest → oldest; first one that
/// reassembles and verifies wins, anything broken is recorded and
/// skipped (the fall-back-on-gap behavior).
pub(crate) fn assemble_best(
    storage: &NodeStorage,
    node: NodeId,
    rank: Rank,
    tag: u32,
) -> TierProbe {
    let mut p = TierProbe::default();
    for v in storage.versions_of(node, rank, tag) {
        match assemble(storage, node, rank, tag, v) {
            Assembled::Ok(data) => {
                p.found = Some((v, data));
                break;
            }
            Assembled::Mismatch => {
                if p.mismatch.is_none() {
                    p.mismatch = Some(v);
                }
            }
            Assembled::Gap => p.gaps += 1,
            Assembled::NoManifest => {}
        }
    }
    p
}

/// One neighbor (and possibly PFS) replication, on the library thread.
/// Ships only the commit's dirty chunks plus the manifest; applies the
/// same manifest pruning and chunk releases on the replica so the two
/// stores stay in lockstep.
fn copy_one(s: &CopyShared, version: u64, dirty: &[u64], release: &[u64]) {
    let finish = |ok: bool| {
        if ok {
            s.done.fetch_add(1, Ordering::Relaxed);
        } else {
            s.failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut c = s.pending.count.lock();
        *c -= 1;
        s.pending.cv.notify_all();
    };
    let mkey = BlobKey { rank: s.rank, tag: s.cfg.tag, version };
    let Some(mbytes) = s.storage.get(s.node, mkey) else {
        // Node died (or version pruned) between signal and copy.
        finish(false);
        return;
    };
    // Passive site: this is the library thread, not the rank's own, so a
    // matching kill only poisons liveness — re-check and bail like the
    // storage probe above, modeling a rank dying mid-replication.
    s.transport.fault().site_passive(s.rank, "ckpt.neighbor.copy");
    if !s.transport.fault().is_alive(s.rank) {
        finish(false);
        return;
    }
    // PFS tier first (blocking, costed — deliberately on this thread, not
    // the application's). The PFS stores *reconstituted full images*:
    // reassemble from the local manifest + chunk store before writing.
    if let (Some(p), Some(k)) = (s.pfs.as_deref(), s.cfg.pfs_every) {
        if k > 0 && version.is_multiple_of(k) {
            s.transport.fault().site_passive(s.rank, "ckpt.pfs.write");
            if let Assembled::Ok(img) = assemble(&s.storage, s.node, s.rank, s.cfg.tag, version) {
                p.write(s.rank, s.cfg.tag, version, Arc::new(img));
                s.spills.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if !s.cfg.neighbor_copy {
        finish(true);
        return;
    }
    // The replica holder resolves its own node from the addressed rank,
    // so only the representative rank matters here.
    let dst = {
        let nb = s.neighbors.lock();
        let Some(nn) = nb.neighbor_of(s.node) else {
            drop(nb);
            finish(false);
            return;
        };
        let Some(dst) = s.topo.ranks_on(nn).find(|r| !nb.failed().contains(r)) else {
            drop(nb);
            finish(false);
            return;
        };
        dst
    };
    // Gather the dirty chunk payloads; a chunk GC'd since the commit
    // means this version is already superseded — fail the copy cleanly.
    let ctag = chunk_tag(s.cfg.tag);
    let mut blobs: Vec<(u64, Arc<Vec<u8>>)> = Vec::with_capacity(dirty.len());
    for &h in dirty {
        let key = BlobKey { rank: s.rank, tag: ctag, version: h };
        match s.storage.get(s.node, key) {
            Some(d) => blobs.push((h, d)),
            None => {
                finish(false);
                return;
            }
        }
    }
    // The push carries the dirty chunks + manifest; the replica holder's
    // service handler writes them into its node store and applies the
    // same pruning. `bytes` (the payload total) is the latency cost, as
    // before; the envelope framing is not charged.
    let bytes = mbytes.len() + blobs.iter().map(|(_, d)| d.len()).sum::<usize>();
    let msg = service::enc_copy(
        s.rank,
        s.cfg.tag,
        version,
        s.cfg.keep_versions,
        &blobs,
        &mbytes,
        release,
    );
    let pending2 = Arc::clone(&s.pending);
    let done2 = Arc::clone(&s.done);
    let failed2 = Arc::clone(&s.failed);
    let wire2 = Arc::clone(&s.copy_bytes);
    s.transport.send(
        s.rank,
        dst,
        service::COPY_QUEUE,
        bytes,
        msg,
        Box::new(move |out, reply| {
            if out == Outcome::Delivered && service::copy_reply_ok(&reply) {
                wire2.fetch_add(bytes as u64, Ordering::Relaxed);
                done2.fetch_add(1, Ordering::Relaxed);
            } else {
                failed2.fetch_add(1, Ordering::Relaxed);
            }
            let mut c = pending2.count.lock();
            *c -= 1;
            pending2.cv.notify_all();
        }),
    );
}
