//! Simulated parallel file system tier.
//!
//! "Typically checkpoints are written to the parallel file system.
//! Writing and retrieving them from PFS is expensive" (§IV-C) — this tier
//! exists to *be expensive*: accesses block the caller for a modeled
//! latency plus bytes/bandwidth, so benchmarks show exactly why the
//! neighbor level is the fast path and PFS only the infrequent safety
//! net. It survives any node failure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use ft_cluster::Rank;

/// PFS cost model.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Fixed per-access latency (metadata, contention).
    pub latency: Duration,
    /// Sustained bandwidth in bytes/second, shared by reads and writes.
    pub bandwidth: f64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        // ~50× slower than the simulated interconnect: 2 ms seek-ish
        // latency, 200 MB/s.
        Self { latency: Duration::from_millis(2), bandwidth: 200e6 }
    }
}

impl PfsConfig {
    /// An instant PFS for unit tests.
    pub fn instant() -> Self {
        Self { latency: Duration::ZERO, bandwidth: f64::INFINITY }
    }

    fn cost(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[derive(Hash, PartialEq, Eq, Clone, Copy)]
struct PfsKey {
    rank: Rank,
    tag: u32,
    version: u64,
}

/// The simulated PFS: a global blob store with blocking, costed access.
pub struct Pfs {
    cfg: PfsConfig,
    store: Mutex<HashMap<PfsKey, Arc<Vec<u8>>>>,
    /// Bytes written/read, for overhead accounting.
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
}

impl Pfs {
    /// An empty PFS with the given cost model.
    pub fn new(cfg: PfsConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            store: Mutex::new(HashMap::new()),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Write a checkpoint blob; blocks for the modeled cost.
    pub fn write(&self, rank: Rank, tag: u32, version: u64, data: Arc<Vec<u8>>) {
        std::thread::sleep(self.cfg.cost(data.len()));
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.store.lock().insert(PfsKey { rank, tag, version }, data);
    }

    /// Read a checkpoint blob; blocks for the modeled cost.
    pub fn read(&self, rank: Rank, tag: u32, version: u64) -> Option<Arc<Vec<u8>>> {
        let data = self.store.lock().get(&PfsKey { rank, tag, version }).cloned()?;
        std::thread::sleep(self.cfg.cost(data.len()));
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        Some(data)
    }

    /// Latest version stored for `(rank, tag)`.
    pub fn latest_version(&self, rank: Rank, tag: u32) -> Option<u64> {
        self.store.lock().keys().filter(|k| k.rank == rank && k.tag == tag).map(|k| k.version).max()
    }

    /// Number of blobs resident.
    pub fn blobs(&self) -> usize {
        self.store.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_latest() {
        let pfs = Pfs::new(PfsConfig::instant());
        pfs.write(3, 1, 10, Arc::new(vec![1, 2, 3]));
        pfs.write(3, 1, 20, Arc::new(vec![4]));
        pfs.write(4, 1, 99, Arc::new(vec![5]));
        assert_eq!(pfs.latest_version(3, 1), Some(20));
        assert_eq!(pfs.latest_version(3, 2), None);
        assert_eq!(pfs.read(3, 1, 10).as_deref(), Some(&vec![1, 2, 3]));
        assert!(pfs.read(9, 1, 1).is_none());
        assert_eq!(pfs.blobs(), 3);
        assert_eq!(pfs.bytes_written.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn access_is_costed() {
        let pfs = Pfs::new(PfsConfig { latency: Duration::from_millis(5), bandwidth: 1e9 });
        let t0 = std::time::Instant::now();
        pfs.write(0, 0, 1, Arc::new(vec![0u8; 8]));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
