//! The checkpoint service protocol: the replica-holder side of neighbor
//! replication and restore, spoken over the transport seam.
//!
//! The GASPI endpoint routes any message on a queue `>=`
//! [`ft_gaspi::CKPT_QUEUE_BASE`] to the world's installed checkpoint
//! handler without decoding it; this module defines that handler and the
//! three requests it services:
//!
//! * **copy** — a committing rank pushes its dirty chunks + manifest; the
//!   replica holder writes them into *its* node store and applies the
//!   same pruning/GC, keeping the two stores in lockstep.
//! * **fetch** — a restoring (or rescue) rank asks the replica holder to
//!   reassemble a full image from its manifest + chunk replica and ship
//!   the materialized bytes.
//! * **latest** — version-only probe: the newest version the replica
//!   holder could serve, verified by reassembly, without the payload.
//!
//! Under the in-memory backend the handler runs on the scheduler thread
//! against the shared [`NodeStorage`]; under the process backend it runs
//! inside the replica holder's OS process against storage only that
//! process can see — which is exactly why the assembly logic lives here,
//! on the serving side, and the requester gets only bytes. Miss details
//! (gap and checksum-mismatch counts) ride back in the reply so the
//! requester's counters stay equivalent to the old in-process accounting.

use std::sync::Arc;

use ft_cluster::{BlobKey, Dec, Enc, NodeStorage, QueueId, Rank, Topology};
use ft_gaspi::{CkptHandler, GaspiProc};

use crate::chunk::chunk_tag;
use crate::writer::{assemble_best, assemble_exact};

/// Queue for fetch/latest request-reply traffic.
pub const FETCH_QUEUE: QueueId = u16::MAX;
/// Queue for the one-way replication push.
pub const COPY_QUEUE: QueueId = u16::MAX - 1;

const SVC_FETCH: u8 = 1;
const SVC_LATEST: u8 = 2;
const SVC_COPY: u8 = 3;

const OK: u8 = 1;
const FAIL: u8 = 0;

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

pub(crate) fn enc_fetch(for_rank: Rank, tag: u32, version: Option<u64>) -> Vec<u8> {
    let mut e = Enc::with_capacity(24);
    e.u8(SVC_FETCH).u32(for_rank).u32(tag);
    match version {
        Some(v) => e.u8(1).u64(v),
        None => e.u8(0),
    };
    e.finish()
}

pub(crate) fn enc_latest(for_rank: Rank, tag: u32) -> Vec<u8> {
    let mut e = Enc::with_capacity(12);
    e.u8(SVC_LATEST).u32(for_rank).u32(tag);
    e.finish()
}

pub(crate) fn enc_copy(
    rank: Rank,
    tag: u32,
    version: u64,
    keep: u64,
    blobs: &[(u64, Arc<Vec<u8>>)],
    manifest: &[u8],
    release: &[u64],
) -> Vec<u8> {
    let total: usize = manifest.len() + blobs.iter().map(|(_, d)| d.len()).sum::<usize>();
    let mut e = Enc::with_capacity(total + 64 + blobs.len() * 16);
    e.u8(SVC_COPY).u32(rank).u32(tag).u64(version).u64(keep);
    e.u64(blobs.len() as u64);
    for (h, d) in blobs {
        e.u64(*h).bytes(d);
    }
    e.bytes(manifest);
    e.u64s(release);
    e.finish()
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// Decoded fetch reply (defaults mean "miss, nothing to count").
#[derive(Default)]
pub(crate) struct FetchReply {
    pub found: Option<(u64, Vec<u8>)>,
    pub mismatch: Option<u64>,
    pub gaps: u64,
}

pub(crate) fn dec_fetch_reply(reply: &[u8]) -> FetchReply {
    fn inner(reply: &[u8]) -> Result<FetchReply, ft_cluster::CodecError> {
        let mut d = Dec::new(reply);
        let found = match d.u8()? {
            OK => Some((d.u64()?, d.bytes()?)),
            _ => None,
        };
        let mismatch = match d.u8()? {
            OK => Some(d.u64()?),
            _ => None,
        };
        let gaps = d.u64()?;
        Ok(FetchReply { found, mismatch, gaps })
    }
    inner(reply).unwrap_or_default()
}

/// Decoded latest reply: `(newest restorable version, gaps observed)`.
pub(crate) fn dec_latest_reply(reply: &[u8]) -> (Option<u64>, u64) {
    fn inner(reply: &[u8]) -> Result<(Option<u64>, u64), ft_cluster::CodecError> {
        let mut d = Dec::new(reply);
        let v = match d.u8()? {
            OK => Some(d.u64()?),
            _ => None,
        };
        let gaps = d.u64()?;
        Ok((v, gaps))
    }
    inner(reply).unwrap_or((None, 0))
}

pub(crate) fn copy_reply_ok(reply: &[u8]) -> bool {
    reply.first() == Some(&OK)
}

// ---------------------------------------------------------------------
// The handler (serving side)
// ---------------------------------------------------------------------

/// Build the service handler over a node store and placement. `to` is the
/// locally hosted rank the message was addressed to; all storage access
/// resolves through its node.
pub fn handler(storage: Arc<NodeStorage>, topo: Topology) -> CkptHandler {
    Arc::new(move |to: Rank, _from: Rank, _queue: QueueId, msg: &[u8]| {
        serve(&storage, &topo, to, msg).unwrap_or_else(|| vec![FAIL])
    })
}

/// Install the service handler for `proc`'s world (first install wins).
/// Called by [`crate::Checkpointer::new`] and by the drivers, so that
/// ranks which never construct a `Checkpointer` (idle spares) still
/// answer fetches against their node's replica store.
pub fn install(proc: &GaspiProc) {
    proc.install_ckpt_handler(handler(proc.cluster_storage(), proc.topology().clone()));
}

fn serve(storage: &Arc<NodeStorage>, topo: &Topology, to: Rank, msg: &[u8]) -> Option<Vec<u8>> {
    let node = topo.node_of(to);
    let mut d = Dec::new(msg);
    match d.u8().ok()? {
        SVC_FETCH => {
            let for_rank = d.u32().ok()?;
            let tag = d.u32().ok()?;
            let version = match d.u8().ok()? {
                0 => None,
                _ => Some(d.u64().ok()?),
            };
            let probe = match version {
                Some(v) => assemble_exact(storage, node, for_rank, tag, v),
                None => assemble_best(storage, node, for_rank, tag),
            };
            let mut e = Enc::new();
            match probe.found {
                Some((v, data)) => e.u8(OK).u64(v).bytes(&data),
                None => e.u8(FAIL),
            };
            match probe.mismatch {
                Some(v) => e.u8(OK).u64(v),
                None => e.u8(FAIL),
            };
            e.u64(probe.gaps);
            Some(e.finish())
        }
        SVC_LATEST => {
            let for_rank = d.u32().ok()?;
            let tag = d.u32().ok()?;
            let probe = assemble_best(storage, node, for_rank, tag);
            let mut e = Enc::new();
            match probe.found {
                Some((v, _)) => e.u8(OK).u64(v),
                None => e.u8(FAIL),
            };
            e.u64(probe.gaps);
            Some(e.finish())
        }
        SVC_COPY => {
            let rank = d.u32().ok()?;
            let tag = d.u32().ok()?;
            let version = d.u64().ok()?;
            let keep = d.u64().ok()?;
            let n = d.u64().ok()? as usize;
            let ctag = chunk_tag(tag);
            for _ in 0..n {
                let h = d.u64().ok()?;
                let blob = d.bytes().ok()?;
                storage.put(node, BlobKey { rank, tag: ctag, version: h }, Arc::new(blob));
            }
            let manifest = d.bytes().ok()?;
            let release = d.u64s().ok()?;
            storage.put(node, BlobKey { rank, tag, version }, Arc::new(manifest));
            if version + 1 >= keep {
                storage.prune(node, rank, tag, version + 1 - keep);
            }
            for h in release {
                storage.remove(node, BlobKey { rank, tag: ctag, version: h });
            }
            Some(vec![OK])
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_request_roundtrip() {
        let m = enc_fetch(3, 7, Some(9));
        let mut d = Dec::new(&m);
        assert_eq!(d.u8().unwrap(), SVC_FETCH);
        assert_eq!(d.u32().unwrap(), 3);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u64().unwrap(), 9);
        d.expect_end().unwrap();
    }

    #[test]
    fn reply_decoders_tolerate_garbage() {
        let r = dec_fetch_reply(&[0xff, 0x01]);
        assert!(r.found.is_none());
        assert_eq!(r.gaps, 0);
        assert_eq!(dec_latest_reply(&[]), (None, 0));
        assert!(!copy_reply_ok(&[]));
        assert!(copy_reply_ok(&[OK]));
    }
}
