//! Content-hashed chunking for incremental checkpoints.
//!
//! A checkpoint payload is split into fixed-size chunks; each chunk is
//! identified by its FNV-1a content hash and stored under a
//! content-addressed key. A **manifest** per version records the ordered
//! chunk hash list, the payload length, and a whole-payload checksum, so
//! any tier holding the manifest plus the referenced chunks can
//! reconstitute the exact original bytes (and detect when it cannot).
//!
//! Storage schema (on [`ft_cluster::NodeStorage`]):
//!
//! * manifests live under the checkpointer's own stream tag with the
//!   checkpoint version — `BlobKey { rank, tag, version }` — so version
//!   walking, pruning, and node-kill wipe behave exactly as the legacy
//!   full-image store did;
//! * chunks live under the derived [`chunk_tag`] (the tag with the high
//!   bit set) with `version = content hash` — content-addressed, shared
//!   between every manifest that references the same bytes. Application
//!   tags must therefore keep the high bit clear (validated by
//!   [`crate::CheckpointerConfig`]'s builder). **Never** call
//!   `NodeStorage::prune` on a chunk tag: versions there are hashes, not
//!   a monotone counter — chunk garbage collection is an explicit
//!   release list computed against the retained manifests.

use crate::codec::{fnv1a64, CodecError, Dec, Enc};

/// Default chunk size, and the alignment solvers use for chunk-stable
/// checkpoint layouts (see `LanczosState::encode` in `ft-solver`).
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// Tag bit reserved for the content-addressed chunk store.
pub const CHUNK_TAG_BIT: u32 = 0x8000_0000;

/// The chunk-store tag derived from an application stream tag.
pub fn chunk_tag(tag: u32) -> u32 {
    tag | CHUNK_TAG_BIT
}

const MANIFEST_MAGIC: u64 = 0x4654_434b_4d41_4e31; // "FTCKMAN1"

/// Per-version description of a chunked checkpoint: everything needed to
/// reassemble the payload from the chunk store and to verify the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint version this manifest describes.
    pub version: u64,
    /// Exact payload length in bytes (the last chunk may be short).
    pub total_len: u64,
    /// Chunk size the payload was split with.
    pub chunk_size: u32,
    /// Whether this version was written as a *full* checkpoint (every
    /// chunk freshly written — a chain anchor).
    pub full: bool,
    /// FNV-1a over the whole payload, verified after reassembly.
    pub checksum: u64,
    /// Content hash of each chunk, in payload order.
    pub chunks: Vec<u64>,
}

impl Manifest {
    /// Build the manifest for `payload` at `version`.
    pub fn describe(version: u64, payload: &[u8], chunk_size: usize, full: bool) -> Self {
        Self {
            version,
            total_len: payload.len() as u64,
            chunk_size: chunk_size as u32,
            full,
            checksum: fnv1a64(payload),
            chunks: chunk_hashes(payload, chunk_size),
        }
    }

    /// Encoded manifest blob (what is stored and replicated).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(48 + 8 * self.chunks.len());
        e.u64(MANIFEST_MAGIC)
            .u64(self.version)
            .u64(self.total_len)
            .u32(self.chunk_size)
            .u32(u32::from(self.full))
            .u64(self.checksum)
            .u64s(&self.chunks);
        e.finish()
    }

    /// Decode and structurally validate a manifest blob. A legacy
    /// full-image blob (or any corruption) fails loudly — the magic and
    /// the chunk-count consistency check reject it.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(buf);
        let magic = d.u64()?;
        if magic != MANIFEST_MAGIC {
            return Err(CodecError::BadLength(magic));
        }
        let version = d.u64()?;
        let total_len = d.u64()?;
        let chunk_size = d.u32()?;
        let full = d.u32()? != 0;
        let checksum = d.u64()?;
        let chunks = d.u64s()?;
        d.expect_end()?;
        if chunk_size == 0 {
            return Err(CodecError::BadLength(0));
        }
        let expect = total_len.div_ceil(u64::from(chunk_size));
        if chunks.len() as u64 != expect {
            return Err(CodecError::BadLength(chunks.len() as u64));
        }
        Ok(Self { version, total_len, chunk_size, full, checksum, chunks })
    }

    /// Byte range of chunk `idx` within the payload.
    pub fn chunk_range(&self, idx: usize) -> std::ops::Range<usize> {
        chunk_range(idx, self.chunk_size as usize, self.total_len as usize)
    }
}

/// Byte range of chunk `idx` for a payload of `total_len` split into
/// `chunk_size` chunks (the last chunk may be short).
pub fn chunk_range(idx: usize, chunk_size: usize, total_len: usize) -> std::ops::Range<usize> {
    let start = idx * chunk_size;
    start..total_len.min(start + chunk_size)
}

/// Content hash of every chunk of `payload`, in order.
pub fn chunk_hashes(payload: &[u8], chunk_size: usize) -> Vec<u64> {
    assert!(chunk_size >= 1, "chunk_size must be >= 1");
    payload.chunks(chunk_size).map(fnv1a64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let m = Manifest::describe(7, &payload, 256, false);
        assert_eq!(m.chunks.len(), 4);
        assert_eq!(m.chunk_range(3), 768..1000);
        let d = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn empty_payload_manifest() {
        let m = Manifest::describe(1, &[], 64, true);
        assert!(m.chunks.is_empty());
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn legacy_blob_is_not_a_manifest() {
        // A raw payload blob (no magic) must not decode as a manifest.
        assert!(Manifest::decode(&[0u8; 64]).is_err());
        assert!(Manifest::decode(b"short").is_err());
    }

    #[test]
    fn chunk_count_consistency_enforced() {
        let mut m = Manifest::describe(1, &[9u8; 100], 32, false);
        m.chunks.pop();
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn identical_chunks_share_hashes() {
        let payload = vec![42u8; 512];
        let hs = chunk_hashes(&payload, 128);
        assert_eq!(hs.len(), 4);
        assert!(hs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn chunk_tag_sets_reserved_bit() {
        assert_eq!(chunk_tag(0x10), 0x8000_0010);
        assert_ne!(chunk_tag(0), 0);
    }
}
