//! Torn-commit tests: a rank killed *mid-commit* (between chunk writes,
//! or between the chunks and the manifest) must leave the half-written
//! version invisible — every tier falls back to the previous consistent
//! version, because the manifest put is the atomic commit point.
//!
//! Kills are step-indexed injections at the writer's own fault sites
//! (`ckpt.chunk.write` / `ckpt.manifest.write`), the same sites the chaos
//! sweep enumerates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{
    Checkpointer, CheckpointerConfig, CopyPolicy, Pfs, PfsConfig, Provenance, RestoreOutcome,
};
use ft_cluster::{Injection, InjectionPlan, NodeId, RankKilled};
use ft_gaspi::{GaspiConfig, GaspiWorld};

const T: Duration = Duration::from_secs(5);
const CHUNK: usize = 16;

/// 64 bytes = 4 distinct chunks (so every dirty chunk is a unique write
/// and the site-occurrence arithmetic below is exact).
fn payload(gen: u8) -> Vec<u8> {
    (0..64u8).map(|i| i.wrapping_add(gen.wrapping_mul(101))).collect()
}

fn small_cfg(tag: u32) -> CheckpointerConfig {
    CheckpointerConfig::builder(tag).chunk_size(CHUNK).build().expect("valid config")
}

/// Run `f`, asserting it unwinds with the simulator's `RankKilled` panic.
fn expect_killed(f: impl FnOnce()) {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("commit must be killed mid-write");
    assert!(err.downcast_ref::<RankKilled>().is_some(), "panic payload must be RankKilled");
}

#[test]
fn kill_mid_chunk_write_falls_back_to_neighbor_replica() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, small_cfg(7), None);
    let v1 = payload(1);
    ck1.commit(1, v1.clone(), CopyPolicy::Replicate);
    assert!(ck1.drain(T), "v1 replica must land before the torn commit");

    // Crossing counters start at arming, so v2's dirty-chunk writes are
    // occurrences 1–4. Kill rank 1's node while it writes the *second*
    // one: chunk 1 of v2 is on disk, the rest — and the manifest — never
    // happen.
    world.fault().arm_injections(InjectionPlan::new().with(Injection::kill_node(
        "ckpt.chunk.write",
        1,
        2,
    )));
    expect_killed(|| ck1.commit(2, payload(2), CopyPolicy::Replicate));

    // A rescue on rank 3 adopts rank 1: the neighbor replica still serves
    // the previous consistent version, bit-exact.
    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, small_cfg(7), None);
    ck3.refresh_failed(&[1]);
    let r = ck3.restore_latest(1, T).hit().expect("neighbor fallback");
    assert_eq!(r.version, 1);
    assert_eq!(r.data, v1);
    assert_eq!(r.provenance, Provenance::Neighbor(NodeId(2)));
}

#[test]
fn kill_mid_manifest_write_falls_back_to_neighbor_replica() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, small_cfg(9), None);
    let v1 = payload(3);
    ck1.commit(1, v1.clone(), CopyPolicy::Replicate);
    assert!(ck1.drain(T));

    // All of v2's chunks land, but the manifest write (the first crossing
    // after arming) kills the node: without a manifest the version is
    // invisible.
    world.fault().arm_injections(InjectionPlan::new().with(Injection::kill_node(
        "ckpt.manifest.write",
        1,
        1,
    )));
    expect_killed(|| ck1.commit(2, payload(4), CopyPolicy::Replicate));

    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, small_cfg(9), None);
    ck3.refresh_failed(&[1]);
    let r = ck3.restore_latest(1, T).hit().expect("neighbor fallback");
    assert_eq!((r.version, r.data), (1, v1));
    assert_eq!(r.provenance, Provenance::Neighbor(NodeId(2)));
}

/// Torn commit where the *storage survives* (only the rank dies, on a
/// two-rank node): the local tier itself must skip the orphaned chunks
/// of the unfinished version and serve the previous manifest.
#[test]
fn orphaned_chunks_without_manifest_fall_back_locally() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4).with_ranks_per_node(2));
    let p0 = world.proc_handle(0);
    let ck0 = Checkpointer::new(&p0, small_cfg(3), None);
    let v1 = payload(5);
    ck0.commit(1, v1.clone(), CopyPolicy::Replicate);
    assert!(ck0.drain(T));

    // Kill only rank 0 right before the v2 manifest put: node 0's shelf
    // keeps v2's orphan chunks but no v2 manifest.
    world.fault().arm_injections(InjectionPlan::new().with(Injection::kill(
        "ckpt.manifest.write",
        0,
        1,
    )));
    expect_killed(|| ck0.commit(2, payload(6), CopyPolicy::Replicate));

    // Rank 1 lives on the same node and restores rank 0 from the local
    // shelf: version walking sees manifests only, so the orphans are
    // simply never considered.
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, small_cfg(3), None);
    ck1.refresh_failed(&[0]);
    let r = ck1.restore_latest(0, T).hit().expect("local fallback");
    assert_eq!((r.version, r.data), (1, v1));
    assert_eq!(r.provenance, Provenance::Local);
    assert_eq!(ck1.stats().restore_gaps, 0, "no gap: the torn version has no manifest at all");
}

/// Both the home node (torn mid-commit) and the replica holder die: the
/// PFS tier — which stores reconstituted full images — serves the last
/// spilled consistent version.
#[test]
fn torn_commit_with_dead_replica_falls_back_to_pfs() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let pfs = Pfs::new(PfsConfig::instant());
    let cfg = CheckpointerConfig::builder(5)
        .chunk_size(CHUNK)
        .pfs_every(1)
        .build()
        .expect("valid config");
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, cfg.clone(), Some(Arc::clone(&pfs)));
    let v1 = payload(7);
    ck1.commit(1, v1.clone(), CopyPolicy::Replicate);
    assert!(ck1.drain(T), "v1 must reach both the neighbor and the PFS");

    world.fault().arm_injections(InjectionPlan::new().with(Injection::kill_node(
        "ckpt.chunk.write",
        1,
        2,
    )));
    expect_killed(|| ck1.commit(2, payload(8), CopyPolicy::Replicate));
    // The replica holder dies too.
    world.fault().kill_node(NodeId(2));

    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, cfg, Some(pfs));
    ck3.refresh_failed(&[1, 2]);
    let r = ck3.restore_latest(1, T).hit().expect("PFS fallback");
    assert_eq!((r.version, r.data), (1, v1));
    assert_eq!(r.provenance, Provenance::Pfs);
    // The torn v2 never reached the PFS either.
    assert!(matches!(ck3.restore_exact(1, 2, T), RestoreOutcome::NotFound));
}
