//! Property tests: codec roundtrips and neighbor-ring invariants.

use proptest::prelude::*;

use ft_checkpoint::{Dec, Enc, NeighborMap};
use ft_cluster::Topology;

proptest! {
    /// Arbitrary encode sequences decode to the same values in order.
    #[test]
    fn codec_roundtrip(
        us in proptest::collection::vec(any::<u64>(), 0..20),
        fs in proptest::collection::vec(any::<f64>(), 0..20),
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        tail in any::<u32>(),
    ) {
        let mut e = Enc::new();
        e.u64s(&us).f64s(&fs).bytes(&bytes).u32(tail);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        prop_assert_eq!(d.u64s().unwrap(), us);
        let got = d.f64s().unwrap();
        prop_assert_eq!(got.len(), fs.len());
        for (a, b) in got.iter().zip(&fs) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "bit-exact floats");
        }
        prop_assert_eq!(d.bytes().unwrap(), bytes);
        prop_assert_eq!(d.u32().unwrap(), tail);
        d.expect_end().unwrap();
    }

    /// Truncating an encoded buffer anywhere never panics and never
    /// decodes to a full successful read of all fields.
    #[test]
    fn codec_truncation_safe(
        fs in proptest::collection::vec(any::<f64>(), 1..10),
        cut in 0usize..100,
    ) {
        let mut e = Enc::new();
        e.f64s(&fs);
        let buf = e.finish();
        let cut = cut.min(buf.len().saturating_sub(1));
        let mut d = Dec::new(&buf[..cut]);
        // Either errors or reads a shorter prefix — never panics.
        let _ = d.f64s();
    }

    /// The neighbor ring is a pure function of the failed set: insertion
    /// order never matters, neighbors are never dead, never self.
    #[test]
    fn neighbor_ring_invariants(
        n in 2u32..32,
        mut failed in proptest::collection::vec(0u32..32, 0..16),
    ) {
        failed.retain(|&r| r < n);
        let topo = Topology::one_per_node(n);
        let a = NeighborMap::from_failed(topo.clone(), failed.clone());
        failed.reverse();
        let mut b = NeighborMap::new(topo.clone());
        for &f in &failed {
            b.mark_failed(&[f]);
        }
        for node in topo.nodes() {
            let na = a.neighbor_of(node);
            prop_assert_eq!(na, b.neighbor_of(node), "order independence");
            if let Some(nb) = na {
                prop_assert_ne!(nb, node);
                prop_assert!(!a.node_dead(nb));
            }
        }
    }
}
