//! Integration tests: checkpoint, kill, restore — over a live world.

use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{
    Checkpointer, CheckpointerConfig, CopyPolicy, Pfs, PfsConfig, Provenance, RestoreOutcome,
};
use ft_cluster::NodeId;
use ft_gaspi::{GaspiConfig, GaspiWorld};

const T: Duration = Duration::from_secs(5);

#[test]
fn local_restore_is_fast_path() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let p = world.proc_handle(0);
    let ck = Checkpointer::new(&p, CheckpointerConfig::for_tag(1), None);
    ck.commit(1, vec![1, 2, 3], CopyPolicy::Replicate);
    ck.commit(2, vec![4, 5, 6], CopyPolicy::Replicate);
    assert!(ck.drain(T));
    let r = ck.restore_latest(0, T).hit().expect("restore");
    assert_eq!(r.version, 2);
    assert_eq!(r.data, vec![4, 5, 6]);
    assert_eq!(r.provenance, Provenance::Local);
}

#[test]
fn neighbor_replica_survives_node_kill() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let fault = world.fault();
    // Rank 1 checkpoints; its neighbor (node 2) receives the replica.
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, CheckpointerConfig::for_tag(7), None);
    ck1.commit(5, vec![9u8; 64], CopyPolicy::Replicate);
    assert!(ck1.drain(T), "async neighbor copy must land");
    assert_eq!(ck1.copies_done.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(ck1.neighbor_node(), Some(NodeId(2)));

    // Node 1 dies; its local checkpoint is wiped.
    fault.kill_node(NodeId(1));

    // A rescue process (rank 3) adopts rank 1 and restores its state.
    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, CheckpointerConfig::for_tag(7), None);
    ck3.refresh_failed(&[1]);
    let r = ck3.restore_latest(1, T).hit().expect("neighbor restore");
    assert_eq!(r.version, 5);
    assert_eq!(r.data, vec![9u8; 64]);
    assert_eq!(r.provenance, Provenance::Neighbor(NodeId(2)));
}

#[test]
fn rescue_on_replica_node_restores_without_network() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let fault = world.fault();
    let p0 = world.proc_handle(0);
    let ck0 = Checkpointer::new(&p0, CheckpointerConfig::for_tag(1), None);
    ck0.commit(1, b"state-of-rank-0".to_vec(), CopyPolicy::Replicate);
    assert!(ck0.drain(T));
    fault.kill_node(NodeId(0));
    // Rank 1 *is* the replica holder (node 1 is node 0's neighbor).
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, CheckpointerConfig::for_tag(1), None);
    ck1.refresh_failed(&[0]);
    let r = ck1.restore_latest(0, T).hit().expect("restore");
    assert_eq!(r.provenance, Provenance::Neighbor(NodeId(1)));
    assert_eq!(r.data, b"state-of-rank-0");
}

#[test]
fn ring_skips_dead_nodes_after_refresh() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let fault = world.fault();
    let p0 = world.proc_handle(0);
    let ck0 = Checkpointer::new(&p0, CheckpointerConfig::for_tag(1), None);
    // Node 1 dies *before* the checkpoint: the copy must skip to node 2.
    fault.kill_node(NodeId(1));
    ck0.refresh_failed(&[1]);
    assert_eq!(ck0.neighbor_node(), Some(NodeId(2)));
    ck0.commit(1, vec![7u8; 16], CopyPolicy::Replicate);
    assert!(ck0.drain(T));
    let storage = world.storage();
    assert!(storage
        .get(NodeId(2), ft_cluster::storage::BlobKey { rank: 0, tag: 1, version: 1 })
        .is_some());
}

#[test]
fn pfs_fallback_when_both_nodes_dead() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let fault = world.fault();
    let pfs = Pfs::new(PfsConfig::instant());
    let p0 = world.proc_handle(0);
    let cfg = CheckpointerConfig { pfs_every: Some(1), ..CheckpointerConfig::for_tag(3) };
    let ck0 = Checkpointer::new(&p0, cfg, Some(Arc::clone(&pfs)));
    ck0.commit(4, b"pfs-me".to_vec(), CopyPolicy::Replicate);
    assert!(ck0.drain(T));
    // Both the home node and the replica holder die.
    fault.kill_node(NodeId(0));
    fault.kill_node(NodeId(1));
    let p2 = world.proc_handle(2);
    let ck2 = Checkpointer::new(
        &p2,
        CheckpointerConfig { pfs_every: Some(1), ..CheckpointerConfig::for_tag(3) },
        Some(pfs),
    );
    ck2.refresh_failed(&[0, 1]);
    let r = ck2.restore_latest(0, T).hit().expect("PFS restore");
    assert_eq!(r.provenance, Provenance::Pfs);
    assert_eq!(r.data, b"pfs-me");
    assert_eq!(r.version, 4);
}

/// The restart *vote* path against the PFS tier: `latest_restorable`
/// must count PFS versions and `restore_exact` of the agreed version
/// must fall back to PFS when both the home node and the replica holder
/// are gone — the path a group-wide consistent restore takes after a
/// two-node loss.
#[test]
fn vote_path_restore_exact_falls_back_to_pfs() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let fault = world.fault();
    let pfs = Pfs::new(PfsConfig::instant());
    let p0 = world.proc_handle(0);
    let cfg = CheckpointerConfig { pfs_every: Some(1), ..CheckpointerConfig::for_tag(5) };
    let ck0 = Checkpointer::new(&p0, cfg, Some(Arc::clone(&pfs)));
    ck0.commit(1, b"v1".to_vec(), CopyPolicy::Replicate);
    ck0.commit(2, b"v2".to_vec(), CopyPolicy::Replicate);
    assert!(ck0.drain(T));

    // Home node and replica holder both die.
    fault.kill_node(NodeId(0));
    fault.kill_node(NodeId(1));

    let p2 = world.proc_handle(2);
    let ck2 = Checkpointer::new(
        &p2,
        CheckpointerConfig { pfs_every: Some(1), ..CheckpointerConfig::for_tag(5) },
        Some(pfs),
    );
    ck2.refresh_failed(&[0, 1]);
    // The vote must still see version 2 (via PFS)…
    assert_eq!(ck2.latest_restorable(0, T), RestoreOutcome::Hit(2));
    // …and the agreed version must be restorable from PFS — both the
    // latest and the older one (a divergent-epoch vote may agree on v1).
    let r = ck2.restore_exact(0, 2, T).hit().expect("PFS exact restore");
    assert_eq!(r.provenance, Provenance::Pfs);
    assert_eq!(r.data, b"v2");
    let r1 = ck2.restore_exact(0, 1, T).hit().expect("PFS exact restore of older version");
    assert_eq!(r1.provenance, Provenance::Pfs);
    assert_eq!(r1.data, b"v1");
    assert_eq!(ck2.stats().restores_pfs, 2);
}

#[test]
fn keep_versions_prunes_old_checkpoints() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let p0 = world.proc_handle(0);
    let ck = Checkpointer::new(&p0, CheckpointerConfig::for_tag(1), None);
    for v in 1..=5 {
        ck.commit(v, vec![v as u8; 8], CopyPolicy::Replicate);
    }
    assert!(ck.drain(T));
    let storage = world.storage();
    // keep_versions = 2 → only v4, v5 remain locally.
    for v in 1..=3u64 {
        assert!(storage
            .get(NodeId(0), ft_cluster::storage::BlobKey { rank: 0, tag: 1, version: v })
            .is_none());
    }
    for v in 4..=5u64 {
        assert!(storage
            .get(NodeId(0), ft_cluster::storage::BlobKey { rank: 0, tag: 1, version: v })
            .is_some());
    }
}

#[test]
fn latest_restorable_sees_remote_replica() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let fault = world.fault();
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, CheckpointerConfig::for_tag(1), None);
    ck1.commit(1, vec![1], CopyPolicy::Replicate);
    ck1.commit(2, vec![2], CopyPolicy::Replicate);
    assert!(ck1.drain(T));
    fault.kill_node(NodeId(1));
    let p3 = world.proc_handle(3);
    let ck3 = Checkpointer::new(&p3, CheckpointerConfig::for_tag(1), None);
    ck3.refresh_failed(&[1]);
    assert_eq!(ck3.latest_restorable(1, T), RestoreOutcome::Hit(2));
    // And restore_exact of the agreed version works remotely.
    let r = ck3.restore_exact(1, 2, T).hit().expect("exact restore");
    assert_eq!(r.data, vec![2]);
}

#[test]
fn exhausted_ring_restores_nothing() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let fault = world.fault();
    let p0 = world.proc_handle(0);
    let ck0 = Checkpointer::new(&p0, CheckpointerConfig::for_tag(1), None);
    ck0.commit(1, vec![1], CopyPolicy::Replicate);
    assert!(ck0.drain(T));
    fault.kill_node(NodeId(0));
    fault.kill_node(NodeId(1));
    // Nothing left anywhere, no PFS: restore must fail, not hang.
    let p1 = world.proc_handle(1);
    let ck1 = Checkpointer::new(&p1, CheckpointerConfig::for_tag(1), None);
    ck1.refresh_failed(&[0, 1]);
    assert!(matches!(ck1.restore_latest(0, Duration::from_millis(500)), RestoreOutcome::NotFound));
}
