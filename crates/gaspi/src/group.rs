//! Groups: named subsets of ranks for collective operations.
//!
//! GASPI groups are similar to MPI communicators (§III) and are the object
//! the paper's recovery rebuilds after a failure (Listing 2): the old
//! `COMM_MAIN` is deleted, a new group is created, the surviving workers
//! and rescue processes are added, and `gaspi_group_commit` — a blocking
//! collective — establishes it.
//!
//! Group *handles* are process-local. Members agree on a group by using
//! the same numeric id: either implicitly (every rank performs the same
//! sequence of [`crate::GaspiProc::group_create`] calls, as GPI-2 assumes)
//! or explicitly via [`crate::GaspiProc::group_create_with_id`] — which
//! the recovery protocol uses, deriving the id from the recovery epoch so
//! ranks that joined at different times (rescues!) still agree.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ft_cluster::Rank;

use crate::collectives::{CollKey, ErrFlag, COMMIT_PHASE};
use crate::error::{GaspiError, GaspiResult, Timeout};
use crate::proc::GaspiProc;

/// Handle to a group (process-local; members agree via the numeric id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Group(pub u64);

/// Auto-allocated ids live below this; explicit ids should be at or above
/// it to avoid collisions.
pub const EXPLICIT_ID_BASE: u64 = 1 << 32;

pub(crate) struct GroupState {
    pub members: Vec<Rank>, // sorted, deduplicated
    pub committed: bool,
    pub coll_seq: u64,
    /// An interrupted (timed-out) collective that must be *resumed* by
    /// the next call of the same kind — GASPI semantics: "a procedure
    /// interrupted by timeout must be called again to complete".
    pub pending: Option<(CollKind, u64)>,
}

/// Kind tag for resumable collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollKind {
    Barrier,
    AllreduceF64,
    AllreduceU64,
}

/// Per-process group table.
#[derive(Default)]
pub(crate) struct GroupRegistry {
    map: Mutex<HashMap<u64, GroupState>>,
    auto: AtomicU64,
}

impl GroupRegistry {
    pub fn create_auto(&self) -> u64 {
        let id = self.auto.fetch_add(1, Ordering::Relaxed) + 1;
        self.map.lock().insert(id, GroupState::new());
        id
    }

    pub fn create_with_id(&self, id: u64) -> GaspiResult<()> {
        let mut m = self.map.lock();
        if m.contains_key(&id) {
            return Err(GaspiError::Group { what: "group id already exists" });
        }
        m.insert(id, GroupState::new());
        Ok(())
    }

    pub fn delete(&self, id: u64) -> GaspiResult<()> {
        self.map
            .lock()
            .remove(&id)
            .map(|_| ())
            .ok_or(GaspiError::Group { what: "group id not found" })
    }

    pub fn add(&self, id: u64, rank: Rank) -> GaspiResult<()> {
        let mut m = self.map.lock();
        let st = m.get_mut(&id).ok_or(GaspiError::Group { what: "group id not found" })?;
        if st.committed {
            return Err(GaspiError::Group { what: "cannot add to committed group" });
        }
        if let Err(pos) = st.members.binary_search(&rank) {
            st.members.insert(pos, rank);
        }
        Ok(())
    }

    pub fn members(&self, id: u64) -> GaspiResult<Vec<Rank>> {
        let m = self.map.lock();
        let st = m.get(&id).ok_or(GaspiError::Group { what: "group id not found" })?;
        Ok(st.members.clone())
    }

    pub fn mark_committed(&self, id: u64) -> GaspiResult<()> {
        let mut m = self.map.lock();
        let st = m.get_mut(&id).ok_or(GaspiError::Group { what: "group id not found" })?;
        st.committed = true;
        Ok(())
    }

    /// Members of a *committed* group plus the sequence number for the
    /// next collective of `kind`, and whether this call *resumes* an
    /// interrupted collective. If a collective of the same kind was
    /// interrupted by a timeout, its sequence number is *reused* so the
    /// call resumes instead of desynchronizing the group; a different
    /// pending kind is an API misuse and errors.
    pub fn collective_ticket(
        &self,
        id: u64,
        kind: CollKind,
    ) -> GaspiResult<(Vec<Rank>, u64, bool)> {
        let mut m = self.map.lock();
        let st = m.get_mut(&id).ok_or(GaspiError::Group { what: "group id not found" })?;
        if !st.committed {
            return Err(GaspiError::Group { what: "group not committed" });
        }
        match st.pending {
            Some((k, seq)) if k == kind => Ok((st.members.clone(), seq, true)),
            Some(_) => {
                Err(GaspiError::Group { what: "a different collective is pending on this group" })
            }
            None => {
                st.coll_seq += 1;
                st.pending = Some((kind, st.coll_seq));
                Ok((st.members.clone(), st.coll_seq, false))
            }
        }
    }

    /// Mark the pending collective of `id` as completed.
    pub fn finish_collective(&self, id: u64, seq: u64) {
        let mut m = self.map.lock();
        if let Some(st) = m.get_mut(&id) {
            if matches!(st.pending, Some((_, s)) if s == seq) {
                st.pending = None;
            }
        }
    }
}

impl GroupState {
    fn new() -> Self {
        Self { members: Vec::new(), committed: false, coll_seq: 0, pending: None }
    }
}

/// A stable fingerprint of the member list, exchanged during commit so a
/// member-set mismatch is detected instead of silently mis-pairing
/// collectives (FNV-1a over the sorted ranks).
pub(crate) fn members_fingerprint(members: &[Rank]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &r in members {
        for b in r.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl GaspiProc {
    /// Create a group with an automatically allocated id. Ids agree across
    /// ranks only if all ranks create groups in the same order; prefer
    /// [`GaspiProc::group_create_with_id`] when ranks may diverge (e.g.
    /// during failure recovery).
    pub fn group_create(&self) -> Group {
        self.check_self();
        Group(self.shared().groups.create_auto())
    }

    /// Create a group with an explicit id (must be `>=`
    /// [`EXPLICIT_ID_BASE`] to stay clear of auto ids).
    pub fn group_create_with_id(&self, id: u64) -> GaspiResult<Group> {
        self.check_self();
        if id < EXPLICIT_ID_BASE {
            return Err(GaspiError::InvalidArg("explicit group id below EXPLICIT_ID_BASE"));
        }
        self.shared().groups.create_with_id(id)?;
        Ok(Group(id))
    }

    /// Add a rank to an uncommitted group (`gaspi_group_add`).
    pub fn group_add(&self, group: Group, rank: Rank) -> GaspiResult<()> {
        self.check_self();
        if rank >= self.num_ranks() {
            return Err(GaspiError::InvalidArg("rank out of range"));
        }
        self.shared().groups.add(group.0, rank)
    }

    /// Current member count (`gaspi_group_size`).
    pub fn group_size(&self, group: Group) -> GaspiResult<u32> {
        self.check_self();
        Ok(self.shared().groups.members(group.0)?.len() as u32)
    }

    /// Member list, sorted ascending.
    pub fn group_members(&self, group: Group) -> GaspiResult<Vec<Rank>> {
        self.check_self();
        self.shared().groups.members(group.0)
    }

    /// Delete a group handle and purge any collective tokens addressed to
    /// it (`gaspi_group_delete`). Purging matters after an *abandoned*
    /// collective: a barrier interrupted by a failure leaves tokens behind
    /// that must not confuse a future group with a recycled id.
    pub fn group_delete(&self, group: Group) -> GaspiResult<()> {
        self.check_self();
        self.shared().groups.delete(group.0)?;
        self.shared().coll.purge_group(group.0);
        Ok(())
    }

    /// Establish the group collectively (`gaspi_group_commit`).
    ///
    /// Every member sends a token (carrying a fingerprint of its member
    /// list) to every other member and blocks until tokens from all of
    /// them arrive — the blocking cost the paper calls out as the dominant
    /// part of the *rebuilding of work group* overhead (OHF2). Commit
    /// tokens are idempotent: they stay on the board until `group_delete`,
    /// so a commit that timed out can be retried.
    pub fn group_commit(&self, group: Group, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.group.commit");
        let members = self.shared().groups.members(group.0)?;
        if !members.contains(&self.rank()) {
            return Err(GaspiError::Group { what: "commit on group not containing self" });
        }
        let fp = members_fingerprint(&members);
        let err = ErrFlag::default();
        for &m in &members {
            if m == self.rank() {
                continue;
            }
            let key = CollKey { group: group.0, seq: 0, phase: COMMIT_PHASE, from: self.rank() };
            self.send_coll_token(m, key, fp.to_le_bytes().to_vec(), &err);
        }
        let deadline = timeout.deadline();
        for &m in &members {
            if m == self.rank() {
                continue;
            }
            let key = CollKey { group: group.0, seq: 0, phase: COMMIT_PHASE, from: m };
            let data = self.poll_deadline(deadline, || {
                if let Some(e) = err.get() {
                    return Some(Err(e));
                }
                self.shared().coll.peek(&key).map(Ok)
            })?;
            let their_fp = u64::from_le_bytes(data[..8].try_into().unwrap());
            if their_fp != fp {
                return Err(GaspiError::Group { what: "member set mismatch at commit" });
            }
        }
        self.injection_site("gaspi.group.commit.done");
        self.shared().groups.mark_committed(group.0)?;
        self.world().metrics.count_group_commit();
        Ok(())
    }
}
