//! Collective operations: barrier and allreduce over committed groups.
//!
//! Both run as binomial/dissemination token exchanges through the
//! transport, so their cost scales as `O(log n)` network steps and they
//! fail exactly like the paper describes: if a member died, tokens stop
//! arriving and the collective returns `GASPI_TIMEOUT` (or an error when
//! the transport has already reported the connection broken) — which is
//! the state the workers sit in until the fault detector's
//! acknowledgment arrives.
//!
//! Reductions combine contributions in a *fixed tree order*, so a
//! recovered run reproduces the failure-free run's floating-point results
//! bit for bit — asserted by the integration tests.

use std::collections::HashMap;

use parking_lot::Mutex;

use ft_cluster::{Outcome, Rank};

use crate::endpoint;
use crate::error::{GaspiError, GaspiResult, Timeout};
use crate::proc::GaspiProc;
use crate::ReduceOp;

/// Phase tag for group-commit tokens.
pub(crate) const COMMIT_PHASE: u32 = u32::MAX;
/// Phase base for barrier rounds.
const BARRIER_PHASE: u32 = 0x1000_0000;
/// Phase base for reduce rounds.
const REDUCE_PHASE: u32 = 0x2000_0000;
/// Phase base for broadcast rounds.
const BCAST_PHASE: u32 = 0x3000_0000;

/// GASPI caps allreduce buffers at 255 elements.
pub const ALLREDUCE_MAX_ELEMS: usize = 255;

/// Key identifying one collective token on a rank's board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CollKey {
    pub group: u64,
    pub seq: u64,
    pub phase: u32,
    pub from: Rank,
}

/// Per-rank mailbox for collective tokens.
#[derive(Default)]
pub(crate) struct CollBoard {
    map: Mutex<HashMap<CollKey, Vec<u8>>>,
}

impl CollBoard {
    pub fn insert(&self, key: CollKey, data: Vec<u8>) {
        self.map.lock().insert(key, data);
    }

    /// Remove and return a token.
    #[cfg(test)]
    pub fn take(&self, key: &CollKey) -> Option<Vec<u8>> {
        self.map.lock().remove(key)
    }

    /// Read a token without consuming it. Collectives only ever *peek*:
    /// an interrupted collective can then be resumed without losing
    /// partner tokens; stale tokens are garbage-collected by sequence
    /// number instead ([`CollBoard::purge_group_below`]).
    pub fn peek(&self, key: &CollKey) -> Option<Vec<u8>> {
        self.map.lock().get(key).cloned()
    }

    /// Drop every token addressed to `group`.
    pub fn purge_group(&self, group: u64) {
        self.map.lock().retain(|k, _| k.group != group);
    }

    /// Drop tokens of `group` with a sequence number below `seq`
    /// (called when this rank *starts* collective `seq` — everything
    /// older is finished from this rank's perspective).
    pub fn purge_group_below(&self, group: u64, seq: u64) {
        self.map.lock().retain(|k, _| k.group != group || k.seq >= seq);
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }
}

/// Set-once error slot shared with delivery actions.
#[derive(Default, Clone)]
pub(crate) struct ErrFlag {
    inner: std::sync::Arc<Mutex<Option<GaspiError>>>,
}

impl ErrFlag {
    pub fn set(&self, e: GaspiError) {
        let mut g = self.inner.lock();
        if g.is_none() {
            *g = Some(e);
        }
    }

    pub fn get(&self) -> Option<GaspiError> {
        self.inner.lock().clone()
    }
}

fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

impl GaspiProc {
    /// Post a collective token to `dst`; failures land in `err` and wake
    /// this rank.
    pub(crate) fn send_coll_token(&self, dst: Rank, key: CollKey, data: Vec<u8>, err: &ErrFlag) {
        let me = self.shared_arc();
        let err = err.clone();
        let cost = data.len();
        let msg = endpoint::enc_coll(&key, &data);
        self.world().transport.send(
            self.rank(),
            dst,
            self.world().cfg.coll_queue(),
            cost,
            msg,
            Box::new(move |out, _reply| {
                match out {
                    Outcome::Delivered => {}
                    Outcome::Broken => err.set(GaspiError::RemoteBroken { rank: dst }),
                    Outcome::Cancelled => err.set(GaspiError::Shutdown),
                }
                me.signal.bump();
            }),
        );
    }

    fn peek_token(
        &self,
        key: CollKey,
        err: &ErrFlag,
        deadline: Option<std::time::Instant>,
    ) -> GaspiResult<Vec<u8>> {
        let out = self.poll_deadline(deadline, || {
            if let Some(e) = err.get() {
                return Some(Err(e));
            }
            self.shared().coll.peek(&key).map(Ok)
        });
        if let Err(GaspiError::RemoteBroken { rank }) = &out {
            self.mark_corrupt(*rank);
        }
        out
    }

    /// Synchronize all members of `group` (`gaspi_barrier`). Dissemination
    /// pattern: ⌈log₂ n⌉ rounds of token exchange.
    ///
    /// Resumable, as the GASPI specification requires: a call that
    /// returned `GASPI_TIMEOUT` is completed by calling it again — the
    /// interrupted instance keeps its sequence number and its tokens.
    pub fn barrier(&self, group: crate::Group, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.barrier");
        let (members, seq, resumed) =
            self.shared().groups.collective_ticket(group.0, crate::group::CollKind::Barrier)?;
        if resumed {
            self.world().metrics.count_resume(crate::group::CollKind::Barrier);
        }
        self.shared().coll.purge_group_below(group.0, seq);
        let n = members.len();
        let i = members
            .binary_search(&self.rank())
            .map_err(|_| GaspiError::Group { what: "barrier on group not containing self" })?;
        let finish = |r: GaspiResult<()>| {
            if r.is_ok() {
                self.shared().groups.finish_collective(group.0, seq);
            }
            r
        };
        if n == 1 {
            return finish(Ok(()));
        }
        let deadline = timeout.deadline();
        let err = ErrFlag::default();
        for k in 0..ceil_log2(n) {
            let step = 1usize << k;
            let to = members[(i + step) % n];
            let from = members[(i + n - step) % n];
            let send_key =
                CollKey { group: group.0, seq, phase: BARRIER_PHASE + k, from: self.rank() };
            self.send_coll_token(to, send_key, Vec::new(), &err);
            let recv_key = CollKey { group: group.0, seq, phase: BARRIER_PHASE + k, from };
            self.peek_token(recv_key, &err, deadline)?;
        }
        finish(Ok(()))
    }

    /// Element-wise allreduce over `f64` buffers (`gaspi_allreduce`).
    /// All members must pass equal-length buffers (≤
    /// [`ALLREDUCE_MAX_ELEMS`]); every member receives the same result,
    /// combined in a fixed (deterministic) tree order.
    pub fn allreduce_f64(
        &self,
        group: crate::Group,
        input: &[f64],
        op: ReduceOp,
        timeout: Timeout,
    ) -> GaspiResult<Vec<f64>> {
        self.allreduce_impl(
            group,
            input,
            timeout,
            crate::group::CollKind::AllreduceF64,
            |acc, x| match op {
                ReduceOp::Sum => acc + x,
                ReduceOp::Min => acc.min(x),
                ReduceOp::Max => acc.max(x),
                ReduceOp::BitXor => f64::from_bits(acc.to_bits() ^ x.to_bits()),
            },
            f64::to_le_bytes,
            f64::from_le_bytes,
        )
    }

    /// Element-wise allreduce over `u64` buffers.
    pub fn allreduce_u64(
        &self,
        group: crate::Group,
        input: &[u64],
        op: ReduceOp,
        timeout: Timeout,
    ) -> GaspiResult<Vec<u64>> {
        self.allreduce_impl(
            group,
            input,
            timeout,
            crate::group::CollKind::AllreduceU64,
            |acc, x| match op {
                ReduceOp::Sum => acc.wrapping_add(x),
                ReduceOp::Min => acc.min(x),
                ReduceOp::Max => acc.max(x),
                ReduceOp::BitXor => acc ^ x,
            },
            u64::to_le_bytes,
            u64::from_le_bytes,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn allreduce_impl<T: Copy>(
        &self,
        group: crate::Group,
        input: &[T],
        timeout: Timeout,
        kind: crate::group::CollKind,
        combine: impl Fn(T, T) -> T,
        enc: impl Fn(T) -> [u8; 8],
        dec: impl Fn([u8; 8]) -> T,
    ) -> GaspiResult<Vec<T>> {
        self.check_self();
        self.injection_site("gaspi.allreduce");
        if input.len() > ALLREDUCE_MAX_ELEMS {
            return Err(GaspiError::InvalidArg("allreduce buffer exceeds 255 elements"));
        }
        let (members, seq, resumed) = self.shared().groups.collective_ticket(group.0, kind)?;
        if resumed {
            self.world().metrics.count_resume(kind);
        }
        self.shared().coll.purge_group_below(group.0, seq);
        let n = members.len();
        let i = members
            .binary_search(&self.rank())
            .map_err(|_| GaspiError::Group { what: "allreduce on group not containing self" })?;
        let deadline = timeout.deadline();
        let err = ErrFlag::default();
        let pack = |vs: &[T]| -> Vec<u8> { vs.iter().flat_map(|v| enc(*v)).collect() };
        let unpack = |bs: &[u8]| -> GaspiResult<Vec<T>> {
            if bs.len() != input.len() * 8 {
                return Err(GaspiError::InvalidArg("allreduce buffer length mismatch"));
            }
            Ok(bs.chunks_exact(8).map(|c| dec(c.try_into().unwrap())).collect())
        };

        let mut acc: Vec<T> = input.to_vec();
        // Reduce phase: binomial tree toward member index 0, combining in
        // ascending round order (deterministic).
        let rounds = ceil_log2(n);
        let mut sent_at_round = None;
        for k in 0..rounds {
            let step = 1usize << k;
            if i % (2 * step) == step {
                let parent = members[i - step];
                let key =
                    CollKey { group: group.0, seq, phase: REDUCE_PHASE + k, from: self.rank() };
                self.send_coll_token(parent, key, pack(&acc), &err);
                sent_at_round = Some(k);
                break;
            }
            if i % (2 * step) == 0 && i + step < n {
                let child = members[i + step];
                let key = CollKey { group: group.0, seq, phase: REDUCE_PHASE + k, from: child };
                let data = self.peek_token(key, &err, deadline)?;
                let theirs = unpack(&data)?;
                for (a, t) in acc.iter_mut().zip(theirs) {
                    *a = combine(*a, t);
                }
            }
        }
        // Broadcast phase: the root's result flows back down the same tree.
        let my_height = match sent_at_round {
            Some(k) => {
                let parent = members[i - (1usize << k)];
                let key = CollKey { group: group.0, seq, phase: BCAST_PHASE + k, from: parent };
                let data = self.peek_token(key, &err, deadline)?;
                acc = unpack(&data)?;
                k
            }
            None => rounds, // root (index 0)
        };
        for k in (0..my_height).rev() {
            let step = 1usize << k;
            if i + step < n {
                let child = members[i + step];
                let key =
                    CollKey { group: group.0, seq, phase: BCAST_PHASE + k, from: self.rank() };
                self.send_coll_token(child, key, pack(&acc), &err);
            }
        }
        self.shared().groups.finish_collective(group.0, seq);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn board_take_and_peek() {
        let b = CollBoard::default();
        let k = CollKey { group: 1, seq: 2, phase: 3, from: 4 };
        b.insert(k, vec![1, 2]);
        assert_eq!(b.peek(&k), Some(vec![1, 2]));
        assert_eq!(b.take(&k), Some(vec![1, 2]));
        assert_eq!(b.take(&k), None);
    }

    #[test]
    fn purge_group_scopes_to_group() {
        let b = CollBoard::default();
        b.insert(CollKey { group: 1, seq: 0, phase: 0, from: 0 }, vec![]);
        b.insert(CollKey { group: 2, seq: 0, phase: 0, from: 0 }, vec![]);
        b.purge_group(1);
        assert_eq!(b.len(), 1);
        assert!(b.peek(&CollKey { group: 2, seq: 0, phase: 0, from: 0 }).is_some());
    }

    #[test]
    fn errflag_is_set_once() {
        let e = ErrFlag::default();
        assert!(e.get().is_none());
        e.set(GaspiError::Timeout);
        e.set(GaspiError::Shutdown);
        assert_eq!(e.get(), Some(GaspiError::Timeout));
    }
}
