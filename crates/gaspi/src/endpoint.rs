//! The GASPI wire protocol: every remote operation of [`crate::GaspiProc`]
//! encoded as bytes over the [`ft_cluster::Transport`] seam.
//!
//! The initiating side encodes an op with the `enc_*` helpers and posts it
//! via `Transport::send`/`call`; the target side's [`GaspiEndpoint`]
//! decodes it against *its own* rank state and returns a small reply.
//! Because both halves speak only bytes, the same runtime runs unmodified
//! over the in-memory simulator (handler invoked on the scheduler thread)
//! and the real-process TCP backend (handler invoked in the target
//! process) — this module is the single definition of what crosses the
//! wire.
//!
//! Checkpoint service traffic (queues at the top of the `u16` range) is
//! not decoded here: it is routed raw to the world's installed checkpoint
//! service handler, keeping the GASPI layer ignorant of checkpoint
//! payload formats.

use std::sync::Weak;

use ft_cluster::{Dec, Enc, Endpoint, QueueId, Rank};

use crate::bytes;
use crate::collectives::CollKey;
use crate::error::{GaspiError, GaspiResult};
use crate::runtime::WorldInner;
use crate::segment::{NotificationId, SegId};

/// Lowest queue id reserved for checkpoint service traffic. Messages on
/// queues `>= CKPT_QUEUE_BASE` bypass GASPI decoding and go to the
/// world's checkpoint service handler.
pub const CKPT_QUEUE_BASE: QueueId = u16::MAX - 1;

// Op tags (first byte of every GASPI wire message).
const OP_PUT: u8 = 1;
const OP_READ: u8 = 2;
const OP_PING: u8 = 3;
const OP_KILL: u8 = 4;
const OP_PASSIVE: u8 = 5;
const OP_FAA: u8 = 6;
const OP_CAS: u8 = 7;
const OP_COLL: u8 = 8;

// Reply status bytes.
pub(crate) const ST_OK: u8 = 0;
pub(crate) const ST_FAIL: u8 = 1;
/// Atomic op addressed a missing segment (remote looks broken).
const ST_NO_SEGMENT: u8 = 2;
/// Atomic op addressed an out-of-bounds offset.
const ST_BOUNDS: u8 = 3;

// ---------------------------------------------------------------------
// Encoders (initiator side)
// ---------------------------------------------------------------------

pub(crate) fn enc_put(
    rseg: SegId,
    roff: u64,
    notif: Option<(NotificationId, u32)>,
    data: &[u8],
) -> Vec<u8> {
    let mut e = Enc::with_capacity(data.len() + 32);
    e.u8(OP_PUT).u32(u32::from(rseg)).u64(roff);
    match notif {
        Some((nid, val)) => e.u8(1).u32(nid).u32(val),
        None => e.u8(0),
    };
    e.bytes(data);
    e.finish()
}

pub(crate) fn enc_read(rseg: SegId, roff: u64, len: u64) -> Vec<u8> {
    let mut e = Enc::with_capacity(24);
    e.u8(OP_READ).u32(u32::from(rseg)).u64(roff).u64(len);
    e.finish()
}

pub(crate) fn enc_ping() -> Vec<u8> {
    vec![OP_PING]
}

pub(crate) fn enc_kill() -> Vec<u8> {
    vec![OP_KILL]
}

pub(crate) fn enc_passive(data: &[u8]) -> Vec<u8> {
    let mut e = Enc::with_capacity(data.len() + 16);
    e.u8(OP_PASSIVE).bytes(data);
    e.finish()
}

pub(crate) fn enc_faa(seg: SegId, off: u64, delta: u64) -> Vec<u8> {
    let mut e = Enc::with_capacity(32);
    e.u8(OP_FAA).u32(u32::from(seg)).u64(off).u64(delta);
    e.finish()
}

pub(crate) fn enc_cas(seg: SegId, off: u64, expect: u64, new: u64) -> Vec<u8> {
    let mut e = Enc::with_capacity(40);
    e.u8(OP_CAS).u32(u32::from(seg)).u64(off).u64(expect).u64(new);
    e.finish()
}

pub(crate) fn enc_coll(key: &CollKey, data: &[u8]) -> Vec<u8> {
    let mut e = Enc::with_capacity(data.len() + 40);
    e.u8(OP_COLL).u64(key.group).u64(key.seq).u32(key.phase).u32(key.from).bytes(data);
    e.finish()
}

// ---------------------------------------------------------------------
// Reply decoders (initiator side)
// ---------------------------------------------------------------------

/// Whether a one-byte-status reply reports success.
pub(crate) fn reply_ok(reply: &[u8]) -> bool {
    reply.first() == Some(&ST_OK)
}

/// Decode a read reply into the fetched bytes (None = remote failure).
pub(crate) fn dec_read_reply(reply: &[u8]) -> Option<Vec<u8>> {
    let mut d = Dec::new(reply);
    match d.u8() {
        Ok(ST_OK) => d.bytes().ok(),
        _ => None,
    }
}

/// Decode an atomic reply into the previous value, mapping remote
/// failures the way the in-memory implementation always has: missing
/// segment → the remote looks broken; bad offset → a segment error.
pub(crate) fn dec_atomic_reply(reply: &[u8], dst: Rank) -> GaspiResult<u64> {
    let mut d = Dec::new(reply);
    match d.u8() {
        Ok(ST_OK) => d.u64().map_err(|_| GaspiError::RemoteBroken { rank: dst }),
        Ok(ST_BOUNDS) => Err(GaspiError::Segment { what: "atomic access out of bounds" }),
        _ => Err(GaspiError::RemoteBroken { rank: dst }),
    }
}

// ---------------------------------------------------------------------
// The endpoint (target side)
// ---------------------------------------------------------------------

/// Message handler for one rank: decodes GASPI ops against that rank's
/// shared state. Holds the world weakly so a bound endpoint never keeps a
/// dead world alive through the transport.
pub(crate) struct GaspiEndpoint {
    world: Weak<WorldInner>,
    rank: Rank,
}

impl GaspiEndpoint {
    pub(crate) fn new(world: Weak<WorldInner>, rank: Rank) -> Self {
        Self { world, rank }
    }
}

impl Endpoint for GaspiEndpoint {
    fn handle(&self, src: Rank, queue: QueueId, msg: &[u8]) -> Vec<u8> {
        let Some(world) = self.world.upgrade() else {
            return vec![ST_FAIL];
        };
        if queue >= CKPT_QUEUE_BASE {
            let handler = world.ckpt_handler.lock().clone();
            return match handler {
                Some(f) => f(self.rank, src, queue, msg),
                None => vec![ST_FAIL],
            };
        }
        dispatch(&world, self.rank, src, msg).unwrap_or_else(|| vec![ST_FAIL])
    }
}

/// Decode and execute one op on `me`'s state; `None` = malformed message.
fn dispatch(world: &WorldInner, me: Rank, src: Rank, msg: &[u8]) -> Option<Vec<u8>> {
    let shared = world.shared(me);
    let mut d = Dec::new(msg);
    match d.u8().ok()? {
        OP_PUT => {
            let rseg = d.u32().ok()? as SegId;
            let roff = d.u64().ok()? as usize;
            let notif = match d.u8().ok()? {
                0 => None,
                _ => Some((d.u32().ok()?, d.u32().ok()?)),
            };
            let data = d.bytes().ok()?;
            let ok = match shared.segments.get(rseg) {
                Some(seg) => {
                    let wrote = data.is_empty() || seg.write_at(roff, &data).is_ok();
                    let notified = match notif {
                        Some((nid, val)) if wrote => seg.notify_set(nid, val).is_ok(),
                        Some(_) => false,
                        None => true,
                    };
                    wrote && notified
                }
                None => false,
            };
            if ok && notif.is_some() {
                shared.signal.bump();
            }
            Some(vec![if ok { ST_OK } else { ST_FAIL }])
        }
        OP_READ => {
            let rseg = d.u32().ok()? as SegId;
            let roff = d.u64().ok()? as usize;
            let len = d.u64().ok()? as usize;
            match shared.segments.get(rseg).and_then(|s| s.read_at(roff, len).ok()) {
                Some(data) => {
                    let mut e = Enc::with_capacity(data.len() + 16);
                    e.u8(ST_OK).bytes(&data);
                    Some(e.finish())
                }
                None => Some(vec![ST_FAIL]),
            }
        }
        OP_PING => Some(Vec::new()),
        OP_KILL => {
            // `gaspi_proc_kill` landing: this rank dies. Under the thread
            // backend the liveness flag is poisoned; under the process
            // backend the fault plane's armed exit turns this into a real
            // `exit()` and the reply below is never sent.
            world.fault.kill_rank(me);
            Some(Vec::new())
        }
        OP_PASSIVE => {
            let data = d.bytes().ok()?;
            shared.passive_inbox.lock().push_back((src, data));
            shared.signal.bump();
            Some(vec![ST_OK])
        }
        OP_FAA => {
            let seg = d.u32().ok()? as SegId;
            let off = d.u64().ok()? as usize;
            let delta = d.u64().ok()?;
            Some(atomic_rmw(shared, seg, off, move |old| Some(old.wrapping_add(delta))))
        }
        OP_CAS => {
            let seg = d.u32().ok()? as SegId;
            let off = d.u64().ok()? as usize;
            let expect = d.u64().ok()?;
            let new = d.u64().ok()?;
            Some(atomic_rmw(shared, seg, off, move |old| (old == expect).then_some(new)))
        }
        OP_COLL => {
            let key = CollKey {
                group: d.u64().ok()?,
                seq: d.u64().ok()?,
                phase: d.u32().ok()?,
                from: d.u32().ok()?,
            };
            let data = d.bytes().ok()?;
            shared.coll.insert(key, data);
            shared.signal.bump();
            Some(vec![ST_OK])
        }
        _ => None,
    }
}

/// The read-modify-write behind both atomics. Runs inside the endpoint
/// handler, which every backend serializes (sim scheduler thread / TCP
/// dispatch lock) — that serialization is what makes it atomic.
fn atomic_rmw(
    shared: &crate::runtime::RankShared,
    seg: SegId,
    off: usize,
    update: impl FnOnce(u64) -> Option<u64>,
) -> Vec<u8> {
    let Some(s) = shared.segments.get(seg) else {
        return vec![ST_NO_SEGMENT];
    };
    match s.read_at(off, 8) {
        Err(_) => vec![ST_BOUNDS],
        Ok(b) => {
            let old = bytes::get_u64(&b, 0);
            if let Some(new) = update(old) {
                s.with_mut(|d| bytes::put_u64(d, off, new));
            }
            let mut e = Enc::with_capacity(9);
            e.u8(ST_OK).u64(old);
            e.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_codec_roundtrip_shapes() {
        let m = enc_put(3, 40, Some((7, 9)), &[1, 2, 3]);
        let mut d = Dec::new(&m);
        assert_eq!(d.u8().unwrap(), OP_PUT);
        assert_eq!(d.u32().unwrap(), 3);
        assert_eq!(d.u64().unwrap(), 40);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 9);
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn reply_decoders() {
        assert!(reply_ok(&[ST_OK]));
        assert!(!reply_ok(&[ST_FAIL]));
        assert!(!reply_ok(&[]));
        let mut e = Enc::new();
        e.u8(ST_OK).bytes(b"abc");
        assert_eq!(dec_read_reply(&e.finish()).unwrap(), b"abc");
        assert!(dec_read_reply(&[ST_FAIL]).is_none());
        let mut e = Enc::new();
        e.u8(ST_OK).u64(77);
        assert_eq!(dec_atomic_reply(&e.finish(), 1).unwrap(), 77);
        assert!(matches!(
            dec_atomic_reply(&[ST_NO_SEGMENT], 1),
            Err(GaspiError::RemoteBroken { rank: 1 })
        ));
        assert!(matches!(dec_atomic_reply(&[ST_BOUNDS], 1), Err(GaspiError::Segment { .. })));
    }
}
