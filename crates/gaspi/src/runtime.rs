//! World construction, rank threads, and job handles.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicU8;
use std::sync::{Arc, Once, Weak};

use parking_lot::Mutex;

use ft_cluster::{
    FaultPlane, NodeStorage, QueueId, Rank, RankKilled, SimTransport, Topology, Transport,
    TransportOwner,
};

use crate::collectives::CollBoard;
use crate::config::GaspiConfig;
use crate::endpoint::GaspiEndpoint;
use crate::error::{GaspiError, GaspiResult};
use crate::group::GroupRegistry;
use crate::metrics::GaspiMetrics;
use crate::proc::GaspiProc;
use crate::queue::Queue;
use crate::segment::SegmentTable;
use crate::signal::Signal;

/// Service handler for checkpoint traffic (queues at the top of the
/// `u16` range): `(to, from, queue, msg) -> reply`. Installed by the
/// checkpoint library; the GASPI layer routes matching messages here
/// without decoding them.
pub type CkptHandler = Arc<dyn Fn(Rank, Rank, QueueId, &[u8]) -> Vec<u8> + Send + Sync>;

/// Shared, remotely accessible state of one rank. Lives in the world (not
/// the rank thread) so one-sided operations proceed without the target's
/// involvement — the defining PGAS property.
pub(crate) struct RankShared {
    pub segments: SegmentTable,
    pub queues: Vec<Queue>,
    pub signal: Signal,
    pub passive_inbox: Mutex<VecDeque<(Rank, Vec<u8>)>>,
    pub coll: CollBoard,
    pub groups: GroupRegistry,
    /// Error state vector: one entry per remote rank; 0 = HEALTHY,
    /// 1 = CORRUPT. Local to this process, as in the spec.
    pub state_vec: Vec<AtomicU8>,
}

impl RankShared {
    fn new(cfg: &GaspiConfig) -> Self {
        // App queues plus service/collective/passive internal queues.
        let nqueues = cfg.queues as usize + 3;
        Self {
            segments: SegmentTable::default(),
            queues: (0..nqueues).map(|_| Queue::default()).collect(),
            signal: Signal::default(),
            passive_inbox: Mutex::new(VecDeque::new()),
            coll: CollBoard::default(),
            groups: GroupRegistry::default(),
            state_vec: (0..cfg.num_ranks).map(|_| AtomicU8::new(0)).collect(),
        }
    }
}

pub(crate) struct WorldInner {
    pub cfg: GaspiConfig,
    pub topo: Topology,
    pub fault: Arc<FaultPlane>,
    pub transport: Arc<dyn Transport>,
    pub ranks: Vec<Arc<RankShared>>,
    pub storage: Arc<NodeStorage>,
    pub metrics: Arc<GaspiMetrics>,
    /// Slot for the checkpoint library's service handler (see
    /// [`CkptHandler`]). One per world: the handler receives the target
    /// rank and dispatches on it.
    pub ckpt_handler: Mutex<Option<CkptHandler>>,
}

impl WorldInner {
    pub fn shared(&self, rank: Rank) -> &Arc<RankShared> {
        &self.ranks[rank as usize]
    }
}

/// A GASPI job: a fault plane, a network, and per-rank shared state,
/// ready to [`launch`](GaspiWorld::launch) rank threads (in-memory
/// backend) or to drive one local rank over a real transport (process
/// backend, [`GaspiWorld::with_transport`]).
pub struct GaspiWorld {
    // Declared before `inner`: Rust drops fields in declaration order, so
    // an owned transport is shut down and its scheduler thread joined
    // *before* the world state its in-flight actions reference goes away.
    _transport_owner: Option<TransportOwner>,
    inner: Arc<WorldInner>,
}

impl GaspiWorld {
    /// Build an in-memory world from `cfg`. The transport scheduler
    /// thread starts immediately; rank threads start at
    /// [`GaspiWorld::launch`].
    pub fn new(cfg: GaspiConfig) -> Self {
        let topo = cfg.topology();
        let fault = FaultPlane::new(topo.clone());
        let owner = SimTransport::start(cfg.model.clone(), Arc::clone(&fault), cfg.seed);
        let transport: Arc<dyn Transport> = Arc::new(owner.handle());
        Self::assemble(cfg, fault, transport, Some(owner), None)
    }

    /// Build a world around an externally owned transport, binding an
    /// endpoint only for `local_rank` — the process backend's per-child
    /// world, where every other rank lives in a different OS process and
    /// is reached over the wire. The caller keeps ownership of the
    /// transport's lifecycle (shutdown).
    pub fn with_transport(
        cfg: GaspiConfig,
        fault: Arc<FaultPlane>,
        transport: Arc<dyn Transport>,
        local_rank: Rank,
    ) -> Self {
        Self::assemble(cfg, fault, transport, None, Some(local_rank))
    }

    fn assemble(
        cfg: GaspiConfig,
        fault: Arc<FaultPlane>,
        transport: Arc<dyn Transport>,
        owner: Option<TransportOwner>,
        only_rank: Option<Rank>,
    ) -> Self {
        install_rank_killed_hook();
        let topo = cfg.topology();
        let storage = NodeStorage::new(topo.clone());
        storage.attach(&fault);
        let ranks = (0..cfg.num_ranks).map(|_| Arc::new(RankShared::new(&cfg))).collect();
        let inner = Arc::new(WorldInner {
            cfg,
            topo,
            fault: Arc::clone(&fault),
            transport: Arc::clone(&transport),
            ranks,
            storage,
            metrics: Arc::new(GaspiMetrics::default()),
            ckpt_handler: Mutex::new(None),
        });
        // Wire the receiving side of the seam: one endpoint per locally
        // hosted rank, holding the world weakly.
        let bind_ranks: Vec<Rank> = match only_rank {
            Some(r) => vec![r],
            None => (0..inner.cfg.num_ranks).collect(),
        };
        for r in bind_ranks {
            transport.bind(r, Arc::new(GaspiEndpoint::new(Arc::downgrade(&inner), r)));
        }
        // A dead rank's address space vanishes: wipe its segments and wake
        // every blocked waiter so they observe the new world.
        let weak: Weak<WorldInner> = Arc::downgrade(&inner);
        fault.on_kill(move |ev| {
            if let Some(w) = weak.upgrade() {
                for &r in &ev.ranks {
                    w.ranks[r as usize].segments.clear();
                }
                for rs in &w.ranks {
                    rs.signal.bump();
                }
            }
        });
        Self { _transport_owner: owner, inner }
    }

    /// Install the checkpoint service handler if none is installed yet
    /// (first install wins — every rank's checkpoint library offers an
    /// equivalent handler, so this is idempotent).
    pub fn install_ckpt_handler(&self, h: CkptHandler) {
        let mut slot = self.inner.ckpt_handler.lock();
        if slot.is_none() {
            *slot = Some(h);
        }
    }

    /// The world's fault plane (inject failures here).
    pub fn fault(&self) -> Arc<FaultPlane> {
        Arc::clone(&self.inner.fault)
    }

    /// Node-local storage (used by the checkpoint library).
    pub fn storage(&self) -> Arc<NodeStorage> {
        Arc::clone(&self.inner.storage)
    }

    /// A transport handle (used by the checkpoint library for costed
    /// copies).
    pub fn transport(&self) -> Arc<dyn Transport> {
        Arc::clone(&self.inner.transport)
    }

    /// GASPI-layer operation counters, shared by all ranks of this world
    /// (see [`GaspiMetrics`]). Transport-level counters live on
    /// [`GaspiWorld::transport`]'s `metrics()`.
    pub fn gaspi_metrics(&self) -> Arc<GaspiMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The rank→node placement.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &GaspiConfig {
        &self.inner.cfg
    }

    /// A process handle without a thread — for driving the world from a
    /// test or a harness on the current thread. Most code should use
    /// [`GaspiWorld::launch`].
    pub fn proc_handle(&self, rank: Rank) -> GaspiProc {
        GaspiProc::new(Arc::clone(&self.inner), rank)
    }

    /// Run `f` for a single rank on the *current* thread, with the same
    /// fail-stop panic handling as [`GaspiWorld::launch`]. The process
    /// backend uses this: each OS process hosts exactly one rank, so
    /// there is nothing to fan out.
    pub fn run_local<T>(
        &self,
        rank: Rank,
        f: impl FnOnce(GaspiProc) -> GaspiResult<T>,
    ) -> RankOutcome<T> {
        let proc = GaspiProc::new(Arc::clone(&self.inner), rank);
        run_rank(rank, proc, f)
    }

    /// Spawn one OS thread per rank, each running `f(proc)`. Returns a
    /// handle to join all ranks.
    pub fn launch<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(GaspiProc) -> GaspiResult<T> + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(self.inner.cfg.num_ranks as usize);
        for rank in 0..self.inner.cfg.num_ranks {
            let f = Arc::clone(&f);
            let proc = GaspiProc::new(Arc::clone(&self.inner), rank);
            let h = std::thread::Builder::new()
                .name(format!("gaspi-rank-{rank}"))
                .spawn(move || run_rank(rank, proc, move |p| f(p)))
                .expect("spawn rank thread");
            handles.push(h);
        }
        JobHandle { handles }
    }
}

fn run_rank<T>(
    rank: Rank,
    proc: GaspiProc,
    f: impl FnOnce(GaspiProc) -> GaspiResult<T>,
) -> RankOutcome<T> {
    match panic::catch_unwind(AssertUnwindSafe(move || f(proc))) {
        Ok(Ok(v)) => RankOutcome::Completed(v),
        Ok(Err(e)) => RankOutcome::Failed(e),
        Err(payload) => {
            if let Some(rk) = payload.downcast_ref::<RankKilled>() {
                RankOutcome::Killed(rk.rank)
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| format!("rank {rank}: non-string panic payload"));
                RankOutcome::Panicked(msg)
            }
        }
    }
}

/// How one rank's thread ended.
#[derive(Debug)]
pub enum RankOutcome<T> {
    /// The rank function returned `Ok`.
    Completed(T),
    /// The rank function returned a GASPI error.
    Failed(GaspiError),
    /// The rank was killed (fail-stop) — the simulated failure, not a bug.
    Killed(Rank),
    /// The rank panicked for a real reason; the message is preserved.
    Panicked(String),
}

impl<T> RankOutcome<T> {
    /// The completion value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// True if the rank was killed by fault injection.
    pub fn was_killed(&self) -> bool {
        matches!(self, RankOutcome::Killed(_))
    }
}

/// Joins the rank threads of one [`GaspiWorld::launch`] call.
pub struct JobHandle<T> {
    handles: Vec<std::thread::JoinHandle<RankOutcome<T>>>,
}

impl<T> JobHandle<T> {
    /// Wait for every rank thread; outcomes are indexed by rank.
    pub fn join(self) -> Vec<RankOutcome<T>> {
        self.handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(_) => RankOutcome::Panicked("rank thread poisoned its own panic".into()),
            })
            .collect()
    }
}

/// Install (once per process) a panic hook that silences the simulated
/// [`RankKilled`] unwinds while leaving every real panic loud.
fn install_rank_killed_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankKilled>().is_some() {
                return; // a scheduled fail-stop failure, not a bug
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Timeout;

    #[test]
    fn launch_and_join_all_ranks() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(4));
        let job = world.launch(|p| Ok(p.rank() * 10));
        let outs = job.join();
        let vals: Vec<u32> = outs.into_iter().map(|o| o.completed().unwrap()).collect();
        assert_eq!(vals, vec![0, 10, 20, 30]);
    }

    #[test]
    fn killed_rank_reports_killed_outcome() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(2));
        let fault = world.fault();
        let job = world.launch(move |p| {
            if p.rank() == 1 {
                // Simulated `exit(-1)`.
                p.exit_failure();
            }
            // rank 0: ping rank 1 until it dies, proving liveness queries.
            loop {
                if p.proc_ping(1, Timeout::Ms(200)).is_err() {
                    return Ok(p.rank());
                }
            }
        });
        let outs = job.join();
        assert!(matches!(outs[0], RankOutcome::Completed(0)));
        assert!(outs[1].was_killed());
        assert!(!fault.is_alive(1));
    }

    #[test]
    fn real_panics_are_preserved() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(1));
        // Suppress the hook's print? The hook passes real panics through,
        // which is what we want — just check the outcome classification.
        let job = world.launch(|p| {
            if p.rank() == 0 {
                panic!("genuine bug {}", 42);
            }
            Ok(())
        });
        let outs = job.join();
        match &outs[0] {
            RankOutcome::Panicked(msg) => assert!(msg.contains("genuine bug 42")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn failed_outcome_carries_error() {
        let world = GaspiWorld::new(GaspiConfig::deterministic(1));
        let job = world.launch(|_p| -> GaspiResult<()> { Err(GaspiError::Timeout) });
        let outs = job.join();
        assert!(matches!(outs[0], RankOutcome::Failed(GaspiError::Timeout)));
    }
}
