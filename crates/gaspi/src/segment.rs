//! Segments: remotely accessible memory blocks with notification slots.
//!
//! A GASPI segment is a contiguous block of memory registered with the
//! runtime so that *any* rank can read and write it one-sidedly. Each
//! segment also carries an array of 32-bit *notifications* — the remote
//! completion mechanism: a `write_notify` makes the data visible and then
//! sets a notification slot the target can wait on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{GaspiError, GaspiResult};

/// Segment identifier (`gaspi_segment_id_t`).
pub type SegId = u16;

/// Notification identifier within a segment.
pub type NotificationId = u32;

/// One registered segment.
pub struct Segment {
    data: RwLock<Vec<u8>>,
    notifications: Box<[AtomicU32]>,
}

impl Segment {
    pub(crate) fn new(size: usize, slots: u32) -> Self {
        let notifications =
            (0..slots).map(|_| AtomicU32::new(0)).collect::<Vec<_>>().into_boxed_slice();
        Self { data: RwLock::new(vec![0; size]), notifications }
    }

    /// Segment size in bytes.
    pub fn size(&self) -> usize {
        self.data.read().len()
    }

    /// Number of notification slots.
    pub fn notification_slots(&self) -> u32 {
        self.notifications.len() as u32
    }

    /// Run `f` over the segment bytes (shared).
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.read())
    }

    /// Run `f` over the segment bytes (exclusive).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.data.write())
    }

    /// Bounds-checked copy out.
    pub fn read_at(&self, off: usize, len: usize) -> GaspiResult<Vec<u8>> {
        let d = self.data.read();
        let end = off.checked_add(len).ok_or(GaspiError::Segment { what: "offset overflow" })?;
        if end > d.len() {
            return Err(GaspiError::Segment { what: "read out of bounds" });
        }
        Ok(d[off..end].to_vec())
    }

    /// Bounds-checked copy in.
    pub fn write_at(&self, off: usize, src: &[u8]) -> GaspiResult<()> {
        let mut d = self.data.write();
        let end =
            off.checked_add(src.len()).ok_or(GaspiError::Segment { what: "offset overflow" })?;
        if end > d.len() {
            return Err(GaspiError::Segment { what: "write out of bounds" });
        }
        d[off..end].copy_from_slice(src);
        Ok(())
    }

    /// Set a notification slot (used by remote deliveries).
    pub(crate) fn notify_set(&self, id: NotificationId, value: u32) -> GaspiResult<()> {
        let slot = self
            .notifications
            .get(id as usize)
            .ok_or(GaspiError::Segment { what: "notification id out of range" })?;
        slot.store(value, Ordering::Release);
        Ok(())
    }

    /// Atomically read-and-clear a notification slot
    /// (`gaspi_notify_reset`), returning the old value.
    pub fn notify_reset(&self, id: NotificationId) -> GaspiResult<u32> {
        let slot = self
            .notifications
            .get(id as usize)
            .ok_or(GaspiError::Segment { what: "notification id out of range" })?;
        Ok(slot.swap(0, Ordering::AcqRel))
    }

    /// Non-destructive peek at a notification slot.
    pub fn notify_peek(&self, id: NotificationId) -> GaspiResult<u32> {
        let slot = self
            .notifications
            .get(id as usize)
            .ok_or(GaspiError::Segment { what: "notification id out of range" })?;
        Ok(slot.load(Ordering::Acquire))
    }

    /// First non-zero notification in `[begin, begin+count)`, if any.
    pub fn notify_scan(&self, begin: NotificationId, count: u32) -> Option<NotificationId> {
        let end = (begin as usize + count as usize).min(self.notifications.len());
        for id in begin as usize..end {
            if self.notifications[id].load(Ordering::Acquire) != 0 {
                return Some(id as NotificationId);
            }
        }
        None
    }
}

/// A rank's registered segments. Cleared when the rank dies — its address
/// space is gone, so remote accesses start failing.
#[derive(Default)]
pub(crate) struct SegmentTable {
    map: RwLock<HashMap<SegId, Arc<Segment>>>,
}

impl SegmentTable {
    pub fn create(&self, id: SegId, size: usize, slots: u32) -> GaspiResult<()> {
        let mut m = self.map.write();
        if m.contains_key(&id) {
            return Err(GaspiError::Segment { what: "segment id already exists" });
        }
        m.insert(id, Arc::new(Segment::new(size, slots)));
        Ok(())
    }

    pub fn delete(&self, id: SegId) -> GaspiResult<()> {
        self.map
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or(GaspiError::Segment { what: "segment id not found" })
    }

    pub fn get(&self, id: SegId) -> Option<Arc<Segment>> {
        self.map.read().get(&id).cloned()
    }

    pub fn require(&self, id: SegId) -> GaspiResult<Arc<Segment>> {
        self.get(id).ok_or(GaspiError::Segment { what: "segment id not found" })
    }

    /// Drop everything (rank death).
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_delete() {
        let t = SegmentTable::default();
        t.create(3, 64, 8).unwrap();
        assert!(matches!(t.create(3, 1, 1), Err(GaspiError::Segment { .. })));
        assert_eq!(t.require(3).unwrap().size(), 64);
        t.delete(3).unwrap();
        assert!(t.get(3).is_none());
        assert!(matches!(t.delete(3), Err(GaspiError::Segment { .. })));
    }

    #[test]
    fn read_write_bounds() {
        let s = Segment::new(16, 4);
        s.write_at(8, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_at(8, 3).unwrap(), vec![1, 2, 3]);
        assert!(s.write_at(15, &[0, 0]).is_err());
        assert!(s.read_at(14, 4).is_err());
        assert!(s.read_at(usize::MAX, 2).is_err());
    }

    #[test]
    fn notifications_set_scan_reset() {
        let s = Segment::new(8, 16);
        assert_eq!(s.notify_scan(0, 16), None);
        s.notify_set(5, 42).unwrap();
        s.notify_set(9, 7).unwrap();
        assert_eq!(s.notify_scan(0, 16), Some(5));
        assert_eq!(s.notify_scan(6, 10), Some(9));
        assert_eq!(s.notify_reset(5).unwrap(), 42);
        assert_eq!(s.notify_peek(5).unwrap(), 0);
        assert_eq!(s.notify_scan(0, 6), None);
        assert!(s.notify_set(16, 1).is_err());
        assert!(s.notify_reset(99).is_err());
    }

    #[test]
    fn scan_clamps_range() {
        let s = Segment::new(1, 4);
        s.notify_set(3, 1).unwrap();
        // count exceeding the slot array must not panic
        assert_eq!(s.notify_scan(2, 1000), Some(3));
    }

    #[test]
    fn clear_drops_all() {
        let t = SegmentTable::default();
        t.create(0, 8, 1).unwrap();
        t.create(1, 8, 1).unwrap();
        t.clear();
        assert!(t.get(0).is_none());
        assert!(t.get(1).is_none());
    }
}
