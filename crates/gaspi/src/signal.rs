//! Per-rank wake-up signal for blocking waits.
//!
//! Every blocking GASPI call is a poll loop over some condition (queue
//! drained, notification present, collective token arrived...). The loop
//! parks on its rank's [`Signal`] and is woken by whoever might have made
//! the condition true: completion handlers, notification deliveries, kill
//! events. Waits are additionally bounded by a small lap so a rank always
//! re-checks its own liveness and its deadline even if no event arrives.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A wait/wake counter: `bump` wakes all current waiters.
#[derive(Default)]
pub(crate) struct Signal {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Signal {
    /// Wake all waiters.
    pub fn bump(&self) {
        let mut g = self.gen.lock();
        *g = g.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }

    /// Park until the signal is bumped, `lap` elapses, or `deadline`
    /// passes — whichever comes first. `seen` carries the last observed
    /// generation between laps so a bump between checks is never missed.
    pub fn wait_lap(&self, seen: &mut u64, lap: Duration, deadline: Option<Instant>) {
        let mut g = self.gen.lock();
        if *g != *seen {
            *seen = *g;
            return;
        }
        let until = match deadline {
            Some(d) => (Instant::now() + lap).min(d),
            None => Instant::now() + lap,
        };
        self.cv.wait_until(&mut g, until);
        *seen = *g;
    }

    /// Current generation, for initializing `seen`.
    pub fn generation(&self) -> u64 {
        *self.gen.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bump_wakes_waiter() {
        let s = Arc::new(Signal::default());
        let s2 = Arc::clone(&s);
        let mut seen = s.generation();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            s2.bump();
        });
        let t0 = Instant::now();
        // Long lap: the bump must cut it short.
        s.wait_lap(&mut seen, Duration::from_secs(5), None);
        assert!(t0.elapsed() < Duration::from_secs(1));
        h.join().unwrap();
    }

    #[test]
    fn missed_bump_is_caught_on_next_lap() {
        let s = Signal::default();
        let mut seen = s.generation();
        s.bump(); // happens "between" checks
        let t0 = Instant::now();
        s.wait_lap(&mut seen, Duration::from_secs(5), None);
        assert!(t0.elapsed() < Duration::from_millis(100), "stale generation returns at once");
    }

    #[test]
    fn lap_bounds_wait() {
        let s = Signal::default();
        let mut seen = s.generation();
        let t0 = Instant::now();
        s.wait_lap(&mut seen, Duration::from_millis(5), None);
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn deadline_bounds_wait_below_lap() {
        let s = Signal::default();
        let mut seen = s.generation();
        let t0 = Instant::now();
        let dl = Instant::now() + Duration::from_millis(3);
        s.wait_lap(&mut seen, Duration::from_secs(10), Some(dl));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
