//! GASPI-layer operation counters.
//!
//! The transport already counts messages and bytes
//! ([`ft_cluster::Metrics`]); these counters sit one layer up and measure
//! the *GASPI semantics* the paper's overheads are built from: how many
//! notifications were posted (the one-sided completion mechanism behind
//! halo exchange and failure acknowledgment), how often and for how long
//! ranks blocked flushing a queue (`gaspi_wait`), and how many
//! collectives had to be *resumed* after a timeout — the GASPI
//! fault-tolerance contract ("a procedure interrupted by timeout must be
//! called again to complete") that dominates behavior during a failure.
//!
//! One [`GaspiMetrics`] instance lives in the world and is shared by all
//! ranks; counters are monotone relaxed atomics, and a consistent-enough
//! view is taken with [`GaspiMetrics::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Job-wide GASPI operation counters (all ranks share one instance).
#[derive(Debug, Default)]
pub struct GaspiMetrics {
    /// Notifications posted via `notify` / `write_notify`.
    pub notifications_posted: AtomicU64,
    /// `wait` calls that found the queue not yet drained (i.e. actually
    /// blocked flushing).
    pub queue_flush_waits: AtomicU64,
    /// Total nanoseconds spent blocked inside `wait`.
    pub queue_flush_wait_ns: AtomicU64,
    /// Barrier calls that *resumed* a timed-out barrier (same sequence
    /// number re-used, per the GASPI timeout contract).
    pub barrier_resumes: AtomicU64,
    /// Allreduce calls that resumed a timed-out allreduce.
    pub allreduce_resumes: AtomicU64,
    /// Successful `group_commit` completions (one per member).
    pub group_commits: AtomicU64,
}

impl GaspiMetrics {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_notification(&self) {
        Self::add(&self.notifications_posted, 1);
    }

    pub(crate) fn count_queue_flush(&self, blocked: Duration) {
        Self::add(&self.queue_flush_waits, 1);
        Self::add(&self.queue_flush_wait_ns, blocked.as_nanos() as u64);
    }

    pub(crate) fn count_resume(&self, kind: crate::group::CollKind) {
        match kind {
            crate::group::CollKind::Barrier => Self::add(&self.barrier_resumes, 1),
            crate::group::CollKind::AllreduceF64 | crate::group::CollKind::AllreduceU64 => {
                Self::add(&self.allreduce_resumes, 1)
            }
        }
    }

    pub(crate) fn count_group_commit(&self) {
        Self::add(&self.group_commits, 1);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> GaspiSnapshot {
        GaspiSnapshot {
            notifications_posted: self.notifications_posted.load(Ordering::Relaxed),
            queue_flush_waits: self.queue_flush_waits.load(Ordering::Relaxed),
            queue_flush_wait_ns: self.queue_flush_wait_ns.load(Ordering::Relaxed),
            barrier_resumes: self.barrier_resumes.load(Ordering::Relaxed),
            allreduce_resumes: self.allreduce_resumes.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`GaspiMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaspiSnapshot {
    /// Notifications posted via `notify` / `write_notify`.
    pub notifications_posted: u64,
    /// `wait` calls that actually blocked.
    pub queue_flush_waits: u64,
    /// Total nanoseconds spent blocked inside `wait`.
    pub queue_flush_wait_ns: u64,
    /// Barriers resumed after a timeout.
    pub barrier_resumes: u64,
    /// Allreduces resumed after a timeout.
    pub allreduce_resumes: u64,
    /// Successful group commits (one per member).
    pub group_commits: u64,
}

impl GaspiSnapshot {
    /// Counter deltas accumulated since `earlier` (saturating, so a
    /// mismatched pair degrades to zeros instead of nonsense).
    pub fn since(&self, earlier: &GaspiSnapshot) -> GaspiSnapshot {
        GaspiSnapshot {
            notifications_posted: self
                .notifications_posted
                .saturating_sub(earlier.notifications_posted),
            queue_flush_waits: self.queue_flush_waits.saturating_sub(earlier.queue_flush_waits),
            queue_flush_wait_ns: self
                .queue_flush_wait_ns
                .saturating_sub(earlier.queue_flush_wait_ns),
            barrier_resumes: self.barrier_resumes.saturating_sub(earlier.barrier_resumes),
            allreduce_resumes: self.allreduce_resumes.saturating_sub(earlier.allreduce_resumes),
            group_commits: self.group_commits.saturating_sub(earlier.group_commits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let m = GaspiMetrics::default();
        m.count_notification();
        m.count_notification();
        m.count_queue_flush(Duration::from_nanos(500));
        let a = m.snapshot();
        assert_eq!(a.notifications_posted, 2);
        assert_eq!(a.queue_flush_waits, 1);
        assert_eq!(a.queue_flush_wait_ns, 500);
        m.count_group_commit();
        m.count_resume(crate::group::CollKind::Barrier);
        m.count_resume(crate::group::CollKind::AllreduceF64);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.notifications_posted, 0);
        assert_eq!(d.group_commits, 1);
        assert_eq!(d.barrier_resumes, 1);
        assert_eq!(d.allreduce_resumes, 1);
    }
}
