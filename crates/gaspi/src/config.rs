//! World configuration.

use std::time::Duration;

use ft_cluster::{LatencyModel, Topology};

/// Configuration for a [`crate::GaspiWorld`].
#[derive(Debug, Clone)]
pub struct GaspiConfig {
    /// Number of GASPI processes (ranks) in the job.
    pub num_ranks: u32,
    /// Ranks per simulated node (the paper uses 1).
    pub ranks_per_node: u32,
    /// Interconnect latency model.
    pub model: LatencyModel,
    /// Seed for transport jitter and anything else stochastic.
    pub seed: u64,
    /// Number of application communication queues (GPI-2 default is 8).
    /// Service traffic (pings, kills, collectives, passive, read
    /// responses) uses internal queues above this range.
    pub queues: u16,
    /// Notification slots per segment.
    pub notification_slots: u32,
    /// Granularity of blocking-wait poll laps. Blocked calls re-check
    /// their condition at least this often, which also bounds how long a
    /// killed rank keeps blocking before it observes its own death.
    pub poll_lap: Duration,
}

impl GaspiConfig {
    /// A world with `num_ranks` ranks, one per node, default everything.
    pub fn new(num_ranks: u32) -> Self {
        Self {
            num_ranks,
            ranks_per_node: 1,
            model: LatencyModel::default_sim(),
            seed: 0x5EED_CA5C_ADE5,
            queues: 8,
            notification_slots: 1024,
            poll_lap: Duration::from_micros(200),
        }
    }

    /// Deterministic latencies (no jitter) — for tests.
    pub fn deterministic(num_ranks: u32) -> Self {
        Self { model: LatencyModel::deterministic_fast(), ..Self::new(num_ranks) }
    }

    /// Set ranks per node.
    pub fn with_ranks_per_node(mut self, rpn: u32) -> Self {
        self.ranks_per_node = rpn;
        self
    }

    /// Set the latency model.
    pub fn with_model(mut self, model: LatencyModel) -> Self {
        self.model = model;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The rank→node placement implied by this config.
    pub fn topology(&self) -> Topology {
        Topology::new(self.num_ranks, self.ranks_per_node)
    }

    /// First internal queue id (service traffic).
    pub(crate) fn service_queue(&self) -> u16 {
        self.queues
    }

    /// Internal queue for collective tokens.
    pub(crate) fn coll_queue(&self) -> u16 {
        self.queues + 1
    }

    /// Internal queue for passive messages.
    pub(crate) fn passive_queue(&self) -> u16 {
        self.queues + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = GaspiConfig::new(8).with_ranks_per_node(2).with_seed(7);
        assert_eq!(c.num_ranks, 8);
        assert_eq!(c.ranks_per_node, 2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.topology().num_nodes(), 4);
    }

    #[test]
    fn internal_queues_above_app_queues() {
        let c = GaspiConfig::new(2);
        assert!(c.service_queue() >= c.queues);
        assert_ne!(c.coll_queue(), c.service_queue());
        assert_ne!(c.passive_queue(), c.coll_queue());
    }
}
