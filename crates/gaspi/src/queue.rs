//! Communication queues: posted/completed accounting and failure records.
//!
//! One-sided requests are posted to a queue and complete asynchronously;
//! `gaspi_wait` blocks until everything posted *so far* on the queue has
//! completed, returning an error if any request completed with a broken
//! connection. Failed remotes are recorded so the caller (and the error
//! state vector) can identify them.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use ft_cluster::Rank;

/// Per-queue state.
#[derive(Default)]
pub(crate) struct Queue {
    posted: AtomicU64,
    completed: AtomicU64,
    failed: Mutex<Vec<Rank>>,
}

impl Queue {
    /// Account a new request; returns the post ticket (1-based count).
    pub fn post(&self) -> u64 {
        self.posted.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Account a successful completion.
    pub fn complete_ok(&self) {
        self.completed.fetch_add(1, Ordering::AcqRel);
    }

    /// Account a failed completion against `rank`.
    pub fn complete_failed(&self, rank: Rank) {
        self.failed.lock().push(rank);
        self.completed.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of requests posted so far (the wait target).
    pub fn posted(&self) -> u64 {
        self.posted.load(Ordering::Acquire)
    }

    /// Whether everything up to `target` has completed.
    pub fn drained_to(&self, target: u64) -> bool {
        self.completed.load(Ordering::Acquire) >= target
    }

    /// Outstanding request count (posted - completed).
    pub fn outstanding(&self) -> u64 {
        self.posted().saturating_sub(self.completed.load(Ordering::Acquire))
    }

    /// Take and clear the failure records.
    pub fn take_failures(&self) -> Vec<Rank> {
        std::mem::take(&mut *self.failed.lock())
    }

    /// Whether any failure is currently recorded (without clearing).
    pub fn has_failures(&self) -> bool {
        !self.failed.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_complete_drain() {
        let q = Queue::default();
        let t1 = q.post();
        let t2 = q.post();
        assert_eq!((t1, t2), (1, 2));
        assert_eq!(q.outstanding(), 2);
        assert!(!q.drained_to(2));
        q.complete_ok();
        assert!(q.drained_to(1));
        assert!(!q.drained_to(2));
        q.complete_ok();
        assert!(q.drained_to(2));
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn failures_recorded_and_cleared() {
        let q = Queue::default();
        q.post();
        q.post();
        q.complete_failed(3);
        q.complete_ok();
        assert!(q.has_failures());
        assert!(q.drained_to(2));
        assert_eq!(q.take_failures(), vec![3]);
        assert!(!q.has_failures());
        assert!(q.take_failures().is_empty());
    }
}
