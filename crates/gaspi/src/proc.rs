//! The per-rank process handle: the GASPI API surface.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use ft_cluster::{NodeId, Outcome, Rank, RankKilled, Topology, Transport};

use crate::config::GaspiConfig;
use crate::endpoint;
use crate::error::{GaspiError, GaspiResult, ProcState, Timeout};
use crate::runtime::{RankShared, WorldInner};
use crate::segment::{NotificationId, SegId};

/// Handle through which a rank performs GASPI operations. Cloneable and
/// shareable across threads of the same process — the paper's *threaded*
/// fault detector pings many remotes concurrently through clones of one
/// handle.
#[derive(Clone)]
pub struct GaspiProc {
    world: Arc<WorldInner>,
    rank: Rank,
}

impl GaspiProc {
    pub(crate) fn new(world: Arc<WorldInner>, rank: Rank) -> Self {
        Self { world, rank }
    }

    pub(crate) fn world(&self) -> &Arc<WorldInner> {
        &self.world
    }

    pub(crate) fn shared(&self) -> &RankShared {
        self.world.shared(self.rank)
    }

    pub(crate) fn shared_arc(&self) -> Arc<RankShared> {
        Arc::clone(self.world.shared(self.rank))
    }

    /// This process's rank (`gaspi_proc_rank`).
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total ranks in the job (`gaspi_proc_num`).
    pub fn num_ranks(&self) -> u32 {
        self.world.cfg.num_ranks
    }

    /// The node this rank is placed on.
    pub fn node(&self) -> NodeId {
        self.world.topo.node_of(self.rank)
    }

    /// The job's rank→node placement.
    pub fn topology(&self) -> &Topology {
        &self.world.topo
    }

    /// The world configuration.
    pub fn config(&self) -> &GaspiConfig {
        &self.world.cfg
    }

    /// Node-local storage of the simulated cluster — the substrate the
    /// neighbor-level checkpoint library writes to. (A real GPI-2 rank
    /// would use its node's RAM disk; this is our equivalent.)
    pub fn cluster_storage(&self) -> Arc<ft_cluster::NodeStorage> {
        Arc::clone(&self.world.storage)
    }

    /// Transport handle for latency-costed non-GASPI traffic (the
    /// checkpoint library's neighbor copies).
    pub fn cluster_transport(&self) -> Arc<dyn Transport> {
        Arc::clone(&self.world.transport)
    }

    /// Install the world's checkpoint service handler (first install
    /// wins; see [`crate::CkptHandler`]). Messages arriving on the
    /// checkpoint service queues are routed here by the GASPI endpoint.
    pub fn install_ckpt_handler(&self, h: crate::runtime::CkptHandler) {
        let mut slot = self.world.ckpt_handler.lock();
        if slot.is_none() {
            *slot = Some(h);
        }
    }

    /// Number of application communication queues.
    pub fn num_queues(&self) -> u16 {
        self.world.cfg.queues
    }

    /// Fail-stop check: unwinds with [`RankKilled`] if this rank has been
    /// killed. Every API entry point calls this.
    pub(crate) fn check_self(&self) {
        self.world.fault.assert_alive(self.rank);
    }

    /// Cross a named fault-injection site on this rank's own thread.
    /// Free when injection is disabled; unwinds with [`RankKilled`] if an
    /// armed step-indexed kill matches (see [`ft_cluster::InjectionPlan`]).
    pub fn injection_site(&self, name: &'static str) {
        self.world.fault.site(self.rank, name);
    }

    /// Simulated `exit(-1)`: mark self dead and unwind the rank thread.
    pub fn exit_failure(&self) -> ! {
        self.world.fault.kill_rank(self.rank);
        RankKilled { rank: self.rank }.raise()
    }

    /// Mark `rank` CORRUPT in the local error state vector.
    pub(crate) fn mark_corrupt(&self, rank: Rank) {
        self.shared().state_vec[rank as usize].store(1, Ordering::Release);
    }

    /// Snapshot of the error state vector (`gaspi_state_vec_get`). Set
    /// after every erroneous non-local operation; used by applications to
    /// identify the broken partner after a timeout (§III).
    pub fn state_vec_get(&self) -> Vec<ProcState> {
        self.check_self();
        self.shared()
            .state_vec
            .iter()
            .map(|s| {
                if s.load(Ordering::Acquire) == 0 {
                    ProcState::Healthy
                } else {
                    ProcState::Corrupt
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Poll loops
    // ------------------------------------------------------------------

    /// Poll `f` until it yields, the deadline passes, or this rank dies.
    pub(crate) fn poll_deadline<T>(
        &self,
        deadline: Option<Instant>,
        mut f: impl FnMut() -> Option<GaspiResult<T>>,
    ) -> GaspiResult<T> {
        let sig = &self.shared().signal;
        let mut seen = sig.generation();
        let lap = self.world.cfg.poll_lap;
        loop {
            self.check_self();
            if let Some(r) = f() {
                return r;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(GaspiError::Timeout);
                }
            }
            sig.wait_lap(&mut seen, lap, deadline);
        }
    }

    pub(crate) fn poll<T>(
        &self,
        timeout: Timeout,
        f: impl FnMut() -> Option<GaspiResult<T>>,
    ) -> GaspiResult<T> {
        self.poll_deadline(timeout.deadline(), f)
    }

    // ------------------------------------------------------------------
    // Segments
    // ------------------------------------------------------------------

    /// Create (and implicitly register) a segment of `size` bytes
    /// (`gaspi_segment_create`). Remote ranks can access it immediately.
    pub fn segment_create(&self, seg: SegId, size: usize) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.segment.create");
        self.shared().segments.create(seg, size, self.world.cfg.notification_slots)
    }

    /// Delete a segment (`gaspi_segment_delete`).
    pub fn segment_delete(&self, seg: SegId) -> GaspiResult<()> {
        self.check_self();
        self.shared().segments.delete(seg)
    }

    /// Size of a local segment in bytes.
    pub fn segment_size(&self, seg: SegId) -> GaspiResult<usize> {
        self.check_self();
        Ok(self.shared().segments.require(seg)?.size())
    }

    /// Read `len` bytes at `off` from a local segment.
    pub fn segment_read(&self, seg: SegId, off: usize, len: usize) -> GaspiResult<Vec<u8>> {
        self.check_self();
        self.shared().segments.require(seg)?.read_at(off, len)
    }

    /// Write bytes at `off` into a local segment (local access, no
    /// communication).
    pub fn segment_write_local(&self, seg: SegId, off: usize, data: &[u8]) -> GaspiResult<()> {
        self.check_self();
        self.shared().segments.require(seg)?.write_at(off, data)
    }

    /// Run `f` over a local segment's bytes (shared borrow).
    pub fn with_segment<R>(&self, seg: SegId, f: impl FnOnce(&[u8]) -> R) -> GaspiResult<R> {
        self.check_self();
        Ok(self.shared().segments.require(seg)?.with(f))
    }

    /// Run `f` over a local segment's bytes (exclusive borrow).
    pub fn with_segment_mut<R>(
        &self,
        seg: SegId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> GaspiResult<R> {
        self.check_self();
        Ok(self.shared().segments.require(seg)?.with_mut(f))
    }

    // ------------------------------------------------------------------
    // One-sided communication
    // ------------------------------------------------------------------

    fn validate_queue(&self, q: u16) -> GaspiResult<()> {
        if q >= self.world.cfg.queues {
            return Err(GaspiError::InvalidArg("queue id out of range"));
        }
        Ok(())
    }

    fn validate_rank(&self, r: Rank) -> GaspiResult<()> {
        if r >= self.num_ranks() {
            return Err(GaspiError::InvalidArg("rank out of range"));
        }
        Ok(())
    }

    /// One-sided put (`gaspi_write`): copy `len` bytes from local segment
    /// `(lseg, loff)` into `(rseg, roff)` of `dst`. Non-blocking; complete
    /// with [`GaspiProc::wait`] on `queue`.
    #[allow(clippy::too_many_arguments)] // mirrors the GASPI signature
    pub fn write(
        &self,
        lseg: SegId,
        loff: usize,
        dst: Rank,
        rseg: SegId,
        roff: usize,
        len: usize,
        queue: u16,
    ) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.write");
        self.validate_queue(queue)?;
        self.validate_rank(dst)?;
        let data = self.shared().segments.require(lseg)?.read_at(loff, len)?;
        self.post_put(dst, rseg, roff, data, None, queue);
        Ok(())
    }

    /// Remote notification (`gaspi_notify`): set notification `nid` of
    /// `(dst, rseg)` to `value` (must be non-zero). Non-blocking.
    pub fn notify(
        &self,
        dst: Rank,
        rseg: SegId,
        nid: NotificationId,
        value: u32,
        queue: u16,
    ) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.notify");
        self.validate_queue(queue)?;
        self.validate_rank(dst)?;
        if value == 0 {
            return Err(GaspiError::InvalidArg("notification value must be non-zero"));
        }
        self.world.metrics.count_notification();
        self.post_put(dst, rseg, 0, Vec::new(), Some((nid, value)), queue);
        Ok(())
    }

    /// Put followed by a notification visible only after the data
    /// (`gaspi_write_notify`) — the paper's mechanism both for pushing RHS
    /// halo values before each spMVM and for the fault detector's failure
    /// acknowledgment.
    #[allow(clippy::too_many_arguments)]
    pub fn write_notify(
        &self,
        lseg: SegId,
        loff: usize,
        dst: Rank,
        rseg: SegId,
        roff: usize,
        len: usize,
        nid: NotificationId,
        value: u32,
        queue: u16,
    ) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.write_notify");
        self.validate_queue(queue)?;
        self.validate_rank(dst)?;
        if value == 0 {
            return Err(GaspiError::InvalidArg("notification value must be non-zero"));
        }
        let data = self.shared().segments.require(lseg)?.read_at(loff, len)?;
        self.world.metrics.count_notification();
        self.post_put(dst, rseg, roff, data, Some((nid, value)), queue);
        Ok(())
    }

    /// Shared implementation of write/notify/write_notify. The remote
    /// write (and notification flip) happens in the target's endpoint;
    /// here we only account the queue slot and interpret the status
    /// reply.
    fn post_put(
        &self,
        dst: Rank,
        rseg: SegId,
        roff: usize,
        data: Vec<u8>,
        notif: Option<(NotificationId, u32)>,
        queue: u16,
    ) {
        let me = self.shared_arc();
        let qidx = queue as usize;
        me.queues[qidx].post();
        let cost = data.len() + 4;
        let msg = endpoint::enc_put(rseg, roff as u64, notif, &data);
        self.world.transport.send(
            self.rank,
            dst,
            queue,
            cost,
            msg,
            Box::new(move |out, reply| {
                if out == Outcome::Delivered && endpoint::reply_ok(&reply) {
                    me.queues[qidx].complete_ok();
                } else {
                    me.queues[qidx].complete_failed(dst);
                }
                me.signal.bump();
            }),
        );
    }

    /// One-sided get (`gaspi_read`): copy `len` bytes from `(dst, rseg,
    /// roff)` into local `(lseg, loff)`. Non-blocking; complete with
    /// [`GaspiProc::wait`].
    #[allow(clippy::too_many_arguments)] // mirrors the GASPI signature
    pub fn read(
        &self,
        lseg: SegId,
        loff: usize,
        dst: Rank,
        rseg: SegId,
        roff: usize,
        len: usize,
        queue: u16,
    ) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.read");
        self.validate_queue(queue)?;
        self.validate_rank(dst)?;
        // Validate the local landing zone up front.
        let lsize = self.shared().segments.require(lseg)?.size();
        if loff.checked_add(len).is_none_or(|end| end > lsize) {
            return Err(GaspiError::Segment { what: "read landing zone out of bounds" });
        }
        let me = self.shared_arc();
        let qidx = queue as usize;
        me.queues[qidx].post();
        let msg = endpoint::enc_read(rseg, roff as u64, len as u64);
        // A round trip: the reply leg carries the data and is costed (and
        // breakable) in its own right.
        self.world.transport.call(
            self.rank,
            dst,
            queue,
            16,
            msg,
            Box::new(move |out, reply| {
                let ok = out == Outcome::Delivered
                    && endpoint::dec_read_reply(&reply).is_some_and(|data| {
                        me.segments.get(lseg).is_some_and(|s| s.write_at(loff, &data).is_ok())
                    });
                if ok {
                    me.queues[qidx].complete_ok();
                } else {
                    me.queues[qidx].complete_failed(dst);
                }
                me.signal.bump();
            }),
        );
        Ok(())
    }

    /// Block until every request posted to `queue` so far has completed
    /// (`gaspi_wait`). Returns `GASPI_ERROR` (as
    /// [`GaspiError::QueueFailure`]) if any completed with a broken
    /// connection; the broken ranks are marked CORRUPT in the state
    /// vector.
    pub fn wait(&self, queue: u16, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.queue.wait");
        self.validate_queue(queue)?;
        let q = &self.shared().queues[queue as usize];
        let target = q.posted();
        if !q.drained_to(target) {
            let t0 = Instant::now();
            self.poll(timeout, || q.drained_to(target).then_some(Ok(())))?;
            self.world.metrics.count_queue_flush(t0.elapsed());
        }
        let failures = q.take_failures();
        if failures.is_empty() {
            return Ok(());
        }
        let mut ranks = failures;
        ranks.sort_unstable();
        ranks.dedup();
        for &r in &ranks {
            self.mark_corrupt(r);
        }
        Err(GaspiError::QueueFailure { queue, ranks })
    }

    /// Outstanding (incomplete) request count on `queue`.
    pub fn queue_outstanding(&self, queue: u16) -> GaspiResult<u64> {
        self.check_self();
        self.validate_queue(queue)?;
        Ok(self.shared().queues[queue as usize].outstanding())
    }

    /// Whether `queue` has recorded failures that a future
    /// [`GaspiProc::wait`] will report. Cheap, non-destructive — useful in
    /// health checks.
    pub fn queue_has_failures(&self, queue: u16) -> GaspiResult<bool> {
        self.check_self();
        self.validate_queue(queue)?;
        Ok(self.shared().queues[queue as usize].has_failures())
    }

    /// Discard the failure history of `queue` after waiting (bounded by
    /// `timeout`, best effort) for outstanding requests to complete.
    ///
    /// Used by post-recovery rewiring: requests posted to a process that
    /// subsequently failed complete as broken, and those records describe
    /// an already-acknowledged failure — a fresh epoch must not keep
    /// reporting it.
    pub fn queue_purge(&self, queue: u16, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.validate_queue(queue)?;
        let q = &self.shared().queues[queue as usize];
        let target = q.posted();
        let _ = self.poll(timeout, || q.drained_to(target).then_some(Ok(())));
        let _ = q.take_failures();
        Ok(())
    }

    /// Wait until some notification in `[begin, begin+count)` of local
    /// segment `seg` is non-zero (`gaspi_notify_waitsome`); returns its
    /// id. Pair with [`GaspiProc::notify_reset`].
    pub fn notify_waitsome(
        &self,
        seg: SegId,
        begin: NotificationId,
        count: u32,
        timeout: Timeout,
    ) -> GaspiResult<NotificationId> {
        self.check_self();
        let segment = self.shared().segments.require(seg)?;
        self.poll(timeout, || segment.notify_scan(begin, count).map(Ok))
    }

    /// Atomically read-and-clear a local notification
    /// (`gaspi_notify_reset`), returning the previous value.
    pub fn notify_reset(&self, seg: SegId, nid: NotificationId) -> GaspiResult<u32> {
        self.check_self();
        self.shared().segments.require(seg)?.notify_reset(nid)
    }

    /// Non-destructive read of a local notification slot.
    pub fn notify_peek(&self, seg: SegId, nid: NotificationId) -> GaspiResult<u32> {
        self.check_self();
        self.shared().segments.require(seg)?.notify_peek(nid)
    }

    // ------------------------------------------------------------------
    // Ping / kill — the paper's fault-tolerance extensions
    // ------------------------------------------------------------------

    /// Test the availability of a rank (`gaspi_proc_ping`, the GPI-2
    /// extension introduced by the paper, §III): a ping message round
    /// trips to `dst`; a detected problem returns `GASPI_ERROR`
    /// ([`GaspiError::RemoteBroken`]) and marks `dst` CORRUPT.
    pub fn proc_ping(&self, dst: Rank, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.validate_rank(dst)?;
        let metrics = Arc::clone(self.world.transport.metrics());
        metrics.pings.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(AtomicU8::new(0));
        let me = self.shared_arc();
        let c1 = Arc::clone(&cell);
        let squeue = self.world.cfg.service_queue();
        // A round trip (ping + pong leg), zero payload both ways.
        self.world.transport.call(
            self.rank,
            dst,
            squeue,
            0,
            endpoint::enc_ping(),
            Box::new(move |out, _reply| {
                let state = match out {
                    Outcome::Delivered => 1,
                    Outcome::Broken => 2,
                    Outcome::Cancelled => 3,
                };
                c1.store(state, Ordering::Release);
                me.signal.bump();
            }),
        );
        let res = self.poll(timeout, || match cell.load(Ordering::Acquire) {
            0 => None,
            1 => Some(Ok(())),
            2 => Some(Err(GaspiError::RemoteBroken { rank: dst })),
            _ => Some(Err(GaspiError::Shutdown)),
        });
        if matches!(res, Err(GaspiError::RemoteBroken { .. })) {
            metrics.ping_errors.fetch_add(1, Ordering::Relaxed);
            self.mark_corrupt(dst);
        }
        res
    }

    /// Ping a whole set of ranks in one epoch batch and return those that
    /// failed, in ascending rank order (the batched form of
    /// [`GaspiProc::proc_ping`]; the fault detector's epoch scan).
    ///
    /// All pings are posted through one [`Transport::call_fanout`] — a
    /// single pass over the transport's shard locks and one shared payload
    /// allocation for the entire scan, instead of a post per target. A
    /// rank counts as failed if its ping came back broken *or* had not
    /// answered by `timeout`. Note that `timeout` bounds the *whole
    /// batch*, not each ping — under load a healthy straggler can miss
    /// the shared window, so callers that must not over-suspect should
    /// re-verify the returned set per rank (see
    /// `ft_core::detector::glo_health_chk_batched`). Ranks whose ping
    /// came back broken are marked CORRUPT (matching
    /// [`GaspiProc::proc_ping`], which does not mark on a mere timeout);
    /// duplicate destinations are pinged once. Metrics count one ping
    /// (and at most one error) per target.
    pub fn proc_ping_many(&self, dsts: &[Rank], timeout: Timeout) -> GaspiResult<Vec<Rank>> {
        self.check_self();
        for &d in dsts {
            self.validate_rank(d)?;
        }
        let mut uniq: Vec<Rank> = dsts.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.is_empty() {
            return Ok(Vec::new());
        }
        let metrics = Arc::clone(self.world.transport.metrics());
        metrics.pings.fetch_add(uniq.len() as u64, Ordering::Relaxed);
        // One state cell per target: 0 pending, 1 ok, 2 broken, 3 shutdown.
        let states: Arc<Vec<AtomicU8>> = Arc::new(uniq.iter().map(|_| AtomicU8::new(0)).collect());
        let index: std::collections::HashMap<Rank, usize> =
            uniq.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let me = self.shared_arc();
        let st = Arc::clone(&states);
        let payload: Arc<[u8]> = Arc::from(endpoint::enc_ping().into_boxed_slice());
        self.world.transport.call_fanout(
            self.rank,
            &uniq,
            self.world.cfg.service_queue(),
            0,
            payload,
            Arc::new(move |rank, out, _reply| {
                let state = match out {
                    Outcome::Delivered => 1,
                    Outcome::Broken => 2,
                    Outcome::Cancelled => 3,
                };
                if let Some(&i) = index.get(&rank) {
                    st[i].store(state, Ordering::Release);
                }
                me.signal.bump();
            }),
        );
        let res = self.poll(timeout, || {
            if states.iter().any(|s| s.load(Ordering::Acquire) == 0) {
                None
            } else {
                Some(Ok(()))
            }
        });
        match res {
            Ok(()) | Err(GaspiError::Timeout) => {}
            Err(e) => return Err(e),
        }
        let mut failed = Vec::new();
        for (i, &d) in uniq.iter().enumerate() {
            // Pending-at-timeout (0) and shutdown (3) both mean "no answer".
            let state = states[i].load(Ordering::Acquire);
            if state != 1 {
                failed.push(d);
                metrics.ping_errors.fetch_add(1, Ordering::Relaxed);
                // Only a *broken* round trip proves the remote corrupt; a
                // ping still pending at the shared deadline may be a
                // healthy straggler (proc_ping likewise leaves the state
                // vector alone on a timeout).
                if state == 2 {
                    self.mark_corrupt(d);
                }
            }
        }
        Ok(failed)
    }

    /// Enforce the death of a rank (`gaspi_proc_kill`, the second
    /// extension): used in recovery to make sure suspected processes —
    /// including false positives that are actually alive — cannot keep
    /// participating (§IV-B). Best-effort: succeeds both when the target
    /// dies now and when it was already unreachable.
    pub fn proc_kill(&self, dst: Rank, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.proc_kill");
        self.validate_rank(dst)?;
        if dst == self.rank {
            self.exit_failure();
        }
        let cell = Arc::new(AtomicU8::new(0));
        let me = self.shared_arc();
        let c1 = Arc::clone(&cell);
        // The kill itself executes in the *target's* endpoint (which, on
        // the process backend, exits the victim process for real). A
        // Broken outcome means the target was already dead or unreachable:
        // mission accomplished either way.
        self.world.transport.send(
            self.rank,
            dst,
            self.world.cfg.service_queue(),
            0,
            endpoint::enc_kill(),
            Box::new(move |out, _reply| {
                match out {
                    Outcome::Delivered | Outcome::Broken => c1.store(1, Ordering::Release),
                    Outcome::Cancelled => c1.store(3, Ordering::Release),
                }
                me.signal.bump();
            }),
        );
        self.poll(timeout, || match cell.load(Ordering::Acquire) {
            0 => None,
            1 => Some(Ok(())),
            _ => Some(Err(GaspiError::Shutdown)),
        })
    }

    // ------------------------------------------------------------------
    // Passive communication
    // ------------------------------------------------------------------

    /// Two-sided send into `dst`'s passive inbox
    /// (`gaspi_passive_send`). Blocks until the transfer is accepted.
    pub fn passive_send(&self, dst: Rank, data: Vec<u8>, timeout: Timeout) -> GaspiResult<()> {
        self.check_self();
        self.injection_site("gaspi.passive_send");
        self.validate_rank(dst)?;
        let cell = Arc::new(AtomicU8::new(0));
        let me = self.shared_arc();
        let c1 = Arc::clone(&cell);
        let cost = data.len();
        let msg = endpoint::enc_passive(&data);
        self.world.transport.send(
            self.rank,
            dst,
            self.world.cfg.passive_queue(),
            cost,
            msg,
            Box::new(move |out, reply| {
                let state = match out {
                    Outcome::Delivered if endpoint::reply_ok(&reply) => 1,
                    Outcome::Delivered | Outcome::Broken => 2,
                    Outcome::Cancelled => 3,
                };
                c1.store(state, Ordering::Release);
                me.signal.bump();
            }),
        );
        let res = self.poll(timeout, || match cell.load(Ordering::Acquire) {
            0 => None,
            1 => Some(Ok(())),
            2 => Some(Err(GaspiError::RemoteBroken { rank: dst })),
            _ => Some(Err(GaspiError::Shutdown)),
        });
        if matches!(res, Err(GaspiError::RemoteBroken { .. })) {
            self.mark_corrupt(dst);
        }
        res
    }

    /// Receive the next passive message addressed to this rank
    /// (`gaspi_passive_receive`), returning `(sender, payload)`.
    pub fn passive_receive(&self, timeout: Timeout) -> GaspiResult<(Rank, Vec<u8>)> {
        self.check_self();
        self.poll(timeout, || self.shared().passive_inbox.lock().pop_front().map(Ok))
    }

    // ------------------------------------------------------------------
    // Global atomics
    // ------------------------------------------------------------------

    /// Atomic fetch-and-add on a `u64` at `(dst, seg, off)`
    /// (`gaspi_atomic_fetch_add`); returns the previous value. Atomicity
    /// holds across all ranks (delivery actions are serialized).
    pub fn atomic_fetch_add(
        &self,
        dst: Rank,
        seg: SegId,
        off: usize,
        delta: u64,
        timeout: Timeout,
    ) -> GaspiResult<u64> {
        self.atomic_op(dst, timeout, endpoint::enc_faa(seg, off as u64, delta))
    }

    /// Atomic compare-and-swap on a `u64` at `(dst, seg, off)`
    /// (`gaspi_atomic_compare_swap`); writes `new` if the current value
    /// equals `expect`. Returns the previous value either way.
    pub fn atomic_compare_swap(
        &self,
        dst: Rank,
        seg: SegId,
        off: usize,
        expect: u64,
        new: u64,
        timeout: Timeout,
    ) -> GaspiResult<u64> {
        self.atomic_op(dst, timeout, endpoint::enc_cas(seg, off as u64, expect, new))
    }

    /// Ship an encoded atomic op to `dst` and await the previous value.
    /// The read-modify-write itself runs in the target's endpoint
    /// handler, which every backend serializes — globally atomic.
    fn atomic_op(&self, dst: Rank, timeout: Timeout, msg: Vec<u8>) -> GaspiResult<u64> {
        self.check_self();
        self.validate_rank(dst)?;
        type Cell = Mutex<Option<GaspiResult<u64>>>;
        let cell: Arc<Cell> = Arc::new(Mutex::new(None));
        let me = self.shared_arc();
        let c1 = Arc::clone(&cell);
        let squeue = self.world.cfg.service_queue();
        self.world.transport.call(
            self.rank,
            dst,
            squeue,
            16,
            msg,
            Box::new(move |out, reply| {
                *c1.lock() = Some(match out {
                    Outcome::Delivered => endpoint::dec_atomic_reply(&reply, dst),
                    Outcome::Broken => Err(GaspiError::RemoteBroken { rank: dst }),
                    Outcome::Cancelled => Err(GaspiError::Shutdown),
                });
                me.signal.bump();
            }),
        );
        let res = self.poll(timeout, || cell.lock().take());
        if let Err(GaspiError::RemoteBroken { rank }) = &res {
            self.mark_corrupt(*rank);
        }
        res
    }
}
