//! Error and timeout types mirroring GASPI return semantics.

use std::fmt;
use std::time::{Duration, Instant};

use ft_cluster::Rank;

/// Result alias used throughout the GASPI layer.
pub type GaspiResult<T> = Result<T, GaspiError>;

/// The GASPI error space, restricted to what this runtime can produce.
///
/// `GASPI_SUCCESS` is `Ok(..)`; `GASPI_TIMEOUT` is [`GaspiError::Timeout`];
/// everything else maps onto `GASPI_ERROR` with a reason attached (real
/// GASPI returns a bare error code and leaves diagnosis to the state
/// vector — we keep the state vector *and* carry the reason for
/// ergonomics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GaspiError {
    /// The operation did not complete within the caller's timeout
    /// (`GASPI_TIMEOUT`). Not necessarily an error — the paper's workers
    /// loop on timeouts until the fault detector acknowledges a failure.
    Timeout,
    /// One or more requests on a queue completed with a broken connection;
    /// the affected remote ranks are recorded (and marked CORRUPT in the
    /// state vector).
    QueueFailure {
        /// Queue the failed requests were posted to.
        queue: u16,
        /// Remote ranks whose requests failed.
        ranks: Vec<Rank>,
    },
    /// A point-to-point service operation (ping, atomic, passive send)
    /// found the remote broken (`GASPI_ERROR` from `gaspi_proc_ping`).
    RemoteBroken {
        /// The unreachable rank.
        rank: Rank,
    },
    /// Local segment misuse: missing id, overlapping create, or an
    /// out-of-bounds offset/length.
    Segment {
        /// Description of the misuse.
        what: &'static str,
    },
    /// Group misuse (unknown group, uncommitted group in a collective,
    /// member set mismatch).
    Group {
        /// Description of the misuse.
        what: &'static str,
    },
    /// Invalid argument (zero notification value, oversized allreduce...).
    InvalidArg(&'static str),
    /// The world is shutting down; outstanding operations were cancelled.
    Shutdown,
}

impl fmt::Display for GaspiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaspiError::Timeout => write!(f, "GASPI_TIMEOUT"),
            GaspiError::QueueFailure { queue, ranks } => {
                write!(f, "GASPI_ERROR: queue {queue} requests to ranks {ranks:?} broken")
            }
            GaspiError::RemoteBroken { rank } => {
                write!(f, "GASPI_ERROR: remote rank {rank} unreachable")
            }
            GaspiError::Segment { what } => write!(f, "GASPI_ERROR: segment: {what}"),
            GaspiError::Group { what } => write!(f, "GASPI_ERROR: group: {what}"),
            GaspiError::InvalidArg(what) => write!(f, "GASPI_ERROR: invalid argument: {what}"),
            GaspiError::Shutdown => write!(f, "GASPI_ERROR: world shut down"),
        }
    }
}

impl std::error::Error for GaspiError {}

impl GaspiError {
    /// True for [`GaspiError::Timeout`] — the recoverable, retry-me case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, GaspiError::Timeout)
    }
}

/// Timeout argument accepted by every potentially blocking procedure,
/// mirroring `GASPI_BLOCK` / `GASPI_TEST` / milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timeout {
    /// Block until completion (`GASPI_BLOCK`). Operations can still fail
    /// fast when the transport reports a broken connection.
    Block,
    /// Check once and return immediately (`GASPI_TEST`).
    Test,
    /// Give up after this many milliseconds.
    Ms(u64),
}

impl Timeout {
    /// Deadline for a poll loop starting at `now`; `None` means block
    /// forever.
    pub fn deadline_from(self, now: Instant) -> Option<Instant> {
        match self {
            Timeout::Block => None,
            Timeout::Test => Some(now),
            Timeout::Ms(ms) => Some(now + Duration::from_millis(ms)),
        }
    }

    /// Convenience: deadline from `Instant::now()`.
    pub fn deadline(self) -> Option<Instant> {
        self.deadline_from(Instant::now())
    }
}

impl From<Duration> for Timeout {
    fn from(d: Duration) -> Self {
        Timeout::Ms(d.as_millis().min(u128::from(u64::MAX)) as u64)
    }
}

/// Health state of a remote process as recorded in the error state vector
/// (`GASPI_STATE_HEALTHY` / `GASPI_STATE_CORRUPT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// No erroneous operation involving this rank has been observed.
    Healthy,
    /// Some non-local operation involving this rank failed.
    Corrupt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_deadlines() {
        let t0 = Instant::now();
        assert_eq!(Timeout::Block.deadline_from(t0), None);
        assert_eq!(Timeout::Test.deadline_from(t0), Some(t0));
        assert_eq!(Timeout::Ms(5).deadline_from(t0), Some(t0 + Duration::from_millis(5)));
    }

    #[test]
    fn duration_conversion() {
        let t: Timeout = Duration::from_millis(250).into();
        assert_eq!(t, Timeout::Ms(250));
    }

    #[test]
    fn display_formats() {
        let e = GaspiError::QueueFailure { queue: 2, ranks: vec![4, 7] };
        let s = e.to_string();
        assert!(s.contains("queue 2") && s.contains('4') && s.contains('7'));
        assert_eq!(GaspiError::Timeout.to_string(), "GASPI_TIMEOUT");
        assert!(GaspiError::Timeout.is_timeout());
        assert!(!e.is_timeout());
    }
}
