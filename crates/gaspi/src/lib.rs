//! # ft-gaspi — a GASPI/GPI-2-style PGAS runtime over a simulated cluster
//!
//! GASPI (Global Address Space Programming Interface) is the PGAS
//! communication specification the paper builds on; GPI-2 is its reference
//! implementation. This crate implements the *subset of the GASPI API the
//! paper uses*, in safe Rust, over the [`ft_cluster`] transport:
//!
//! * **Segments** — contiguous blocks of memory made remotely accessible
//!   ([`GaspiProc::segment_create`]); data to be communicated is placed in
//!   segments.
//! * **One-sided communication** — [`GaspiProc::write`],
//!   [`GaspiProc::read`], [`GaspiProc::notify`],
//!   [`GaspiProc::write_notify`]; completion via [`GaspiProc::wait`] on a
//!   queue, remote completion via [`GaspiProc::notify_waitsome`].
//! * **Groups and collectives** — [`GaspiProc::group_create`] /
//!   `group_add` / `group_commit` / `group_delete`, [`GaspiProc::barrier`],
//!   [`GaspiProc::allreduce_f64`] — the pieces Listing 2 of the paper uses
//!   to rebuild the worker group after a failure.
//! * **Global atomics** ([`GaspiProc::atomic_fetch_add`],
//!   [`GaspiProc::atomic_compare_swap`]) and **passive communication**
//!   ([`GaspiProc::passive_send`] / [`GaspiProc::passive_receive`]).
//! * **Timeouts everywhere** — every potentially blocking procedure takes
//!   a [`Timeout`] and can return [`GaspiError::Timeout`], the first of
//!   the two GASPI fault-tolerance concepts.
//! * **The error state vector** — [`GaspiProc::state_vec_get`], set after
//!   every erroneous non-local operation, the second concept.
//! * **The paper's extensions** — [`GaspiProc::proc_ping`] (§III: "a ping
//!   message is sent to a particular process; in case a problem is
//!   detected, a GASPI_ERROR is returned") and [`GaspiProc::proc_kill`]
//!   (enforces death of false-positive suspects, §IV-B).
//!
//! Ranks are OS threads spawned by [`GaspiWorld::launch`]; fail-stop
//! failures are injected through the world's [`ft_cluster::FaultPlane`]
//! and surface exactly like on a real cluster: local calls of the victim
//! stop (the thread unwinds), remote operations targeting it time out or
//! complete with errors, and its ping starts returning `GASPI_ERROR`.

pub mod bytes;
pub mod config;
pub mod error;
pub mod metrics;
pub mod proc;
pub mod runtime;
pub mod segment;

mod collectives;
mod endpoint;
mod group;
mod queue;
mod signal;

pub use collectives::ALLREDUCE_MAX_ELEMS;
pub use config::GaspiConfig;
pub use endpoint::CKPT_QUEUE_BASE;
pub use error::{GaspiError, GaspiResult, ProcState, Timeout};
pub use group::{Group, EXPLICIT_ID_BASE};
pub use metrics::{GaspiMetrics, GaspiSnapshot};
pub use proc::GaspiProc;
pub use runtime::{CkptHandler, GaspiWorld, JobHandle, RankOutcome};
pub use segment::{NotificationId, SegId};

/// Reduction operations for [`GaspiProc::allreduce_f64`] /
/// [`GaspiProc::allreduce_u64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise bitwise XOR. For `f64` buffers the XOR is applied
    /// to the IEEE-754 bit patterns, making the reduction exact and
    /// order-independent — the property ABFT parity encoding needs.
    BitXor,
}
