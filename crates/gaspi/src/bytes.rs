//! Little-endian scalar/slice packing helpers for segment memory.
//!
//! GASPI hands applications raw segment pointers; our safe equivalent is
//! byte slices, and these helpers keep the `f64`/`u64`/`u32` shuffling in
//! one audited place.

/// Encode a `u64` at `off` (little-endian).
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Decode a `u64` at `off`.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Encode a `u32` at `off`.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Decode a `u32` at `off`.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Encode an `f64` at `off`.
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Decode an `f64` at `off`.
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Copy an `f64` slice into `buf` starting at `off`.
pub fn put_f64s(buf: &mut [u8], off: usize, vs: &[f64]) {
    for (i, v) in vs.iter().enumerate() {
        put_f64(buf, off + 8 * i, *v);
    }
}

/// Read `n` `f64`s from `buf` starting at `off`.
pub fn get_f64s(buf: &[u8], off: usize, n: usize) -> Vec<f64> {
    (0..n).map(|i| get_f64(buf, off + 8 * i)).collect()
}

/// Bytes needed for `n` `f64`s.
pub fn f64_bytes(n: usize) -> usize {
    n * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut b = vec![0u8; 32];
        put_u64(&mut b, 0, u64::MAX - 3);
        put_u32(&mut b, 8, 0xDEAD_BEEF);
        put_f64(&mut b, 16, -1.25e-300);
        assert_eq!(get_u64(&b, 0), u64::MAX - 3);
        assert_eq!(get_u32(&b, 8), 0xDEAD_BEEF);
        assert_eq!(get_f64(&b, 16), -1.25e-300);
    }

    #[test]
    fn slice_roundtrip() {
        let vs = [1.0, -2.5, f64::INFINITY, 0.0, 3.25e17];
        let mut b = vec![0u8; f64_bytes(vs.len()) + 4];
        put_f64s(&mut b, 4, &vs);
        assert_eq!(get_f64s(&b, 4, vs.len()), vs);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let b = vec![0u8; 4];
        get_u64(&b, 0);
    }
}
