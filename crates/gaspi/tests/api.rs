//! End-to-end tests of the GASPI API over live rank threads.

use std::time::Duration;

use ft_gaspi::{
    GaspiConfig, GaspiError, GaspiProc, GaspiResult, GaspiWorld, ProcState, RankOutcome, ReduceOp,
    Timeout,
};

const SEG: u16 = 1;
const Q: u16 = 0;

fn join_ok<T: std::fmt::Debug>(outs: Vec<RankOutcome<T>>) -> Vec<T> {
    outs.into_iter()
        .enumerate()
        .map(|(r, o)| match o {
            RankOutcome::Completed(v) => v,
            other => panic!("rank {r} did not complete: {other:?}"),
        })
        .collect()
}

/// All ranks create a segment and barrier on a full group.
fn setup_world(p: &GaspiProc, seg_size: usize) -> GaspiResult<ft_gaspi::Group> {
    p.segment_create(SEG, seg_size)?;
    let g = p.group_create_with_id(1 << 32)?;
    for r in 0..p.num_ranks() {
        p.group_add(g, r)?;
    }
    p.group_commit(g, Timeout::Ms(60_000))?;
    p.barrier(g, Timeout::Ms(60_000))?;
    Ok(g)
}

#[test]
fn write_notify_roundtrip() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let outs = world
        .launch(|p| {
            let _g = setup_world(&p, 256)?;
            let me = p.rank();
            let next = (me + 1) % p.num_ranks();
            // Put my rank (as u64) into my segment, push it to my neighbor
            // with a notification.
            p.with_segment_mut(SEG, |b| ft_gaspi::bytes::put_u64(b, 0, u64::from(me) + 100))?;
            p.write_notify(SEG, 0, next, SEG, 64, 8, 7, 1, Q)?;
            p.wait(Q, Timeout::Ms(5000))?;
            // Await my own notification and read what the previous rank put.
            let nid = p.notify_waitsome(SEG, 0, 16, Timeout::Ms(5000))?;
            assert_eq!(nid, 7);
            assert_eq!(p.notify_reset(SEG, nid)?, 1);
            let got = p.with_segment(SEG, |b| ft_gaspi::bytes::get_u64(b, 64))?;
            let prev = (me + p.num_ranks() - 1) % p.num_ranks();
            Ok(got == u64::from(prev) + 100)
        })
        .join();
    assert!(join_ok(outs).into_iter().all(|ok| ok));
}

#[test]
fn read_fetches_remote_data() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            let g = setup_world(&p, 64)?;
            p.with_segment_mut(SEG, |b| ft_gaspi::bytes::put_u64(b, 0, u64::from(p.rank()) * 11))?;
            p.barrier(g, Timeout::Ms(5000))?; // everyone's data in place
            let target = (p.rank() + 1) % p.num_ranks();
            p.read(SEG, 8, target, SEG, 0, 8, Q)?;
            p.wait(Q, Timeout::Ms(5000))?;
            let got = p.with_segment(SEG, |b| ft_gaspi::bytes::get_u64(b, 8))?;
            Ok(got == u64::from(target) * 11)
        })
        .join();
    assert!(join_ok(outs).into_iter().all(|ok| ok));
}

#[test]
fn allreduce_sum_min_max_deterministic() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(5));
    let outs = world
        .launch(|p| {
            let g = setup_world(&p, 8)?;
            let x = f64::from(p.rank()) + 1.0; // 1..=5
            let sum = p.allreduce_f64(g, &[x, 2.0 * x], ReduceOp::Sum, Timeout::Ms(5000))?;
            let mn = p.allreduce_f64(g, &[x], ReduceOp::Min, Timeout::Ms(5000))?;
            let mx = p.allreduce_f64(g, &[x], ReduceOp::Max, Timeout::Ms(5000))?;
            let cnt = p.allreduce_u64(g, &[1], ReduceOp::Sum, Timeout::Ms(5000))?;
            Ok((sum, mn, mx, cnt))
        })
        .join();
    for (sum, mn, mx, cnt) in join_ok(outs) {
        assert_eq!(sum, vec![15.0, 30.0]);
        assert_eq!(mn, vec![1.0]);
        assert_eq!(mx, vec![5.0]);
        assert_eq!(cnt, vec![5]);
    }
}

#[test]
fn allreduce_rejects_oversized_buffers() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            let g = setup_world(&p, 8)?;
            let big = vec![0.0; 256];
            match p.allreduce_f64(g, &big, ReduceOp::Sum, Timeout::Ms(1000)) {
                Err(GaspiError::InvalidArg(_)) => Ok(true),
                other => panic!("expected InvalidArg, got {other:?}"),
            }
        })
        .join();
    assert!(join_ok(outs).into_iter().all(|ok| ok));
}

#[test]
fn barrier_times_out_when_member_dead() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            let g = setup_world(&p, 8)?;
            if p.rank() == 2 {
                p.exit_failure();
            }
            // Give the victim a moment to die, then barrier: must not hang.
            std::thread::sleep(Duration::from_millis(20));
            match p.barrier(g, Timeout::Ms(300)) {
                Err(GaspiError::Timeout) | Err(GaspiError::RemoteBroken { rank: 2 }) => Ok(true),
                other => panic!("expected Timeout/RemoteBroken, got {other:?}"),
            }
        })
        .join();
    assert!(outs[2].was_killed(), "{outs:?}");
    assert!(matches!(outs[0], RankOutcome::Completed(true)), "{outs:?}");
    assert!(matches!(outs[1], RankOutcome::Completed(true)), "{outs:?}");
}

#[test]
fn ping_healthy_then_dead_then_state_vec() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            match p.rank() {
                1 => {
                    // Live briefly, then die.
                    std::thread::sleep(Duration::from_millis(30));
                    p.exit_failure();
                }
                0 => {
                    // Healthy ping first.
                    p.proc_ping(1, Timeout::Ms(1000))?;
                    assert_eq!(p.state_vec_get()[1], ProcState::Healthy);
                    // Wait for death, then ping must fail and set the
                    // state vector.
                    std::thread::sleep(Duration::from_millis(60));
                    match p.proc_ping(1, Timeout::Block) {
                        Err(GaspiError::RemoteBroken { rank: 1 }) => {}
                        other => panic!("expected RemoteBroken, got {other:?}"),
                    }
                    assert_eq!(p.state_vec_get()[1], ProcState::Corrupt);
                    assert_eq!(p.state_vec_get()[2], ProcState::Healthy);
                    Ok(())
                }
                _ => {
                    std::thread::sleep(Duration::from_millis(120));
                    Ok(())
                }
            }
        })
        .join();
    assert!(outs[1].was_killed());
}

#[test]
fn ping_many_reports_exactly_the_dead_and_marks_corrupt() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(6));
    world.fault().kill_rank(2);
    world.fault().kill_rank(4);
    let p = world.proc_handle(5);
    // Duplicates are pinged once; the failed set is sorted and deduped.
    let failed = p.proc_ping_many(&[0, 1, 2, 3, 4, 2], Timeout::Ms(1000)).unwrap();
    assert_eq!(failed, vec![2, 4]);
    let states = p.state_vec_get();
    assert_eq!(states[2], ProcState::Corrupt);
    assert_eq!(states[4], ProcState::Corrupt);
    assert_eq!(states[0], ProcState::Healthy);
    // Empty target set short-circuits.
    assert!(p.proc_ping_many(&[], Timeout::Ms(100)).unwrap().is_empty());
}

#[test]
fn proc_kill_enforces_death_of_live_rank() {
    // The false-positive scenario (§IV-A-a): a healthy process is killed
    // anyway so it cannot keep participating.
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let fault = world.fault();
    let outs = world
        .launch(|p| {
            if p.rank() == 0 {
                p.proc_kill(1, Timeout::Ms(2000))?;
                // Killing an already-dead rank is still a success.
                p.proc_kill(1, Timeout::Ms(2000))?;
                Ok(true)
            } else {
                // Rank 1 spins doing local work until the kill lands.
                loop {
                    p.with_segment(0, |_| ()).ok();
                    p.proc_ping(0, Timeout::Ms(100)).ok();
                }
            }
        })
        .join();
    assert!(matches!(outs[0], RankOutcome::Completed(true)));
    assert!(outs[1].was_killed());
    assert!(!fault.is_alive(1));
}

#[test]
fn wait_reports_queue_failure_against_dead_target() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            p.segment_create(SEG, 64)?;
            if p.rank() == 1 {
                p.exit_failure();
            }
            std::thread::sleep(Duration::from_millis(30));
            p.write(SEG, 0, 1, SEG, 0, 8, Q)?;
            match p.wait(Q, Timeout::Ms(2000)) {
                Err(GaspiError::QueueFailure { queue: Q, ranks }) => {
                    assert_eq!(ranks, vec![1]);
                    assert_eq!(p.state_vec_get()[1], ProcState::Corrupt);
                    Ok(true)
                }
                other => panic!("expected QueueFailure, got {other:?}"),
            }
        })
        .join();
    assert!(matches!(outs[0], RankOutcome::Completed(true)));
}

#[test]
fn passive_send_receive() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            if p.rank() == 0 {
                p.passive_send(1, b"hello".to_vec(), Timeout::Ms(2000))?;
                Ok(None)
            } else {
                let (from, data) = p.passive_receive(Timeout::Ms(2000))?;
                Ok(Some((from, data)))
            }
        })
        .join();
    let vals = join_ok(outs);
    assert_eq!(vals[1], Some((0, b"hello".to_vec())));
}

#[test]
fn atomics_fetch_add_and_cas() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let outs = world
        .launch(|p| {
            let g = setup_world(&p, 64)?;
            // Everyone increments a counter on rank 0.
            let old = p.atomic_fetch_add(0, SEG, 0, 1, Timeout::Ms(5000))?;
            assert!(old < 4);
            p.barrier(g, Timeout::Ms(5000))?;
            let total = p.with_segment(SEG, |b| ft_gaspi::bytes::get_u64(b, 0))?;
            if p.rank() == 0 {
                assert_eq!(total, 4);
            }
            // CAS: only one rank wins the swap 4 → 100.
            let prev =
                p.atomic_compare_swap(0, SEG, 8, 0, u64::from(p.rank()) + 1, Timeout::Ms(5000))?;
            p.barrier(g, Timeout::Ms(5000))?;
            Ok(prev == 0) // true for the single winner
        })
        .join();
    let winners = join_ok(outs).into_iter().filter(|w| *w).count();
    assert_eq!(winners, 1);
}

#[test]
fn notify_waitsome_timeout_and_test() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(1));
    let outs = world
        .launch(|p| {
            p.segment_create(SEG, 8)?;
            assert!(matches!(
                p.notify_waitsome(SEG, 0, 8, Timeout::Ms(20)),
                Err(GaspiError::Timeout)
            ));
            assert!(matches!(
                p.notify_waitsome(SEG, 0, 8, Timeout::Test),
                Err(GaspiError::Timeout)
            ));
            Ok(())
        })
        .join();
    join_ok(outs);
}

#[test]
fn group_commit_detects_member_set_mismatch() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            let g = p.group_create_with_id(1 << 33)?;
            p.group_add(g, 0)?;
            p.group_add(g, 1)?;
            if p.rank() == 0 {
                // Rank 0 sneaks in a phantom member — fingerprints differ.
                // (2 ranks only, so add rank 1 twice is dedup'd; instead
                // rank 0 commits a *smaller* set.)
            }
            let res = if p.rank() == 0 {
                let g2 = p.group_create_with_id(1 << 34)?;
                p.group_add(g2, 0)?;
                p.group_add(g2, 1)?;
                p.group_commit(g2, Timeout::Ms(400))
            } else {
                let g2 = p.group_create_with_id(1 << 34)?;
                p.group_add(g2, 1)?;
                p.group_commit(g2, Timeout::Ms(400))
            };
            Ok(matches!(res, Err(GaspiError::Group { .. }) | Err(GaspiError::Timeout) | Ok(())))
        })
        .join();
    // Rank 1 commits a singleton {1}: succeeds trivially (no tokens
    // needed... members without self? it contains self only) while rank 0
    // waits for a token from rank 1 that must arrive with a *different*
    // fingerprint → mismatch error. Either way, nobody hangs.
    let vals = join_ok(outs);
    assert!(vals.into_iter().all(|ok| ok));
}

#[test]
fn segment_errors_are_local_and_immediate() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(1));
    let outs = world
        .launch(|p| {
            assert!(matches!(p.segment_size(9), Err(GaspiError::Segment { .. })));
            p.segment_create(2, 16)?;
            assert!(matches!(p.segment_create(2, 16), Err(GaspiError::Segment { .. })));
            assert!(matches!(p.segment_read(2, 10, 10), Err(GaspiError::Segment { .. })));
            assert!(matches!(p.write(2, 0, 0, 9, 0, 8, 99), Err(GaspiError::InvalidArg(_))));
            Ok(())
        })
        .join();
    join_ok(outs);
}

#[test]
fn write_to_missing_remote_segment_fails_on_wait() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            p.segment_create(SEG, 32)?;
            if p.rank() == 0 {
                // Remote segment 5 never exists on rank 1.
                p.write(SEG, 0, 1, 5, 0, 8, Q)?;
                match p.wait(Q, Timeout::Ms(2000)) {
                    Err(GaspiError::QueueFailure { ranks, .. }) => Ok(ranks == vec![1]),
                    other => panic!("expected QueueFailure, got {other:?}"),
                }
            } else {
                std::thread::sleep(Duration::from_millis(50));
                Ok(true)
            }
        })
        .join();
    assert!(join_ok(outs).into_iter().all(|ok| ok));
}

#[test]
fn threaded_pings_share_one_handle() {
    // The threaded FD pattern: clone the proc handle into scoped threads
    // and ping different targets concurrently.
    let world = GaspiWorld::new(GaspiConfig::deterministic(9));
    let outs = world
        .launch(|p| {
            if p.rank() == 0 {
                let results: Vec<GaspiResult<()>> = std::thread::scope(|s| {
                    let handles: Vec<_> = (1..9)
                        .map(|r| {
                            let p = p.clone();
                            s.spawn(move || p.proc_ping(r, Timeout::Ms(2000)))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                Ok(results.into_iter().all(|r| r.is_ok()))
            } else {
                std::thread::sleep(Duration::from_millis(100));
                Ok(true)
            }
        })
        .join();
    assert!(join_ok(outs).into_iter().all(|ok| ok));
}
