//! Tests of the GASPI timeout/resume contract for collectives: "a
//! procedure interrupted by a timeout must be called again with the same
//! arguments to complete". This is what keeps a group synchronized when
//! members enter a collective at very different times — the situation
//! every failure recovery creates.

use std::time::Duration;

use ft_gaspi::{GaspiConfig, GaspiError, GaspiWorld, RankOutcome, ReduceOp, Timeout};

fn full_group(p: &ft_gaspi::GaspiProc) -> ft_gaspi::Group {
    let g = p.group_create_with_id(1 << 32).unwrap();
    for r in 0..p.num_ranks() {
        p.group_add(g, r).unwrap();
    }
    p.group_commit(g, Timeout::Ms(5000)).unwrap();
    g
}

#[test]
fn barrier_timeout_then_resume_completes() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            let g = full_group(&p);
            if p.rank() == 2 {
                // Latecomer: everyone else will time out first.
                std::thread::sleep(Duration::from_millis(60));
                p.barrier(g, Timeout::Ms(5000))?;
                return Ok(0u32);
            }
            // Early ranks: the first (short) call times out, the retry
            // resumes the *same* barrier instance and completes once the
            // latecomer arrives.
            let mut timeouts = 0u32;
            loop {
                match p.barrier(g, Timeout::Ms(5)) {
                    Ok(()) => break,
                    Err(GaspiError::Timeout) => timeouts += 1,
                    Err(e) => return Err(e),
                }
            }
            Ok(timeouts)
        })
        .join();
    for (r, o) in outs.into_iter().enumerate() {
        match o {
            RankOutcome::Completed(t) => {
                if r != 2 {
                    assert!(t >= 1, "rank {r} should have timed out at least once, got {t}");
                }
            }
            other => panic!("rank {r}: {other:?}"),
        }
    }
}

#[test]
fn allreduce_timeout_then_resume_is_exact() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(4));
    let outs = world
        .launch(|p| {
            let g = full_group(&p);
            let x = [f64::from(p.rank()) + 1.0];
            if p.rank() == 3 {
                std::thread::sleep(Duration::from_millis(60));
                return Ok(p.allreduce_f64(g, &x, ReduceOp::Sum, Timeout::Ms(5000))?[0]);
            }
            loop {
                match p.allreduce_f64(g, &x, ReduceOp::Sum, Timeout::Ms(5)) {
                    Ok(v) => return Ok(v[0]),
                    Err(GaspiError::Timeout) => continue,
                    Err(e) => return Err(e),
                }
            }
        })
        .join();
    for o in outs {
        match o {
            RankOutcome::Completed(v) => assert_eq!(v, 10.0),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn interleaved_collectives_stay_paired_under_timeouts() {
    // The regression that motivated resumption: ranks retrying with
    // per-attempt timeouts while others proceed must never pair one
    // logical collective with another.
    let world = GaspiWorld::new(GaspiConfig::deterministic(3));
    let outs = world
        .launch(|p| {
            let g = full_group(&p);
            let mut results = Vec::new();
            for round in 0..20u32 {
                // Jitter: every rank stalls a different amount each round.
                let stall = u64::from((p.rank() + round) % 3) * 3;
                std::thread::sleep(Duration::from_millis(stall));
                let x = [f64::from(round) + f64::from(p.rank())];
                let v = loop {
                    match p.allreduce_f64(g, &x, ReduceOp::Sum, Timeout::Ms(2)) {
                        Ok(v) => break v[0],
                        Err(GaspiError::Timeout) => continue,
                        Err(e) => return Err(e),
                    }
                };
                results.push(v);
            }
            Ok(results)
        })
        .join();
    let expect: Vec<f64> = (0..20).map(|r| 3.0 * f64::from(r) + 3.0).collect();
    for o in outs {
        match o {
            RankOutcome::Completed(v) => assert_eq!(v, expect),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn mismatched_pending_collective_is_rejected() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            let g = full_group(&p);
            if p.rank() == 0 {
                // Start a barrier that cannot complete yet (rank 1 never
                // barriers), then try an allreduce: must be rejected as a
                // different pending collective, not silently mixed.
                assert!(matches!(p.barrier(g, Timeout::Ms(5)), Err(GaspiError::Timeout)));
                match p.allreduce_f64(g, &[1.0], ReduceOp::Sum, Timeout::Ms(5)) {
                    Err(GaspiError::Group { .. }) => Ok(true),
                    other => panic!("expected Group error, got {other:?}"),
                }
            } else {
                std::thread::sleep(Duration::from_millis(50));
                Ok(true)
            }
        })
        .join();
    for o in outs {
        assert!(matches!(o, RankOutcome::Completed(true)));
    }
}

#[test]
fn group_delete_clears_pending_and_tokens() {
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let outs = world
        .launch(|p| {
            let g = full_group(&p);
            if p.rank() == 0 {
                // Abandon a barrier (rank 1 isn't participating), delete
                // the group, rebuild with a fresh id — the new group's
                // collectives work.
                let _ = p.barrier(g, Timeout::Ms(5));
                p.group_delete(g)?;
            } else {
                std::thread::sleep(Duration::from_millis(30));
                p.group_delete(g)?;
            }
            let g2 = p.group_create_with_id((1 << 32) + 1)?;
            for r in 0..p.num_ranks() {
                p.group_add(g2, r)?;
            }
            p.group_commit(g2, Timeout::Ms(5000))?;
            p.barrier(g2, Timeout::Ms(5000))?;
            Ok(true)
        })
        .join();
    for o in outs {
        assert!(matches!(o, RankOutcome::Completed(true)));
    }
}
