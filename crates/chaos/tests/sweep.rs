//! Acceptance tests for the kill-point explorer:
//!
//! * the exhaustive single-kill sweep on the CI world enumerates ≥ 30
//!   distinct `(site, rank)` kill points and every replay satisfies the
//!   chaos contract;
//! * deterministic triples replay to the same outcome;
//! * the pair sweep covers kill-during-group-rebuild and
//!   kill-during-neighbor-recopy (second injection provably fired);
//! * the `gaspi-ft/killpoint-sweep/v1` report matches its schema.

use std::time::Duration;

use ft_chaos::{
    exhaustive_sweep, pair_sweep, replay_triple, run_with, triple_is_early, verdict_of, RunClass,
    SweepConfig, Verdict, SCHEMA,
};
use ft_telemetry::Json;

#[test]
fn exhaustive_sweep_covers_the_world_and_holds_the_contract() {
    let cfg = SweepConfig::ci();
    let report = exhaustive_sweep(&cfg, None);
    assert!(report.enumerated >= 30, "only {} triples enumerated", report.enumerated);
    assert_eq!(report.replayed.len(), report.enumerated, "unbudgeted sweep must replay all");
    assert_eq!(report.skipped_budget, 0);
    assert!(
        report.distinct_kill_points() >= 30,
        "only {} distinct (site, rank) kill points",
        report.distinct_kill_points()
    );
    assert!(report.violations.is_empty(), "contract violations: {:#?}", report.violations);
    // Both deterministic and interleaving-dependent sites must appear —
    // the sweep covers rank-thread *and* helper-thread kill points.
    assert!(report.replayed.iter().any(|t| t.deterministic));
    assert!(report.replayed.iter().any(|t| !t.deterministic));
}

#[test]
fn deterministic_triples_replay_to_the_same_outcome() {
    let cfg = SweepConfig::ci();
    let recording = run_with(&cfg, &[], true);
    assert!(recording.class.is_ok(), "recording run failed: {:?}", recording.class);
    let det: Vec<_> =
        recording.log.iter().filter(|t| ft_cluster::site_is_deterministic(&t.site)).collect();
    assert!(det.len() >= 10, "too few deterministic triples: {}", det.len());
    // Sample across the log (every k-th), two replays each. Replays
    // compare as *verdicts*: a kill before the victim's first checkpoint
    // commit races recovery against initial group formation, where both
    // exact completion and clean degradation satisfy the contract — the
    // verdict folds that scheduler-dependent freedom into one named
    // class (the criterion itself is deterministic, decided from the
    // recording log), so this test is stable under load and
    // `--test-threads` without any debug-env escape hatch.
    let stride = (det.len() / 5).max(1);
    let mut early_seen = false;
    for t in det.iter().step_by(stride).take(5) {
        let early = triple_is_early(&recording.log, t);
        early_seen |= early;
        let a = replay_triple(&cfg, t).map(|c| verdict_of(early, c));
        let b = replay_triple(&cfg, t).map(|c| verdict_of(early, c));
        assert_eq!(
            a, b,
            "triple ({}, occ {}, rank {}) replayed to different verdicts",
            t.site, t.occurrence, t.rank
        );
        assert!(a.is_ok(), "triple ({}, occ {}, rank {}): {a:?}", t.site, t.occurrence, t.rank);
        if !early {
            // Post-checkpoint kills have no timing freedom to fold: the
            // verdict must be a plain class, never EarlyKill.
            assert_ne!(a, Ok(Verdict::EarlyKill));
        }
    }
    // The stride starts at the log's first crossings, which precede any
    // checkpoint — the early-kill fold must actually engage.
    assert!(early_seen, "sample never exercised the early-kill verdict");
}

#[test]
fn sweep_covers_abft_and_replication_sites_without_violations() {
    // The same exhaustive explorer, pointed at the other two recovery
    // models: each strategy's own steady-state sites appear in the
    // enumeration (the parity-encode point for ABFT, the replica-push
    // point for replication) and every kill placed there — and at every
    // other site — still satisfies the chaos contract.
    for (strategy, site) in [
        (ft_core::StrategyKind::Abft, "strategy.abft.encode"),
        (ft_core::StrategyKind::Replicated, "strategy.replica.push"),
    ] {
        let cfg = SweepConfig { strategy, ..SweepConfig::ci() };
        let report = exhaustive_sweep(&cfg, None);
        assert!(
            report.replayed.iter().any(|t| t.site == site),
            "[{}] sweep never enumerated {site}",
            strategy.name()
        );
        assert!(
            report.violations.is_empty(),
            "[{}] contract violations: {:#?}",
            strategy.name(),
            report.violations
        );
        // The strategy's own sites are rank-thread program order —
        // deterministic, so replay comparisons stay meaningful.
        assert!(report.replayed.iter().filter(|t| t.site == site).all(|t| t.deterministic));
    }
}

#[test]
fn pair_sweep_reaches_inside_the_recovery_window() {
    let cfg = SweepConfig::ci();
    let pairs = pair_sweep(&cfg);
    for required in ["kill-during-group-rebuild", "kill-during-neighbor-recopy"] {
        let p = pairs
            .iter()
            .find(|p| p.label == required)
            .unwrap_or_else(|| panic!("pair sweep lost scenario {required}"));
        assert!(p.outcome.is_ok(), "{required}: {:?}", p.outcome);
        // Every injection fired — the second kill really landed inside
        // the recovery triggered by the first.
        assert_eq!(
            p.fired,
            p.injections.len(),
            "{required}: only {}/{} injections fired",
            p.fired,
            p.injections.len()
        );
    }
    let exhaustion = pairs.iter().find(|p| p.label == "spare-exhaustion").unwrap();
    assert_eq!(
        exhaustion.outcome,
        Ok(RunClass::Degraded),
        "three kills against one rescue + FD promotion must degrade cleanly"
    );
}

#[test]
fn report_matches_killpoint_sweep_v1_schema() {
    let cfg = SweepConfig::ci();
    // Zero budget: enumeration completes, replays are skipped — cheap,
    // and exercises the skipped_budget accounting too.
    let mut report = exhaustive_sweep(&cfg, Some(Duration::ZERO));
    report.pairs = pair_sweep(&cfg);
    let doc = Json::parse(&report.to_json().render()).expect("report must be valid JSON");

    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    let world = doc.get("world").expect("world object");
    assert_eq!(world.get("workers").and_then(Json::as_u64), Some(4));
    assert_eq!(world.get("spares").and_then(Json::as_u64), Some(2));
    for key in ["seed", "max_iters", "checkpoint_every"] {
        assert!(world.get(key).and_then(Json::as_u64).is_some(), "world.{key} missing");
    }
    let enumerated = doc.get("enumerated").and_then(Json::as_u64).expect("enumerated");
    assert!(enumerated >= 30);
    assert_eq!(doc.get("replayed").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("skipped_budget").and_then(Json::as_u64), Some(enumerated));
    assert!(doc.get("distinct_kill_points").and_then(Json::as_u64).is_some());
    let outcomes = doc.get("outcomes").expect("outcomes object");
    for key in ["correct", "degraded", "violations"] {
        assert!(outcomes.get(key).and_then(Json::as_u64).is_some(), "outcomes.{key} missing");
    }
    assert!(doc.get("sites").and_then(Json::as_arr).is_some());
    assert!(doc.get("violations").and_then(Json::as_arr).is_some());
    let pairs = doc.get("pairs").and_then(Json::as_arr).expect("pairs array");
    assert_eq!(pairs.len(), 4);
    for p in pairs {
        assert!(p.get("label").and_then(Json::as_str).is_some());
        assert!(p.get("outcome").and_then(Json::as_str).is_some());
        assert!(p.get("fired").and_then(Json::as_u64).is_some());
        let injs = p.get("injections").and_then(Json::as_arr).expect("injections array");
        assert!(!injs.is_empty());
        for i in injs {
            assert!(i.get("site").and_then(Json::as_str).is_some());
            assert!(i.get("rank").and_then(Json::as_u64).is_some());
            assert!(i.get("occurrence").and_then(Json::as_u64).is_some());
            assert!(i.get("op").and_then(Json::as_str).is_some());
        }
    }
    assert!(doc.get("elapsed_s").and_then(Json::as_f64).is_some());
}
