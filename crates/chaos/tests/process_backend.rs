//! Regression tests for the process-backend conformance driver.
//!
//! Each test runs the `process_sweep` binary in one of its supervisor
//! modes — the binary re-executes itself as the rank children, so this
//! exercises the full path: spawn, PORT/MAP handshake, TCP transport,
//! fault delivery (armed exits and real `SIGKILL`s), reaping, and
//! contract classification. The binary exits non-zero on any contract
//! violation, so the assertion here is simply "exit success", with the
//! captured output attached on failure.

#![cfg(unix)]

use std::process::Command;
use std::time::{Duration, Instant};

/// Hard ceiling well above the binary's own per-job deadlines, so a
/// supervisor-level hang fails the test instead of wedging CI.
const TEST_DEADLINE: Duration = Duration::from_secs(240);

fn run_mode(mode: &str, envs: &[(&str, &str)]) {
    let t0 = Instant::now();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_process_sweep"));
    cmd.arg(mode);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("failed to launch process_sweep {mode}: {e}"));
    let elapsed = t0.elapsed();
    assert!(
        out.status.success(),
        "process_sweep {mode} failed ({:?}, {elapsed:?})\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(elapsed < TEST_DEADLINE, "process_sweep {mode} took {elapsed:?} (> {TEST_DEADLINE:?})");
}

/// Smoke conformance: replay a small triple subset as real-process jobs
/// and require zero violations. Three kill triples plus one partition
/// triple keeps this in test budget while still crossing spawn +
/// injected-kill + link-fault + degraded classification.
#[test]
fn process_smoke_conformance() {
    run_mode("smoke", &[("FT_PROC_SWEEP_TRIPLES", "3"), ("FT_PROC_SWEEP_PARTITIONS", "1")]);
}

/// The paper's `kill -9` experiment end to end: SIGKILL a worker process
/// mid-solve, require detect → rebuild → restore → exact final values.
#[test]
fn process_fdkill_end_to_end() {
    run_mode("fdkill", &[]);
}

/// A timed FD↔worker partition mid-solve: link ops must reach the
/// children (never `skipped_actions`), the detector must observe the
/// partitioned worker, and the final values must equal the in-memory
/// backend's for the same schedule.
#[test]
fn process_partition_end_to_end() {
    run_mode("partition", &[]);
}

/// The paper's link-fault path with an *asymmetric* partition: one
/// worker loses sight of a peer the FD still reaches; the worker's
/// suspect report must drive detection, rebuild, restore, exact values.
#[test]
fn process_asymmetric_partition() {
    run_mode("asym", &[]);
}

/// A transient partition healed before the detector's grace expires must
/// cause no spurious recovery and complete exactly.
#[test]
fn process_heal_before_timeout() {
    run_mode("heal", &[]);
}
