//! CI driver: run the exhaustive single-kill sweep and the pair sweep on
//! the 4-worker/1-idle/1-FD world, write the
//! `gaspi-ft/killpoint-sweep/v1` report to `target/telemetry/`, and exit
//! non-zero on any contract violation or insufficient coverage.
//!
//! Environment:
//! * `FT_SWEEP_BUDGET_SECS` — wall-clock budget for single-kill replays
//!   (default 300; enumeration and the pair sweep always run).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ft_chaos::{exhaustive_sweep, pair_sweep, RunClass, SweepConfig};

/// Minimum distinct `(site, rank)` kill points the CI world must cover.
const MIN_KILL_POINTS: usize = 30;

fn telemetry_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")),
        PathBuf::from,
    );
    target.join("telemetry")
}

fn main() -> ExitCode {
    let budget = std::env::var("FT_SWEEP_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    let cfg = SweepConfig::ci();
    println!(
        "killpoint sweep: {} workers / {} spares, {} iters, budget {budget}s",
        cfg.workers, cfg.spares, cfg.max_iters
    );

    let mut report = exhaustive_sweep(&cfg, Some(Duration::from_secs(budget)));
    report.pairs = pair_sweep(&cfg);

    let mut correct = 0;
    let mut degraded = 0;
    for t in &report.replayed {
        match t.outcome {
            Ok(RunClass::Correct) => correct += 1,
            Ok(RunClass::Degraded) => degraded += 1,
            Err(_) => {}
        }
    }
    println!(
        "enumerated {} triples, replayed {} ({} correct, {} degraded, {} skipped on budget), \
         {} distinct (site, rank) kill points",
        report.enumerated,
        report.replayed.len(),
        correct,
        degraded,
        report.skipped_budget,
        report.distinct_kill_points()
    );
    for p in &report.pairs {
        let outcome = match &p.outcome {
            Ok(RunClass::Correct) => "correct".to_string(),
            Ok(RunClass::Degraded) => "degraded".to_string(),
            Err(v) => format!("VIOLATION: {v}"),
        };
        println!("pair {}: {} ({} injections fired)", p.label, outcome, p.fired);
    }
    for v in &report.violations {
        eprintln!("VIOLATION: {v}");
    }

    let out = telemetry_dir();
    let path = out.join("killpoint-sweep.json");
    match std::fs::create_dir_all(&out)
        .and_then(|()| std::fs::write(&path, report.to_json().render()))
    {
        Ok(()) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("could not write report to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if !report.clean() {
        eprintln!("sweep found contract violations");
        return ExitCode::FAILURE;
    }
    if report.distinct_kill_points() < MIN_KILL_POINTS {
        eprintln!(
            "coverage floor not met: {} distinct kill points < {MIN_KILL_POINTS}",
            report.distinct_kill_points()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
