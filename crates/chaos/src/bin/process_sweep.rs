//! Process-backend conformance driver: the kill-point sweep's chaos
//! contract over real OS rank processes.
//!
//! This binary is both supervisor and child: re-executed with the
//! `FT_PROC_*` environment set, it runs one rank of the sweep job over
//! TCP; otherwise it runs one of three supervisor modes and exits
//! non-zero on any contract violation:
//!
//! * `smoke` (default) — enumerate kill points in memory, replay a
//!   coverage-spread subset as real-process jobs with the kill shipped in
//!   the serialized schedule (an armed child exits mid-protocol), and
//!   write the `gaspi-ft/process-sweep/v1` report to
//!   `target/telemetry/process-sweep.json`.
//! * `storm` — one longer seeded job with a cooperative iteration kill
//!   *and* a wall-clock `SIGKILL` from the supervisor, on a world with
//!   spare capacity for both.
//! * `fdkill` — the paper's `kill -9` experiment end to end: `SIGKILL` a
//!   worker mid-solve, assert the victim died by signal, the detector
//!   observed it, the group rebuilt, state restored from checkpoints,
//!   survivors finished with the exact expected value, all within a
//!   wall-clock bound.
//!
//! Environment: `FT_PROC_SWEEP_TRIPLES` — smoke replay count (default
//! 6); `FT_PROC_KILL_MS` — fdkill SIGKILL time in ms (default 500);
//! `FT_PROC_SWEEP_VERBOSE` — dump child event lines in fdkill mode.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ft_chaos::{
    classify_process, maybe_run_child, process_smoke_sweep, run_process, RunClass, SweepConfig,
};
use ft_cluster::{FaultAction, FaultSchedule};
use ft_core::ProcOutcome;
use ft_telemetry::Json;

/// Schema identifier of the process-sweep report document.
const SCHEMA: &str = "gaspi-ft/process-sweep/v1";

/// The longer-running world for the wall-clock modes: kills must land
/// mid-solve, so the job computes for several seconds instead of
/// milliseconds (an allreduce iteration over loopback TCP runs in the
/// low hundreds of microseconds). Contract arithmetic is unchanged.
fn wallclock_cfg(spares: u32) -> SweepConfig {
    SweepConfig { max_iters: 20_000, checkpoint_every: 200, spares, ..SweepConfig::ci() }
}

fn telemetry_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")),
        PathBuf::from,
    );
    target.join("telemetry")
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    // Child processes carry their rank in the environment and divert
    // before mode handling; the mode argument tells them which world
    // configuration this job was launched with.
    let cfg = match mode.as_str() {
        "storm" => wallclock_cfg(3),
        "fdkill" => wallclock_cfg(2),
        _ => SweepConfig::ci(),
    };
    if let Some(code) = maybe_run_child(&cfg) {
        std::process::exit(code);
    }
    match mode.as_str() {
        "smoke" => smoke(&cfg),
        "storm" => storm(&cfg, &mode),
        "fdkill" => fdkill(&cfg, &mode),
        other => {
            eprintln!("unknown mode {other:?} (expected smoke|storm|fdkill)");
            ExitCode::FAILURE
        }
    }
}

fn smoke(cfg: &SweepConfig) -> ExitCode {
    let max_triples =
        std::env::var("FT_PROC_SWEEP_TRIPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(6usize);
    println!(
        "process smoke sweep: {} workers / {} spares as OS processes, {max_triples} triples",
        cfg.workers, cfg.spares
    );
    let t0 = Instant::now();
    let outcomes = match process_smoke_sweep(cfg, max_triples, &["smoke"], Duration::from_secs(60))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("process sweep failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let class_label = |c: &Result<RunClass, String>| match c {
        Ok(RunClass::Correct) => "correct".to_string(),
        Ok(RunClass::Degraded) => "degraded".to_string(),
        Err(v) => format!("violation: {v}"),
    };
    let mut violations = 0;
    let mut agreements = 0;
    let mut rows = Vec::new();
    for o in &outcomes {
        if o.process.is_err() {
            violations += 1;
        }
        if o.agree() {
            agreements += 1;
        }
        println!(
            "  kill {} occ {} rank {}: process={} in-memory={}",
            o.triple.site,
            o.triple.occurrence,
            o.triple.rank,
            class_label(&o.process),
            class_label(&o.in_memory),
        );
        rows.push(Json::obj([
            ("site", Json::Str(o.triple.site.clone())),
            ("rank", Json::num_u64(u64::from(o.triple.rank))),
            ("occurrence", Json::num_u64(o.triple.occurrence)),
            ("outcome", Json::Str(class_label(&o.process))),
            ("in_memory", Json::Str(class_label(&o.in_memory))),
            ("backends_agree", Json::Bool(o.agree())),
        ]));
    }
    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("backend", Json::Str("process".to_string())),
        (
            "world",
            Json::obj([
                ("workers", Json::num_u64(u64::from(cfg.workers))),
                ("spares", Json::num_u64(u64::from(cfg.spares))),
                ("seed", Json::num_u64(cfg.seed)),
                ("max_iters", Json::num_u64(cfg.max_iters)),
            ]),
        ),
        ("replayed", Json::num_u64(outcomes.len() as u64)),
        ("violations", Json::num_u64(violations)),
        ("backend_agreements", Json::num_u64(agreements)),
        ("triples", Json::Arr(rows)),
        ("elapsed_s", Json::Num(t0.elapsed().as_secs_f64())),
    ]);
    let out = telemetry_dir();
    let path = out.join("process-sweep.json");
    match std::fs::create_dir_all(&out).and_then(|()| std::fs::write(&path, doc.render())) {
        Ok(()) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("could not write report to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "replayed {} triples as real-process jobs in {:?}, {violations} violations, \
         {agreements}/{} backend agreement",
        outcomes.len(),
        t0.elapsed(),
        outcomes.len(),
    );
    if violations > 0 || outcomes.is_empty() {
        eprintln!("process sweep found contract violations (or replayed nothing)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn storm(cfg: &SweepConfig, mode: &str) -> ExitCode {
    // Two independent deaths: rank 0 exits cooperatively at iteration
    // 700 (the `exit(-1)` style), rank 2 is SIGKILLed from outside at
    // 600 ms (the `kill -9` style). Three spares cover both plus the FD.
    let schedule = FaultSchedule::none()
        .kill_rank_at_iteration(0, 700)
        .timed(Duration::from_millis(600), FaultAction::KillRank(2));
    println!("process storm: cooperative kill (rank 0 @ iter 700) + SIGKILL (rank 2 @ 600ms)");
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("storm failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("  outcomes: {:?}", report.outcomes);
    match classify_process(cfg, &report) {
        Ok(class) => {
            println!("storm contract held: {class:?} ({:?} killed)", report.killed());
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

fn fdkill(cfg: &SweepConfig, mode: &str) -> ExitCode {
    const VICTIM: u32 = 1;
    let kill_at = Duration::from_millis(
        std::env::var("FT_PROC_KILL_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(500),
    );
    let schedule = FaultSchedule::none().timed(kill_at, FaultAction::KillRank(VICTIM));
    println!("fd-kill e2e: SIGKILL rank {VICTIM} at {kill_at:?}, expect detect→rebuild→restore");
    let t0 = Instant::now();
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fd-kill run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();
    for (r, o) in report.outcomes.iter().enumerate() {
        println!("  rank {r}: {o:?}");
    }
    if std::env::var_os("FT_PROC_SWEEP_VERBOSE").is_some() {
        for line in &report.event_lines {
            println!("  | {line}");
        }
    }
    let mut failures = Vec::new();
    match &report.outcomes[VICTIM as usize] {
        ProcOutcome::Killed { by_signal: true } => {}
        other => failures.push(format!("victim outcome {other:?}, expected death by SIGKILL")),
    }
    for (name, needed) in
        [("FdDetect", 1usize), ("GroupRebuilt", cfg.workers as usize), ("Restored", 1)]
    {
        let n = report.events_matching(name).len();
        if n < needed {
            failures.push(format!("{name}: {n} events, expected >= {needed}"));
        }
    }
    match classify_process(cfg, &report) {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => {
            failures.push("run degraded; a single kill with a spare rescue must complete".into())
        }
        Err(v) => failures.push(format!("contract violation: {v}")),
    }
    // Detection + rebuild + restore + redo must be bounded: the whole
    // job (including ~0.5 s of pre-kill compute) well under the 90 s
    // supervisor deadline.
    if elapsed > Duration::from_secs(60) {
        failures.push(format!("end-to-end recovery took {elapsed:?} (> 60 s bound)"));
    }
    println!(
        "  victim SIGKILLed, {} FdDetect / {} GroupRebuilt / {} Restored events, {elapsed:?} total",
        report.events_matching("FdDetect").len(),
        report.events_matching("GroupRebuilt").len(),
        report.events_matching("Restored").len(),
    );
    if failures.is_empty() {
        println!("fd-kill e2e passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
