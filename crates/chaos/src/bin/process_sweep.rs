//! Process-backend conformance driver: the kill-point sweep's chaos
//! contract over real OS rank processes.
//!
//! This binary is both supervisor and child: re-executed with the
//! `FT_PROC_*` environment set, it runs one rank of the sweep job over
//! TCP; otherwise it runs one of three supervisor modes and exits
//! non-zero on any contract violation:
//!
//! * `smoke` (default) — enumerate kill points in memory, replay a
//!   coverage-spread subset as real-process jobs with the kill shipped in
//!   the serialized schedule (an armed child exits mid-protocol), and
//!   write the `gaspi-ft/process-sweep/v1` report to
//!   `target/telemetry/process-sweep.json`.
//! * `storm` — one longer seeded job with a cooperative iteration kill
//!   *and* a wall-clock `SIGKILL` from the supervisor, on a world with
//!   spare capacity for both.
//! * `fdkill` — the paper's `kill -9` experiment end to end: `SIGKILL` a
//!   worker mid-solve, assert the victim died by signal, the detector
//!   observed it, the group rebuilt, state restored from checkpoints,
//!   survivors finished with the exact expected value, all within a
//!   wall-clock bound.
//! * `partition` — a timed `BreakLink(fd, worker)` mid-solve: the link
//!   faults must reach the children (`skipped_actions` empty,
//!   `link_faults` listed), the detector must observe the partitioned
//!   worker, and the job must finish with exactly the same final values
//!   as the in-memory backend running the same schedule.
//! * `asym` — an *asymmetric* partition (the paper's link-fault path): a
//!   step-indexed `BreakLink` fires on one worker's plane only, so the
//!   FD still sees the severed peer while the worker does not; the
//!   worker's suspect report must drive detection, group rebuild,
//!   restore, and exact completion.
//! * `heal` — a transient FD↔worker partition healed before the
//!   detector's `suspect_grace` expires: no detection, no recovery, full
//!   exact completion.
//!
//! Environment: `FT_PROC_SWEEP_TRIPLES` — smoke kill-replay count
//! (default 6); `FT_PROC_SWEEP_PARTITIONS` — smoke partition-replay
//! count (default 2); `FT_PROC_KILL_MS` — fdkill SIGKILL time in ms
//! (default 500); `FT_PROC_SWEEP_VERBOSE` — dump child event lines in
//! fdkill mode.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ft_chaos::{
    classify_process, maybe_run_child, process_partition_sweep, process_smoke_sweep, run_process,
    run_with_schedule, RunClass, SweepConfig,
};
use ft_cluster::{FaultAction, FaultSchedule, Injection};
use ft_core::ProcOutcome;
use ft_telemetry::Json;

/// Schema identifier of the process-sweep report document.
const SCHEMA: &str = "gaspi-ft/process-sweep/v1";

/// The longer-running world for the wall-clock modes: kills must land
/// mid-solve, so the job computes for several seconds instead of
/// milliseconds (an allreduce iteration over loopback TCP runs in the
/// low hundreds of microseconds). Contract arithmetic is unchanged.
fn wallclock_cfg(spares: u32) -> SweepConfig {
    SweepConfig { max_iters: 20_000, checkpoint_every: 200, spares, ..SweepConfig::ci() }
}

/// The `heal` mode's world: wall-clock sized, with enough detector
/// hysteresis that a partition healed within ~200 ms never surfaces.
fn heal_cfg() -> SweepConfig {
    SweepConfig { suspect_grace: Duration::from_millis(200), ..wallclock_cfg(2) }
}

fn telemetry_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")),
        PathBuf::from,
    );
    target.join("telemetry")
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    // Child processes carry their rank in the environment and divert
    // before mode handling; the mode argument tells them which world
    // configuration this job was launched with.
    let cfg = match mode.as_str() {
        "storm" => wallclock_cfg(3),
        "fdkill" | "partition" | "asym" => wallclock_cfg(2),
        "heal" => heal_cfg(),
        _ => SweepConfig::ci(),
    };
    if let Some(code) = maybe_run_child(&cfg) {
        std::process::exit(code);
    }
    match mode.as_str() {
        "smoke" => smoke(&cfg),
        "storm" => storm(&cfg, &mode),
        "fdkill" => fdkill(&cfg, &mode),
        "partition" => partition(&cfg, &mode),
        "asym" => asym(&cfg, &mode),
        "heal" => heal(&cfg, &mode),
        other => {
            eprintln!("unknown mode {other:?} (expected smoke|storm|fdkill|partition|asym|heal)");
            ExitCode::FAILURE
        }
    }
}

fn class_label(c: &Result<RunClass, String>) -> String {
    match c {
        Ok(RunClass::Correct) => "correct".to_string(),
        Ok(RunClass::Degraded) => "degraded".to_string(),
        Err(v) => format!("violation: {v}"),
    }
}

fn smoke(cfg: &SweepConfig) -> ExitCode {
    let max_triples =
        std::env::var("FT_PROC_SWEEP_TRIPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(6usize);
    let max_partitions = std::env::var("FT_PROC_SWEEP_PARTITIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2usize);
    println!(
        "process smoke sweep: {} workers / {} spares as OS processes, {max_triples} kill + \
         {max_partitions} partition triples",
        cfg.workers, cfg.spares
    );
    let t0 = Instant::now();
    let sweep = match process_smoke_sweep(cfg, max_triples, &["smoke"], Duration::from_secs(60)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("process sweep failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let partitions =
        match process_partition_sweep(cfg, max_partitions, &["smoke"], Duration::from_secs(60)) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("process partition sweep failed to run: {e}");
                return ExitCode::FAILURE;
            }
        };
    let outcomes = &sweep.outcomes;
    let mut violations = 0;
    let mut agreements = 0;
    let mut rows = Vec::new();
    for o in outcomes {
        if o.process.is_err() {
            violations += 1;
        }
        if o.agree() {
            agreements += 1;
        }
        println!(
            "  kill {} occ {} rank {}: process={} in-memory={}",
            o.triple.site,
            o.triple.occurrence,
            o.triple.rank,
            class_label(&o.process),
            class_label(&o.in_memory),
        );
        rows.push(Json::obj([
            ("site", Json::Str(o.triple.site.clone())),
            ("rank", Json::num_u64(u64::from(o.triple.rank))),
            ("occurrence", Json::num_u64(o.triple.occurrence)),
            ("outcome", Json::Str(class_label(&o.process))),
            ("in_memory", Json::Str(class_label(&o.in_memory))),
            ("backends_agree", Json::Bool(o.agree())),
        ]));
    }
    let mut skipped_link_actions = 0u64;
    let mut partition_rows = Vec::new();
    for p in &partitions {
        if p.process.is_err() {
            violations += 1;
        }
        skipped_link_actions += p.skipped_link_actions as u64;
        println!(
            "  break {} occ {} rank {} peer {}: process={} in-memory={}",
            p.triple.site,
            p.triple.occurrence,
            p.triple.rank,
            p.peer,
            class_label(&p.process),
            class_label(&p.in_memory),
        );
        partition_rows.push(Json::obj([
            ("site", Json::Str(p.triple.site.clone())),
            ("rank", Json::num_u64(u64::from(p.triple.rank))),
            ("occurrence", Json::num_u64(p.triple.occurrence)),
            ("peer", Json::num_u64(u64::from(p.peer))),
            ("outcome", Json::Str(class_label(&p.process))),
            ("in_memory", Json::Str(class_label(&p.in_memory))),
            ("skipped_link_actions", Json::num_u64(p.skipped_link_actions as u64)),
        ]));
    }
    // Dropped-link ops are a contract violation in their own right: the
    // supervisor must never file link faults under skipped_actions.
    violations += skipped_link_actions;
    let excluded_rows: Vec<Json> = sweep
        .excluded
        .iter()
        .map(|(rec, why)| {
            Json::obj([
                ("site", Json::Str(rec.site.clone())),
                ("rank", Json::num_u64(u64::from(rec.rank))),
                ("occurrence", Json::num_u64(rec.occurrence)),
                ("reason", Json::Str(why.code().to_string())),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("backend", Json::Str("process".to_string())),
        (
            "world",
            Json::obj([
                ("workers", Json::num_u64(u64::from(cfg.workers))),
                ("spares", Json::num_u64(u64::from(cfg.spares))),
                ("seed", Json::num_u64(cfg.seed)),
                ("max_iters", Json::num_u64(cfg.max_iters)),
            ]),
        ),
        ("replayed", Json::num_u64(outcomes.len() as u64)),
        ("violations", Json::num_u64(violations)),
        ("backend_agreements", Json::num_u64(agreements)),
        ("triples", Json::Arr(rows)),
        ("excluded", Json::Arr(excluded_rows)),
        ("over_budget", Json::num_u64(sweep.over_budget as u64)),
        (
            "link_faults",
            Json::obj([
                ("partition_replays", Json::num_u64(partitions.len() as u64)),
                ("skipped_link_actions", Json::num_u64(skipped_link_actions)),
            ]),
        ),
        ("partitions", Json::Arr(partition_rows)),
        ("elapsed_s", Json::Num(t0.elapsed().as_secs_f64())),
    ]);
    let out = telemetry_dir();
    let path = out.join("process-sweep.json");
    match std::fs::create_dir_all(&out).and_then(|()| std::fs::write(&path, doc.render())) {
        Ok(()) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("could not write report to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "replayed {} kill + {} partition triples as real-process jobs in {:?}, {violations} \
         violations, {agreements}/{} backend agreement",
        outcomes.len(),
        partitions.len(),
        t0.elapsed(),
        outcomes.len(),
    );
    if violations > 0 || outcomes.is_empty() || partitions.is_empty() {
        eprintln!("process sweep found contract violations (or replayed nothing)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn storm(cfg: &SweepConfig, mode: &str) -> ExitCode {
    // Two independent deaths: rank 0 exits cooperatively at iteration
    // 700 (the `exit(-1)` style), rank 2 is SIGKILLed from outside at
    // 600 ms (the `kill -9` style). Three spares cover both plus the FD.
    let schedule = FaultSchedule::none()
        .kill_rank_at_iteration(0, 700)
        .timed(Duration::from_millis(600), FaultAction::KillRank(2));
    println!("process storm: cooperative kill (rank 0 @ iter 700) + SIGKILL (rank 2 @ 600ms)");
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("storm failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("  outcomes: {:?}", report.outcomes);
    match classify_process(cfg, &report) {
        Ok(class) => {
            println!("storm contract held: {class:?} ({:?} killed)", report.killed());
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("VIOLATION: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Decode a process report's worker summaries into `(app, f64)` pairs,
/// sorted by app rank.
fn decode_summaries(report: &ft_core::process::ProcJobReport) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = report
        .worker_summaries()
        .iter()
        .filter_map(|(app, bytes)| {
            <[u8; 8]>::try_from(*bytes).ok().map(|a| (*app, f64::from_le_bytes(a)))
        })
        .collect();
    v.sort_by_key(|&(app, _)| app);
    v
}

fn finish(mut failures: Vec<String>, label: &str) -> ExitCode {
    if failures.is_empty() {
        println!("{label} passed");
        ExitCode::SUCCESS
    } else {
        failures.dedup();
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

fn partition(cfg: &SweepConfig, mode: &str) -> ExitCode {
    const VICTIM: u32 = 1;
    let fd = cfg.ft_config().layout.fd_rank();
    let break_at = Duration::from_millis(500);
    let schedule = FaultSchedule::none().timed(break_at, FaultAction::BreakLink(fd, VICTIM));
    println!(
        "partition e2e: break link FD({fd})↔worker({VICTIM}) at {break_at:?}, expect \
         detect→rebuild→restore and in-memory value agreement"
    );
    let reference = run_with_schedule(cfg, schedule.clone(), false);
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("partition run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (r, o) in report.outcomes.iter().enumerate() {
        println!("  rank {r}: {o:?}");
    }
    let mut failures = Vec::new();
    if !report.skipped_actions.is_empty() {
        failures
            .push(format!("link ops filed under skipped_actions: {:?}", report.skipped_actions));
    }
    if report.link_faults.is_empty() {
        failures.push("no link faults listed as enforced in the report".into());
    }
    if report.events_matching("LinkFault").is_empty() {
        failures.push("no LinkFault events recorded by the children".into());
    }
    if report.events_matching("FdDetect").is_empty() {
        failures.push("FD never detected the partitioned worker".into());
    }
    for name in ["GroupRebuilt", "Restored"] {
        if report.events_matching(name).is_empty() {
            failures.push(format!("no {name} events recorded"));
        }
    }
    match classify_process(cfg, &report) {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => failures
            .push("run degraded; a single partition with a spare rescue must complete".into()),
        Err(v) => failures.push(format!("contract violation: {v}")),
    }
    match reference.class {
        Ok(_) => {
            let got = decode_summaries(&report);
            let mut want = reference.summaries.clone();
            want.sort_by_key(|&(app, _)| app);
            if got != want {
                failures.push(format!(
                    "final values diverge from the in-memory backend: process {got:?}, \
                     in-memory {want:?}"
                ));
            }
        }
        Err(v) => failures.push(format!("in-memory reference run violated: {v}")),
    }
    println!(
        "  {} enforced link ops, {} LinkFault / {} FdDetect events",
        report.link_faults.len(),
        report.events_matching("LinkFault").len(),
        report.events_matching("FdDetect").len(),
    );
    finish(failures, "partition e2e")
}

fn asym(cfg: &SweepConfig, mode: &str) -> ExitCode {
    // Rank 1's 1000th allreduce breaks — on rank 1's plane only — its
    // link to rank 0, its binomial-tree partner in every iteration. The
    // FD still reaches rank 0, so only rank 1's suspect report can
    // surface the fault; recovery then *enforces* rank 0's death
    // (`proc_kill` over the survivors' intact links, the paper's
    // §IV-A-a false-positive handling) and a rescue adopts its state.
    const CROSSER: u32 = 1;
    const SEVERED_PEER: u32 = 0;
    let schedule = FaultSchedule::none().inject(Injection::break_link(
        "gaspi.allreduce",
        CROSSER,
        1000,
        SEVERED_PEER,
    ));
    println!(
        "asymmetric-partition e2e: worker {CROSSER} loses sight of worker {SEVERED_PEER} \
         mid-solve (FD still sees it); expect report→detect→rebuild→restore"
    );
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("asym run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (r, o) in report.outcomes.iter().enumerate() {
        println!("  rank {r}: {o:?}");
    }
    let mut failures = Vec::new();
    if !report.skipped_actions.is_empty() {
        failures
            .push(format!("link ops filed under skipped_actions: {:?}", report.skipped_actions));
    }
    let detects = report.events_matching("FdDetect");
    // Both endpoints of the severed link may report each other (the
    // worker's sends are refused on its own plane; the peer's incoming
    // frames bounce as RESP_BROKEN), so detection must name one or both
    // of them — and nobody else.
    let endpoint_only = |l: &str| {
        l.split("failed: [")
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .is_some_and(|list| {
                list.split(',')
                    .all(|r| matches!(r.trim(), s if s == CROSSER.to_string() || s == SEVERED_PEER.to_string()))
            })
    };
    if detects.is_empty() {
        failures.push("the worker's suspect report never drove a detection".into());
    } else if !detects.iter().all(|l| endpoint_only(l)) {
        failures.push(format!("detection named ranks outside the partition: {detects:?}"));
    }
    if report.events_matching("LinkFault").is_empty() {
        failures.push("no LinkFault events recorded by the crossing rank".into());
    }
    for name in ["GroupRebuilt", "Restored"] {
        if report.events_matching(name).is_empty() {
            failures.push(format!("no {name} events recorded"));
        }
    }
    match classify_process(cfg, &report) {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => {
            failures.push("run degraded; the rescue must complete the job exactly".into())
        }
        Err(v) => failures.push(format!("contract violation: {v}")),
    }
    println!(
        "  {} FdDetect / {} GroupRebuilt / {} Restored events",
        detects.len(),
        report.events_matching("GroupRebuilt").len(),
        report.events_matching("Restored").len(),
    );
    finish(failures, "asymmetric-partition e2e")
}

fn heal(cfg: &SweepConfig, mode: &str) -> ExitCode {
    const VICTIM: u32 = 1;
    let fd = cfg.ft_config().layout.fd_rank();
    let break_at = Duration::from_millis(400);
    let heal_at = Duration::from_millis(460);
    let schedule = FaultSchedule::none()
        .timed(break_at, FaultAction::BreakLink(fd, VICTIM))
        .timed(heal_at, FaultAction::HealLink(fd, VICTIM));
    println!(
        "heal-before-timeout e2e: FD({fd})↔worker({VICTIM}) broken {break_at:?}–{heal_at:?}, \
         grace {:?}; expect NO recovery and exact completion",
        cfg.suspect_grace
    );
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("heal run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (r, o) in report.outcomes.iter().enumerate() {
        println!("  rank {r}: {o:?}");
    }
    let mut failures = Vec::new();
    if !report.skipped_actions.is_empty() {
        failures
            .push(format!("link ops filed under skipped_actions: {:?}", report.skipped_actions));
    }
    if report.link_faults.len() < 2 {
        failures
            .push(format!("expected break + heal in link_faults, got {:?}", report.link_faults));
    }
    // The crux: a partition healed inside the grace window must cause no
    // spurious recovery — detection, rebuild, and kill stay silent.
    for name in ["FdDetect", "FdAck", "KillFired"] {
        let n = report.events_matching(name).len();
        if n != 0 {
            failures.push(format!("spurious recovery: {n} {name} events after a healed link"));
        }
    }
    match classify_process(cfg, &report) {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => {
            failures.push("run degraded although the partition healed in time".into())
        }
        Err(v) => failures.push(format!("contract violation: {v}")),
    }
    println!(
        "  {} enforced link ops, {} FdDetect events (want 0)",
        report.link_faults.len(),
        report.events_matching("FdDetect").len(),
    );
    finish(failures, "heal-before-timeout e2e")
}

fn fdkill(cfg: &SweepConfig, mode: &str) -> ExitCode {
    const VICTIM: u32 = 1;
    let kill_at = Duration::from_millis(
        std::env::var("FT_PROC_KILL_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(500),
    );
    let schedule = FaultSchedule::none().timed(kill_at, FaultAction::KillRank(VICTIM));
    println!("fd-kill e2e: SIGKILL rank {VICTIM} at {kill_at:?}, expect detect→rebuild→restore");
    let t0 = Instant::now();
    let report = match run_process(cfg, schedule, &[mode], Duration::from_secs(90)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fd-kill run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();
    for (r, o) in report.outcomes.iter().enumerate() {
        println!("  rank {r}: {o:?}");
    }
    if std::env::var_os("FT_PROC_SWEEP_VERBOSE").is_some() {
        for line in &report.event_lines {
            println!("  | {line}");
        }
    }
    let mut failures = Vec::new();
    match &report.outcomes[VICTIM as usize] {
        ProcOutcome::Killed { by_signal: true } => {}
        other => failures.push(format!("victim outcome {other:?}, expected death by SIGKILL")),
    }
    for (name, needed) in
        [("FdDetect", 1usize), ("GroupRebuilt", cfg.workers as usize), ("Restored", 1)]
    {
        let n = report.events_matching(name).len();
        if n < needed {
            failures.push(format!("{name}: {n} events, expected >= {needed}"));
        }
    }
    match classify_process(cfg, &report) {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => {
            failures.push("run degraded; a single kill with a spare rescue must complete".into())
        }
        Err(v) => failures.push(format!("contract violation: {v}")),
    }
    // Detection + rebuild + restore + redo must be bounded: the whole
    // job (including ~0.5 s of pre-kill compute) well under the 90 s
    // supervisor deadline.
    if elapsed > Duration::from_secs(60) {
        failures.push(format!("end-to-end recovery took {elapsed:?} (> 60 s bound)"));
    }
    println!(
        "  victim SIGKILLed, {} FdDetect / {} GroupRebuilt / {} Restored events, {elapsed:?} total",
        report.events_matching("FdDetect").len(),
        report.events_matching("GroupRebuilt").len(),
        report.events_matching("Restored").len(),
    );
    if failures.is_empty() {
        println!("fd-kill e2e passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
