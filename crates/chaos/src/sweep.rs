//! The two sweep drivers: exhaustive single-kill exploration and the
//! pair sweep (second failure *during* recovery).

use std::time::{Duration, Instant};

use ft_cluster::{site_is_deterministic, FaultSchedule, Injection, SiteRecord};
use ft_core::{run_ft_job, DetectorConfig, FtConfig, JobReport, StrategyKind, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, Timeout};

use crate::app::SweepApp;
use crate::report::{PairOutcome, SweepReport, TripleOutcome};

/// Parameters of one sweep: the world shape and the job size.
///
/// Keep the job *small* — the exhaustive sweep replays one full job per
/// enumerated `(site, occurrence, rank)` triple.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Application ranks.
    pub workers: u32,
    /// Spare ranks (last one is the FD, the rest idle rescues).
    pub spares: u32,
    /// World seed (latency jitter is disabled; the seed still names the
    /// run in the report).
    pub seed: u64,
    /// Iterations of the accumulator job.
    pub max_iters: u64,
    /// Checkpoint interval in iterations.
    pub checkpoint_every: u64,
    /// Occurrences enumerated per `(site, rank)` during the recording
    /// pass (counters are exact; only the *enumeration* is capped).
    pub record_cap: u64,
    /// Per-run hang bound: a replay that makes no progress for this long
    /// degrades cleanly instead of hanging the sweep.
    pub abandon: Duration,
    /// Detector hysteresis for suspected ranks (see
    /// `ft_core::DetectorConfig::suspect_grace`). Zero — immediate
    /// verification — except in the transient-partition scenarios.
    pub suspect_grace: Duration,
    /// Recovery model every replay runs (the sweep enumerates that
    /// strategy's own injection sites, so each model is swept against
    /// its own failure surface).
    pub strategy: StrategyKind,
}

impl SweepConfig {
    /// The CI world: 4 workers, 1 idle rescue, 1 FD.
    pub fn ci() -> Self {
        Self {
            workers: 4,
            spares: 2,
            seed: 42,
            max_iters: 12,
            checkpoint_every: 4,
            record_cap: 2,
            abandon: Duration::from_secs(3),
            suspect_grace: Duration::ZERO,
            strategy: StrategyKind::CheckpointRestart,
        }
    }

    /// The driver configuration this sweep world runs (shared by the
    /// in-memory backend and the process backend's supervisor/children,
    /// which must agree on it exactly).
    pub fn ft_config(&self) -> FtConfig {
        FtConfig::builder(WorldLayout::new(self.workers, self.spares))
            .checkpoint_every(self.checkpoint_every)
            .max_iters(self.max_iters)
            .abandon(self.abandon)
            .strategy(self.strategy)
            // Replays are serial; a fast detector keeps the sweep
            // wall-clock proportional to the triple count, not to
            // detection latency.
            .detector(DetectorConfig {
                scan_interval: Duration::from_millis(5),
                ping_timeout: Timeout::Ms(60),
                ack_timeout: Timeout::Ms(500),
                suspect_grace: self.suspect_grace,
                ..Default::default()
            })
            .build()
            .expect("sweep world config must validate")
    }
}

/// How one replay ended, when it did not violate the chaos contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// Every application rank finished with the exact expected value.
    Correct,
    /// Incomplete, but cleanly: at least one recorded failure, and every
    /// summary that *was* produced is exact.
    Degraded,
}

/// Replay verdict of a kill triple: the contract class, with the
/// timing-dependent freedom of *very-early* kills folded into one named
/// class so replays of the same triple are comparable.
///
/// A kill that fires before the victim committed its first checkpoint
/// races recovery against the survivors' initial group formation:
/// depending on how far the acknowledgment gets before the abandon
/// deadline, the job either completes exactly or degrades cleanly. Both
/// endings satisfy the contract, and which one happens is a property of
/// thread scheduling — not of the triple — so replay comparisons must
/// not distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Post-first-checkpoint kill, run completed with exact values.
    Correct,
    /// Post-first-checkpoint kill, run degraded cleanly.
    Degraded,
    /// The victim died before its first `driver.checkpoint.commit`
    /// crossing; exact completion and clean degradation are both
    /// accepted.
    EarlyKill,
}

/// True when `triple` fires before the victim rank's first checkpoint
/// commit — decided from the *recording* log, so the criterion is
/// deterministic (both crossings are by the same rank, hence logged in
/// that rank's program order).
pub fn triple_is_early(log: &[SiteRecord], triple: &SiteRecord) -> bool {
    for rec in log {
        if rec.rank == triple.rank {
            if rec.site == "driver.checkpoint.commit" {
                return false;
            }
            if rec.site == triple.site && rec.occurrence == triple.occurrence {
                return true;
            }
        }
    }
    false
}

/// Fold a replay class into its [`Verdict`] given the triple's
/// early-kill status.
pub fn verdict_of(early: bool, class: RunClass) -> Verdict {
    match (early, class) {
        (true, _) => Verdict::EarlyKill,
        (false, RunClass::Correct) => Verdict::Correct,
        (false, RunClass::Degraded) => Verdict::Degraded,
    }
}

/// One job execution: its contract classification plus the fault plane's
/// site log, the injections that actually fired, and the final worker
/// summaries (for cross-backend value comparison).
#[derive(Debug)]
pub struct JobRun {
    /// `Ok(class)` when the chaos contract held, `Err(violation)` when it
    /// did not (wrong number or unexplained incompleteness).
    pub class: Result<RunClass, String>,
    /// Site crossings (recording runs only).
    pub log: Vec<SiteRecord>,
    /// Armed injections that fired during the run.
    pub fired: Vec<Injection>,
    /// `(app_rank, accumulator)` of every worker that finished.
    pub summaries: Vec<(u32, f64)>,
}

/// Run the sweep job once with `injections` armed; optionally record the
/// site log (the enumeration pass).
pub fn run_with(cfg: &SweepConfig, injections: &[Injection], record: bool) -> JobRun {
    let mut schedule = FaultSchedule::none();
    for inj in injections {
        schedule = schedule.inject(inj.clone());
    }
    run_with_schedule(cfg, schedule, record)
}

/// [`run_with`] for an arbitrary fault schedule — timed actions
/// included. The process-backend conformance modes compare their final
/// values against this in-memory reference run of the same schedule.
pub fn run_with_schedule(cfg: &SweepConfig, schedule: FaultSchedule, record: bool) -> JobRun {
    let ft = cfg.ft_config();
    let world = GaspiWorld::new(GaspiConfig::deterministic(ft.layout.total()).with_seed(cfg.seed));
    if record {
        world.fault().record_sites(cfg.record_cap);
    }
    let report = run_ft_job(&world, ft, schedule, SweepApp::new);
    let fault = world.fault();
    let summaries = report.worker_summaries().into_iter().map(|(a, v)| (a, *v)).collect();
    JobRun {
        class: classify(cfg, &report),
        log: fault.site_log(),
        fired: fault.injections_fired(),
        summaries,
    }
}

/// The chaos contract (same as the storm test's): complete ⇒ exact,
/// incomplete ⇒ recorded failure and no stray wrong summaries.
fn classify(cfg: &SweepConfig, report: &JobReport<f64>) -> Result<RunClass, String> {
    let expected = SweepApp::expected(cfg.workers, cfg.max_iters);
    let summaries = report.worker_summaries();
    for (app, acc) in &summaries {
        if **acc != expected {
            return Err(format!("app rank {app} produced {acc}, expected {expected}"));
        }
    }
    if summaries.len() == cfg.workers as usize {
        return Ok(RunClass::Correct);
    }
    let errored = report.completed().into_iter().filter(|r| r.error.is_some()).count();
    let killed = report.killed().len();
    if errored + killed == 0 {
        return Err(format!(
            "incomplete ({}/{} summaries) without any recorded failure",
            summaries.len(),
            cfg.workers
        ));
    }
    Ok(RunClass::Degraded)
}

/// Replay the job with a single kill armed at `triple`, classifying the
/// outcome against the chaos contract.
pub fn replay_triple(cfg: &SweepConfig, triple: &SiteRecord) -> Result<RunClass, String> {
    let inj = Injection::kill(triple.site.clone(), triple.rank, triple.occurrence);
    run_with(cfg, &[inj], false).class
}

/// Exhaustive single-kill sweep: enumerate every `(site, occurrence,
/// rank)` triple of a failure-free run, then replay one job per triple
/// with a kill armed there. `budget` caps replay wall-clock (the
/// enumeration always completes); remaining triples are counted as
/// skipped, never silently dropped.
pub fn exhaustive_sweep(cfg: &SweepConfig, budget: Option<Duration>) -> SweepReport {
    let t0 = Instant::now();
    let mut report = SweepReport::new(cfg);

    let recording = run_with(cfg, &[], true);
    match recording.class {
        Ok(RunClass::Correct) => {}
        Ok(RunClass::Degraded) => {
            report.violations.push("failure-free recording run degraded".into());
        }
        Err(v) => report.violations.push(format!("failure-free recording run: {v}")),
    }
    report.enumerated = recording.log.len();

    for triple in &recording.log {
        if budget.is_some_and(|b| t0.elapsed() >= b) {
            report.skipped_budget += 1;
            continue;
        }
        let outcome = replay_triple(cfg, triple);
        if let Err(v) = &outcome {
            report.violations.push(format!(
                "kill {} occ {} rank {}: {v}",
                triple.site, triple.occurrence, triple.rank
            ));
        }
        report.replayed.push(TripleOutcome {
            site: triple.site.clone(),
            rank: triple.rank,
            occurrence: triple.occurrence,
            outcome,
            deterministic: site_is_deterministic(&triple.site),
            early: triple_is_early(&recording.log, triple),
        });
    }
    report.elapsed = t0.elapsed();
    report
}

/// One pair-sweep scenario: a first kill plus injections armed inside the
/// recovery window it opens.
pub struct PairScenario {
    /// Stable scenario name (appears in the report and CI diff).
    pub label: &'static str,
    /// All armed injections, first kill included.
    pub injections: Vec<Injection>,
    /// Whether clean degradation (not full completion) is the expected
    /// outcome — e.g. when the scenario exhausts the spare pool.
    pub expect_degraded: bool,
}

/// The recovery-window scenarios the pair sweep covers.
///
/// Occurrence arithmetic, for the `ci()` world (checkpoint every 4 of 12
/// iterations): the first kill lands at worker 1's 6th `gaspi.allreduce`
/// — after the version-1 checkpoint exists, mid steady-state — so the
/// recovery it triggers restores real state and re-homes it. Survivors
/// crossed `recover.begin` once already (initial group formation), so
/// occurrence 2 is the first *real* recovery.
pub fn pair_scenarios(cfg: &SweepConfig) -> Vec<PairScenario> {
    let first = Injection::kill("gaspi.allreduce", 1, 6);
    vec![
        // Second worker dies while the survivors are rebuilding the group.
        PairScenario {
            label: "kill-during-group-rebuild",
            injections: vec![first.clone(), Injection::kill("recover.begin", 2, 2)],
            expect_degraded: false,
        },
        // The freshly adopted rescue dies while re-homing the restored
        // checkpoint to its neighbor (its first replication ever).
        PairScenario {
            label: "kill-during-neighbor-recopy",
            injections: vec![first.clone(), Injection::kill("ckpt.neighbor.copy", cfg.workers, 1)],
            expect_degraded: false,
        },
        // A second survivor dies between the FD's plan broadcast and the
        // commit — the group must re-form at a later epoch.
        PairScenario {
            label: "kill-during-group-commit",
            injections: vec![first.clone(), Injection::kill("gaspi.group.commit", 3, 2)],
            expect_degraded: false,
        },
        // Three worker kills against one idle rescue + FD promotion:
        // capacity is exhausted and the job must degrade cleanly.
        PairScenario {
            label: "spare-exhaustion",
            injections: vec![
                Injection::kill("gaspi.allreduce", 0, 3),
                Injection::kill("gaspi.allreduce", 1, 6),
                Injection::kill("gaspi.allreduce", 2, 9),
            ],
            expect_degraded: true,
        },
    ]
}

/// Run every pair scenario, classifying each against the chaos contract
/// and recording which injections actually fired (a second injection
/// that *fired* proves the kill landed inside the recovery window).
pub fn pair_sweep(cfg: &SweepConfig) -> Vec<PairOutcome> {
    pair_scenarios(cfg)
        .into_iter()
        .map(|s| {
            let run = run_with(cfg, &s.injections, false);
            let outcome = match run.class {
                Ok(RunClass::Correct) if s.expect_degraded => {
                    Err("expected clean degradation, run completed fully".to_string())
                }
                other => other,
            };
            PairOutcome {
                label: s.label,
                injections: s.injections,
                fired: run.fired.len(),
                outcome,
            }
        })
        .collect()
}
