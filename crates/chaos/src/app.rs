//! The small deterministic job every sweep run replays.
//!
//! A paper-shaped accumulator: each iteration allreduces one value per
//! application rank and adds the sum, checkpointing every
//! `checkpoint_every` iterations through the neighbor-level checkpoint
//! library. The ground truth after `n` iterations with `w` workers is
//! exactly `w(w+1)/2 · n(n+1)/2`, so a replay can distinguish *correct*,
//! *degraded* and *silently corrupt* outcomes with one `==`.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, Dec, Enc};
use ft_core::{FtApp, FtCtx, FtResult, RecoveryPlan};
use ft_gaspi::ReduceOp;

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

/// The accumulator application used by the kill-point sweeps.
pub struct SweepApp {
    acc: f64,
    ck: Checkpointer,
}

impl SweepApp {
    /// Build one instance per rank (pass to `run_ft_job`).
    pub fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }

    /// Ground-truth accumulator value after a complete run.
    pub fn expected(workers: u32, iters: u64) -> f64 {
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64
    }
}

impl FtApp for SweepApp {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        Ok(Some(e.finish()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64()?;
        self.acc = d.f64()?;
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}
