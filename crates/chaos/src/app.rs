//! The small deterministic job every sweep run replays.
//!
//! A paper-shaped accumulator: each iteration allreduces one value per
//! application rank and adds the sum, checkpointing every
//! `checkpoint_every` iterations through the neighbor-level checkpoint
//! library. The ground truth after `n` iterations with `w` workers is
//! exactly `w(w+1)/2 · n(n+1)/2`, so a replay can distinguish *correct*,
//! *degraded* and *silently corrupt* outcomes with one `==`.

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy, Dec, Enc};
use ft_core::ckpt::consistent_restore;
use ft_core::{FtApp, FtCtx, FtResult, RecoveryPlan};
use ft_gaspi::ReduceOp;

const STATE_TAG: u32 = 1;
const FETCH: Duration = Duration::from_secs(5);

/// The accumulator application used by the kill-point sweeps.
pub struct SweepApp {
    acc: f64,
    ck: Checkpointer,
}

impl SweepApp {
    /// Build one instance per rank (pass to `run_ft_job`).
    pub fn new(ctx: &FtCtx) -> Self {
        Self {
            acc: 0.0,
            ck: Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None),
        }
    }

    /// Ground-truth accumulator value after a complete run.
    pub fn expected(workers: u32, iters: u64) -> f64 {
        f64::from(workers) * f64::from(workers + 1) / 2.0 * (iters * (iters + 1) / 2) as f64
    }
}

impl FtApp for SweepApp {
    type Summary = f64;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        self.acc += ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        Ok(false)
    }

    fn checkpoint(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<()> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        self.ck.commit(iter / ctx.cfg.checkpoint_every, e.finish(), CopyPolicy::Replicate);
        Ok(())
    }

    fn restore(&mut self, ctx: &FtCtx) -> FtResult<u64> {
        match consistent_restore(ctx, &self.ck, ctx.restore_source(), FETCH)? {
            Some(r) => {
                let mut d = Dec::new(&r.data);
                let iter = d.u64().unwrap();
                self.acc = d.f64().unwrap();
                Ok(iter)
            }
            None => {
                self.acc = 0.0;
                Ok(0)
            }
        }
    }

    fn rewire(&mut self, _ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<f64> {
        Ok(self.acc)
    }
}
