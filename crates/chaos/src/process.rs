//! Process-backend conformance: the kill-point sweep's chaos contract
//! enforced over *real OS rank processes*.
//!
//! The in-memory sweep proves the recovery stack correct under
//! cooperative fail-stop (poisoned liveness flags). This module replays
//! the same job — same [`SweepApp`], same driver configuration, same
//! step-indexed injection triples — through
//! [`ft_core::process::run_supervisor`], where every rank is an OS
//! process over TCP and a kill is either an armed process exit or a
//! genuine `SIGKILL`. The contract is unchanged: a run either completes
//! with the exact expected accumulator value in every worker, or
//! degrades cleanly with the deaths on record — never a hang, never a
//! wrong number.
//!
//! Triples are enumerated by the **in-memory** recording pass (the site
//! instrumentation is backend-independent: sites are crossed by the rank
//! that owns them, so occurrence counts agree), filtered to
//! deterministic sites, and a coverage-spread subset is replayed as real
//! processes — one supervisor job per triple, in smoke-test budget.

use std::io;
use std::time::Duration;

use ft_cluster::{site_is_deterministic, FaultSchedule, Rank, SiteRecord};
use ft_core::process::{run_supervisor, ProcJobReport, SupervisorConfig};
use ft_core::{child_env, run_child};
use ft_gaspi::GaspiConfig;

use crate::app::SweepApp;
use crate::sweep::{run_with, RunClass, SweepConfig};

/// The GASPI world configuration both supervisor bookkeeping and every
/// child build from `cfg` (they must agree bit-for-bit).
pub fn sweep_gaspi_config(cfg: &SweepConfig) -> GaspiConfig {
    GaspiConfig::deterministic(cfg.ft_config().layout.total()).with_seed(cfg.seed)
}

/// Child-mode hook: when the current process is a supervised rank child,
/// run the sweep app for that one rank and return the exit code for
/// `main`. Binaries hosting the process sweep call this before anything
/// else.
pub fn maybe_run_child(cfg: &SweepConfig) -> Option<i32> {
    let env = child_env()?;
    let ft = cfg.ft_config();
    let gaspi = sweep_gaspi_config(cfg);
    Some(run_child(env, ft, gaspi, SweepApp::new, |s: &f64| s.to_le_bytes().to_vec()))
}

/// Run one sweep job over the process backend with `schedule` armed.
/// `child_args` must route the re-executed binary back into
/// [`maybe_run_child`] with the same `cfg`.
pub fn run_process(
    cfg: &SweepConfig,
    schedule: FaultSchedule,
    child_args: &[&str],
    deadline: Duration,
) -> io::Result<ProcJobReport> {
    let total = cfg.ft_config().layout.total();
    let sup = SupervisorConfig::new(total, schedule)
        .with_args(child_args.iter().copied())
        .with_deadline(deadline);
    run_supervisor(sup)
}

/// The chaos contract over a process-backend report: complete ⇒ every
/// worker summary is the exact expected value; incomplete ⇒ at least one
/// recorded kill or error, and nothing crashed, timed out, or produced a
/// wrong number.
pub fn classify_process(cfg: &SweepConfig, report: &ProcJobReport) -> Result<RunClass, String> {
    for o in &report.outcomes {
        match o {
            ft_core::ProcOutcome::TimedOut => return Err("rank timed out (hang)".into()),
            ft_core::ProcOutcome::Crashed(d) => return Err(format!("rank crashed: {d}")),
            _ => {}
        }
    }
    let expected = SweepApp::expected(cfg.workers, cfg.max_iters);
    let summaries = report.worker_summaries();
    for (app, bytes) in &summaries {
        let Ok(arr) = <[u8; 8]>::try_from(*bytes) else {
            return Err(format!("app rank {app}: malformed 8-byte summary"));
        };
        let acc = f64::from_le_bytes(arr);
        if acc != expected {
            return Err(format!("app rank {app} produced {acc}, expected {expected}"));
        }
    }
    if summaries.len() == cfg.workers as usize {
        return Ok(RunClass::Correct);
    }
    let killed = report.killed().len();
    let errored = report.first_error().is_some();
    if killed == 0 && !errored {
        return Err(format!(
            "incomplete ({}/{} summaries) without any recorded failure",
            summaries.len(),
            cfg.workers
        ));
    }
    Ok(RunClass::Degraded)
}

/// Why an enumerated triple was excluded from process replay. Exclusion
/// is decided here, at enumeration time, and carried into the
/// process-sweep report as a machine-checked reason code — never a
/// silent skip at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcludeReason {
    /// Another occurrence of the same `(site, rank)` kill point is
    /// already selected; replaying a second occurrence of the same point
    /// adds no coverage in smoke budget.
    DuplicateKillPoint,
    /// The site's occurrence index is interleaving-dependent
    /// (`site_is_deterministic` = false), so a process replay could not
    /// be compared against the in-memory reference.
    NondeterministicSite,
}

impl ExcludeReason {
    /// Stable reason code, as emitted in the JSON report.
    pub fn code(self) -> &'static str {
        match self {
            ExcludeReason::DuplicateKillPoint => "duplicate-kill-point",
            ExcludeReason::NondeterministicSite => "nondeterministic-site",
        }
    }
}

/// Result of triple selection: the replay set plus every exclusion with
/// its reason, plus the count of eligible triples beyond the `max`
/// budget.
#[derive(Debug, Default)]
pub struct TripleSelection {
    /// Triples to replay, in log order.
    pub picked: Vec<SiteRecord>,
    /// Excluded triples with their reason codes.
    pub excluded: Vec<(SiteRecord, ExcludeReason)>,
    /// Eligible triples dropped only because the budget ran out.
    pub over_budget: usize,
}

/// Pick at most `max` replay triples from an in-memory site log:
/// deterministic sites only, spread for `(site, rank)` coverage (first
/// occurrence of each kill point, breadth before depth). Everything not
/// picked is accounted for — by reason code or as over-budget.
pub fn select_triples(log: &[SiteRecord], max: usize) -> TripleSelection {
    let mut seen: Vec<(&str, Rank)> = Vec::new();
    let mut sel = TripleSelection::default();
    for rec in log {
        if !site_is_deterministic(&rec.site) {
            sel.excluded.push((rec.clone(), ExcludeReason::NondeterministicSite));
            continue;
        }
        let key = (rec.site.as_str(), rec.rank);
        if seen.contains(&key) {
            sel.excluded.push((rec.clone(), ExcludeReason::DuplicateKillPoint));
            continue;
        }
        if sel.picked.len() >= max {
            sel.over_budget += 1;
            continue;
        }
        seen.push(key);
        sel.picked.push(rec.clone());
    }
    sel
}

/// One smoke-sweep replay: the kill point, the in-memory backend's
/// classification of the same injection, and the process backend's.
pub struct SmokeOutcome {
    /// The replayed kill point.
    pub triple: SiteRecord,
    /// What the in-memory backend makes of this kill (the reference).
    pub in_memory: Result<RunClass, String>,
    /// What the process backend makes of it.
    pub process: Result<RunClass, String>,
}

impl SmokeOutcome {
    /// True when both backends agree on the classification (the strong
    /// conformance statement; the contract itself only requires that
    /// neither side *violates*).
    pub fn agree(&self) -> bool {
        matches!((&self.in_memory, &self.process), (Ok(a), Ok(b)) if a == b)
    }
}

/// Everything a smoke sweep produced: the replays plus the selection's
/// exclusion accounting (emitted in the report so the dedup is
/// machine-checkable).
pub struct SmokeSweep {
    /// One entry per replayed kill triple.
    pub outcomes: Vec<SmokeOutcome>,
    /// Triples excluded from replay, with reason codes.
    pub excluded: Vec<(SiteRecord, ExcludeReason)>,
    /// Eligible triples beyond the replay budget.
    pub over_budget: usize,
}

/// Enumerate kill points in memory, then replay `max_triples` of them
/// both in memory (the reference classification) and as real-process
/// jobs.
pub fn process_smoke_sweep(
    cfg: &SweepConfig,
    max_triples: usize,
    child_args: &[&str],
    per_job_deadline: Duration,
) -> io::Result<SmokeSweep> {
    let recording = run_with(cfg, &[], true);
    if let Err(v) = recording.class {
        return Err(io::Error::other(format!("in-memory enumeration run violated: {v}")));
    }
    let sel = select_triples(&recording.log, max_triples);
    let mut outcomes = Vec::new();
    for triple in sel.picked {
        let in_memory = crate::sweep::replay_triple(cfg, &triple);
        let schedule = FaultSchedule::none().inject(ft_cluster::Injection::kill(
            triple.site.clone(),
            triple.rank,
            triple.occurrence,
        ));
        let report = run_process(cfg, schedule, child_args, per_job_deadline)?;
        let process = classify_process(cfg, &report);
        outcomes.push(SmokeOutcome { triple, in_memory, process });
    }
    Ok(SmokeSweep { outcomes, excluded: sel.excluded, over_budget: sel.over_budget })
}

/// One partition-conformance replay: a step-indexed `BreakLink`
/// injection armed at a deterministic kill point, replayed on both
/// backends. On the process backend the break fires only on the crossing
/// rank's local fault plane (an *asymmetric* partition the TCP transport
/// enforces end to end); the in-memory backend shares one plane, so its
/// classification is a reference, not an oracle — conformance requires
/// that neither side violates the contract.
pub struct PartitionOutcome {
    /// The crossing the break was armed at.
    pub triple: SiteRecord,
    /// The severed peer.
    pub peer: Rank,
    /// In-memory classification of the same injection.
    pub in_memory: Result<RunClass, String>,
    /// Process-backend classification.
    pub process: Result<RunClass, String>,
    /// Timed link actions the supervisor failed to hand to the children
    /// — must be zero (the regression guard on
    /// `ProcJobReport::skipped_actions`).
    pub skipped_link_actions: usize,
}

/// Enumerate crossings in memory, then replay up to `max_triples` of
/// them as *network partitions*: each selected worker-rank crossing arms
/// `BreakLink(rank, next worker)` instead of a kill. Exercises the
/// paper's link-fault path over real TCP: send-side sever, receive-side
/// refusal, worker suspect reports, `proc_kill` enforcement, rebuild,
/// restore.
pub fn process_partition_sweep(
    cfg: &SweepConfig,
    max_triples: usize,
    child_args: &[&str],
    per_job_deadline: Duration,
) -> io::Result<Vec<PartitionOutcome>> {
    let recording = run_with(cfg, &[], true);
    if let Err(v) = recording.class {
        return Err(io::Error::other(format!("in-memory enumeration run violated: {v}")));
    }
    let sel = select_triples(&recording.log, usize::MAX);
    let mut out = Vec::new();
    for triple in sel.picked.into_iter().filter(|t| t.rank < cfg.workers).take(max_triples) {
        let peer = (triple.rank + 1) % cfg.workers;
        let inj = ft_cluster::Injection::break_link(
            triple.site.clone(),
            triple.rank,
            triple.occurrence,
            peer,
        );
        let in_memory = run_with(cfg, std::slice::from_ref(&inj), false).class;
        let schedule = FaultSchedule::none().inject(inj);
        let report = run_process(cfg, schedule, child_args, per_job_deadline)?;
        let process = classify_process(cfg, &report);
        out.push(PartitionOutcome {
            triple,
            peer,
            in_memory,
            process,
            skipped_link_actions: report.skipped_actions.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_selection_dedups_and_filters_with_reason_codes() {
        let rec = |site: &str, rank: Rank, occ: u64| SiteRecord {
            site: site.to_string(),
            rank,
            occurrence: occ,
        };
        let log = vec![
            rec("gaspi.allreduce", 0, 1),
            rec("gaspi.allreduce", 0, 2), // same kill point: excluded as duplicate
            rec("transport.post", 1, 1),  // interleaving-dependent: excluded
            rec("gaspi.allreduce", 1, 1),
            rec("recover.begin", 0, 1), // eligible but beyond the budget
        ];
        let sel = select_triples(&log, 2);
        assert_eq!(sel.picked.len(), 2);
        assert_eq!(sel.picked[0].site, "gaspi.allreduce");
        assert_eq!(sel.picked[0].rank, 0);
        assert_eq!(sel.picked[1].rank, 1);
        // Every non-picked triple is accounted for, with a stable code.
        assert_eq!(sel.over_budget, 1);
        assert_eq!(sel.excluded.len(), 2);
        assert_eq!(sel.excluded[0].0.occurrence, 2);
        assert_eq!(sel.excluded[0].1, ExcludeReason::DuplicateKillPoint);
        assert_eq!(sel.excluded[0].1.code(), "duplicate-kill-point");
        assert_eq!(sel.excluded[1].0.site, "transport.post");
        assert_eq!(sel.excluded[1].1, ExcludeReason::NondeterministicSite);
        assert_eq!(sel.excluded[1].1.code(), "nondeterministic-site");
    }
}
