//! Process-backend conformance: the kill-point sweep's chaos contract
//! enforced over *real OS rank processes*.
//!
//! The in-memory sweep proves the recovery stack correct under
//! cooperative fail-stop (poisoned liveness flags). This module replays
//! the same job — same [`SweepApp`], same driver configuration, same
//! step-indexed injection triples — through
//! [`ft_core::process::run_supervisor`], where every rank is an OS
//! process over TCP and a kill is either an armed process exit or a
//! genuine `SIGKILL`. The contract is unchanged: a run either completes
//! with the exact expected accumulator value in every worker, or
//! degrades cleanly with the deaths on record — never a hang, never a
//! wrong number.
//!
//! Triples are enumerated by the **in-memory** recording pass (the site
//! instrumentation is backend-independent: sites are crossed by the rank
//! that owns them, so occurrence counts agree), filtered to
//! deterministic sites, and a coverage-spread subset is replayed as real
//! processes — one supervisor job per triple, in smoke-test budget.

use std::io;
use std::time::Duration;

use ft_cluster::{site_is_deterministic, FaultSchedule, Rank, SiteRecord};
use ft_core::process::{run_supervisor, ProcJobReport, SupervisorConfig};
use ft_core::{child_env, run_child};
use ft_gaspi::GaspiConfig;

use crate::app::SweepApp;
use crate::sweep::{run_with, RunClass, SweepConfig};

/// The GASPI world configuration both supervisor bookkeeping and every
/// child build from `cfg` (they must agree bit-for-bit).
pub fn sweep_gaspi_config(cfg: &SweepConfig) -> GaspiConfig {
    GaspiConfig::deterministic(cfg.ft_config().layout.total()).with_seed(cfg.seed)
}

/// Child-mode hook: when the current process is a supervised rank child,
/// run the sweep app for that one rank and return the exit code for
/// `main`. Binaries hosting the process sweep call this before anything
/// else.
pub fn maybe_run_child(cfg: &SweepConfig) -> Option<i32> {
    let env = child_env()?;
    let ft = cfg.ft_config();
    let gaspi = sweep_gaspi_config(cfg);
    Some(run_child(env, ft, gaspi, SweepApp::new, |s: &f64| s.to_le_bytes().to_vec()))
}

/// Run one sweep job over the process backend with `schedule` armed.
/// `child_args` must route the re-executed binary back into
/// [`maybe_run_child`] with the same `cfg`.
pub fn run_process(
    cfg: &SweepConfig,
    schedule: FaultSchedule,
    child_args: &[&str],
    deadline: Duration,
) -> io::Result<ProcJobReport> {
    let total = cfg.ft_config().layout.total();
    let sup = SupervisorConfig::new(total, schedule)
        .with_args(child_args.iter().copied())
        .with_deadline(deadline);
    run_supervisor(sup)
}

/// The chaos contract over a process-backend report: complete ⇒ every
/// worker summary is the exact expected value; incomplete ⇒ at least one
/// recorded kill or error, and nothing crashed, timed out, or produced a
/// wrong number.
pub fn classify_process(cfg: &SweepConfig, report: &ProcJobReport) -> Result<RunClass, String> {
    for o in &report.outcomes {
        match o {
            ft_core::ProcOutcome::TimedOut => return Err("rank timed out (hang)".into()),
            ft_core::ProcOutcome::Crashed(d) => return Err(format!("rank crashed: {d}")),
            _ => {}
        }
    }
    let expected = SweepApp::expected(cfg.workers, cfg.max_iters);
    let summaries = report.worker_summaries();
    for (app, bytes) in &summaries {
        let Ok(arr) = <[u8; 8]>::try_from(*bytes) else {
            return Err(format!("app rank {app}: malformed 8-byte summary"));
        };
        let acc = f64::from_le_bytes(arr);
        if acc != expected {
            return Err(format!("app rank {app} produced {acc}, expected {expected}"));
        }
    }
    if summaries.len() == cfg.workers as usize {
        return Ok(RunClass::Correct);
    }
    let killed = report.killed().len();
    let errored = report.first_error().is_some();
    if killed == 0 && !errored {
        return Err(format!(
            "incomplete ({}/{} summaries) without any recorded failure",
            summaries.len(),
            cfg.workers
        ));
    }
    Ok(RunClass::Degraded)
}

/// Pick at most `max` replay triples from an in-memory site log:
/// deterministic sites only, spread for `(site, rank)` coverage (first
/// occurrence of each kill point, breadth before depth).
pub fn select_triples(log: &[SiteRecord], max: usize) -> Vec<SiteRecord> {
    let mut seen: Vec<(&str, Rank)> = Vec::new();
    let mut picked = Vec::new();
    for rec in log {
        if picked.len() >= max {
            break;
        }
        if !site_is_deterministic(&rec.site) {
            continue;
        }
        let key = (rec.site.as_str(), rec.rank);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        picked.push(rec.clone());
    }
    picked
}

/// One smoke-sweep replay: the kill point, the in-memory backend's
/// classification of the same injection, and the process backend's.
pub struct SmokeOutcome {
    /// The replayed kill point.
    pub triple: SiteRecord,
    /// What the in-memory backend makes of this kill (the reference).
    pub in_memory: Result<RunClass, String>,
    /// What the process backend makes of it.
    pub process: Result<RunClass, String>,
}

impl SmokeOutcome {
    /// True when both backends agree on the classification (the strong
    /// conformance statement; the contract itself only requires that
    /// neither side *violates*).
    pub fn agree(&self) -> bool {
        matches!((&self.in_memory, &self.process), (Ok(a), Ok(b)) if a == b)
    }
}

/// Enumerate kill points in memory, then replay `max_triples` of them
/// both in memory (the reference classification) and as real-process
/// jobs.
pub fn process_smoke_sweep(
    cfg: &SweepConfig,
    max_triples: usize,
    child_args: &[&str],
    per_job_deadline: Duration,
) -> io::Result<Vec<SmokeOutcome>> {
    let recording = run_with(cfg, &[], true);
    if let Err(v) = recording.class {
        return Err(io::Error::other(format!("in-memory enumeration run violated: {v}")));
    }
    let mut out = Vec::new();
    for triple in select_triples(&recording.log, max_triples) {
        let in_memory = crate::sweep::replay_triple(cfg, &triple);
        let schedule = FaultSchedule::none().inject(ft_cluster::Injection::kill(
            triple.site.clone(),
            triple.rank,
            triple.occurrence,
        ));
        let report = run_process(cfg, schedule, child_args, per_job_deadline)?;
        let process = classify_process(cfg, &report);
        out.push(SmokeOutcome { triple, in_memory, process });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_selection_dedups_and_filters() {
        let rec = |site: &str, rank: Rank, occ: u64| SiteRecord {
            site: site.to_string(),
            rank,
            occurrence: occ,
        };
        let log = vec![
            rec("gaspi.allreduce", 0, 1),
            rec("gaspi.allreduce", 0, 2), // same kill point: skipped
            rec("transport.post", 1, 1),  // non-deterministic: skipped
            rec("gaspi.allreduce", 1, 1),
            rec("recover.begin", 0, 1),
        ];
        let picked = select_triples(&log, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].site, "gaspi.allreduce");
        assert_eq!(picked[0].rank, 0);
        assert_eq!(picked[1].rank, 1);
    }
}
