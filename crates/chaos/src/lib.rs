//! # ft-chaos — deterministic kill-point exploration
//!
//! The paper validates its recovery machinery by killing processes at
//! *arbitrary moments* (§VI); the storm test in `ft-core` reproduces that
//! with seeded wall-clock kills. This crate makes the failure space
//! *enumerable* instead of sampled: it drives the step-indexed injection
//! sites (see [`ft_cluster::inject`]) through two sweeps —
//!
//! * [`sweep::exhaustive_sweep`] — a recording pass enumerates every
//!   `(site, occurrence, rank)` triple a small accumulator job crosses,
//!   then one job is replayed per triple with a kill armed there,
//!   asserting the chaos contract: a replay either completes with the
//!   exact expected value or degrades cleanly (recorded failure, no
//!   wrong number) — never a hang, never silent corruption.
//! * [`sweep::pair_sweep`] — scenarios arming a *second* failure inside
//!   the recovery window the first one opens (group rebuild, commit,
//!   rescue neighbor re-copy) plus a spare-exhaustion run, covering the
//!   failure-during-recovery paths a single kill cannot reach.
//!
//! Results aggregate into a `gaspi-ft/killpoint-sweep/v1` JSON document
//! ([`report::SweepReport`]) written to `target/telemetry/` by the
//! `killpoint_sweep` binary, so CI diffs site coverage across PRs.
//!
//! The [`process`] module re-runs the same contract over the **process
//! backend** (every rank an OS process over TCP, kills delivered as real
//! `SIGKILL`s or armed process exits) via the `process_sweep` binary —
//! the conformance suite for the transport seam.

#![warn(missing_docs)]

pub mod app;
pub mod process;
pub mod report;
pub mod sweep;

pub use app::SweepApp;
pub use process::{
    classify_process, maybe_run_child, process_partition_sweep, process_smoke_sweep, run_process,
    select_triples, sweep_gaspi_config, ExcludeReason, PartitionOutcome, SmokeOutcome, SmokeSweep,
    TripleSelection,
};
pub use report::{PairOutcome, SweepReport, TripleOutcome, SCHEMA};
pub use sweep::{
    exhaustive_sweep, pair_scenarios, pair_sweep, replay_triple, run_with, run_with_schedule,
    triple_is_early, verdict_of, JobRun, PairScenario, RunClass, SweepConfig, Verdict,
};
