//! The `gaspi-ft/killpoint-sweep/v1` coverage report.
//!
//! One JSON document per sweep, written into `target/telemetry/` by the
//! `killpoint_sweep` binary so CI can diff site coverage across PRs. The
//! schema is asserted in `tests/sweep.rs`.

use std::collections::BTreeMap;
use std::time::Duration;

use ft_cluster::{InjectOp, Injection, Rank};
use ft_telemetry::Json;

use crate::sweep::{RunClass, SweepConfig};

/// Schema identifier of the report document.
pub const SCHEMA: &str = "gaspi-ft/killpoint-sweep/v1";

/// One replayed single-kill triple and how it ended.
#[derive(Debug)]
pub struct TripleOutcome {
    /// Injection-site name.
    pub site: String,
    /// Killed rank.
    pub rank: Rank,
    /// Occurrence the kill was armed at.
    pub occurrence: u64,
    /// Contract classification (`Err` = violation).
    pub outcome: Result<RunClass, String>,
    /// Whether this site's occurrence index replays deterministically.
    pub deterministic: bool,
    /// Whether the kill fires before the victim's first checkpoint
    /// commit (see `crate::sweep::Verdict::EarlyKill`).
    pub early: bool,
}

/// One pair-sweep scenario result.
#[derive(Debug)]
pub struct PairOutcome {
    /// Scenario name.
    pub label: &'static str,
    /// The armed injections (first kill included).
    pub injections: Vec<Injection>,
    /// How many of them actually fired.
    pub fired: usize,
    /// Contract classification (`Err` = violation).
    pub outcome: Result<RunClass, String>,
}

/// Aggregate result of an exhaustive sweep plus the pair scenarios.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep configuration (world shape and job size).
    pub cfg: SweepConfig,
    /// Triples enumerated by the recording pass.
    pub enumerated: usize,
    /// One entry per replayed triple.
    pub replayed: Vec<TripleOutcome>,
    /// Triples not replayed because the wall-clock budget ran out.
    pub skipped_budget: usize,
    /// Every contract violation, human-readable.
    pub violations: Vec<String>,
    /// Pair-sweep scenario results.
    pub pairs: Vec<PairOutcome>,
    /// Sweep wall-clock.
    pub elapsed: Duration,
}

impl SweepReport {
    /// An empty report for `cfg`.
    pub fn new(cfg: &SweepConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            enumerated: 0,
            replayed: Vec::new(),
            skipped_budget: 0,
            violations: Vec::new(),
            pairs: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Distinct `(site, rank)` kill points among the replayed triples.
    pub fn distinct_kill_points(&self) -> usize {
        let mut set: Vec<(&str, Rank)> =
            self.replayed.iter().map(|t| (t.site.as_str(), t.rank)).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// True when every replay (single and pair) satisfied the contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.pairs.iter().all(|p| p.outcome.is_ok())
    }

    /// Render the `gaspi-ft/killpoint-sweep/v1` document.
    pub fn to_json(&self) -> Json {
        let mut correct = 0u64;
        let mut degraded = 0u64;
        // Coverage per (site, rank): occurrences seen, replays done.
        let mut sites: BTreeMap<(String, Rank), (u64, u64)> = BTreeMap::new();
        for t in &self.replayed {
            match t.outcome {
                Ok(RunClass::Correct) => correct += 1,
                Ok(RunClass::Degraded) => degraded += 1,
                Err(_) => {}
            }
            let e = sites.entry((t.site.clone(), t.rank)).or_insert((0, 0));
            e.0 = e.0.max(t.occurrence);
            e.1 += 1;
        }
        let site_rows: Vec<Json> = sites
            .into_iter()
            .map(|((site, rank), (occ, replayed))| {
                Json::obj([
                    ("site", Json::Str(site)),
                    ("rank", Json::num_u64(u64::from(rank))),
                    ("occurrences", Json::num_u64(occ)),
                    ("replayed", Json::num_u64(replayed)),
                ])
            })
            .collect();
        let pair_rows: Vec<Json> = self
            .pairs
            .iter()
            .map(|p| {
                Json::obj([
                    ("label", Json::Str(p.label.to_string())),
                    ("outcome", Json::Str(outcome_str(&p.outcome).to_string())),
                    ("fired", Json::num_u64(p.fired as u64)),
                    ("injections", Json::Arr(p.injections.iter().map(injection_json).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(SCHEMA.to_string())),
            (
                "world",
                Json::obj([
                    ("workers", Json::num_u64(u64::from(self.cfg.workers))),
                    ("spares", Json::num_u64(u64::from(self.cfg.spares))),
                    ("seed", Json::num_u64(self.cfg.seed)),
                    ("max_iters", Json::num_u64(self.cfg.max_iters)),
                    ("checkpoint_every", Json::num_u64(self.cfg.checkpoint_every)),
                    ("strategy", Json::Str(self.cfg.strategy.name().to_string())),
                ]),
            ),
            ("enumerated", Json::num_u64(self.enumerated as u64)),
            ("replayed", Json::num_u64(self.replayed.len() as u64)),
            ("skipped_budget", Json::num_u64(self.skipped_budget as u64)),
            ("distinct_kill_points", Json::num_u64(self.distinct_kill_points() as u64)),
            (
                "outcomes",
                Json::obj([
                    ("correct", Json::num_u64(correct)),
                    ("degraded", Json::num_u64(degraded)),
                    ("violations", Json::num_u64(self.violations.len() as u64)),
                ]),
            ),
            ("sites", Json::Arr(site_rows)),
            (
                "violations",
                Json::Arr(self.violations.iter().map(|v| Json::Str(v.clone())).collect()),
            ),
            ("pairs", Json::Arr(pair_rows)),
            ("elapsed_s", Json::Num(self.elapsed.as_secs_f64())),
        ])
    }
}

fn outcome_str(o: &Result<RunClass, String>) -> &'static str {
    match o {
        Ok(RunClass::Correct) => "correct",
        Ok(RunClass::Degraded) => "degraded",
        Err(_) => "violation",
    }
}

fn injection_json(inj: &Injection) -> Json {
    let op = match inj.op {
        InjectOp::Kill => "kill".to_string(),
        InjectOp::KillNode => "kill_node".to_string(),
        InjectOp::BreakLink { peer } => format!("break_link:{peer}"),
        InjectOp::HealLink { peer } => format!("heal_link:{peer}"),
        InjectOp::Delay { dur } => format!("delay:{}us", dur.as_micros()),
    };
    Json::obj([
        ("site", Json::Str(inj.site.clone())),
        ("rank", Json::num_u64(u64::from(inj.rank))),
        ("occurrence", Json::num_u64(inj.occurrence)),
        ("op", Json::Str(op)),
    ])
}
