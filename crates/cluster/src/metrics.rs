//! Cheap atomic counters for the simulated cluster.

use std::sync::atomic::{AtomicU64, Ordering};

/// Transport- and runtime-level counters. All counters are monotonic and
/// relaxed; they exist for benchmarking and assertions, not for
/// synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Messages posted to the transport.
    pub msg_posted: AtomicU64,
    /// Payload bytes posted.
    pub bytes_posted: AtomicU64,
    /// Messages delivered to a live destination.
    pub msg_delivered: AtomicU64,
    /// Messages that completed with [`crate::Outcome::Broken`].
    pub msg_broken: AtomicU64,
    /// Messages dropped because the source died in flight.
    pub msg_dropped_dead_src: AtomicU64,
    /// Ping round trips initiated (maintained by the GASPI layer).
    pub pings: AtomicU64,
    /// Ping round trips that returned an error (maintained by the GASPI
    /// layer).
    pub ping_errors: AtomicU64,
    /// Fan-out batches posted through [`crate::Transport::call_fanout`]
    /// (each batch covers many destinations in one shard-lock pass).
    pub batch_posts: AtomicU64,
}

/// A point-in-time copy of [`Metrics`], convenient for deltas in benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// See [`Metrics::msg_posted`].
    pub msg_posted: u64,
    /// See [`Metrics::bytes_posted`].
    pub bytes_posted: u64,
    /// See [`Metrics::msg_delivered`].
    pub msg_delivered: u64,
    /// See [`Metrics::msg_broken`].
    pub msg_broken: u64,
    /// See [`Metrics::msg_dropped_dead_src`].
    pub msg_dropped_dead_src: u64,
    /// See [`Metrics::pings`].
    pub pings: u64,
    /// See [`Metrics::ping_errors`].
    pub ping_errors: u64,
    /// See [`Metrics::batch_posts`].
    pub batch_posts: u64,
}

impl Metrics {
    /// Take a relaxed snapshot of all counters.
    ///
    /// ```
    /// use std::sync::atomic::Ordering;
    /// use ft_cluster::Metrics;
    ///
    /// let m = Metrics::default();
    /// m.msg_posted.fetch_add(3, Ordering::Relaxed);
    /// assert_eq!(m.snapshot().msg_posted, 3);
    /// ```
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            msg_posted: self.msg_posted.load(Ordering::Relaxed),
            bytes_posted: self.bytes_posted.load(Ordering::Relaxed),
            msg_delivered: self.msg_delivered.load(Ordering::Relaxed),
            msg_broken: self.msg_broken.load(Ordering::Relaxed),
            msg_dropped_dead_src: self.msg_dropped_dead_src.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            ping_errors: self.ping_errors.load(Ordering::Relaxed),
            batch_posts: self.batch_posts.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    ///
    /// The usual pattern brackets a measured region with two snapshots:
    ///
    /// ```
    /// use std::sync::atomic::Ordering;
    /// use ft_cluster::Metrics;
    ///
    /// let m = Metrics::default();
    /// let before = m.snapshot();
    /// m.msg_posted.fetch_add(2, Ordering::Relaxed);
    /// m.bytes_posted.fetch_add(64, Ordering::Relaxed);
    /// let delta = m.snapshot().since(&before);
    /// assert_eq!(delta.msg_posted, 2);
    /// assert_eq!(delta.bytes_posted, 64);
    /// ```
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            msg_posted: self.msg_posted.saturating_sub(earlier.msg_posted),
            bytes_posted: self.bytes_posted.saturating_sub(earlier.bytes_posted),
            msg_delivered: self.msg_delivered.saturating_sub(earlier.msg_delivered),
            msg_broken: self.msg_broken.saturating_sub(earlier.msg_broken),
            msg_dropped_dead_src: self
                .msg_dropped_dead_src
                .saturating_sub(earlier.msg_dropped_dead_src),
            pings: self.pings.saturating_sub(earlier.pings),
            ping_errors: self.ping_errors.saturating_sub(earlier.ping_errors),
            batch_posts: self.batch_posts.saturating_sub(earlier.batch_posts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let m = Metrics::default();
        m.msg_posted.fetch_add(5, Ordering::Relaxed);
        m.bytes_posted.fetch_add(100, Ordering::Relaxed);
        let a = m.snapshot();
        m.msg_posted.fetch_add(2, Ordering::Relaxed);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.msg_posted, 2);
        assert_eq!(d.bytes_posted, 0);
    }

    #[test]
    fn since_saturates() {
        let a = MetricsSnapshot { msg_posted: 3, ..Default::default() };
        let b = MetricsSnapshot::default();
        assert_eq!(b.since(&a).msg_posted, 0);
    }
}
