//! Step-indexed fault injection: named injection sites with per-rank
//! occurrence counters.
//!
//! The paper validates recovery by killing processes at *arbitrary
//! moments* (§VI); the wall-clock [`crate::FaultSchedule`] reproduces
//! that, but a time-random kill cannot name the protocol step it hit, so
//! a recovery bug at one specific boundary (say, between checkpoint
//! commit and the neighbor-copy acknowledgment) survives until a lucky
//! seed finds it. Injection sites make the failure space *enumerable*:
//!
//! * The communication and checkpoint layers call
//!   [`crate::FaultPlane::site`] (or [`crate::FaultPlane::site_passive`] from helper
//!   threads) at named protocol steps. Each `(site, rank)` pair carries a
//!   monotonically increasing occurrence counter.
//! * A recording pass ([`crate::FaultPlane::record_sites`]) logs the crossings
//!   of a failure-free run, enumerating every `(site, occurrence, rank)`
//!   triple a sweep can kill at.
//! * An [`InjectionPlan`] arms deterministic faults: *kill rank r at the
//!   k-th occurrence of site s* — plus node-kill, break-link, and delay
//!   variants.
//!
//! Sites are free when injection is disabled (one relaxed atomic load);
//! the plane only pays for counters once a recording or an armed plan
//! switches injection on.
//!
//! `site` raises [`crate::RankKilled`] on a kill match and therefore must
//! only be called by the dying rank's own thread. Library threads (the
//! checkpoint replicator, the network scheduler) use `site_passive`,
//! which poisons the rank's liveness flag without unwinding the calling
//! thread — the victim observes its death at its next communication
//! call, exactly like an external `kill -9`.

use std::collections::HashMap;
use std::time::Duration;

use crate::codec::{CodecError, Dec, Enc};
use crate::topology::Rank;

/// Injection-site names are compile-time constants at the call sites.
pub type SiteName = &'static str;

/// One recorded crossing of an injection site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SiteRecord {
    /// Site name (e.g. `"gaspi.allreduce"`).
    pub site: String,
    /// The rank that crossed the site.
    pub rank: Rank,
    /// 1-based occurrence index of this crossing for `(site, rank)`.
    pub occurrence: u64,
}

/// What to do when an armed injection matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectOp {
    /// Fail-stop kill of the crossing rank (idempotent on the plane, so
    /// it composes with wall-clock kills of the same rank).
    Kill,
    /// Kill the crossing rank's whole node — drops node-local state such
    /// as checkpoints, via the registered kill hooks.
    KillNode,
    /// Break the bidirectional link between the crossing rank and `peer`.
    BreakLink {
        /// The other end of the link.
        peer: Rank,
    },
    /// Heal the bidirectional link between the crossing rank and `peer`
    /// (the inverse of [`InjectOp::BreakLink`], for partition-then-heal
    /// scenarios indexed to protocol steps).
    HealLink {
        /// The other end of the link.
        peer: Rank,
    },
    /// Stall the crossing thread for `dur` (models a slow step, e.g. a
    /// GC pause or network hiccup, without killing anything).
    Delay {
        /// How long to stall.
        dur: Duration,
    },
}

/// One armed step-indexed fault: apply `op` when `rank` crosses `site`
/// for the `occurrence`-th time. Fires at most once.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Site name to match.
    pub site: String,
    /// Rank whose crossing counts.
    pub rank: Rank,
    /// 1-based occurrence to fire at.
    pub occurrence: u64,
    /// The fault to apply.
    pub op: InjectOp,
}

impl InjectOp {
    /// Append the wire form (tag byte + operands) to `e`.
    pub fn encode(&self, e: &mut Enc) {
        match *self {
            InjectOp::Kill => {
                e.u8(0);
            }
            InjectOp::KillNode => {
                e.u8(1);
            }
            InjectOp::BreakLink { peer } => {
                e.u8(2).u32(peer);
            }
            InjectOp::Delay { dur } => {
                e.u8(3).u64(dur.as_nanos() as u64);
            }
            InjectOp::HealLink { peer } => {
                e.u8(4).u32(peer);
            }
        }
    }

    /// Inverse of [`InjectOp::encode`].
    pub fn decode(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => InjectOp::Kill,
            1 => InjectOp::KillNode,
            2 => InjectOp::BreakLink { peer: d.u32()? },
            3 => InjectOp::Delay { dur: Duration::from_nanos(d.u64()?) },
            4 => InjectOp::HealLink { peer: d.u32()? },
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

impl Injection {
    /// Kill `rank` at its `occurrence`-th crossing of `site`.
    pub fn kill(site: impl Into<String>, rank: Rank, occurrence: u64) -> Self {
        Self { site: site.into(), rank, occurrence, op: InjectOp::Kill }
    }

    /// Kill `rank`'s node at its `occurrence`-th crossing of `site`.
    pub fn kill_node(site: impl Into<String>, rank: Rank, occurrence: u64) -> Self {
        Self { site: site.into(), rank, occurrence, op: InjectOp::KillNode }
    }

    /// Break the `rank`↔`peer` link at the `occurrence`-th crossing.
    pub fn break_link(site: impl Into<String>, rank: Rank, occurrence: u64, peer: Rank) -> Self {
        Self { site: site.into(), rank, occurrence, op: InjectOp::BreakLink { peer } }
    }

    /// Heal the `rank`↔`peer` link at the `occurrence`-th crossing.
    pub fn heal_link(site: impl Into<String>, rank: Rank, occurrence: u64, peer: Rank) -> Self {
        Self { site: site.into(), rank, occurrence, op: InjectOp::HealLink { peer } }
    }

    /// Stall `rank` for `dur` at the `occurrence`-th crossing.
    pub fn delay(site: impl Into<String>, rank: Rank, occurrence: u64, dur: Duration) -> Self {
        Self { site: site.into(), rank, occurrence, op: InjectOp::Delay { dur } }
    }

    /// Append the wire form to `e` (the supervisor ships per-rank plans to
    /// child processes through an environment variable).
    pub fn encode(&self, e: &mut Enc) {
        e.str(&self.site).u32(self.rank).u64(self.occurrence);
        self.op.encode(e);
    }

    /// Inverse of [`Injection::encode`].
    pub fn decode(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(Self { site: d.str()?, rank: d.u32()?, occurrence: d.u64()?, op: InjectOp::decode(d)? })
    }
}

/// A set of step-indexed faults to arm on a [`crate::FaultPlane`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectionPlan {
    /// The armed injections, in arming order.
    pub injections: Vec<Injection>,
}

impl InjectionPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one injection (builder style).
    pub fn with(mut self, inj: Injection) -> Self {
        self.injections.push(inj);
        self
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Serialize the whole plan to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.injections.len() as u64);
        for inj in &self.injections {
            inj.encode(&mut e);
        }
        e.finish()
    }

    /// Inverse of [`InjectionPlan::encode`]; rejects trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(buf);
        let n = d.u64()?;
        let mut injections = Vec::new();
        for _ in 0..n {
            injections.push(Injection::decode(&mut d)?);
        }
        d.expect_end()?;
        Ok(Self { injections })
    }
}

/// An armed injection plus its fired flag.
#[derive(Debug)]
struct Armed {
    inj: Injection,
    fired: bool,
}

/// Mutable injection state hanging off the fault plane (behind one
/// mutex; only touched when injection is enabled).
#[derive(Debug, Default)]
pub(crate) struct InjectState {
    armed: Vec<Armed>,
    counters: HashMap<(SiteName, Rank), u64>,
    recording: bool,
    /// Max occurrences logged per `(site, rank)` — counters keep counting
    /// beyond the cap, only the *log* is bounded.
    record_cap: u64,
    log: Vec<SiteRecord>,
    fired: Vec<Injection>,
}

impl InjectState {
    /// Count a crossing; log it while recording; return the op of a
    /// matching armed injection, at most once per injection.
    pub(crate) fn cross(&mut self, rank: Rank, site: SiteName) -> Option<InjectOp> {
        let c = self.counters.entry((site, rank)).or_insert(0);
        *c += 1;
        let occurrence = *c;
        if self.recording && occurrence <= self.record_cap {
            self.log.push(SiteRecord { site: site.to_string(), rank, occurrence });
        }
        let armed = self.armed.iter_mut().find(|a| {
            !a.fired && a.inj.rank == rank && a.inj.occurrence == occurrence && a.inj.site == site
        })?;
        armed.fired = true;
        let inj = armed.inj.clone();
        self.fired.push(inj.clone());
        Some(inj.op)
    }

    pub(crate) fn arm(&mut self, plan: InjectionPlan) {
        self.armed.extend(plan.injections.into_iter().map(|inj| Armed { inj, fired: false }));
    }

    pub(crate) fn start_recording(&mut self, cap_per_site: u64) {
        self.recording = true;
        self.record_cap = cap_per_site.max(1);
    }

    pub(crate) fn log(&self) -> Vec<SiteRecord> {
        self.log.clone()
    }

    pub(crate) fn fired(&self) -> Vec<Injection> {
        self.fired.clone()
    }

    pub(crate) fn count(&self, site: &str, rank: Rank) -> u64 {
        self.counters.iter().find(|((s, r), _)| *s == site && *r == rank).map_or(0, |(_, &c)| c)
    }
}

/// Sites crossed only by the owning rank's own thread replay
/// deterministically: their occurrence index is a pure function of the
/// rank's instruction stream. Sites also crossed by helper threads (the
/// network scheduler's nested posts, the checkpoint library thread) get
/// occurrence indices that depend on thread interleaving — a sweep still
/// asserts the chaos contract on them, but must not assert same-triple ⇒
/// same-outcome.
pub fn site_is_deterministic(site: &str) -> bool {
    !matches!(site, "transport.post" | "ckpt.neighbor.copy" | "ckpt.pfs.write")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_count_per_site_and_rank() {
        let mut st = InjectState::default();
        assert_eq!(st.cross(0, "a"), None);
        assert_eq!(st.cross(0, "a"), None);
        assert_eq!(st.cross(1, "a"), None);
        assert_eq!(st.cross(0, "b"), None);
        assert_eq!(st.count("a", 0), 2);
        assert_eq!(st.count("a", 1), 1);
        assert_eq!(st.count("b", 0), 1);
        assert_eq!(st.count("b", 9), 0);
    }

    #[test]
    fn armed_injection_fires_exactly_once_at_its_occurrence() {
        let mut st = InjectState::default();
        st.arm(InjectionPlan::new().with(Injection::kill("a", 0, 2)));
        assert_eq!(st.cross(0, "a"), None); // occurrence 1
        assert_eq!(st.cross(1, "a"), None); // other rank
        assert_eq!(st.cross(0, "a"), Some(InjectOp::Kill)); // occurrence 2
        assert_eq!(st.cross(0, "a"), None); // fired already
        assert_eq!(st.fired().len(), 1);
    }

    #[test]
    fn recording_caps_log_but_not_counters() {
        let mut st = InjectState::default();
        st.start_recording(2);
        for _ in 0..5 {
            st.cross(3, "x");
        }
        assert_eq!(st.count("x", 3), 5);
        let log = st.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], SiteRecord { site: "x".into(), rank: 3, occurrence: 1 });
        assert_eq!(log[1], SiteRecord { site: "x".into(), rank: 3, occurrence: 2 });
    }

    #[test]
    fn injection_plan_codec_roundtrip() {
        let plan = InjectionPlan::new()
            .with(Injection::kill("driver.checkpoint.commit", 3, 2))
            .with(Injection::kill_node("gaspi.write", 1, 7))
            .with(Injection::break_link("gaspi.barrier", 0, 1, 5))
            .with(Injection::heal_link("gaspi.barrier", 0, 3, 5))
            .with(Injection::delay("ckpt.restore", 2, 4, Duration::from_micros(250)));
        let bytes = plan.encode();
        assert_eq!(InjectionPlan::decode(&bytes).unwrap(), plan);
        // Empty plan round-trips too.
        assert_eq!(
            InjectionPlan::decode(&InjectionPlan::new().encode()).unwrap(),
            InjectionPlan::new()
        );
        // Truncation and trailing garbage are loud.
        assert!(InjectionPlan::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut noisy = bytes.clone();
        noisy.push(0);
        assert!(InjectionPlan::decode(&noisy).is_err());
        // A bogus op tag is rejected.
        let mut e = Enc::new();
        e.u64(1).str("x").u32(0).u64(1).u8(9);
        assert!(matches!(InjectionPlan::decode(&e.finish()), Err(CodecError::BadTag(9))));
    }

    #[test]
    fn deterministic_site_classification() {
        assert!(site_is_deterministic("gaspi.allreduce"));
        assert!(site_is_deterministic("recover.group.create"));
        // The chunked-commit sites are crossed by the committing rank's
        // own thread, so they stay in the determinism-asserted set.
        assert!(site_is_deterministic("ckpt.chunk.write"));
        assert!(site_is_deterministic("ckpt.manifest.write"));
        assert!(!site_is_deterministic("transport.post"));
        assert!(!site_is_deterministic("ckpt.neighbor.copy"));
    }
}
